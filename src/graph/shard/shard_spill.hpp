// Memory-mapped spill backing for shards larger than RAM.
//
// A ShardSpill is an anonymous *file-backed* byte range: a temp file is
// created under the caller's spill directory, unlinked immediately (so a
// crash leaks nothing), and mapped MAP_SHARED. File-backed pages are what
// makes the CSR pageable — under memory pressure the kernel writes dirty
// pages back and reclaims them, and evict() forces exactly that, so peak
// RSS is decoupled from the mapped size. Accesses after an evict fault the
// pages back in transparently; nothing on the round hot path allocates.
#pragma once

#include <cstdint>
#include <string>

namespace rsets::shard {

class ShardSpill {
 public:
  ShardSpill() = default;
  ~ShardSpill();
  ShardSpill(ShardSpill&& other) noexcept;
  ShardSpill& operator=(ShardSpill&& other) noexcept;
  ShardSpill(const ShardSpill&) = delete;
  ShardSpill& operator=(const ShardSpill&) = delete;

  // Creates an unlinked temp file of `bytes` under `dir` and maps it
  // read-write. Throws rsets::Error(kIoFailure) when the directory does not
  // admit creating or sizing the file.
  static ShardSpill create(const std::string& dir, std::uint64_t bytes);

  bool valid() const { return data_ != nullptr; }
  void* data() { return data_; }
  const void* data() const { return data_; }
  std::uint64_t size() const { return bytes_; }

  // Shrinks (or grows) the file and remaps. Existing contents up to the new
  // size are preserved; the data pointer may change.
  void resize(std::uint64_t bytes);

  // Schedules writeback of dirty pages in [offset, offset+length) and drops
  // them from this process's RSS; the next access faults them back in from
  // the file. The build passes call this on a cadence so ingest RSS stays
  // bounded by the eviction window, not the CSR size.
  void evict(std::uint64_t offset, std::uint64_t length);
  void evict_all() { evict(0, bytes_); }

 private:
  void reset() noexcept;

  int fd_ = -1;
  void* data_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace rsets::shard
