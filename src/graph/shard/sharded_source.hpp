// Sharded streaming graph generation: per-machine edge shards without a
// global edge list.
//
// Every input family here is a *counter-based* generator: edge (or cell) k
// is a pure function of (spec, k), never of a sequential RNG cursor. That
// makes contiguous index ranges independently streamable, so machine i of M
// can generate exactly its own shard — and the multiset union of all shards
// is bit-identical no matter how many machines the run uses (1, 4, 16, ...).
// This is the KaGen-style input path ROADMAP item 1 asks for: the low-memory
// MPC regime only becomes interesting once no single process ever holds the
// whole edge list.
//
// Contract (checked by shard/validator.cpp and tests/test_shard.cpp):
//   * stream_shard(s, sink) emits a deterministic edge sequence for shard s;
//     re-streaming the same shard yields the same sequence.
//   * The multiset of edges emitted across all shards is invariant under the
//     shard count — union at M machines == union at 1 machine.
//   * Emitted edges are *raw*: self-loops and duplicates may appear exactly
//     as a global generator would produce them; symmetrize/dedup happens at
//     ingest (shard_csr.hpp) with the same semantics as Graph::from_edges,
//     so sharded and materialized ingestion build identical CSRs.
//   * Every endpoint is < num_vertices().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace rsets::shard {

enum class ShardFamily : std::uint8_t {
  kGraph500,    // Kronecker/R-MAT descent at the Graph500 corner weights
                // (0.57, 0.19, 0.19) with a multiplicative vertex scramble
  kRmat,        // plain R-MAT descent with user corner weights, no scramble
  kGeometric3d, // random points in the unit cube, edges within `radius`
};

const char* shard_family_name(ShardFamily family);

// Parameters of one sharded input. The canonical flag spelling is
//   FAMILY:key=value,key=value,...
// e.g. "graph500:scale=20,edgefactor=16", "rmat:scale=18,a=0.45,b=0.22,c=0.22",
// "geometric3d:n=100000,radius=0.01". parse_shard_spec rejects malformed
// specs with rsets::Error(kBadFlag) and a 1-based token position, matching
// the parse_fault_spec taxonomy.
struct ShardSpec {
  ShardFamily family = ShardFamily::kGraph500;

  // kGraph500 / kRmat: n = 2^scale vertices, edgefactor * n raw edges.
  std::uint32_t scale = 16;
  std::uint32_t edgefactor = 16;

  // kRmat only: corner probabilities (d = 1 - a - b - c).
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;

  // kGeometric3d: n points in [0,1)^3, an edge per pair within `radius`.
  std::uint64_t n = 0;
  double radius = 0.0;

  std::uint64_t seed = 1;

  VertexId num_vertices() const;
  // Canonical spec string; parse_shard_spec(to_string()) round-trips.
  std::string to_string() const;
};

// Throws rsets::Error(ErrorCode::kBadFlag) on malformed input, with the
// failing 1-based token position and a diagnostic. `default_seed` is used
// when the spec carries no explicit seed=K token (the CLI passes --seed).
ShardSpec parse_shard_spec(const std::string& text,
                           std::uint64_t default_seed = 1);

// Receives batches of raw edges from a shard stream. Batches are sized by
// the source (a few ten thousand edges) to amortize the virtual call; a
// span is only valid for the duration of the call.
class EdgeSink {
 public:
  virtual ~EdgeSink() = default;
  virtual void consume(std::span<const Edge> batch) = 0;
};

// One deterministic input split into `num_shards` streams. Shard s is what
// simulated machine s generates locally; nothing global is ever built.
class ShardedSource {
 public:
  virtual ~ShardedSource() = default;

  virtual const ShardSpec& spec() const = 0;
  virtual VertexId num_vertices() const = 0;
  virtual std::uint32_t num_shards() const = 0;

  // Raw edge emissions across all shards, before symmetrize/dedup. Zero
  // means data-dependent (geometric3d: the count depends on point
  // positions, so it is only known after streaming).
  virtual std::uint64_t raw_edges() const = 0;

  // Streams shard `s` (0 <= s < num_shards()) into `sink`.
  virtual void stream_shard(std::uint32_t s, EdgeSink& sink) const = 0;
};

std::unique_ptr<ShardedSource> make_sharded_source(const ShardSpec& spec,
                                                   std::uint32_t num_shards);

// The global reference: streams the 1-shard split of `spec` into
// Graph::from_edges. This is what "bit-identical to the global generator"
// means for the streaming families — the validator and the determinism
// tests compare shard unions against exactly this graph.
Graph materialize(const ShardSpec& spec);

// Internal helper for implementing stream_shard: buffers edges and flushes
// them to the sink in batches. Flushes the tail on destruction.
class EdgeBatcher {
 public:
  explicit EdgeBatcher(EdgeSink& sink, std::size_t capacity = 1 << 16)
      : sink_(sink) {
    buffer_.reserve(capacity);
    capacity_ = capacity;
  }
  ~EdgeBatcher() { flush(); }
  EdgeBatcher(const EdgeBatcher&) = delete;
  EdgeBatcher& operator=(const EdgeBatcher&) = delete;

  void push(VertexId u, VertexId v) {
    buffer_.push_back({u, v});
    if (buffer_.size() == capacity_) flush();
  }

  void flush() {
    if (!buffer_.empty()) {
      sink_.consume(buffer_);
      buffer_.clear();
    }
  }

 private:
  EdgeSink& sink_;
  std::vector<Edge> buffer_;
  std::size_t capacity_;
};

}  // namespace rsets::shard
