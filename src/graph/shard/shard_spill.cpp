#include "graph/shard/shard_spill.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace rsets::shard {
namespace {

[[noreturn]] void io_fail(const std::string& what) {
  throw Error(ErrorCode::kIoFailure, what + ": " + std::strerror(errno));
}

}  // namespace

ShardSpill::~ShardSpill() { reset(); }

ShardSpill::ShardSpill(ShardSpill&& other) noexcept
    : fd_(other.fd_), data_(other.data_), bytes_(other.bytes_) {
  other.fd_ = -1;
  other.data_ = nullptr;
  other.bytes_ = 0;
}

ShardSpill& ShardSpill::operator=(ShardSpill&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = std::exchange(other.fd_, -1);
    data_ = std::exchange(other.data_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

void ShardSpill::reset() noexcept {
  if (data_ != nullptr) munmap(data_, bytes_);
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  data_ = nullptr;
  bytes_ = 0;
}

ShardSpill ShardSpill::create(const std::string& dir, std::uint64_t bytes) {
  std::string path = dir + "/rsets-spill-XXXXXX";
  std::vector<char> buf(path.begin(), path.end());
  buf.push_back('\0');
  const int fd = mkstemp(buf.data());
  if (fd < 0) io_fail("spill: cannot create temp file in '" + dir + "'");
  // Unlinked immediately: the kernel keeps the inode alive while the fd is
  // open, and a crash cannot leave stale spill files behind.
  unlink(buf.data());

  ShardSpill spill;
  spill.fd_ = fd;
  spill.bytes_ = bytes == 0 ? 1 : bytes;
  if (ftruncate(fd, static_cast<off_t>(spill.bytes_)) != 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    io_fail("spill: cannot size file to " + std::to_string(bytes) + " bytes");
  }
  void* mapped = mmap(nullptr, spill.bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  if (mapped == MAP_FAILED) {
    const int saved = errno;
    close(fd);
    errno = saved;
    io_fail("spill: mmap failed");
  }
  spill.data_ = mapped;
  spill.fd_ = fd;
  return spill;
}

void ShardSpill::resize(std::uint64_t bytes) {
  if (!valid()) {
    throw Error(ErrorCode::kIoFailure, "spill: resize on an empty spill");
  }
  const std::uint64_t new_bytes = bytes == 0 ? 1 : bytes;
  if (munmap(data_, bytes_) != 0) io_fail("spill: munmap failed");
  data_ = nullptr;
  if (ftruncate(fd_, static_cast<off_t>(new_bytes)) != 0) {
    io_fail("spill: cannot resize file to " + std::to_string(bytes) +
            " bytes");
  }
  void* mapped =
      mmap(nullptr, new_bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (mapped == MAP_FAILED) io_fail("spill: remap failed");
  data_ = mapped;
  bytes_ = new_bytes;
}

void ShardSpill::evict(std::uint64_t offset, std::uint64_t length) {
  if (!valid() || length == 0 || offset >= bytes_) return;
  const std::uint64_t page = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  const std::uint64_t lo = (offset / page) * page;
  const std::uint64_t hi = std::min(offset + length, bytes_);
  char* base = static_cast<char*>(data_);
  // Writeback is asynchronous: MADV_DONTNEED on a shared file mapping only
  // drops the pages from this mapping; dirty contents live on in the page
  // cache and reach the file on the kernel's schedule.
  msync(base + lo, hi - lo, MS_ASYNC);
  madvise(base + lo, hi - lo, MADV_DONTNEED);
}

}  // namespace rsets::shard
