#include "graph/shard/shard_csr.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace rsets::shard {
namespace {

// Counts raw symmetric degrees and validates endpoints.
struct CountSink final : EdgeSink {
  std::vector<std::uint64_t>* deg;
  VertexId n;

  void consume(std::span<const Edge> batch) override {
    for (const Edge& e : batch) {
      if (e.u >= n || e.v >= n) {
        throw Error(ErrorCode::kVertexIdOverflow,
                    "sharded stream emitted endpoint " +
                        std::to_string(std::max(e.u, e.v)) + " >= n=" +
                        std::to_string(n));
      }
      if (e.u == e.v) continue;  // self-loops dropped, like Graph::from_edges
      ++(*deg)[e.u];
      ++(*deg)[e.v];
    }
  }
};

// Scatters both arc directions at the per-vertex write cursors. Periodic
// whole-mapping eviction keeps the dirty-page footprint of the scattered
// writes bounded during spilled builds.
struct ScatterSink final : EdgeSink {
  VertexId* adj;
  std::vector<std::uint64_t>* cursor;
  ShardSpill* spill;  // null for in-RAM builds
  std::uint64_t stride;
  std::uint64_t since_evict = 0;

  void consume(std::span<const Edge> batch) override {
    std::vector<std::uint64_t>& cur = *cursor;
    for (const Edge& e : batch) {
      if (e.u == e.v) continue;
      adj[cur[e.u]++] = e.v;
      adj[cur[e.v]++] = e.u;
    }
    if (spill != nullptr) {
      since_evict += batch.size();
      if (since_evict >= stride) {
        spill->evict_all();
        since_evict = 0;
      }
    }
  }
};

}  // namespace

void validate_spill_dir(const std::string& dir) {
  if (dir.empty()) {
    throw Error(ErrorCode::kBadFlag, "--spill-dir: empty path");
  }
  std::string probe = dir + "/rsets-spill-probe-XXXXXX";
  std::vector<char> buf(probe.begin(), probe.end());
  buf.push_back('\0');
  const int fd = mkstemp(buf.data());
  if (fd < 0) {
    throw Error(ErrorCode::kBadFlag,
                "--spill-dir: '" + dir +
                    "' is not a writable directory (cannot create files "
                    "there)");
  }
  close(fd);
  unlink(buf.data());
}

ShardCsr build_shard_csr(const ShardedSource& src,
                         const IngestOptions& options) {
  const VertexId n = src.num_vertices();
  const std::uint32_t shards = src.num_shards();

  ShardCsr csr;
  csr.n_ = n;
  csr.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  if (n == 0) {
    csr.adj_ = csr.adj_ram_.data();
    return csr;
  }

  // Pass A: raw symmetric degree of every vertex (duplicates included).
  {
    std::vector<std::uint64_t> deg(n, 0);
    CountSink count;
    count.deg = &deg;
    count.n = n;
    for (std::uint32_t s = 0; s < shards; ++s) src.stream_shard(s, count);
    for (VertexId v = 0; v < n; ++v) csr.offsets_[v + 1] = deg[v];
  }
  for (VertexId v = 0; v < n; ++v) csr.offsets_[v + 1] += csr.offsets_[v];
  const std::uint64_t raw_words = csr.offsets_[n];

  // Adjacency storage: RAM vector or memory-mapped spill.
  const bool spilled = !options.spill_dir.empty();
  if (spilled) {
    csr.spill_ =
        ShardSpill::create(options.spill_dir, raw_words * sizeof(VertexId));
    csr.adj_ = static_cast<VertexId*>(csr.spill_.data());
  } else {
    csr.adj_ram_.resize(raw_words);
    csr.adj_ = csr.adj_ram_.data();
  }

  // Pass B: scattered symmetrized writes at the running cursors.
  {
    std::vector<std::uint64_t> cursor(csr.offsets_.begin(),
                                      csr.offsets_.end() - 1);
    ScatterSink scatter;
    scatter.adj = csr.adj_;
    scatter.cursor = &cursor;
    scatter.spill = spilled ? &csr.spill_ : nullptr;
    scatter.stride = std::max<std::uint64_t>(options.evict_stride_edges, 1);
    for (std::uint32_t s = 0; s < shards; ++s) src.stream_shard(s, scatter);
  }

  // Pass C: per-vertex sort + dedup, compacting in place. The write head w
  // never passes the read head (deduped words <= raw words at every
  // prefix), so one sweep suffices; offsets are rewritten to the compacted
  // positions as it goes.
  std::uint64_t w = 0;
  std::uint64_t prev_lo = 0;
  std::uint64_t since_evict = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t lo = prev_lo;
    const std::uint64_t hi = csr.offsets_[v + 1];
    prev_lo = hi;
    std::sort(csr.adj_ + lo, csr.adj_ + hi);
    csr.offsets_[v] = w;
    for (std::uint64_t i = lo; i < hi; ++i) {
      if (i == lo || csr.adj_[i] != csr.adj_[w - 1]) {
        csr.adj_[w++] = csr.adj_[i];
      }
    }
    if (spilled) {
      since_evict += hi - lo;
      if (since_evict >= std::max<std::uint64_t>(options.evict_stride_edges,
                                                 1)) {
        // Everything below the write head is final; evict it.
        csr.spill_.evict(0, w * sizeof(VertexId));
        since_evict = 0;
      }
    }
  }
  csr.offsets_[n] = w;
  csr.half_edges_ = w / 2;

  // Shrink to the deduped size and drop build-time pages from RSS.
  if (spilled) {
    csr.spill_.resize(w * sizeof(VertexId));
    csr.adj_ = static_cast<VertexId*>(csr.spill_.data());
    csr.spill_.evict_all();
  } else {
    csr.adj_ram_.resize(w);
    csr.adj_ram_.shrink_to_fit();
    csr.adj_ = csr.adj_ram_.data();
  }
  return csr;
}

}  // namespace rsets::shard
