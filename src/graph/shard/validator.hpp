// Cross-shard validation of a ShardedSource.
//
// Proves (by exhaustive streaming, not by trusting the generator) that a
// sharded input upholds the stream contract before an expensive run spends
// hours on it:
//   * ownership/range: every emitted endpoint is < num_vertices();
//   * edge-count invariants: per-shard counts sum to the same total under
//     every probed shard count, and for counter-based families match the
//     advertised raw_edges();
//   * shard-union invariance: the multiset of raw edges — compared through
//     an order-independent 128-bit accumulator (sum + xor of per-edge
//     mixes) — is identical at 1 shard, at the source's own shard count,
//     and at an unaligned probe count;
//   * sampled cross-check: at small n, the CSR built by the out-of-core
//     ingest pipeline is compared vertex-by-vertex against the global
//     generator (shard::materialize), which must be bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/shard/sharded_source.hpp"

namespace rsets::shard {

struct ShardValidationReport {
  bool ok() const { return failures.empty(); }

  std::uint64_t raw_edges = 0;        // streamed at the source's shard count
  std::uint64_t shard_counts_probed = 0;
  bool cross_checked = false;         // exact small-n CSR comparison ran
  VertexId cross_check_n = 0;
  std::vector<std::string> failures;  // empty == green

  std::string to_string() const;
};

// `cross_check_max_n`: run the exact materialized comparison only when the
// input has at most this many vertices (it builds the global graph).
ShardValidationReport validate_sharded_source(
    const ShardedSource& src, VertexId cross_check_max_n = 1 << 15);

}  // namespace rsets::shard
