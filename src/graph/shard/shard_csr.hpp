// Out-of-core CSR ingest for sharded sources.
//
// build_shard_csr streams every shard of a ShardedSource twice (degree
// count, then scattered adjacency writes) and finishes with an in-place
// per-vertex sort + dedup pass, producing exactly the CSR Graph::from_edges
// would build from the same raw edges: self-loops dropped, symmetrized,
// neighbor lists sorted and duplicate-free. That exactness is what makes a
// sharded DistGraph indistinguishable from a materialized one — identical
// degrees mean identical storage charges, identical rounds, identical
// metrics ledgers.
//
// With a spill directory, the adjacency array lives in a memory-mapped
// ShardSpill instead of RAM, and the build passes evict dirty pages on a
// cadence, so peak RSS during ingest is the offsets array plus the eviction
// window — not the edge list. The round hot path reads the mapping in place
// (no allocation); evicted pages fault back in on demand.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/shard/shard_spill.hpp"
#include "graph/shard/sharded_source.hpp"

namespace rsets::shard {

struct IngestOptions {
  // Directory for the adjacency spill file; empty keeps the CSR in RAM.
  std::string spill_dir;
  // Pass-B/C eviction cadence in processed edges (spilled builds only).
  std::uint64_t evict_stride_edges = std::uint64_t{1} << 24;
};

// Throws rsets::Error(kBadFlag) unless `dir` names an existing writable
// directory (probed by creating a temp file). The CLI calls this when
// parsing --spill-dir, so a bad path is a usage error before any work runs.
void validate_spill_dir(const std::string& dir);

class ShardCsr {
 public:
  ShardCsr() = default;
  ShardCsr(ShardCsr&&) = default;
  ShardCsr& operator=(ShardCsr&&) = default;
  ShardCsr(const ShardCsr&) = delete;
  ShardCsr& operator=(const ShardCsr&) = delete;

  VertexId num_vertices() const { return n_; }
  // Simple undirected edges after dedup, matching Graph::num_edges().
  std::uint64_t num_edges() const { return half_edges_; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_ + offsets_[v], adj_ + offsets_[v + 1]};
  }
  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  bool spilled() const { return spill_.valid(); }

  // Drops the spill mapping's pages from RSS (no-op for in-RAM builds);
  // later reads fault them back in on demand.
  void evict() {
    if (spill_.valid()) spill_.evict_all();
  }

 private:
  friend ShardCsr build_shard_csr(const ShardedSource&, const IngestOptions&);

  VertexId n_ = 0;
  std::uint64_t half_edges_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<VertexId> adj_ram_;       // in-RAM builds
  ShardSpill spill_;                    // spilled builds
  VertexId* adj_ = nullptr;             // points into adj_ram_ or spill_
};

// Streams all shards of `src` into a CSR. Endpoints >= num_vertices() are
// rejected with rsets::Error(kVertexIdOverflow) — the stream contract makes
// them a generator bug, not a recoverable condition.
ShardCsr build_shard_csr(const ShardedSource& src,
                         const IngestOptions& options = {});

}  // namespace rsets::shard
