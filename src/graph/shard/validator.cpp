#include "graph/shard/validator.hpp"

#include <algorithm>

#include "graph/shard/shard_csr.hpp"
#include "util/hash_family.hpp"

namespace rsets::shard {
namespace {

// Order-independent multiset accumulator over raw directed edge emissions.
// Sum and xor of per-edge mixes commute, so any interleaving of shards —
// and any shard count — producing the same multiset lands on the same
// fingerprint; a dropped, duplicated, or altered edge moves it.
struct MultisetSink final : EdgeSink {
  VertexId n = 0;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  std::uint64_t out_of_range = 0;

  void consume(std::span<const Edge> batch) override {
    for (const Edge& e : batch) {
      if (e.u >= n || e.v >= n) {
        ++out_of_range;
        continue;
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(e.u) << 32) | e.v;
      const std::uint64_t h = mix_hash(key, 0x5eedf00dULL);
      ++count;
      sum += h;
      xr ^= h;
    }
  }
};

struct StreamDigest {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  std::uint64_t out_of_range = 0;
  std::vector<std::uint64_t> per_shard_counts;
};

StreamDigest digest_all_shards(const ShardedSource& src) {
  StreamDigest d;
  MultisetSink sink;
  sink.n = src.num_vertices();
  for (std::uint32_t s = 0; s < src.num_shards(); ++s) {
    const std::uint64_t before = sink.count + sink.out_of_range;
    src.stream_shard(s, sink);
    d.per_shard_counts.push_back(sink.count + sink.out_of_range - before);
  }
  d.count = sink.count;
  d.sum = sink.sum;
  d.xr = sink.xr;
  d.out_of_range = sink.out_of_range;
  return d;
}

}  // namespace

std::string ShardValidationReport::to_string() const {
  std::string out = ok() ? "shard validation: OK" : "shard validation: FAIL";
  out += " raw_edges=" + std::to_string(raw_edges);
  out += " shard_counts_probed=" + std::to_string(shard_counts_probed);
  out += " cross_checked=";
  out += cross_checked ? "1" : "0";
  for (const std::string& f : failures) out += "\n  " + f;
  return out;
}

ShardValidationReport validate_sharded_source(const ShardedSource& src,
                                              VertexId cross_check_max_n) {
  ShardValidationReport report;
  const ShardSpec& spec = src.spec();

  // Reference digest at the source's own shard count.
  const StreamDigest own = digest_all_shards(src);
  report.raw_edges = own.count;
  if (own.out_of_range != 0) {
    report.failures.push_back(
        "ownership: " + std::to_string(own.out_of_range) +
        " emitted endpoints out of [0, n)");
  }
  if (const std::uint64_t advertised = src.raw_edges();
      advertised != 0 && advertised != own.count + own.out_of_range) {
    report.failures.push_back(
        "edge count: streamed " +
        std::to_string(own.count + own.out_of_range) + " raw edges, source "
        "advertises " + std::to_string(advertised));
  }

  // Shard-union invariance: 1 shard, and an unaligned probe count that
  // shares no divisor structure with the source's own split.
  const std::uint32_t own_shards = src.num_shards();
  std::vector<std::uint32_t> probes = {1, own_shards == 5 ? 7u : 5u};
  for (const std::uint32_t shards : probes) {
    if (shards == own_shards) continue;
    const std::unique_ptr<ShardedSource> other =
        make_sharded_source(spec, shards);
    const StreamDigest d = digest_all_shards(*other);
    ++report.shard_counts_probed;
    if (d.count != own.count || d.sum != own.sum || d.xr != own.xr ||
        d.out_of_range != own.out_of_range) {
      report.failures.push_back(
          "union invariance: multiset of raw edges differs between " +
          std::to_string(own_shards) + " and " + std::to_string(shards) +
          " shards (" + std::to_string(own.count) + " vs " +
          std::to_string(d.count) + " in-range edges)");
    }
  }
  ++report.shard_counts_probed;  // the source's own count, streamed above

  // Per-shard counts must sum to the total (each edge owned by exactly one
  // shard; a double emission would also move the multiset fingerprint, this
  // localizes it).
  std::uint64_t shard_sum = 0;
  for (const std::uint64_t c : own.per_shard_counts) shard_sum += c;
  if (shard_sum != own.count + own.out_of_range) {
    report.failures.push_back("per-shard counts do not sum to the total");
  }

  // Sampled cross-check against the global generator at small n: the
  // ingest pipeline's CSR must equal shard::materialize bit for bit.
  if (src.num_vertices() <= cross_check_max_n && own.out_of_range == 0) {
    report.cross_checked = true;
    report.cross_check_n = src.num_vertices();
    const Graph global = materialize(spec);
    const ShardCsr csr = build_shard_csr(src);
    if (global.num_vertices() != csr.num_vertices() ||
        global.num_edges() != csr.num_edges()) {
      report.failures.push_back(
          "cross-check: sharded CSR shape (n=" +
          std::to_string(csr.num_vertices()) + ", m=" +
          std::to_string(csr.num_edges()) + ") != global (n=" +
          std::to_string(global.num_vertices()) + ", m=" +
          std::to_string(global.num_edges()) + ")");
    } else {
      for (VertexId v = 0; v < csr.num_vertices(); ++v) {
        const auto a = csr.neighbors(v);
        const auto b = global.neighbors(v);
        if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
          report.failures.push_back(
              "cross-check: adjacency of vertex " + std::to_string(v) +
              " differs from the global generator");
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace rsets::shard
