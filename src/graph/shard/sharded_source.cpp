#include "graph/shard/sharded_source.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/error.hpp"

namespace rsets::shard {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

// A malformed --sharded spec is a usage error like any other bad flag
// value: reject it with the structured taxonomy and the 1-based token
// position, mirroring parse_fault_spec and io.cpp line numbers.
[[noreturn]] void bad_token(std::size_t index, const std::string& token,
                            const std::string& why) {
  throw Error(ErrorCode::kBadFlag,
              "sharded spec token " + std::to_string(index) + " ('" + token +
                  "'): " + why);
}

[[noreturn]] void bad_spec(const std::string& why) {
  throw Error(ErrorCode::kBadFlag, "sharded spec: " + why);
}

std::uint64_t parse_u64(const std::string& s, std::size_t index,
                        const std::string& token) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size()) {
    bad_token(index, token, "'" + s + "' is not a number");
  }
  return v;
}

double parse_fraction(const std::string& s, std::size_t index,
                      const std::string& token) {
  char* end = nullptr;
  const double p = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || p < 0.0 || p > 1.0) {
    bad_token(index, token, "'" + s + "' is not a fraction in [0, 1]");
  }
  return p;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* shard_family_name(ShardFamily family) {
  switch (family) {
    case ShardFamily::kGraph500:
      return "graph500";
    case ShardFamily::kRmat:
      return "rmat";
    case ShardFamily::kGeometric3d:
      return "geometric3d";
  }
  return "?";
}

VertexId ShardSpec::num_vertices() const {
  if (family == ShardFamily::kGeometric3d) {
    return static_cast<VertexId>(n);
  }
  return static_cast<VertexId>(std::uint64_t{1} << scale);
}

std::string ShardSpec::to_string() const {
  std::string out = shard_family_name(family);
  out += ':';
  switch (family) {
    case ShardFamily::kGraph500:
      out += "scale=" + std::to_string(scale) +
             ",edgefactor=" + std::to_string(edgefactor);
      break;
    case ShardFamily::kRmat:
      out += "scale=" + std::to_string(scale) +
             ",edgefactor=" + std::to_string(edgefactor) +
             ",a=" + format_double(a) + ",b=" + format_double(b) +
             ",c=" + format_double(c);
      break;
    case ShardFamily::kGeometric3d:
      out += "n=" + std::to_string(n) + ",radius=" + format_double(radius);
      break;
  }
  out += ",seed=" + std::to_string(seed);
  return out;
}

ShardSpec parse_shard_spec(const std::string& text,
                           std::uint64_t default_seed) {
  if (text.empty()) bad_spec("empty (want FAMILY:key=value,...)");
  const std::size_t colon = text.find(':');
  const std::string family =
      colon == std::string::npos ? text : text.substr(0, colon);

  ShardSpec spec;
  spec.seed = default_seed;
  if (family == "graph500") {
    spec.family = ShardFamily::kGraph500;
    // Graph500 reference corner weights; fixed for this family.
    spec.a = 0.57;
    spec.b = 0.19;
    spec.c = 0.19;
  } else if (family == "rmat") {
    spec.family = ShardFamily::kRmat;
  } else if (family == "geometric3d") {
    spec.family = ShardFamily::kGeometric3d;
    spec.n = 0;
    spec.radius = 0.0;
  } else {
    bad_spec("unknown family '" + family +
             "' (want graph500|rmat|geometric3d)");
  }

  const std::string params =
      colon == std::string::npos ? "" : text.substr(colon + 1);
  const std::vector<std::string> tokens =
      params.empty() ? std::vector<std::string>{} : split(params, ',');
  bool have_n = false;
  bool have_radius = false;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t pos = i + 1;  // 1-based, like io.cpp line numbers
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      bad_token(pos, token, "want key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    const bool kronecker = spec.family != ShardFamily::kGeometric3d;
    if (key == "seed") {
      spec.seed = parse_u64(value, pos, token);
    } else if (kronecker && key == "scale") {
      const std::uint64_t scale = parse_u64(value, pos, token);
      if (scale < 1 || scale > 31) {
        bad_token(pos, token, "scale must be in [1, 31]");
      }
      spec.scale = static_cast<std::uint32_t>(scale);
    } else if (kronecker && key == "edgefactor") {
      const std::uint64_t ef = parse_u64(value, pos, token);
      if (ef < 1 || ef > (std::uint64_t{1} << 20)) {
        bad_token(pos, token, "edgefactor must be in [1, 2^20]");
      }
      spec.edgefactor = static_cast<std::uint32_t>(ef);
    } else if (spec.family == ShardFamily::kRmat &&
               (key == "a" || key == "b" || key == "c")) {
      const double p = parse_fraction(value, pos, token);
      (key == "a" ? spec.a : key == "b" ? spec.b : spec.c) = p;
    } else if (spec.family == ShardFamily::kGeometric3d && key == "n") {
      const std::uint64_t n = parse_u64(value, pos, token);
      if (n < 1 || n > 0xFFFFFFFFull) {
        bad_token(pos, token, "n must be in [1, 2^32)");
      }
      spec.n = n;
      have_n = true;
    } else if (spec.family == ShardFamily::kGeometric3d && key == "radius") {
      char* end = nullptr;
      const double r = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size() || r <= 0.0 ||
          r > 1.0) {
        bad_token(pos, token, "radius must be in (0, 1]");
      }
      spec.radius = r;
      have_radius = true;
    } else {
      bad_token(pos, token,
                "unknown key '" + key + "' for family " + family);
    }
  }

  if (spec.family == ShardFamily::kRmat && spec.a + spec.b + spec.c > 1.0) {
    bad_spec("rmat corner weights a+b+c must be <= 1 (got " +
             format_double(spec.a + spec.b + spec.c) + ")");
  }
  if (spec.family == ShardFamily::kGeometric3d && (!have_n || !have_radius)) {
    bad_spec("geometric3d needs n=N and radius=R");
  }
  return spec;
}

Graph materialize(const ShardSpec& spec) {
  struct Collector final : EdgeSink {
    std::vector<Edge> edges;
    void consume(std::span<const Edge> batch) override {
      edges.insert(edges.end(), batch.begin(), batch.end());
    }
  };
  const std::unique_ptr<ShardedSource> src = make_sharded_source(spec, 1);
  Collector sink;
  if (const std::uint64_t raw = src->raw_edges(); raw != 0) {
    sink.edges.reserve(raw);
  }
  src->stream_shard(0, sink);
  return Graph::from_edges(src->num_vertices(), sink.edges);
}

}  // namespace rsets::shard
