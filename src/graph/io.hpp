// Edge-list I/O.
//
// Format: optional comment lines starting with '#' or '%', then an optional
// header line "n m", then one "u v" pair per line. Vertices are 0-based.
// If no header is present, n is inferred as max id + 1.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace rsets {

Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

void write_edge_list(const Graph& g, std::ostream& out);
bool write_edge_list_file(const Graph& g, const std::string& path);

}  // namespace rsets
