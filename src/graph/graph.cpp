#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsets {

Graph Graph::from_edges(VertexId num_vertices, std::span<const Edge> edges) {
  Graph g;
  std::vector<std::uint64_t> counts(num_vertices + 1, 0);
  // Symmetrize into a scratch arc list, then sort-dedup per vertex.
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    if (e.u >= num_vertices || e.v >= num_vertices) {
      throw std::out_of_range("Graph::from_edges: endpoint out of range");
    }
    arcs.emplace_back(e.u, e.v);
    arcs.emplace_back(e.v, e.u);
  }
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  for (const auto& [u, v] : arcs) counts[u + 1]++;
  for (VertexId v = 0; v < num_vertices; ++v) counts[v + 1] += counts[v];

  g.offsets_ = std::move(counts);
  g.adjacency_.reserve(arcs.size());
  for (const auto& [u, v] : arcs) g.adjacency_.push_back(v);
  return g;
}

Graph Graph::from_sorted_adjacency(
    const std::vector<std::vector<VertexId>>& adjacency) {
  const VertexId n = static_cast<VertexId>(adjacency.size());
  Graph g;
  g.offsets_.assign(n + 1, 0);
  std::uint64_t arcs = 0;
  for (VertexId v = 0; v < n; ++v) {
    arcs += adjacency[v].size();
    g.offsets_[v + 1] = arcs;
  }
  g.adjacency_.reserve(arcs);
  for (VertexId v = 0; v < n; ++v) {
    VertexId prev = 0;
    bool first = true;
    for (VertexId u : adjacency[v]) {
      if (u >= n) {
        throw std::invalid_argument(
            "Graph::from_sorted_adjacency: neighbor out of range");
      }
      if (u == v) {
        throw std::invalid_argument(
            "Graph::from_sorted_adjacency: self-loop");
      }
      if (!first && u <= prev) {
        throw std::invalid_argument(
            "Graph::from_sorted_adjacency: list not strictly increasing");
      }
      prev = u;
      first = false;
      g.adjacency_.push_back(u);
    }
  }
  return g;
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

double Graph::average_degree() const {
  if (num_vertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_vertices());
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : neighbors(u)) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

std::uint64_t Graph::degree_square_sum() const {
  std::uint64_t sum = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const std::uint64_t d = degree(v);
    sum += d * d;
  }
  return sum;
}

Graph GraphBuilder::build() && {
  return Graph::from_edges(num_vertices_, edges_);
}

}  // namespace rsets
