#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rsets {

Graph read_edge_list(std::istream& in) {
  std::vector<Edge> edges;
  VertexId n = 0;
  bool have_header = false;
  std::string line;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (!(ls >> a >> b)) {
      throw std::runtime_error("read_edge_list: malformed line: " + line);
    }
    std::uint64_t extra;
    if (first_data_line && !(ls >> extra)) {
      // Could be a header "n m" or the first edge; heuristic: treat as
      // header only if a third token is absent AND a second line exists —
      // ambiguous, so we use the common convention: a line "n m" where the
      // following lines contain ids < n is a header. We defer: record it
      // and decide at the end.
    }
    first_data_line = false;
    edges.push_back({static_cast<VertexId>(a), static_cast<VertexId>(b)});
  }
  // Header detection: if the first pair's endpoints are never referenced as
  // an edge consistent with n = first.a, prefer header semantics when
  // first.a > every other id and first.b == remaining line count.
  if (edges.size() >= 1) {
    VertexId max_id = 0;
    for (std::size_t i = 1; i < edges.size(); ++i) {
      max_id = std::max({max_id, edges[i].u, edges[i].v});
    }
    const Edge first = edges.front();
    if (edges.size() >= 2 && first.u > max_id &&
        static_cast<std::uint64_t>(first.v) == edges.size() - 1) {
      n = first.u;
      have_header = true;
      edges.erase(edges.begin());
    }
  }
  if (!have_header) {
    for (const Edge& e : edges) {
      n = std::max({n, static_cast<VertexId>(e.u + 1),
                    static_cast<VertexId>(e.v + 1)});
    }
  }
  return Graph::from_edges(n, edges);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

bool write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_edge_list(g, out);
  return static_cast<bool>(out);
}

}  // namespace rsets
