#include "graph/io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"

namespace rsets {
namespace {

// One parsed data line: two unsigned decimal fields, 1-based source line
// number kept for diagnostics.
struct RawPair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::size_t line = 0;
};

std::uint64_t parse_field(const std::string& token, std::size_t line,
                          const std::string& text) {
  // strtoull accepts a leading '-' (wrapping the value) and partial
  // prefixes; both are malformed input here, not vertex ids.
  if (token.empty() || token[0] == '-' || token[0] == '+') {
    throw Error(ErrorCode::kMalformedLine,
                "line " + std::to_string(line) + ": '" + text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    throw Error(ErrorCode::kMalformedLine,
                "line " + std::to_string(line) + ": '" + text + "'");
  }
  if (errno == ERANGE) {
    throw Error(ErrorCode::kVertexIdOverflow,
                "line " + std::to_string(line) + ": value out of range");
  }
  return v;
}

void check_fits_vertex_id(std::uint64_t v, std::size_t line) {
  if (v > std::numeric_limits<VertexId>::max()) {
    throw Error(ErrorCode::kVertexIdOverflow,
                "line " + std::to_string(line) + ": id " + std::to_string(v) +
                    " does not fit a 32-bit vertex id");
  }
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::vector<RawPair> pairs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Tolerate CRLF files: the '\r' is line framing, not data.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#' || line[start] == '%')
      continue;
    std::istringstream ls(line);
    std::string ta, tb, extra;
    if (!(ls >> ta >> tb) || (ls >> extra)) {
      throw Error(ErrorCode::kMalformedLine,
                  "line " + std::to_string(lineno) + ": '" + line + "'");
    }
    RawPair p;
    p.a = parse_field(ta, lineno, line);
    p.b = parse_field(tb, lineno, line);
    p.line = lineno;
    pairs.push_back(p);
  }
  if (in.bad()) {
    throw Error(ErrorCode::kIoFailure, "stream error while reading edge list");
  }

  // Header detection. A first line whose first value is at least every id on
  // the remaining lines is read as a header "n m" when its second value
  // matches the remaining line count — and as a *truncated* file when it
  // promises more edges than follow. Equality is deliberately included: a
  // file declaring n while an edge touches vertex n is far more likely a
  // corrupt header than a heroic coincidence, and the id >= n check below
  // rejects it loudly instead of silently inferring a larger graph.
  // (Single-line inputs are always one edge.)
  bool have_header = false;
  std::uint64_t n64 = 0;
  std::size_t first_edge = 0;
  if (pairs.size() >= 2) {
    std::uint64_t max_rest = 0;
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      max_rest = std::max({max_rest, pairs[i].a, pairs[i].b});
    }
    const std::uint64_t declared_m = pairs[0].b;
    const std::uint64_t remaining = pairs.size() - 1;
    if (pairs[0].a >= max_rest) {
      if (declared_m == remaining) {
        have_header = true;
        n64 = pairs[0].a;
        first_edge = 1;
      } else if (declared_m > remaining) {
        throw Error(ErrorCode::kTruncatedInput,
                    "header declares " + std::to_string(declared_m) +
                        " edges but only " + std::to_string(remaining) +
                        " follow");
      }
    }
  }
  if (have_header) {
    check_fits_vertex_id(n64, pairs[0].line);
  } else {
    for (const RawPair& p : pairs) {
      n64 = std::max({n64, p.a + 1, p.b + 1});
    }
    if (!pairs.empty()) check_fits_vertex_id(n64, pairs.back().line);
  }

  std::vector<Edge> edges;
  edges.reserve(pairs.size() - first_edge);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(pairs.size());
  for (std::size_t i = first_edge; i < pairs.size(); ++i) {
    const RawPair& p = pairs[i];
    check_fits_vertex_id(p.a, p.line);
    check_fits_vertex_id(p.b, p.line);
    if (have_header && (p.a >= n64 || p.b >= n64)) {
      throw Error(ErrorCode::kVertexIdOverflow,
                  "line " + std::to_string(p.line) + ": id " +
                      std::to_string(std::max(p.a, p.b)) +
                      " >= declared n = " + std::to_string(n64));
    }
    if (p.a == p.b) {
      throw Error(ErrorCode::kSelfLoop,
                  "line " + std::to_string(p.line) + ": self-loop at vertex " +
                      std::to_string(p.a));
    }
    const std::uint64_t key =
        (std::min(p.a, p.b) << 32) | std::max(p.a, p.b);
    if (!seen.insert(key).second) {
      throw Error(ErrorCode::kDuplicateEdge,
                  "line " + std::to_string(p.line) + ": edge " +
                      std::to_string(p.a) + " " + std::to_string(p.b) +
                      " listed twice");
    }
    edges.push_back(
        {static_cast<VertexId>(p.a), static_cast<VertexId>(p.b)});
  }
  return Graph::from_edges(static_cast<VertexId>(n64), edges);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error(ErrorCode::kIoFailure,
                "read_edge_list_file: cannot open " + path);
  }
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

bool write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_edge_list(g, out);
  return static_cast<bool>(out);
}

}  // namespace rsets
