#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "util/bits.hpp"

namespace rsets::gen {
namespace {

// Packs an undirected pair into one word for dedup sets.
std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph gnp(VertexId n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("gnp: p out of range");
  GraphBuilder builder(n);
  if (p > 0.0 && n > 1) {
    Rng rng(seed);
    if (p >= 1.0) return complete(n);
    // Geometric skipping over the lexicographic pair order.
    const double log1mp = std::log1p(-p);
    std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t idx = 0;
    while (true) {
      const double r = rng.uniform();
      const double skip = std::floor(std::log1p(-r) / log1mp);
      idx += static_cast<std::uint64_t>(skip) + 1;
      if (idx > total) break;
      // Decode pair index (1-based) to (u, v), u < v.
      const std::uint64_t k = idx - 1;
      const auto u = static_cast<VertexId>(
          n - 2 -
          static_cast<std::uint64_t>(std::floor(
              (std::sqrt(8.0 * static_cast<double>(total - 1 - k) + 1) - 1) /
              2)));
      const std::uint64_t before =
          static_cast<std::uint64_t>(u) * n - static_cast<std::uint64_t>(u) * (u + 1) / 2;
      const auto v = static_cast<VertexId>(u + 1 + (k - before));
      builder.add_edge(u, v);
    }
  }
  return std::move(builder).build();
}

Graph gnm(VertexId n, std::uint64_t m, std::uint64_t seed) {
  const std::uint64_t total =
      n < 2 ? 0 : static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (m > total) throw std::invalid_argument("gnm: m exceeds pair count");
  GraphBuilder builder(n);
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const auto u = static_cast<VertexId>(rng.below(n));
    const auto v = static_cast<VertexId>(rng.below(n));
    if (u == v) continue;
    if (seen.insert(pair_key(u, v)).second) builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

Graph random_regular(VertexId n, std::uint32_t d, std::uint64_t seed) {
  if (static_cast<std::uint64_t>(n) * d % 2 != 0) {
    throw std::invalid_argument("random_regular: n*d must be even");
  }
  if (d >= n) throw std::invalid_argument("random_regular: need d < n");
  // Configuration model: shuffle n*d stubs, pair them up.
  std::vector<VertexId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  Rng rng(seed);
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.below(i)]);
  }
  GraphBuilder builder(n);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    builder.add_edge(stubs[i], stubs[i + 1]);
  }
  return std::move(builder).build();
}

Graph power_law(VertexId n, double beta, double avg_degree,
                std::uint64_t seed) {
  if (beta <= 1.0) throw std::invalid_argument("power_law: beta must be > 1");
  // Chung–Lu weights w_i = c * (i+1)^(-1/(beta-1)).
  std::vector<double> weights(n);
  const double exponent = -1.0 / (beta - 1.0);
  double total = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), exponent);
    total += weights[i];
  }
  const double scale = avg_degree * static_cast<double>(n) / total;
  for (auto& w : weights) w *= scale;
  const double weight_sum = avg_degree * static_cast<double>(n);

  // Efficient Chung–Lu sampling (Miller–Hagberg): for each u, walk v with
  // geometric skips under the bound p_uv <= w_u * w_v / W with weights
  // sorted descending (they are, by construction).
  GraphBuilder builder(n);
  Rng rng(seed);
  for (VertexId u = 0; u + 1 < n; ++u) {
    VertexId v = u + 1;
    double p = std::min(1.0, weights[u] * weights[v] / weight_sum);
    while (v < n && p > 0.0) {
      if (p < 1.0) {
        const double r = rng.uniform();
        const double skip = std::floor(std::log1p(-r) / std::log1p(-p));
        v += static_cast<VertexId>(std::min(skip, 1e9));
      }
      if (v >= n) break;
      const double q = std::min(1.0, weights[u] * weights[v] / weight_sum);
      if (rng.uniform() < q / p) builder.add_edge(u, v);
      p = q;
      ++v;
    }
  }
  return std::move(builder).build();
}

Graph barabasi_albert(VertexId n, std::uint32_t attach, std::uint64_t seed) {
  if (attach == 0 || n <= attach) {
    throw std::invalid_argument("barabasi_albert: need 0 < attach < n");
  }
  Rng rng(seed);
  GraphBuilder builder(n);
  // Repeated-endpoint list gives preferential attachment.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * attach * 2);
  // Seed clique on attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = attach + 1; v < n; ++v) {
    std::unordered_set<VertexId> targets;
    while (targets.size() < attach) {
      targets.insert(endpoints[rng.below(endpoints.size())]);
    }
    for (VertexId t : targets) {
      builder.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return std::move(builder).build();
}

Graph rmat(VertexId n, std::uint64_t m, double a, double b, double c,
           std::uint64_t seed) {
  const double d = 1.0 - a - b - c;
  if (a < 0 || b < 0 || c < 0 || d < 0) {
    throw std::invalid_argument("rmat: probabilities must sum to <= 1");
  }
  const auto size = static_cast<VertexId>(next_pow2(n));
  const int levels = ceil_log2(size);
  Rng rng(seed);
  GraphBuilder builder(n);
  std::uint64_t made = 0;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = m * 20 + 1000;
  while (made < m && attempts < max_attempts) {
    ++attempts;
    VertexId u = 0;
    VertexId v = 0;
    for (int lvl = 0; lvl < levels; ++lvl) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: nothing to add
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v || u >= n || v >= n) continue;
    builder.add_edge(u, v);
    ++made;
  }
  return std::move(builder).build();
}

Graph grid(std::uint32_t rows, std::uint32_t cols) {
  const auto n = static_cast<VertexId>(rows * cols);
  GraphBuilder builder(n);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t col = 0; col < cols; ++col) {
      const VertexId v = r * cols + col;
      if (col + 1 < cols) builder.add_edge(v, v + 1);
      if (r + 1 < rows) builder.add_edge(v, v + cols);
    }
  }
  return std::move(builder).build();
}

Graph torus(std::uint32_t rows, std::uint32_t cols) {
  const auto n = static_cast<VertexId>(rows * cols);
  GraphBuilder builder(n);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t col = 0; col < cols; ++col) {
      const VertexId v = r * cols + col;
      builder.add_edge(v, r * cols + (col + 1) % cols);
      builder.add_edge(v, ((r + 1) % rows) * cols + col);
    }
  }
  return std::move(builder).build();
}

Graph path(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return std::move(builder).build();
}

Graph cycle(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  if (n >= 3) builder.add_edge(n - 1, 0);
  return std::move(builder).build();
}

Graph complete(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

Graph complete_bipartite(VertexId a, VertexId b) {
  GraphBuilder builder(a + b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) builder.add_edge(u, a + v);
  }
  return std::move(builder).build();
}

Graph random_tree(VertexId n, std::uint64_t seed) {
  GraphBuilder builder(n);
  if (n == 2) {
    builder.add_edge(0, 1);
    return std::move(builder).build();
  }
  if (n < 2) return std::move(builder).build();
  // Decode a random Pruefer sequence.
  Rng rng(seed);
  std::vector<VertexId> pruefer(n - 2);
  for (auto& x : pruefer) x = static_cast<VertexId>(rng.below(n));
  std::vector<std::uint32_t> degree(n, 1);
  for (VertexId x : pruefer) degree[x]++;
  // Min-leaf extraction via a simple pointer scan (O(n log n)-ish with set).
  std::vector<bool> used(n, false);
  VertexId ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  VertexId leaf = ptr;
  for (VertexId x : pruefer) {
    builder.add_edge(leaf, x);
    if (--degree[x] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (ptr < n && degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  builder.add_edge(leaf, n - 1);
  (void)used;
  return std::move(builder).build();
}

Graph star(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) builder.add_edge(0, v);
  return std::move(builder).build();
}

Graph caterpillar(VertexId spine, std::uint32_t legs) {
  const VertexId n = spine + spine * legs;
  GraphBuilder builder(n);
  for (VertexId s = 0; s + 1 < spine; ++s) builder.add_edge(s, s + 1);
  for (VertexId s = 0; s < spine; ++s) {
    for (std::uint32_t l = 0; l < legs; ++l) {
      builder.add_edge(s, spine + s * legs + l);
    }
  }
  return std::move(builder).build();
}

Graph clique_blowup(VertexId count, VertexId size) {
  GraphBuilder builder(count * size);
  for (VertexId c = 0; c < count; ++c) {
    const VertexId base = c * size;
    for (VertexId u = 0; u < size; ++u) {
      for (VertexId v = u + 1; v < size; ++v) {
        builder.add_edge(base + u, base + v);
      }
    }
  }
  return std::move(builder).build();
}

Graph hospital_contacts(std::uint32_t wards, std::uint32_t ward_size,
                        std::uint32_t staff, std::uint32_t visits,
                        std::uint64_t seed) {
  const VertexId patients = wards * ward_size;
  const VertexId n = patients + staff;
  GraphBuilder builder(n);
  // Patients in a ward are mutually in contact.
  for (std::uint32_t w = 0; w < wards; ++w) {
    const VertexId base = w * ward_size;
    for (VertexId u = 0; u < ward_size; ++u) {
      for (VertexId v = u + 1; v < ward_size; ++v) {
        builder.add_edge(base + u, base + v);
      }
    }
  }
  // Staff visit random patients across wards.
  Rng rng(seed);
  for (std::uint32_t s = 0; s < staff; ++s) {
    const VertexId sv = patients + s;
    for (std::uint32_t k = 0; k < visits; ++k) {
      builder.add_edge(sv, static_cast<VertexId>(rng.below(patients)));
    }
  }
  return std::move(builder).build();
}

Graph watts_strogatz(VertexId n, std::uint32_t k, double p,
                     std::uint64_t seed) {
  if (k == 0 || 2 * k >= n) {
    throw std::invalid_argument("watts_strogatz: need 0 < 2k < n");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("watts_strogatz: p out of range");
  }
  Rng rng(seed);
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      VertexId target = static_cast<VertexId>((v + j) % n);
      if (rng.flip(p)) {
        // Rewire to a uniform non-self target (duplicates are deduped by
        // the builder, slightly lowering the realized edge count).
        target = static_cast<VertexId>(rng.below(n));
        if (target == v) target = static_cast<VertexId>((v + 1) % n);
      }
      builder.add_edge(v, target);
    }
  }
  return std::move(builder).build();
}

Graph hypercube(std::uint32_t dims) {
  if (dims > 24) throw std::invalid_argument("hypercube: dims too large");
  const auto n = static_cast<VertexId>(std::uint64_t{1} << dims);
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t b = 0; b < dims; ++b) {
      const VertexId u = v ^ (VertexId{1} << b);
      if (v < u) builder.add_edge(v, u);
    }
  }
  return std::move(builder).build();
}

Graph binary_tree(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) builder.add_edge(v, (v - 1) / 2);
  return std::move(builder).build();
}

Graph lollipop(VertexId clique, VertexId tail) {
  GraphBuilder builder(clique + tail);
  for (VertexId u = 0; u < clique; ++u) {
    for (VertexId v = u + 1; v < clique; ++v) builder.add_edge(u, v);
  }
  if (clique > 0 && tail > 0) builder.add_edge(clique - 1, clique);
  for (VertexId v = clique; v + 1 < clique + tail; ++v) {
    builder.add_edge(v, v + 1);
  }
  return std::move(builder).build();
}

std::vector<NamedGraph> standard_suite(VertexId n, std::uint64_t seed) {
  std::vector<NamedGraph> suite;
  const auto side = static_cast<std::uint32_t>(std::sqrt(n));
  suite.push_back({"gnp_sparse", gnp(n, 4.0 / n, seed)});
  suite.push_back({"gnp_logdeg",
                   gnp(n, 2.0 * std::log(std::max<double>(n, 2)) / n, seed)});
  suite.push_back({"regular16", random_regular(n, 16, seed)});
  suite.push_back({"power_law", power_law(n, 2.5, 8.0, seed)});
  suite.push_back({"ba4", barabasi_albert(n, 4, seed)});
  suite.push_back({"grid", grid(side, side)});
  suite.push_back({"tree", random_tree(n, seed)});
  suite.push_back({"caterpillar", caterpillar(n / 9 + 1, 8)});
  suite.push_back({"small_world", watts_strogatz(n, 4, 0.1, seed)});
  return suite;
}

}  // namespace rsets::gen
