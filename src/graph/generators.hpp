// Synthetic graph generators spanning the degree regimes the ruling-set
// analysis cares about: bounded degree, polylog degree, polynomial degree,
// and heavy-tailed (power-law) degree distributions.
//
// All generators are deterministic functions of their parameters plus an
// explicit seed, so experiments are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rsets::gen {

// Erdos–Renyi G(n, p): each pair independently with probability p.
// Uses geometric skipping, O(n + m) time.
Graph gnp(VertexId n, double p, std::uint64_t seed);

// G(n, m): exactly m distinct uniform edges.
Graph gnm(VertexId n, std::uint64_t m, std::uint64_t seed);

// Random d-regular-ish multigraph via the configuration model; self-loops
// and duplicate edges are dropped, so degrees are <= d (typically =).
Graph random_regular(VertexId n, std::uint32_t d, std::uint64_t seed);

// Chung–Lu power-law: expected degree of vertex i proportional to
// (i+1)^(-1/(beta-1)), scaled to the target average degree.
Graph power_law(VertexId n, double beta, double avg_degree,
                std::uint64_t seed);

// Barabasi–Albert preferential attachment: each new vertex attaches to
// `attach` existing vertices.
Graph barabasi_albert(VertexId n, std::uint32_t attach, std::uint64_t seed);

// R-MAT recursive matrix generator (Chakrabarti–Zhan–Faloutsos) with the
// usual (a, b, c) corner probabilities; n rounds up to a power of two.
Graph rmat(VertexId n, std::uint64_t m, double a, double b, double c,
           std::uint64_t seed);

// 2-D grid, rows x cols, 4-neighbor.
Graph grid(std::uint32_t rows, std::uint32_t cols);

// 2-D torus (grid with wraparound), 4-regular.
Graph torus(std::uint32_t rows, std::uint32_t cols);

// Path and cycle on n vertices.
Graph path(VertexId n);
Graph cycle(VertexId n);

// Complete graph K_n and complete bipartite K_{a,b}.
Graph complete(VertexId n);
Graph complete_bipartite(VertexId a, VertexId b);

// Uniform random labelled tree (Pruefer sequence decode).
Graph random_tree(VertexId n, std::uint64_t seed);

// Star with n-1 leaves (vertex 0 is the hub).
Graph star(VertexId n);

// Caterpillar: a spine path of `spine` vertices, each with `legs` leaves.
Graph caterpillar(VertexId spine, std::uint32_t legs);

// Disjoint union of `count` cliques of size `size` (independent-set torture
// test: MIS must pick exactly one vertex per clique).
Graph clique_blowup(VertexId count, VertexId size);

// Hospital-style contact network used by the examples: `wards` cliques of
// `ward_size` patients, plus `staff` high-degree vertices each visiting
// `visits` uniformly random patients (a synthetic stand-in for the
// healthcare-worker mobility data in the authors' applied work).
Graph hospital_contacts(std::uint32_t wards, std::uint32_t ward_size,
                        std::uint32_t staff, std::uint32_t visits,
                        std::uint64_t seed);

// Watts–Strogatz small world: ring lattice with k nearest neighbors per
// side, each edge rewired with probability p.
Graph watts_strogatz(VertexId n, std::uint32_t k, double p,
                     std::uint64_t seed);

// d-dimensional hypercube (n = 2^dims vertices, degree dims).
Graph hypercube(std::uint32_t dims);

// Complete binary tree on n vertices (heap indexing).
Graph binary_tree(VertexId n);

// Lollipop: K_{clique} glued to a path of `tail` vertices — a classic
// bad case for locality (huge degree next to huge diameter).
Graph lollipop(VertexId clique, VertexId tail);

// A named family registry so tests and benches can sweep generators.
struct NamedGraph {
  std::string name;
  Graph graph;
};

// Representative instances at roughly `n` vertices across all families.
std::vector<NamedGraph> standard_suite(VertexId n, std::uint64_t seed);

}  // namespace rsets::gen
