#include "graph/ops.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace rsets {

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const VertexId> vertices) {
  InducedSubgraph out;
  out.to_original.assign(vertices.begin(), vertices.end());
  std::sort(out.to_original.begin(), out.to_original.end());
  out.to_original.erase(
      std::unique(out.to_original.begin(), out.to_original.end()),
      out.to_original.end());

  constexpr VertexId kAbsent = std::numeric_limits<VertexId>::max();
  std::vector<VertexId> relabel(g.num_vertices(), kAbsent);
  for (std::size_t i = 0; i < out.to_original.size(); ++i) {
    relabel[out.to_original[i]] = static_cast<VertexId>(i);
  }

  std::vector<Edge> edges;
  for (VertexId s : out.to_original) {
    for (VertexId t : g.neighbors(s)) {
      if (s < t && relabel[t] != kAbsent) {
        edges.push_back({relabel[s], relabel[t]});
      }
    }
  }
  out.graph = Graph::from_edges(
      static_cast<VertexId>(out.to_original.size()), edges);
  return out;
}

Graph power_graph(const Graph& g, int k) {
  if (k < 1) throw std::invalid_argument("power_graph: k must be >= 1");
  const VertexId n = g.num_vertices();
  std::vector<Edge> edges;
  // BFS to depth k from every vertex.
  std::vector<std::uint32_t> dist(n, std::numeric_limits<std::uint32_t>::max());
  std::vector<VertexId> touched;
  std::deque<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    dist[s] = 0;
    touched.push_back(s);
    queue.push_back(s);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      if (dist[u] == static_cast<std::uint32_t>(k)) continue;
      for (VertexId v : g.neighbors(u)) {
        if (dist[v] != std::numeric_limits<std::uint32_t>::max()) continue;
        dist[v] = dist[u] + 1;
        touched.push_back(v);
        queue.push_back(v);
        if (s < v) edges.push_back({s, v});
      }
    }
    for (VertexId t : touched) {
      dist[t] = std::numeric_limits<std::uint32_t>::max();
    }
    touched.clear();
  }
  return Graph::from_edges(n, edges);
}

std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                         std::span<const VertexId> sources) {
  std::vector<std::uint32_t> dist(g.num_vertices(),
                                  std::numeric_limits<std::uint32_t>::max());
  std::deque<VertexId> queue;
  for (VertexId s : sources) {
    if (dist[s] != 0) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.neighbors(u)) {
      if (dist[v] == std::numeric_limits<std::uint32_t>::max()) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  constexpr std::uint32_t kUnseen = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> comp(n, kUnseen);
  std::uint32_t next = 0;
  std::deque<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    if (comp[s] != kUnseen) continue;
    comp[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId v : g.neighbors(u)) {
        if (comp[v] == kUnseen) {
          comp[v] = next;
          queue.push_back(v);
        }
      }
    }
    ++next;
  }
  return comp;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const VertexId n = g.num_vertices();
  if (n == 0) return stats;
  stats.min = std::numeric_limits<std::uint32_t>::max();
  std::uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t d = g.degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    total += d;
    if (d == 0) ++stats.isolated;
  }
  stats.mean = static_cast<double>(total) / static_cast<double>(n);
  return stats;
}

std::uint32_t approx_diameter(const Graph& g) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0;
  // Start from a vertex of the largest component (first vertex of the most
  // frequent component label).
  const auto comp = connected_components(g);
  std::vector<std::uint32_t> counts;
  for (std::uint32_t c : comp) {
    if (c >= counts.size()) counts.resize(c + 1, 0);
    ++counts[c];
  }
  const auto biggest = static_cast<std::uint32_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  VertexId start = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (comp[v] == biggest) {
      start = v;
      break;
    }
  }
  auto farthest = [&](VertexId s) -> std::pair<VertexId, std::uint32_t> {
    const std::vector<VertexId> src = {s};
    const auto dist = bfs_distances(g, src);
    VertexId best = s;
    std::uint32_t best_d = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] != std::numeric_limits<std::uint32_t>::max() &&
          dist[v] > best_d) {
        best_d = dist[v];
        best = v;
      }
    }
    return {best, best_d};
  };
  const auto [far1, d1] = farthest(start);
  const auto [far2, d2] = farthest(far1);
  (void)far2;
  return std::max(d1, d2);
}

std::uint32_t degeneracy(const Graph& g) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0;
  // Matula–Beck bucket peeling.
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::uint32_t degeneracy_val = 0;
  std::uint32_t cursor = 0;
  for (VertexId iter = 0; iter < n; ++iter) {
    while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
    // Entries may be stale (vertex moved to a lower bucket); skip them.
    while (cursor <= max_deg) {
      if (buckets[cursor].empty()) {
        ++cursor;
        continue;
      }
      const VertexId v = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (removed[v] || deg[v] != cursor) continue;
      removed[v] = true;
      degeneracy_val = std::max(degeneracy_val, cursor);
      for (VertexId u : g.neighbors(v)) {
        if (!removed[u] && deg[u] > 0) {
          --deg[u];
          buckets[deg[u]].push_back(u);
          if (deg[u] < cursor) cursor = deg[u];
        }
      }
      break;
    }
  }
  return degeneracy_val;
}

}  // namespace rsets
