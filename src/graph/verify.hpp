// Independent verification of ruling-set outputs.
//
// Every algorithm result in tests, benches, and examples is passed through
// these checkers; nothing is trusted on the algorithm's say-so. The checkers
// use plain BFS and adjacency scans, sharing no code with the algorithms.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace rsets {

// True iff no two vertices of `set` are adjacent in g.
bool is_independent_set(const Graph& g, std::span<const VertexId> set);

// Max over vertices of the hop distance to the nearest member of `set`;
// UINT32_MAX if some vertex is unreachable from every member (e.g. empty
// set on a non-empty graph).
std::uint32_t domination_radius(const Graph& g,
                                std::span<const VertexId> set);

// True iff `set` is independent and every vertex is within `beta` hops.
bool is_beta_ruling_set(const Graph& g, std::span<const VertexId> set,
                        std::uint32_t beta);

// True iff `set` is an MIS: independent and every vertex is in the set or
// adjacent to it AND no vertex can be added (equivalent for MIS).
bool is_maximal_independent_set(const Graph& g,
                                std::span<const VertexId> set);

// The literature's general notion: an (alpha, beta)-ruling set has members
// pairwise at distance >= alpha and every vertex within beta hops of one.
// (alpha = 2 recovers the plain beta-ruling set.)
bool is_alpha_beta_ruling_set(const Graph& g, std::span<const VertexId> set,
                              std::uint32_t alpha, std::uint32_t beta);

// Minimum pairwise distance among set members (UINT32_MAX for |set| < 2 or
// members in different components).
std::uint32_t min_pairwise_distance(const Graph& g,
                                    std::span<const VertexId> set);

struct RulingSetReport {
  bool independent = false;
  std::uint32_t radius = 0;       // measured domination radius
  std::uint64_t size = 0;         // |set|
  bool valid = false;             // independent && radius <= beta
  std::uint32_t beta_claimed = 0;
  std::string to_string() const;
};

RulingSetReport check_ruling_set(const Graph& g,
                                 std::span<const VertexId> set,
                                 std::uint32_t beta);

// A machine-checkable certificate of ruling-set validity, produced in-model
// by mpc::certify_ruling_set (edge-exchange independence check + β-hop
// domination BFS, O(β) extra MPC rounds). The certificate commits to exact
// counts, not just a verdict, so an independent sequential recomputation
// (cross_validate_certificate) can confirm every field.
struct RulingSetCertificate {
  std::uint32_t beta = 0;
  std::uint64_t set_size = 0;       // claimed members, before screening
  std::uint64_t malformed = 0;      // out-of-range ids + duplicate entries
  std::uint64_t conflict_edges = 0; // edges with both endpoints in the set
  std::uint64_t uncovered = 0;      // vertices farther than beta from the set
  // Largest BFS level (1..beta) that covered a new vertex; 0 when the set
  // already covers everything at distance 0 (or covers nothing).
  std::uint32_t radius = 0;
  // level_counts[d] = vertices first covered at distance d (level 0 = valid
  // members); size beta + 1.
  std::vector<std::uint64_t> level_counts;
  // MPC rounds the certification pass spent (informational; not part of
  // cross-validation).
  std::uint64_t rounds = 0;

  bool valid() const {
    return malformed == 0 && conflict_edges == 0 && uncovered == 0;
  }
  std::string to_string() const;
};

// Recomputes every certificate field from scratch with sequential BFS and
// adjacency scans (sharing no code with the MPC pass) and compares. True iff
// the certificate describes exactly this graph and set — a forged or stale
// certificate fails even when its verdict happens to be right.
bool cross_validate_certificate(const Graph& g, std::span<const VertexId> set,
                                const RulingSetCertificate& cert);

}  // namespace rsets
