// Whole-graph operations: induced subgraphs, graph powers, BFS,
// connected components, and degree statistics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace rsets {

// Vertex subset represented as a sorted id list plus the subgraph with
// *relabelled* ids [0, |S|); `to_original[i]` maps back.
struct InducedSubgraph {
  Graph graph;
  std::vector<VertexId> to_original;
};

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const VertexId> vertices);

// G^k: u~v iff 1 <= dist(u, v) <= k. Materialized explicitly; quadratic
// blowup is the caller's problem (used for beta-ruling-set oracles in tests).
Graph power_graph(const Graph& g, int k);

// BFS distances from multiple sources; unreachable = UINT32_MAX.
std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                         std::span<const VertexId> sources);

// Component id per vertex (ids are 0-based, dense, in first-seen order).
std::vector<std::uint32_t> connected_components(const Graph& g);

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
  std::uint64_t isolated = 0;
};
DegreeStats degree_stats(const Graph& g);

// Lower bound on the diameter of the largest component via a double BFS
// sweep (exact on trees; within a factor 2 in general). Returns 0 for
// edgeless graphs.
std::uint32_t approx_diameter(const Graph& g);

// Arboricity upper bound via degeneracy (core number) — linear-time
// peeling. Degeneracy >= arboricity - 1 and is the standard proxy.
std::uint32_t degeneracy(const Graph& g);

}  // namespace rsets
