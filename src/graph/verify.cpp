#include "graph/verify.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "graph/ops.hpp"

namespace rsets {

bool is_independent_set(const Graph& g, std::span<const VertexId> set) {
  std::vector<bool> in_set(g.num_vertices(), false);
  for (VertexId v : set) {
    if (v >= g.num_vertices()) return false;
    if (in_set[v]) return false;  // duplicate entries are rejected too
    in_set[v] = true;
  }
  for (VertexId v : set) {
    for (VertexId u : g.neighbors(v)) {
      if (in_set[u]) return false;
    }
  }
  return true;
}

std::uint32_t domination_radius(const Graph& g,
                                std::span<const VertexId> set) {
  if (g.num_vertices() == 0) return 0;
  if (set.empty()) return std::numeric_limits<std::uint32_t>::max();
  const auto dist = bfs_distances(g, set);
  std::uint32_t radius = 0;
  for (std::uint32_t d : dist) {
    radius = std::max(radius, d);  // unreachable propagates UINT32_MAX
  }
  return radius;
}

bool is_beta_ruling_set(const Graph& g, std::span<const VertexId> set,
                        std::uint32_t beta) {
  if (!is_independent_set(g, set)) return false;
  if (g.num_vertices() == 0) return true;
  return domination_radius(g, set) <= beta;
}

bool is_maximal_independent_set(const Graph& g,
                                std::span<const VertexId> set) {
  return is_beta_ruling_set(g, set, 1);
}

std::uint32_t min_pairwise_distance(const Graph& g,
                                    std::span<const VertexId> set) {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  if (set.size() < 2) return kInf;
  // BFS from each member, truncated once another member is met; overall
  // O(|set| * (n + m)) — an oracle, not a fast path.
  std::uint32_t best = kInf;
  std::vector<bool> in_set(g.num_vertices(), false);
  for (VertexId v : set) in_set[v] = true;
  std::vector<std::uint32_t> dist(g.num_vertices(), kInf);
  std::vector<VertexId> touched;
  for (VertexId s : set) {
    std::deque<VertexId> queue;
    dist[s] = 0;
    touched.push_back(s);
    queue.push_back(s);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      if (dist[u] >= best) continue;  // cannot improve
      for (VertexId w : g.neighbors(u)) {
        if (dist[w] != kInf) continue;
        dist[w] = dist[u] + 1;
        touched.push_back(w);
        if (in_set[w] && w != s) best = std::min(best, dist[w]);
        queue.push_back(w);
      }
    }
    for (VertexId t : touched) dist[t] = kInf;
    touched.clear();
  }
  return best;
}

bool is_alpha_beta_ruling_set(const Graph& g, std::span<const VertexId> set,
                              std::uint32_t alpha, std::uint32_t beta) {
  // Reject duplicates/out-of-range via the independence helper's checks.
  std::vector<bool> seen(g.num_vertices(), false);
  for (VertexId v : set) {
    if (v >= g.num_vertices() || seen[v]) return false;
    seen[v] = true;
  }
  if (min_pairwise_distance(g, set) < alpha) return false;
  if (g.num_vertices() == 0) return true;
  return domination_radius(g, set) <= beta;
}

std::string RulingSetReport::to_string() const {
  std::ostringstream os;
  os << (valid ? "VALID" : "INVALID") << " beta<=" << beta_claimed
     << " (independent=" << (independent ? "yes" : "no")
     << ", radius=" << radius << ", size=" << size << ")";
  return os.str();
}

RulingSetReport check_ruling_set(const Graph& g,
                                 std::span<const VertexId> set,
                                 std::uint32_t beta) {
  RulingSetReport report;
  report.beta_claimed = beta;
  report.size = set.size();
  report.independent = is_independent_set(g, set);
  report.radius = g.num_vertices() == 0 ? 0 : domination_radius(g, set);
  report.valid = report.independent && report.radius <= beta;
  return report;
}

}  // namespace rsets
