#include "graph/verify.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "graph/ops.hpp"

namespace rsets {

bool is_independent_set(const Graph& g, std::span<const VertexId> set) {
  std::vector<bool> in_set(g.num_vertices(), false);
  for (VertexId v : set) {
    if (v >= g.num_vertices()) return false;
    if (in_set[v]) return false;  // duplicate entries are rejected too
    in_set[v] = true;
  }
  for (VertexId v : set) {
    for (VertexId u : g.neighbors(v)) {
      if (in_set[u]) return false;
    }
  }
  return true;
}

std::uint32_t domination_radius(const Graph& g,
                                std::span<const VertexId> set) {
  if (g.num_vertices() == 0) return 0;
  if (set.empty()) return std::numeric_limits<std::uint32_t>::max();
  const auto dist = bfs_distances(g, set);
  std::uint32_t radius = 0;
  for (std::uint32_t d : dist) {
    radius = std::max(radius, d);  // unreachable propagates UINT32_MAX
  }
  return radius;
}

bool is_beta_ruling_set(const Graph& g, std::span<const VertexId> set,
                        std::uint32_t beta) {
  if (!is_independent_set(g, set)) return false;
  if (g.num_vertices() == 0) return true;
  return domination_radius(g, set) <= beta;
}

bool is_maximal_independent_set(const Graph& g,
                                std::span<const VertexId> set) {
  return is_beta_ruling_set(g, set, 1);
}

std::uint32_t min_pairwise_distance(const Graph& g,
                                    std::span<const VertexId> set) {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  if (set.size() < 2) return kInf;
  // BFS from each member, truncated once another member is met; overall
  // O(|set| * (n + m)) — an oracle, not a fast path.
  std::uint32_t best = kInf;
  std::vector<bool> in_set(g.num_vertices(), false);
  for (VertexId v : set) in_set[v] = true;
  std::vector<std::uint32_t> dist(g.num_vertices(), kInf);
  std::vector<VertexId> touched;
  for (VertexId s : set) {
    std::deque<VertexId> queue;
    dist[s] = 0;
    touched.push_back(s);
    queue.push_back(s);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      if (dist[u] >= best) continue;  // cannot improve
      for (VertexId w : g.neighbors(u)) {
        if (dist[w] != kInf) continue;
        dist[w] = dist[u] + 1;
        touched.push_back(w);
        if (in_set[w] && w != s) best = std::min(best, dist[w]);
        queue.push_back(w);
      }
    }
    for (VertexId t : touched) dist[t] = kInf;
    touched.clear();
  }
  return best;
}

bool is_alpha_beta_ruling_set(const Graph& g, std::span<const VertexId> set,
                              std::uint32_t alpha, std::uint32_t beta) {
  // Reject duplicates/out-of-range via the independence helper's checks.
  std::vector<bool> seen(g.num_vertices(), false);
  for (VertexId v : set) {
    if (v >= g.num_vertices() || seen[v]) return false;
    seen[v] = true;
  }
  if (min_pairwise_distance(g, set) < alpha) return false;
  if (g.num_vertices() == 0) return true;
  return domination_radius(g, set) <= beta;
}

std::string RulingSetReport::to_string() const {
  std::ostringstream os;
  os << (valid ? "VALID" : "INVALID") << " beta<=" << beta_claimed
     << " (independent=" << (independent ? "yes" : "no")
     << ", radius=" << radius << ", size=" << size << ")";
  return os.str();
}

RulingSetReport check_ruling_set(const Graph& g,
                                 std::span<const VertexId> set,
                                 std::uint32_t beta) {
  RulingSetReport report;
  report.beta_claimed = beta;
  report.size = set.size();
  report.independent = is_independent_set(g, set);
  report.radius = g.num_vertices() == 0 ? 0 : domination_radius(g, set);
  report.valid = report.independent && report.radius <= beta;
  return report;
}

std::string RulingSetCertificate::to_string() const {
  std::ostringstream os;
  os << (valid() ? "CERTIFIED" : "REJECTED") << " beta<=" << beta
     << " (size=" << set_size << ", malformed=" << malformed
     << ", conflict_edges=" << conflict_edges << ", uncovered=" << uncovered
     << ", radius=" << radius << ", rounds=" << rounds << ", levels=[";
  for (std::size_t d = 0; d < level_counts.size(); ++d) {
    if (d != 0) os << ',';
    os << level_counts[d];
  }
  os << "])";
  return os.str();
}

bool cross_validate_certificate(const Graph& g, std::span<const VertexId> set,
                                const RulingSetCertificate& cert) {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  const VertexId n = g.num_vertices();
  if (cert.set_size != set.size()) return false;
  if (cert.level_counts.size() != static_cast<std::size_t>(cert.beta) + 1) {
    return false;
  }

  // Screen the claimed set the same way the in-model pass does: ids must be
  // in range, entries unique; survivors are the valid members.
  std::uint64_t malformed = 0;
  std::vector<VertexId> valid;
  std::vector<bool> member(n, false);
  for (const VertexId v : set) {
    if (v >= n || member[v]) {
      ++malformed;
      continue;
    }
    member[v] = true;
    valid.push_back(v);
  }
  if (malformed != cert.malformed) return false;

  std::uint64_t conflicts = 0;
  for (const VertexId v : valid) {
    for (const VertexId u : g.neighbors(v)) {
      if (member[u] && v < u) ++conflicts;
    }
  }
  if (conflicts != cert.conflict_edges) return false;

  // Plain multi-source BFS, truncated at beta hops.
  std::vector<std::uint32_t> dist(n, kInf);
  std::deque<VertexId> queue;
  for (const VertexId v : valid) {
    dist[v] = 0;
    queue.push_back(v);
  }
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    if (dist[u] >= cert.beta) continue;
    for (const VertexId w : g.neighbors(u)) {
      if (dist[w] != kInf) continue;
      dist[w] = dist[u] + 1;
      queue.push_back(w);
    }
  }
  std::vector<std::uint64_t> level_counts(cert.beta + 1, 0);
  std::uint64_t uncovered = 0;
  std::uint32_t radius = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (dist[v] == kInf) {
      ++uncovered;
      continue;
    }
    ++level_counts[dist[v]];
    if (dist[v] >= 1) radius = std::max(radius, dist[v]);
  }
  return uncovered == cert.uncovered && radius == cert.radius &&
         level_counts == cert.level_counts;
}

}  // namespace rsets
