// Immutable simple undirected graphs in compressed sparse row form.
//
// Vertices are dense ids [0, n). Graphs are simple: no self-loops, no
// parallel edges; the builder deduplicates and symmetrizes. Neighbor lists
// are sorted, so adjacency tests are O(log d) and set operations are merges.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace rsets {

using VertexId = std::uint32_t;

struct Edge {
  VertexId u;
  VertexId v;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;

  // Builds from an edge list; symmetrizes, drops self-loops and duplicates.
  static Graph from_edges(VertexId num_vertices, std::span<const Edge> edges);

  // Fast path for callers that already maintain per-vertex sorted adjacency
  // (the serving layer's DynamicGraph): one O(n + m) copy, no sort and no
  // dedup pass. Each list must be strictly increasing, free of self-loops,
  // and in range — violations throw std::invalid_argument — and symmetry
  // (u in adj[v] iff v in adj[u]) is the caller's contract: DynamicGraph
  // maintains it structurally, and the serve tests pin snapshot() equality
  // against from_edges on the same edge set.
  static Graph from_sorted_adjacency(
      const std::vector<std::vector<VertexId>>& adjacency);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  std::uint64_t num_edges() const { return adjacency_.size() / 2; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::uint32_t max_degree() const;
  double average_degree() const;

  // O(log degree(u)).
  bool has_edge(VertexId u, VertexId v) const;

  // All edges with u < v, in sorted order.
  std::vector<Edge> edges() const;

  // Sum over vertices of degree^2 — the cost driver of the pairwise
  // estimators; benches report it.
  std::uint64_t degree_square_sum() const;

 private:
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<VertexId> adjacency_;     // size 2m, sorted per vertex
};

// Incremental edge-list accumulator for generators.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  // Ignores self-loops; duplicates are fine (deduplicated at build).
  void add_edge(VertexId u, VertexId v) {
    if (u != v) edges_.push_back({u, v});
  }

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t pending_edges() const { return edges_.size(); }

  Graph build() &&;

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;
};

}  // namespace rsets
