// Deterministic 2-ruling sets in CONGEST via coloring + 2-hop greedy.
//
// Completes the algorithm matrix: deterministic ruling sets exist in this
// library for both substrates (MPC: core/det_ruling; CONGEST: here).
//
// 1. Compute a proper coloring with iterated Linial reduction (reused from
//    coloring_mis).
// 2. Process color classes in increasing order; in a class's turn, each
//    undecided node of that color joins the set unless a member already
//    sits within 2 hops. Joins are announced with a 2-hop relay (2 rounds
//    per color class).
//
// Same-color nodes that join in the same turn are non-adjacent (proper
// coloring), so the set is independent; a node is only marked covered when
// a member is within 2 hops, so on termination the set 2-dominates.
// Deterministic; O(log* n + palette) rounds — a bounded-degree baseline,
// like the coloring MIS it builds on.
#pragma once

#include <vector>

#include "congest/congest.hpp"
#include "core/ruling_set.hpp"

namespace rsets::congest {

// Canonical entry point: 2-ruling set in RulingSetResult::ruling_set
// (beta = 2), Linial steps in ::phases, coloring bound in ::palette_size,
// accounting in ::congest_metrics. Also reachable through
// compute_ruling_set with Algorithm::kDetRulingCongest.
RulingSetResult det_2ruling_set_congest(const Graph& g,
                                        const CongestConfig& config = {});

}  // namespace rsets::congest
