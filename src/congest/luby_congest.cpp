#include "congest/luby_congest.hpp"

#include <algorithm>

namespace rsets::congest {
namespace {

enum class State : std::uint8_t { kActive, kInMis, kDominated };

}  // namespace

RulingSetResult luby_mis_congest(const Graph& g,
                                 const CongestConfig& config) {
  CongestSim sim(g, config);
  const VertexId n = g.num_vertices();

  std::vector<State> state(n, State::kActive);
  // Each node tracks which neighbors are still active.
  std::vector<std::vector<VertexId>> active_nbrs(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    active_nbrs[v].assign(nbrs.begin(), nbrs.end());
  }
  std::vector<std::uint64_t> priority(n, 0);

  RulingSetResult result;
  result.beta = 1;
  std::uint64_t active_count = n;
  while (active_count > 0) {
    ++result.phases;
    // Round 1: draw and exchange priorities.
    sim.round([&](CongestSim::NodeApi& node, std::span<const NodeMessage>) {
      const VertexId v = node.id();
      if (state[v] != State::kActive) return;
      priority[v] = node.rng().next();
      for (VertexId u : active_nbrs[v]) node.send(u, priority[v]);
    });
    // Round 2: local minima join; announce joins (1 = joined).
    std::vector<bool> joined(n, false);
    sim.round([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      const VertexId v = node.id();
      if (state[v] != State::kActive) return;
      bool is_min = true;
      for (const NodeMessage& msg : inbox) {
        // Strict comparison with id tie-break gives a total order.
        if (msg.value < priority[v] ||
            (msg.value == priority[v] && msg.from < v)) {
          is_min = false;
          break;
        }
      }
      if (is_min) {
        joined[v] = true;
        for (VertexId u : active_nbrs[v]) node.send(u, 1, 1);
      }
    });
    // Round 3: joiners enter the MIS; their neighbors become dominated;
    // every node leaving the graph tells its remaining active neighbors.
    std::vector<bool> leaving(n, false);
    sim.round([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      const VertexId v = node.id();
      if (state[v] != State::kActive) return;
      if (joined[v]) {
        state[v] = State::kInMis;
        leaving[v] = true;
      } else if (!inbox.empty()) {
        state[v] = State::kDominated;
        leaving[v] = true;
      }
      if (leaving[v]) {
        for (VertexId u : active_nbrs[v]) node.send(u, 1, 1);
      }
    });
    // Delivery of departure notices (consumed at the top of the next
    // iteration's first round would race with priority sends, so use a
    // drain to apply them at the round boundary).
    sim.drain([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      const VertexId v = node.id();
      for (const NodeMessage& msg : inbox) {
        auto& nbrs = active_nbrs[v];
        nbrs.erase(std::remove(nbrs.begin(), nbrs.end(), msg.from),
                   nbrs.end());
      }
    });
    active_count = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (state[v] == State::kActive) ++active_count;
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    if (state[v] == State::kInMis) result.ruling_set.push_back(v);
  }
  result.congest_metrics = sim.metrics();
  return result;
}

}  // namespace rsets::congest
