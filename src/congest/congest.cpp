#include "congest/congest.hpp"

#include <algorithm>

namespace rsets::congest {

CongestSim::CongestSim(const Graph& g, const CongestConfig& config)
    : graph_(&g), config_(config) {
  if (config_.bits_per_message < 1 || config_.bits_per_message > 64) {
    throw std::invalid_argument("CongestSim: bits_per_message must be 1..64");
  }
  rngs_.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    rngs_.push_back(Rng::for_stream(config_.seed, v));
  }
  sent_this_round_.resize(g.num_vertices());
}

void CongestSim::NodeApi::send(VertexId neighbor, std::uint64_t value,
                               int bits) {
  CongestSim& sim = *sim_;
  if (!sim.graph_->has_edge(id_, neighbor)) {
    throw std::invalid_argument("NodeApi::send: not a neighbor");
  }
  if (bits < 1 || bits > 64) {
    throw std::invalid_argument("NodeApi::send: bits must be 1..64");
  }
  const bool too_wide = bits > sim.config_.bits_per_message;
  const bool value_overflows =
      bits < 64 && (value >> bits) != 0;
  auto& sent = sim.sent_this_round_[id_];
  const bool duplicate =
      std::find(sent.begin(), sent.end(), neighbor) != sent.end();
  if (too_wide || duplicate || value_overflows) {
    if (sim.config_.enforce) {
      throw CongestViolation(
          too_wide ? "message exceeds per-edge bit budget"
                   : (duplicate ? "second message on one edge in one round"
                                : "value does not fit declared bit width"));
    }
    ++sim.metrics_.violations;
  }
  sent.push_back(neighbor);
  sim.in_flight_.push_back({id_, neighbor, value});
  ++sim.metrics_.messages;
  sim.metrics_.total_bits += static_cast<std::uint64_t>(bits);
}

void CongestSim::NodeApi::send_all(std::uint64_t value, int bits) {
  for (VertexId u : neighbors()) send(u, value, bits);
}

void CongestSim::round(const RoundBody& body) {
  ++metrics_.rounds;
  run_phase(body, /*count_round=*/true);
}

void CongestSim::drain(const RoundBody& body) {
  run_phase(body, /*count_round=*/false);
}

void CongestSim::run_phase(const RoundBody& body, bool count_round) {
  // Deliver last round's messages.
  std::vector<std::vector<NodeMessage>> delivery(graph_->num_vertices());
  for (const Pending& p : in_flight_) {
    delivery[p.to].push_back({p.from, p.value});
  }
  in_flight_.clear();
  for (auto& box : delivery) {
    std::sort(box.begin(), box.end(),
              [](const NodeMessage& a, const NodeMessage& b) {
                return a.from < b.from;
              });
  }
  if (count_round) {
    for (auto& sent : sent_this_round_) sent.clear();
  }
  std::uint64_t draws = 0;
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
    NodeApi api(this, v);
    body(api, delivery[v]);
    draws += rngs_[v].draws();
  }
  metrics_.random_words = draws;
}

}  // namespace rsets::congest
