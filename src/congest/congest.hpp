// A synchronous CONGEST-model simulator.
//
// The CONGEST model: one node per graph vertex; per round, each node may
// send one B-bit message (B = O(log n), default 64 bits here) along each
// incident edge. This is the message-passing model the ruling-set literature
// (Luby's algorithm, Linial's coloring) originates from; the library uses it
// for cross-model baselines against the MPC algorithms.
//
// The simulator enforces the per-edge-per-round bit budget and counts
// rounds, messages, and bits.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rsets::congest {

struct CongestConfig {
  int bits_per_message = 64;  // B
  bool enforce = true;
  std::uint64_t seed = 1;
};

struct CongestMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t violations = 0;
  std::uint64_t random_words = 0;
};

// One received message: sending neighbor and payload.
struct NodeMessage {
  VertexId from;
  std::uint64_t value;
};

class CongestViolation : public std::runtime_error {
 public:
  explicit CongestViolation(const std::string& what)
      : std::runtime_error(what) {}
};

class CongestSim {
 public:
  CongestSim(const Graph& g, const CongestConfig& config);

  const Graph& graph() const { return *graph_; }
  const CongestMetrics& metrics() const { return metrics_; }

  // Per-node send interface handed to the round body.
  class NodeApi {
   public:
    VertexId id() const { return id_; }
    std::span<const VertexId> neighbors() const {
      return sim_->graph_->neighbors(id_);
    }
    // Sends `bits`-wide `value` to `neighbor` (must be adjacent). At most
    // one message per edge per round; bits must be <= B.
    void send(VertexId neighbor, std::uint64_t value, int bits = 64);
    // Convenience: same message to every neighbor.
    void send_all(std::uint64_t value, int bits = 64);
    Rng& rng() { return sim_->rngs_[id_]; }

   private:
    friend class CongestSim;
    NodeApi(CongestSim* sim, VertexId id) : sim_(sim), id_(id) {}
    CongestSim* sim_;
    VertexId id_;
  };

  // One synchronous round: body(node, messages received from last round).
  using RoundBody =
      std::function<void(NodeApi&, std::span<const NodeMessage>)>;
  void round(const RoundBody& body);

  // Delivery of the final round's sends without spending a round (same BSP
  // boundary convention as mpc::Simulator::drain).
  void drain(const RoundBody& body);

 private:
  struct Pending {
    VertexId from;
    VertexId to;
    std::uint64_t value;
  };
  void run_phase(const RoundBody& body, bool count_round);

  const Graph* graph_;
  CongestConfig config_;
  CongestMetrics metrics_;
  std::vector<Rng> rngs_;
  std::vector<Pending> in_flight_;
  // Per-edge send guard for the current round: for each node, the set of
  // neighbors already sent to this round (cleared per round).
  std::vector<std::vector<VertexId>> sent_this_round_;
};

}  // namespace rsets::congest
