#include "congest/det_ruling_congest.hpp"

#include <algorithm>

#include "congest/coloring_mis.hpp"

namespace rsets::congest {

RulingSetResult det_2ruling_set_congest(const Graph& g,
                                        const CongestConfig& config) {
  CongestSim sim(g, config);
  const VertexId n = g.num_vertices();
  RulingSetResult result;
  result.beta = 2;

  const LinialColoring coloring = linial_coloring(sim);
  result.palette_size = coloring.palette_size;
  result.phases = coloring.steps;

  // covered[v]: a set member is known to sit within 2 hops of v.
  std::vector<bool> covered(n, false);
  std::vector<bool> in_set(n, false);
  std::vector<bool> decided(n, false);

  for (std::uint64_t turn = 0; turn < result.palette_size; ++turn) {
    bool any_undecided = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!decided[v]) {
        any_undecided = true;
        break;
      }
    }
    if (!any_undecided) break;

    // Round A: consume relays from the previous turn (2-hop coverage),
    // then this turn's color class decides.
    sim.round([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      const VertexId v = node.id();
      if (!inbox.empty()) covered[v] = true;  // relay = member at 2 hops
      if (!decided[v] && coloring.colors[v] == turn) {
        decided[v] = true;
        if (!covered[v]) {
          in_set[v] = true;
          covered[v] = true;
          node.send_all(1, 1);
        }
      }
    });
    // Round B: 1-hop coverage + relay toward the 2-hop ring.
    sim.round([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      const VertexId v = node.id();
      if (!inbox.empty()) {
        covered[v] = true;
        node.send_all(1, 1);
      }
    });
  }

  for (VertexId v = 0; v < n; ++v) {
    if (in_set[v]) result.ruling_set.push_back(v);
  }
  result.congest_metrics = sim.metrics();
  return result;
}

}  // namespace rsets::congest
