// Randomized beta-ruling sets in CONGEST via distance-beta Luby.
//
// Each iteration: active nodes draw random priorities; the priority minima
// within beta hops join the set (computed with beta rounds of neighborhood
// min-aggregation — CONGEST-friendly because min composes, so messages stay
// one word per edge per round); every vertex within beta hops of a joiner
// retires (beta more flood rounds). Joiners are pairwise more than beta
// hops apart, so the result is independent in G (indeed (beta+1)-separated:
// this computes an (alpha, beta)-ruling set with alpha = beta + 1), and on
// termination every vertex is within beta hops of the set. O(beta log n)
// rounds w.h.p.
#pragma once

#include <vector>

#include "congest/congest.hpp"
#include "core/ruling_set.hpp"

namespace rsets::congest {

// Canonical entry point: beta-ruling set in RulingSetResult::ruling_set,
// iterations in ::phases, accounting in ::congest_metrics. Also reachable
// through compute_ruling_set with Algorithm::kBetaRulingCongest.
RulingSetResult beta_ruling_set_congest(const Graph& g, std::uint32_t beta,
                                        const CongestConfig& config = {});

}  // namespace rsets::congest
