// Deterministic MIS in CONGEST via Linial-style color reduction.
//
// 1. Colors start as vertex ids (palette size n).
// 2. Each Linial step: pick a prime q and represent the current color as a
//    polynomial p_c of degree < d over F_q (digits of c in base q, with
//    q >= Delta*(d-1) + 1). After exchanging colors with neighbors (one
//    round), each node picks an evaluation point x in F_q such that
//    p_c(x) differs from p_{c'}(x) for every neighboring color c'; the new
//    color is the pair (x, p_c(x)) < q^2. Palette shrinks roughly
//    n -> (Delta log n)^2 -> ... -> O(Delta^2 log^2 Delta) in O(log* n)
//    steps.
// 3. Greedy by color: colors are processed in increasing order; in a color's
//    turn, its undecided nodes join the MIS and notify neighbors (2 rounds
//    per color).
//
// Total: O(log* n) + O(final palette) rounds — a deterministic CONGEST
// baseline that is fast on bounded-degree families.
#pragma once

#include <vector>

#include "congest/congest.hpp"
#include "core/ruling_set.hpp"

namespace rsets::congest {

// The coloring stage alone, for reuse by other coloring-driven algorithms.
struct LinialColoring {
  std::vector<std::uint32_t> colors;
  std::uint32_t palette_size = 0;
  std::uint64_t steps = 0;
};

// Runs iterated Linial reduction inside an existing simulation.
LinialColoring linial_coloring(CongestSim& sim);

// Canonical entry point: computes a proper coloring by iterated Linial
// reduction, then an MIS by color-class greedy. Fully deterministic (zero
// random bits). MIS in RulingSetResult::ruling_set (beta = 1), Linial steps
// in ::phases, coloring in ::colors / ::palette_size, accounting in
// ::congest_metrics. Also reachable through compute_ruling_set with
// Algorithm::kColoringMisCongest.
RulingSetResult coloring_mis_congest(const Graph& g,
                                     const CongestConfig& config = {});

}  // namespace rsets::congest
