// Luby's randomized MIS in the CONGEST model.
//
// Each iteration (3 CONGEST rounds): active nodes draw a random priority and
// exchange it with neighbors; local minima (ties by id, which cannot occur
// with distinct ids in the comparison pair) join the MIS; joiners notify
// neighbors, which become dominated; nodes leaving the graph notify
// neighbors so active degrees stay consistent. Terminates in O(log n)
// iterations with high probability.
#pragma once

#include <vector>

#include "congest/congest.hpp"

namespace rsets::congest {

struct LubyResult {
  std::vector<VertexId> mis;
  std::uint64_t iterations = 0;
  CongestMetrics metrics;
};

LubyResult luby_mis(const Graph& g, const CongestConfig& config = {});

}  // namespace rsets::congest
