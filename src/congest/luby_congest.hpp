// Luby's randomized MIS in the CONGEST model.
//
// Each iteration (3 CONGEST rounds): active nodes draw a random priority and
// exchange it with neighbors; local minima (ties by id, which cannot occur
// with distinct ids in the comparison pair) join the MIS; joiners notify
// neighbors, which become dominated; nodes leaving the graph notify
// neighbors so active degrees stay consistent. Terminates in O(log n)
// iterations with high probability.
#pragma once

#include <vector>

#include "congest/congest.hpp"
#include "core/ruling_set.hpp"

namespace rsets::congest {

// Canonical entry point: MIS in RulingSetResult::ruling_set (beta = 1),
// iterations in ::phases, CONGEST accounting in ::congest_metrics. Also
// reachable through compute_ruling_set with Algorithm::kLubyCongest.
RulingSetResult luby_mis_congest(const Graph& g,
                                 const CongestConfig& config = {});

}  // namespace rsets::congest
