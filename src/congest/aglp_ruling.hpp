// The classical deterministic bitwise-elimination ruling set
// (Awerbuch–Goldberg–Luby–Plotkin style) in CONGEST.
//
// Level ell = 0..L-1 (L = id bit width): the surviving set R is implicitly
// partitioned by id high bits (id >> (ell+1)); within each group, survivors
// whose bit ell is 1 drop out if a same-group survivor with bit ell = 0 is
// adjacent. One round per level (each survivor ships its id, O(log n) bits).
//
// Guarantees (deterministic, exactly L rounds):
//   * independence — two adjacent survivors would have been split at the
//     level of their highest differing bit, where the 1-side drops;
//   * domination radius <= L = ceil(log2 n) — a dropped vertex is adjacent
//     to its witness, and witness chains visit strictly increasing levels.
//
// So this computes a ceil(log2 n)-ruling set in ceil(log2 n) rounds — the
// historical starting point that the O(log log)-phase MPC algorithms (and
// the paper) improve on. Included for the lineage benchmark in E8.
#pragma once

#include <vector>

#include "congest/congest.hpp"
#include "core/ruling_set.hpp"

namespace rsets::congest {

// Canonical entry point: ruling set in RulingSetResult::ruling_set, the
// guaranteed domination radius L = ceil(log2 n) in ::beta, bit levels in
// ::phases, accounting in ::congest_metrics. Also reachable through
// compute_ruling_set with Algorithm::kAglpCongest.
RulingSetResult aglp_ruling_set_congest(const Graph& g,
                                        const CongestConfig& config = {});

}  // namespace rsets::congest
