#include "congest/coloring_mis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/bits.hpp"

namespace rsets::congest {
namespace {

bool is_prime(std::uint64_t q) {
  if (q < 2) return false;
  for (std::uint64_t f = 2; f * f <= q; ++f) {
    if (q % f == 0) return false;
  }
  return true;
}

// Smallest prime q such that the degree-(d-1) polynomials over F_q encode
// the palette [0, C) and q > Delta * (d-1), where d = #digits of C-1 in
// base q. The two conditions are interdependent, so scan upward.
std::uint64_t pick_prime(std::uint64_t palette, std::uint32_t max_degree) {
  for (std::uint64_t q = std::max<std::uint64_t>(2, max_degree + 1);;
       ++q) {
    if (!is_prime(q)) continue;
    // Digits of palette-1 in base q.
    std::uint64_t d = 1;
    std::uint64_t span = q;
    while (span < palette) {
      span *= q;
      ++d;
    }
    if (q > static_cast<std::uint64_t>(max_degree) * (d - 1)) return q;
  }
}

// Evaluates the polynomial whose coefficients are the base-q digits of
// `color` at point x over F_q.
std::uint64_t poly_eval(std::uint64_t color, std::uint64_t q,
                        std::uint64_t x) {
  std::uint64_t value = 0;
  std::uint64_t power = 1;
  while (color > 0) {
    const std::uint64_t digit = color % q;
    value = (value + digit * power) % q;
    power = (power * x) % q;
    color /= q;
  }
  return value;
}

}  // namespace

LinialColoring linial_coloring(CongestSim& sim) {
  const Graph& g = sim.graph();
  const VertexId n = g.num_vertices();
  LinialColoring result;
  result.colors.resize(n);
  for (VertexId v = 0; v < n; ++v) result.colors[v] = v;
  std::uint64_t palette = std::max<std::uint64_t>(n, 1);
  const std::uint32_t max_degree = g.max_degree();

  while (true) {
    const std::uint64_t q = pick_prime(palette, std::max(max_degree, 1u));
    const std::uint64_t new_palette = q * q;
    if (new_palette >= palette) break;  // fixed point reached
    ++result.steps;
    const int bits = bit_width_for(palette);
    // One round: exchange current colors.
    std::vector<std::vector<std::uint64_t>> nbr_colors(n);
    sim.round([&](CongestSim::NodeApi& node, std::span<const NodeMessage>) {
      node.send_all(result.colors[node.id()], bits);
    });
    sim.drain([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      for (const NodeMessage& msg : inbox) {
        nbr_colors[node.id()].push_back(msg.value);
      }
    });
    // Local recoloring: pick x avoiding all neighbor polynomial collisions.
    std::vector<std::uint32_t> next(n);
    for (VertexId v = 0; v < n; ++v) {
      const std::uint64_t c = result.colors[v];
      bool found = false;
      for (std::uint64_t x = 0; x < q && !found; ++x) {
        const std::uint64_t pv = poly_eval(c, q, x);
        bool clash = false;
        for (std::uint64_t cn : nbr_colors[v]) {
          if (cn != c && poly_eval(cn, q, x) == pv) {
            clash = true;
            break;
          }
        }
        if (!clash) {
          next[v] = static_cast<std::uint32_t>(x * q + pv);
          found = true;
        }
      }
      if (!found) {
        // Cannot happen by the counting argument (q > Delta*(d-1)); guard
        // against an implementation bug rather than emit a bad coloring.
        throw std::logic_error("coloring_mis: no collision-free point");
      }
    }
    result.colors = std::move(next);
    palette = new_palette;
  }
  result.palette_size = static_cast<std::uint32_t>(palette);
  return result;
}

RulingSetResult coloring_mis_congest(const Graph& g,
                                     const CongestConfig& config) {
  CongestSim sim(g, config);
  const VertexId n = g.num_vertices();
  RulingSetResult result;
  result.beta = 1;
  {
    LinialColoring coloring = linial_coloring(sim);
    result.colors = std::move(coloring.colors);
    result.palette_size = coloring.palette_size;
    result.phases = coloring.steps;
  }
  const std::uint64_t palette = result.palette_size;

  // --- Greedy MIS by color class ------------------------------------------
  enum class State : std::uint8_t { kUndecided, kInMis, kDominated };
  std::vector<State> state(n, State::kUndecided);
  for (std::uint64_t turn = 0; turn < palette; ++turn) {
    // Skip empty color classes without spending rounds: a real
    // implementation knows the palette bound but not occupancy, so we only
    // skip suffix turns after all nodes are decided.
    bool any_undecided = false;
    for (VertexId v = 0; v < n; ++v) {
      if (state[v] == State::kUndecided) {
        any_undecided = true;
        break;
      }
    }
    if (!any_undecided) break;
    // Round: color-`turn` undecided nodes join and announce.
    sim.round([&](CongestSim::NodeApi& node, std::span<const NodeMessage>) {
      const VertexId v = node.id();
      if (state[v] == State::kUndecided && result.colors[v] == turn) {
        state[v] = State::kInMis;
        node.send_all(1, 1);
      }
    });
    sim.drain([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      const VertexId v = node.id();
      if (state[v] == State::kUndecided && !inbox.empty()) {
        state[v] = State::kDominated;
      }
    });
  }

  for (VertexId v = 0; v < n; ++v) {
    if (state[v] == State::kInMis) result.ruling_set.push_back(v);
  }
  result.congest_metrics = sim.metrics();
  return result;
}

}  // namespace rsets::congest
