#include "congest/aglp_ruling.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace rsets::congest {

RulingSetResult aglp_ruling_set_congest(const Graph& g,
                                        const CongestConfig& config) {
  CongestSim sim(g, config);
  const VertexId n = g.num_vertices();
  RulingSetResult result;
  const int levels = n <= 1 ? 0 : bit_width_for(n);
  result.beta = static_cast<std::uint32_t>(levels);
  result.phases = static_cast<std::uint64_t>(levels);

  std::vector<bool> in_r(n, true);
  const int id_bits = std::max(levels, 1);

  for (int level = 0; level < levels; ++level) {
    // Survivors announce their ids; a 1-side survivor drops on seeing an
    // adjacent same-group 0-side survivor. Decisions are computed against
    // the set as it stood at the round's start, so the witness is
    // guaranteed to still be present this level.
    std::vector<bool> next = in_r;
    sim.round([&](CongestSim::NodeApi& node, std::span<const NodeMessage>) {
      const VertexId v = node.id();
      if (in_r[v]) node.send_all(v, id_bits);
    });
    sim.drain([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      const VertexId v = node.id();
      if (!in_r[v]) return;
      if (((v >> level) & 1u) == 0) return;  // 0-side never drops here
      const VertexId group = v >> (level + 1);
      for (const NodeMessage& msg : inbox) {
        const auto u = static_cast<VertexId>(msg.value);
        if ((u >> (level + 1)) == group && ((u >> level) & 1u) == 0) {
          next[v] = false;
          break;
        }
      }
    });
    in_r = std::move(next);
  }

  for (VertexId v = 0; v < n; ++v) {
    if (in_r[v]) result.ruling_set.push_back(v);
  }
  result.congest_metrics = sim.metrics();
  return result;
}

}  // namespace rsets::congest
