#include "congest/beta_ruling_congest.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsets::congest {
namespace {

enum class State : std::uint8_t { kActive, kInSet, kRetired };

}  // namespace

RulingSetResult beta_ruling_set_congest(const Graph& g,
                                        std::uint32_t beta,
                                        const CongestConfig& config) {
  if (beta == 0) {
    throw std::invalid_argument(
        "beta_ruling_set_congest: beta must be >= 1");
  }
  CongestSim sim(g, config);
  const VertexId n = g.num_vertices();
  std::vector<State> state(n, State::kActive);

  RulingSetResult result;
  result.beta = beta;
  std::uint64_t active_count = n;
  std::vector<std::uint64_t> best_val(n);

  while (active_count > 0) {
    ++result.phases;
    // Draw priorities; initialize each active node's aggregate with itself.
    // The priority word packs (32 random bits, vertex id), a collision-free
    // total order in one O(log n)-bit message word.
    std::vector<std::uint64_t> own_val(n, ~0ull);
    sim.round([&](CongestSim::NodeApi& node, std::span<const NodeMessage>) {
      const VertexId v = node.id();
      if (state[v] != State::kActive) return;
      own_val[v] = ((node.rng().next() & 0xFFFFFFFFull) << 32) | v;
    });
    for (VertexId v = 0; v < n; ++v) best_val[v] = own_val[v];
    // beta rounds of min-aggregation: after hop h, best[v] = min priority
    // among active vertices within h hops (retired nodes relay with own
    // priority = infinity, so graph distance — not active-subgraph
    // distance — is what counts).
    for (std::uint32_t hop = 0; hop < beta; ++hop) {
      sim.round([&](CongestSim::NodeApi& node,
                    std::span<const NodeMessage> inbox) {
        const VertexId v = node.id();
        // Fold values received from the previous aggregation hop.
        for (const NodeMessage& msg : inbox) {
          best_val[v] = std::min(best_val[v], msg.value);
        }
        node.send_all(best_val[v]);
      });
    }
    // One more boundary to fold the final hop's messages.
    sim.drain([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      const VertexId v = node.id();
      for (const NodeMessage& msg : inbox) {
        best_val[v] = std::min(best_val[v], msg.value);
      }
    });

    // Join: an active node whose own value equals the beta-hop minimum.
    std::vector<std::uint64_t> dist_to_joiner(n, ~0ull);
    sim.round([&](CongestSim::NodeApi& node, std::span<const NodeMessage>) {
      const VertexId v = node.id();
      if (state[v] == State::kActive && own_val[v] == best_val[v]) {
        state[v] = State::kInSet;
        result.ruling_set.push_back(v);
        dist_to_joiner[v] = 0;
        node.send_all(0);
      }
    });
    // beta retirement flood rounds: nodes within beta hops of a joiner
    // retire. Message value = hop distance of the sender to a joiner.
    for (std::uint32_t hop = 0; hop < beta; ++hop) {
      sim.round([&](CongestSim::NodeApi& node,
                    std::span<const NodeMessage> inbox) {
        const VertexId v = node.id();
        for (const NodeMessage& msg : inbox) {
          dist_to_joiner[v] = std::min(dist_to_joiner[v], msg.value + 1);
        }
        if (dist_to_joiner[v] <= beta && state[v] == State::kActive) {
          state[v] = State::kRetired;
        }
        if (dist_to_joiner[v] < beta) {
          node.send_all(dist_to_joiner[v]);
        }
      });
    }
    sim.drain([&](CongestSim::NodeApi& node,
                  std::span<const NodeMessage> inbox) {
      const VertexId v = node.id();
      for (const NodeMessage& msg : inbox) {
        dist_to_joiner[v] = std::min(dist_to_joiner[v], msg.value + 1);
      }
      if (dist_to_joiner[v] <= beta && state[v] == State::kActive) {
        state[v] = State::kRetired;
      }
    });

    active_count = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (state[v] == State::kActive) ++active_count;
    }
  }

  std::sort(result.ruling_set.begin(), result.ruling_set.end());
  result.congest_metrics = sim.metrics();
  return result;
}

}  // namespace rsets::congest
