#include "mpc/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsets::mpc {

Machine::Machine(MachineId id, const MpcConfig& config)
    : id_(id),
      config_(&config),
      rng_(Rng::for_stream(config.seed, id)) {}

void Machine::charge_storage(std::size_t words) {
  storage_words_ += words;
  peak_storage_words_ = std::max(peak_storage_words_, storage_words_);
  if (storage_words_ > config_->memory_words) {
    // Under kDegrade the excess is spilled: the simulator charges the extra
    // sub-rounds at the phase barrier from the storage high-water mark, so
    // nothing is counted here (and this may run on a worker thread).
    if (config_->budget_policy == BudgetPolicy::kStrict) {
      throw MpcViolation("machine " + std::to_string(id_) +
                         " exceeded memory budget: " +
                         std::to_string(storage_words_) + " > " +
                         std::to_string(config_->memory_words) + " words");
    }
    if (config_->budget_policy == BudgetPolicy::kTrace) ++violations_;
  }
}

void Machine::release_storage(std::size_t words) {
  if (words > storage_words_) {
    throw std::logic_error("release_storage: releasing more than charged");
  }
  storage_words_ -= words;
}

void Machine::send(MachineId dst, std::uint32_t tag,
                   std::vector<Word> payload) {
  if (dst >= config_->num_machines) {
    throw std::out_of_range("Machine::send: bad destination");
  }
  Message msg;
  msg.src = id_;
  msg.dst = dst;
  msg.tag = tag;
  msg.payload = std::move(payload);
  sent_words_this_round_ += msg.words();
  if (sent_words_this_round_ > config_->memory_words) {
    if (config_->budget_policy == BudgetPolicy::kStrict) {
      throw MpcViolation("machine " + std::to_string(id_) +
                         " exceeded send bandwidth in one round: " +
                         std::to_string(sent_words_this_round_) + " > " +
                         std::to_string(config_->memory_words) + " words");
    }
    if (config_->budget_policy == BudgetPolicy::kTrace) ++violations_;
  }
  outbox_.push_back(std::move(msg));
}

Inbox::Inbox(std::vector<Message> messages) : messages_(std::move(messages)) {
  // Sort by (tag, src): tag lookups become contiguous ranges, and delivery
  // order is deterministic regardless of routing order.
  std::sort(messages_.begin(), messages_.end(),
            [](const Message& a, const Message& b) {
              if (a.tag != b.tag) return a.tag < b.tag;
              return a.src < b.src;
            });
  for (const Message& m : messages_) total_words_ += m.words();
}

std::span<const Message> Inbox::with_tag(std::uint32_t tag) const {
  const auto lo = std::lower_bound(
      messages_.begin(), messages_.end(), tag,
      [](const Message& m, std::uint32_t t) { return m.tag < t; });
  const auto hi = std::upper_bound(
      messages_.begin(), messages_.end(), tag,
      [](std::uint32_t t, const Message& m) { return t < m.tag; });
  return {messages_.data() + (lo - messages_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

}  // namespace rsets::mpc
