#include "mpc/machine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rsets::mpc {

Machine::Machine(MachineId id, const MpcConfig& config)
    : id_(id),
      config_(&config),
      rng_(Rng::for_stream(config.seed, id)) {
  out_arenas_.resize(config.num_machines);
  out_counts_.assign(config.num_machines, 0);
}

void Machine::charge_storage(std::size_t words) {
  storage_words_ += words;
  peak_storage_words_ = std::max(peak_storage_words_, storage_words_);
  if (storage_words_ > config_->memory_words) {
    // Under kDegrade the excess is spilled: the simulator charges the extra
    // sub-rounds at the phase barrier from the storage high-water mark, so
    // nothing is counted here (and this may run on a worker thread).
    if (config_->budget_policy == BudgetPolicy::kStrict) {
      throw MpcViolation("machine " + std::to_string(id_) +
                         " exceeded memory budget: " +
                         std::to_string(storage_words_) + " > " +
                         std::to_string(config_->memory_words) + " words");
    }
    if (config_->budget_policy == BudgetPolicy::kTrace) ++violations_;
  }
}

void Machine::release_storage(std::size_t words) {
  if (words > storage_words_) {
    throw std::logic_error("release_storage: releasing more than charged");
  }
  storage_words_ -= words;
}

void Machine::bad_dst() {
  throw std::out_of_range("Machine::send: bad destination");
}

void Machine::send_budget_overflow() {
  if (config_->budget_policy == BudgetPolicy::kStrict) {
    throw MpcViolation("machine " + std::to_string(id_) +
                       " exceeded send bandwidth in one round: " +
                       std::to_string(sent_words_this_round_) + " > " +
                       std::to_string(config_->memory_words) + " words");
  }
  if (config_->budget_policy == BudgetPolicy::kTrace) ++violations_;
}

void Inbox::build(std::span<const AggBuffer> buffers) {
  index_.clear();
  total_words_ = 0;
  std::size_t count = 0;
  for (const AggBuffer& buf : buffers) {
    count += buf.messages;
    total_words_ += buf.words();
  }
  index_.reserve(count);
  // Track whether the (tag, src) walk order is already sorted as the index
  // is built: buffers arrive src-ascending (canonical merge order), so
  // single-tag rounds — the common shape — need no sort at all.
  bool sorted = true;
  std::uint32_t prev_tag = 0;
  MachineId prev_src = 0;
  for (const AggBuffer& buf : buffers) {
    // Walk the framed records. The framing is simulator-stamped (and, when
    // the integrity layer is active, covered by the batch checksum verified
    // before delivery), so a malformed walk here means the transport itself
    // is broken — fail loudly rather than deliver garbage views.
    const std::vector<Word>& arena = buf.arena;
    std::size_t at = 0;
    for (std::uint32_t i = 0; i < buf.messages; ++i) {
      if (arena.size() - at < kHeaderWords) {
        throw MpcViolation("transport: truncated record framing from machine " +
                           std::to_string(buf.src));
      }
      const auto tag = static_cast<std::uint32_t>(arena[at]);
      const std::uint64_t len = arena[at + 1];
      if (len > arena.size() - at - kHeaderWords) {
        throw MpcViolation("transport: record length overruns arena from "
                           "machine " +
                           std::to_string(buf.src));
      }
      MessageView view;
      view.src = buf.src;
      view.tag = tag;
      view.payload = {arena.data() + at + kHeaderWords,
                      static_cast<std::size_t>(len)};
      if (!index_.empty() &&
          (tag < prev_tag || (tag == prev_tag && buf.src < prev_src))) {
        sorted = false;
      }
      prev_tag = tag;
      prev_src = buf.src;
      index_.push_back(view);
      at += kHeaderWords + static_cast<std::size_t>(len);
    }
    if (at != arena.size()) {
      throw MpcViolation("transport: trailing words after last record from "
                         "machine " +
                         std::to_string(buf.src));
    }
  }
  // Stable sort by (tag, src): tag lookups become contiguous ranges, order
  // within a (tag, src) group stays send order, and delivery iteration is
  // deterministic regardless of routing order. Skipped when the walk above
  // saw an already-sorted order — the sort would be the identity and only
  // cost time and scratch allocation.
  if (!sorted) {
    std::stable_sort(index_.begin(), index_.end(),
                     [](const MessageView& a, const MessageView& b) {
                       if (a.tag != b.tag) return a.tag < b.tag;
                       return a.src < b.src;
                     });
  }
}

std::span<const MessageView> Inbox::with_tag(std::uint32_t tag) const {
  const auto lo = std::lower_bound(
      index_.begin(), index_.end(), tag,
      [](const MessageView& m, std::uint32_t t) { return m.tag < t; });
  const auto hi = std::upper_bound(
      index_.begin(), index_.end(), tag,
      [](std::uint32_t t, const MessageView& m) { return t < m.tag; });
  return {index_.data() + (lo - index_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

}  // namespace rsets::mpc
