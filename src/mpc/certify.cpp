#include "mpc/certify.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "mpc/dist_graph.hpp"
#include "mpc/primitives.hpp"
#include "mpc/simulator.hpp"

namespace rsets::mpc {
namespace {

constexpr std::uint32_t kTagMember = 0x51;
constexpr std::uint32_t kTagCover = 0x52;
constexpr std::uint32_t kTagLevelSum = 0x53;
constexpr std::uint32_t kTagConflictSum = 0x54;
constexpr std::uint32_t kTagUncoveredSum = 0x55;
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

// Scrubs caller knobs that must not perturb the clean-room audit.
MpcConfig clean_config(const MpcConfig& config) {
  MpcConfig clean = config;
  clean.trace_hook = nullptr;
  clean.faults = FaultConfig{};
  clean.checkpoint_every = 0;
  clean.round_deadline = 0;
  clean.budget_policy = BudgetPolicy::kDegrade;
  return clean;
}

// The pass itself, independent of how `dg` was loaded (materialized or
// sharded): screening, member routing, conflict exchange, beta-hop BFS.
RulingSetCertificate certify_on(Simulator& sim, const DistGraph& dg,
                                std::span<const VertexId> set,
                                std::uint32_t beta) {
  RulingSetCertificate cert;
  cert.beta = beta;
  cert.set_size = set.size();
  cert.level_counts.assign(static_cast<std::size_t>(beta) + 1, 0);

  const MachineId machines = sim.num_machines();
  const VertexId n = dg.num_vertices();

  // Screening happens where the claimed set lives (machine 0) before
  // anything is routed; the storage for the claim is charged there.
  sim.machine(0).charge_storage(set.size());
  std::vector<VertexId> valid;
  valid.reserve(set.size());
  {
    std::vector<bool> seen(n, false);
    for (const VertexId v : set) {
      if (v >= n || seen[v]) {
        ++cert.malformed;
        continue;
      }
      seen[v] = true;
      valid.push_back(v);
    }
  }
  cert.level_counts[0] = valid.size();

  // Per-owner certification state. One byte/word per owned vertex; plain
  // arrays (not vector<bool>) so concurrent machines touch disjoint memory.
  std::vector<std::uint8_t> member(n, 0);
  std::vector<std::uint32_t> dist(n, kInf);
  for (MachineId m = 0; m < machines; ++m) {
    sim.machine(m).charge_storage(dg.owned(m).size() * 2);
  }

  // Round 1: route valid members to their owners.
  sim.round([&](Machine& m, const Inbox&) {
    if (m.id() != 0) return;
    std::vector<std::vector<Word>> out(machines);
    for (const VertexId v : valid) out[dg.owner(v)].push_back(v);
    for (MachineId t = 0; t < machines; ++t) {
      if (!out[t].empty()) m.send(t, kTagMember, out[t]);
    }
  });
  sim.drain([&](Machine&, const Inbox& inbox) {
    for (const MessageView& msg : inbox.with_tag(kTagMember)) {
      for (const Word w : msg.payload) {
        const VertexId v = static_cast<VertexId>(w);
        member[v] = 1;
        dist[v] = 0;
      }
    }
  });

  // Levels 1..beta: the frontier's owners announce coverage to the owners
  // of its neighbors. Level 1 announcements originate exclusively at
  // members, so one landing on a member witnesses a conflicting edge. The
  // level-1 exchange runs even for beta == 0 (independence must still be
  // checked); it then contributes nothing to coverage.
  std::uint64_t conflict_message_total = 0;
  const std::uint32_t levels_to_run = std::max<std::uint32_t>(beta, 1);
  for (std::uint32_t level = 1; level <= levels_to_run; ++level) {
    sim.round([&](Machine& m, const Inbox&) {
      std::vector<std::vector<Word>> out(machines);
      for (const VertexId v : dg.owned(m.id())) {
        if (dist[v] != level - 1) continue;
        for (const VertexId u : dg.neighbors(v)) {
          out[dg.owner(u)].push_back(u);
        }
      }
      for (MachineId t = 0; t < machines; ++t) {
        if (!out[t].empty()) m.send(t, kTagCover, out[t]);
      }
    });
    std::vector<std::uint64_t> newly(machines, 0);
    std::vector<std::uint64_t> conflict_messages(machines, 0);
    sim.drain([&](Machine& m, const Inbox& inbox) {
      for (const MessageView& msg : inbox.with_tag(kTagCover)) {
        for (const Word w : msg.payload) {
          const VertexId u = static_cast<VertexId>(w);
          if (level == 1 && member[u]) ++conflict_messages[m.id()];
          if (level <= beta && dist[u] == kInf) {
            dist[u] = level;
            ++newly[m.id()];
          }
        }
      }
    });
    if (level == 1) {
      conflict_message_total =
          allreduce_sum_u64(sim, conflict_messages, kTagConflictSum);
    }
    if (level > beta) break;  // beta == 0: conflict exchange only
    cert.level_counts[level] = allreduce_sum_u64(sim, newly, kTagLevelSum);
    if (cert.level_counts[level] == 0) break;  // frontier exhausted
    cert.radius = level;
  }
  // Each conflicting edge was announced from both endpoints.
  cert.conflict_edges = conflict_message_total / 2;

  std::vector<std::uint64_t> uncovered(machines, 0);
  for (MachineId m = 0; m < machines; ++m) {
    for (const VertexId v : dg.owned(m)) {
      if (dist[v] == kInf) ++uncovered[m];
    }
  }
  cert.uncovered = allreduce_sum_u64(sim, uncovered, kTagUncoveredSum);

  sim.sync_metrics();
  cert.rounds = sim.metrics().rounds;
  return cert;
}

}  // namespace

RulingSetCertificate certify_ruling_set(const Graph& g,
                                        std::span<const VertexId> set,
                                        std::uint32_t beta,
                                        const MpcConfig& config) {
  Simulator sim(clean_config(config));
  DistGraph dg(sim, g);
  return certify_on(sim, dg, set, beta);
}

RulingSetCertificate certify_ruling_set(const shard::ShardedSource& src,
                                        const shard::IngestOptions& ingest,
                                        std::span<const VertexId> set,
                                        std::uint32_t beta,
                                        const MpcConfig& config) {
  Simulator sim(clean_config(config));
  DistGraph dg(sim, src, ingest);
  return certify_on(sim, dg, set, beta);
}

}  // namespace rsets::mpc
