// Certified execution: an in-model verification pass for ruling sets.
//
// certify_ruling_set replays nothing from the algorithm that produced the
// set — it re-derives validity through its own O(β)-round MPC computation:
//
//   1. Ingest: machine 0 holds the claimed set, screens out-of-range ids and
//      duplicates, and routes each valid member to its owner (1 round).
//   2. Independence by edge exchange: level-1 of the BFS below doubles as
//      the conflict check — every member announces coverage to its
//      neighbors' owners, and an announcement landing on another member is
//      one half of a conflicting edge (each edge is seen from both sides,
//      so the allreduced count is halved).
//   3. Domination by β-hop BFS: one announce round per level, with an
//      allreduce of newly-covered counts; the pass stops early once a level
//      covers nothing new.
//
// The resulting RulingSetCertificate commits to exact per-level counts, and
// graph/verify.cpp's cross_validate_certificate confirms every field with an
// independent sequential recomputation — the two implementations share no
// code, so agreement is evidence, not tautology.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "graph/verify.hpp"
#include "mpc/message.hpp"

namespace rsets::shard {
class ShardedSource;
struct IngestOptions;
}  // namespace rsets::shard

namespace rsets::mpc {

// Runs the certification pass on its own simulator built from `config`.
// The caller's trace/fault/deadline settings are ignored — certification is
// a clean-room pass — and the budget policy is forced to kDegrade so an
// undersized configuration degrades instead of aborting the audit.
RulingSetCertificate certify_ruling_set(const Graph& g,
                                        std::span<const VertexId> set,
                                        std::uint32_t beta,
                                        const MpcConfig& config);

// Sharded variant: the clean-room simulator re-ingests the input from its
// shards (never materializing a global Graph), then runs the identical
// pass. For out-of-core runs this is the *only* validity check that scales
// — the sequential cross-validation needs the materialized graph.
RulingSetCertificate certify_ruling_set(const shard::ShardedSource& src,
                                        const shard::IngestOptions& ingest,
                                        std::span<const VertexId> set,
                                        std::uint32_t beta,
                                        const MpcConfig& config);

}  // namespace rsets::mpc
