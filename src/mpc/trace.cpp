#include "mpc/trace.hpp"

#include <cstdio>

namespace rsets::mpc {
namespace {

std::string fault_to_json(const FaultEvent& event) {
  char buf[192];
  int len = std::snprintf(buf, sizeof(buf), "{\"kind\":\"%s\",\"machine\":%u",
                          fault_kind_name(event.kind), event.machine);
  auto append = [&](const char* key, std::uint64_t value) {
    len += std::snprintf(buf + len, sizeof(buf) - static_cast<size_t>(len),
                         ",\"%s\":%llu", key,
                         static_cast<unsigned long long>(value));
  };
  switch (event.kind) {
    case FaultKind::kCrash:
      append("recovery_rounds", event.delay_rounds);
      append("checkpoint_round", event.checkpoint);
      break;
    case FaultKind::kStraggler:
      append("delay_rounds", event.delay_rounds);
      break;
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
      append("words", event.words);
      break;
    case FaultKind::kCheckpoint:
      append("bytes", event.checkpoint);
      break;
    case FaultKind::kDeadline:
      append("work", event.words);
      append("retry_rounds", event.delay_rounds);
      break;
    case FaultKind::kCorrupt:
      append("words", event.words);
      break;
    case FaultKind::kReorder:
      append("messages", event.words);
      break;
    case FaultKind::kQuarantine:
      append("streak", event.words);
      append("retry_rounds", event.delay_rounds);
      break;
  }
  len += std::snprintf(buf + len, sizeof(buf) - static_cast<size_t>(len), "}");
  return std::string(buf, static_cast<std::size_t>(len));
}

}  // namespace

std::string to_json(const RoundTrace& trace) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"round\":%llu,\"drain\":%d,\"wall_ms\":%.6g,"
                "\"messages\":%llu,\"words_sent\":%llu,\"words_recv\":%llu,"
                "\"max_recv_words\":%llu",
                static_cast<unsigned long long>(trace.round),
                trace.drain ? 1 : 0, trace.wall_ms,
                static_cast<unsigned long long>(trace.messages),
                static_cast<unsigned long long>(trace.words_sent),
                static_cast<unsigned long long>(trace.words_recv),
                static_cast<unsigned long long>(trace.max_recv_words));
  std::string out = buf;
  // Optional keys appear only when carrying information, so traces from
  // default configurations keep the historical byte format.
  if (trace.violations != 0) {
    std::snprintf(buf, sizeof(buf), ",\"violations\":%llu",
                  static_cast<unsigned long long>(trace.violations));
    out += buf;
  }
  if (trace.degraded_subrounds != 0) {
    std::snprintf(buf, sizeof(buf), ",\"degraded_subrounds\":%llu",
                  static_cast<unsigned long long>(trace.degraded_subrounds));
    out += buf;
  }
  if (!trace.faults.empty()) {
    out += ",\"faults\":[";
    for (std::size_t i = 0; i < trace.faults.size(); ++i) {
      if (i != 0) out += ',';
      out += fault_to_json(trace.faults[i]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

}  // namespace rsets::mpc
