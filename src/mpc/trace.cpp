#include "mpc/trace.hpp"

#include <cstdio>

namespace rsets::mpc {

std::string to_json(const RoundTrace& trace) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"round\":%llu,\"drain\":%d,\"wall_ms\":%.6g,"
                "\"messages\":%llu,\"words_sent\":%llu,\"words_recv\":%llu,"
                "\"max_recv_words\":%llu}",
                static_cast<unsigned long long>(trace.round),
                trace.drain ? 1 : 0, trace.wall_ms,
                static_cast<unsigned long long>(trace.messages),
                static_cast<unsigned long long>(trace.words_sent),
                static_cast<unsigned long long>(trace.words_recv),
                static_cast<unsigned long long>(trace.max_recv_words));
  return buf;
}

}  // namespace rsets::mpc
