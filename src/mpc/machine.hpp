// A simulated MPC machine: storage accounting, an outbox, and a private
// deterministic RNG stream.
//
// Thread discipline: when the simulator runs rounds in parallel
// (MpcConfig::num_threads != 1), each Machine is touched by exactly one
// worker during a phase — its own callback. Everything here (storage
// counters, outbox, RNG) is therefore unsynchronized by design; cross-
// machine state must live in messages or in driver arrays indexed so that
// machine i's callback writes only slice i (and never through a bit-packed
// container such as std::vector<bool>, whose neighboring elements share
// bytes).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mpc/message.hpp"
#include "util/rng.hpp"

namespace rsets::mpc {

class Simulator;

class Machine {
 public:
  Machine(MachineId id, const MpcConfig& config);

  MachineId id() const { return id_; }

  // --- persistent storage accounting -------------------------------------
  // Algorithms charge the words they keep across rounds (adjacency lists,
  // replicated bitsets, gathered subgraphs, ...). Violations of the memory
  // budget surface according to MpcConfig::enforce.
  void charge_storage(std::size_t words);
  void release_storage(std::size_t words);
  std::size_t storage_words() const { return storage_words_; }

  // --- sending ------------------------------------------------------------
  void send(MachineId dst, std::uint32_t tag, std::vector<Word> payload);
  void send_word(MachineId dst, std::uint32_t tag, Word value) {
    send(dst, tag, std::vector<Word>{value});
  }

  // --- randomness ---------------------------------------------------------
  // Per-machine stream; the simulator aggregates draw counts into metrics
  // so determinism claims are checkable.
  Rng& rng() { return rng_; }

 private:
  friend class Simulator;

  MachineId id_;
  const MpcConfig* config_;
  std::size_t storage_words_ = 0;
  std::size_t peak_storage_words_ = 0;
  std::uint64_t sent_words_this_round_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<Message> outbox_;
  Rng rng_;
};

// Messages delivered to one machine in one round, sorted by (src, tag) for
// deterministic iteration.
class Inbox {
 public:
  explicit Inbox(std::vector<Message> messages);

  std::span<const Message> all() const { return messages_; }
  bool empty() const { return messages_.empty(); }
  std::size_t size() const { return messages_.size(); }

  // All messages with the given tag (contiguous thanks to sorting).
  std::span<const Message> with_tag(std::uint32_t tag) const;

  std::uint64_t total_words() const { return total_words_; }

 private:
  std::vector<Message> messages_;
  std::uint64_t total_words_ = 0;
};

}  // namespace rsets::mpc
