// A simulated MPC machine: storage accounting, per-destination aggregation
// buffers, and a private deterministic RNG stream.
//
// Thread discipline: when the simulator runs rounds in parallel
// (MpcConfig::num_threads != 1), each Machine is touched by exactly one
// worker during the callback pass — its own. During the destination-sharded
// merge pass a machine's per-destination arena slots are each touched by
// exactly one worker (the one owning that destination); distinct vector
// elements are distinct objects, so this too is race-free without locks.
// Everything here (storage counters, outbox arenas, RNG) is therefore
// unsynchronized by design; cross-machine state must live in messages or in
// driver arrays indexed so that machine i's callback writes only slice i
// (and never through a bit-packed container such as std::vector<bool>,
// whose neighboring elements share bytes).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mpc/message.hpp"
#include "util/rng.hpp"

namespace rsets::mpc {

class Simulator;

class Machine {
 public:
  Machine(MachineId id, const MpcConfig& config);

  MachineId id() const { return id_; }

  // --- persistent storage accounting -------------------------------------
  // Algorithms charge the words they keep across rounds (adjacency lists,
  // replicated bitsets, gathered subgraphs, ...). Violations of the memory
  // budget surface according to MpcConfig::budget_policy.
  void charge_storage(std::size_t words);
  void release_storage(std::size_t words);
  std::size_t storage_words() const { return storage_words_; }

  // --- sending ------------------------------------------------------------
  // The batch send API: one logical message whose payload is copied (once)
  // into the per-destination aggregation arena. Accepts anything
  // span-convertible — a std::vector<Word> lvalue binds directly, so the
  // common `send(dst, tag, bucket)` call sites need no conversion.
  void send(MachineId dst, std::uint32_t tag, std::span<const Word> payload) {
    check_dst(dst);
    const std::size_t len_at = open_record(dst, tag);
    std::vector<Word>& arena = out_arenas_[dst];
    arena.insert(arena.end(), payload.begin(), payload.end());
    arena[len_at] = payload.size();
    charge_send(payload.size() + kHeaderWords);
  }

  // Streaming construction of one message directly inside the aggregation
  // arena — no intermediate payload vector at all. The record is framed when
  // the Sender is opened and finalized (length patched, bandwidth charged)
  // when it goes out of scope:
  //
  //   m.sender(dst, tag).push(v).push(deg);   // one 2-word-payload message
  //
  // At most one Sender per destination may be open at a time (a second
  // would interleave into the same arena record).
  class Sender {
   public:
    Sender(Sender&& other) noexcept
        : machine_(other.machine_), dst_(other.dst_), len_at_(other.len_at_) {
      other.machine_ = nullptr;
    }
    Sender(const Sender&) = delete;
    Sender& operator=(const Sender&) = delete;
    Sender& operator=(Sender&&) = delete;
    ~Sender() { close(); }

    Sender& push(Word value) {
      machine_->out_arenas_[dst_].push_back(value);
      return *this;
    }
    Sender& append(std::span<const Word> values) {
      std::vector<Word>& out = machine_->out_arenas_[dst_];
      out.insert(out.end(), values.begin(), values.end());
      return *this;
    }

   private:
    friend class Machine;
    Sender(Machine* machine, MachineId dst, std::size_t len_at)
        : machine_(machine), dst_(dst), len_at_(len_at) {}
    void close() {
      if (machine_ == nullptr) return;
      Machine& m = *machine_;
      machine_ = nullptr;
      std::vector<Word>& arena = m.out_arenas_[dst_];
      const std::size_t payload_words = arena.size() - len_at_ - 1;
      arena[len_at_] = payload_words;
      m.charge_send(payload_words + kHeaderWords);
    }

    Machine* machine_;
    MachineId dst_;
    // Arena index of the record's payload-length word.
    std::size_t len_at_;
  };

  Sender sender(MachineId dst, std::uint32_t tag) {
    check_dst(dst);
    return Sender(this, dst, open_record(dst, tag));
  }

  // --- randomness ---------------------------------------------------------
  // Per-machine stream; the simulator aggregates draw counts into metrics
  // so determinism claims are checkable.
  Rng& rng() { return rng_; }

 private:
  friend class Simulator;

  // Opens a framed record in the dst arena and returns the index of its
  // payload-length word.
  std::size_t open_record(MachineId dst, std::uint32_t tag) {
    std::vector<Word>& arena = out_arenas_[dst];
    arena.push_back(tag);
    arena.push_back(0);  // payload length, patched when the record closes
    ++out_counts_[dst];
    return arena.size() - 1;
  }
  // Charges `words` against this round's send budget, enforcing
  // MpcConfig::budget_policy. The over-budget tail is out of line so the
  // per-message fast path stays a compare-and-add.
  void charge_send(std::size_t words) {
    sent_words_this_round_ += words;
    if (sent_words_this_round_ > config_->memory_words) send_budget_overflow();
  }
  void send_budget_overflow();
  void check_dst(MachineId dst) const {
    if (dst >= config_->num_machines) bad_dst();
  }
  [[noreturn]] static void bad_dst();

  MachineId id_;
  const MpcConfig* config_;
  std::size_t storage_words_ = 0;
  std::size_t peak_storage_words_ = 0;
  std::uint64_t sent_words_this_round_ = 0;
  std::uint64_t violations_ = 0;
  // One framed-record arena and message count per destination. Arenas are
  // std::moved into AggBuffers at outbox merge and replaced from the
  // simulator's recycle pool, so steady-state rounds allocate nothing on
  // the send path.
  std::vector<std::vector<Word>> out_arenas_;
  std::vector<std::uint32_t> out_counts_;
  Rng rng_;
};

// Everything delivered to one machine in one phase: whole per-(src, dst)
// aggregation buffers plus a flat index of per-message views sorted by
// (tag, src) for deterministic iteration. Views alias the buffers' arenas —
// building an Inbox copies no payload words.
class Inbox {
 public:
  // An empty inbox ready for build(); the simulator keeps one per machine
  // and rebuilds it each phase so the index vector's capacity is reused.
  Inbox() = default;

  // `buffers` must outlive the Inbox (the simulator owns them for the whole
  // phase and recycles the arenas only after every callback returned).
  explicit Inbox(std::span<const AggBuffer> buffers) { build(buffers); }

  // Rebuilds the index over a new phase's buffers, retaining capacity.
  // Throws MpcViolation on malformed framing.
  void build(std::span<const AggBuffer> buffers);

  std::span<const MessageView> all() const { return index_; }
  bool empty() const { return index_.empty(); }
  std::size_t size() const { return index_.size(); }

  // All messages with the given tag (contiguous thanks to sorting).
  std::span<const MessageView> with_tag(std::uint32_t tag) const;

  std::uint64_t total_words() const { return total_words_; }

 private:
  std::vector<MessageView> index_;
  std::uint64_t total_words_ = 0;
};

}  // namespace rsets::mpc
