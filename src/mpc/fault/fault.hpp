// Fault model for the MPC simulator (configuration + event records).
//
// Real MPC deployments run on clusters where stragglers and worker failures
// are the norm; the simulator models them as *transport- and barrier-level*
// perturbations that are deterministic given FaultConfig::seed and never
// change algorithm results — only the cost ledger (rounds, words) and the
// trace. The six kinds:
//
//   crash      a machine loses its volatile state at a superstep barrier and
//              is restored from the last checkpoint; the supersteps between
//              that checkpoint and the crash are re-executed (charged as
//              recovery rounds — re-execution is bit-deterministic, so the
//              simulator restores the barrier image byte-for-byte from the
//              snapshot and charges the delta instead of recomputing it).
//   straggler  a machine finishes its superstep `delay_rounds` late; the BSP
//              barrier makes everyone wait, so the whole round is charged.
//   drop       a message copy is lost in transit; the reliable-delivery
//              layer retransmits within the barrier (words charged twice,
//              content delivered intact).
//   duplicate  a message is transmitted twice; the receiver deduplicates
//              (words charged twice, inbox unchanged).
//   corrupt    a seeded bit of a message payload flips in transit; the
//              integrity layer (see "Integrity & quarantine" in DESIGN.md
//              §4.4) detects the FNV checksum mismatch on receive and
//              requests a retransmission (words charged again, like drops).
//              Retries are bounded: a source machine that keeps corrupting
//              is quarantined and its round re-executed from the barrier
//              snapshot through the checkpoint path.
//   reorder    the in-flight buffers of one delivery are permuted; the
//              transport restores canonical order from the per-buffer
//              sequence numbers stamped at the barrier merge (no words
//              charged — reordering costs determinism, not bandwidth, and
//              the sequence numbers ride in the charged framing words).
//
// Faults are drawn from the injector's own RNG stream (see
// fault/injector.hpp), never from the per-machine algorithm streams, so a
// fault-free run is bit-identical to a build without this subsystem and
// MpcMetrics::random_words still counts algorithm randomness only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rsets::mpc {

enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kStraggler = 1,
  kDrop = 2,
  kDuplicate = 3,
  // Not a fault: records that a durable checkpoint was taken this round.
  kCheckpoint = 4,
  // A machine exceeded MpcConfig::round_deadline (work units = words
  // received + words sent in the phase) and was speculatively re-executed;
  // emitted by the simulator itself, never by the injector.
  kDeadline = 5,
  // A message payload bit-flip detected by the receive-side checksum and
  // healed by retransmission (one event per corrupted delivery attempt).
  kCorrupt = 6,
  // The delivery order of one phase's in-flight buffers was permuted; the
  // transport re-sorted them back into canonical order.
  kReorder = 7,
  // A source machine exceeded the corruption streak (or exhausted the
  // per-message retry bound) and its round was re-executed from the barrier
  // snapshot; emitted by the simulator itself, never by the injector.
  kQuarantine = 8,
};

// Stable spelling used in traces and CLI specs.
const char* fault_kind_name(FaultKind kind);

// One injected fault (or checkpoint), as recorded in RoundTrace::faults.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  // Round counter value when the event fired.
  std::uint64_t round = 0;
  // Machine hit (crash/straggler) or message source (drop/duplicate);
  // unused for checkpoints.
  std::uint32_t machine = 0;
  // Straggler: barrier stall charged. Crash: supersteps re-executed from the
  // last durable checkpoint. Deadline: speculative retry rounds charged
  // (exponential backoff in the miss streak). Quarantine: re-executed rounds
  // charged.
  std::uint64_t delay_rounds = 0;
  // Crash: round of the durable checkpoint recovery started from.
  // Checkpoint: size of the snapshot in bytes.
  std::uint64_t checkpoint = 0;
  // Drop/duplicate/corrupt: words retransmitted. Deadline: work units
  // observed. Reorder: messages permuted. Quarantine: corruption streak that
  // triggered it.
  std::uint64_t words = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// A crash or straggler pinned to a specific round and machine, independent
// of the probability knobs — the way chaos tests and the CLI express
// deterministic plans. Rounds are 1-based values of MpcMetrics::rounds at
// injection time. Transport faults (drop/duplicate) are per-message and only
// exist as probabilities.
struct ScheduledFault {
  FaultKind kind = FaultKind::kCrash;
  std::uint64_t round = 0;
  std::uint32_t machine = 0;
  std::uint64_t delay_rounds = 1;  // stragglers only
};

struct FaultConfig {
  // Master switch; when false the simulator takes the historical code path
  // (no injector is constructed, no fault RNG exists).
  bool enabled = false;
  // Seed of the injector's private RNG stream. Independent from
  // MpcConfig::seed so enabling faults never perturbs algorithm randomness.
  std::uint64_t seed = 0xFA017;
  // Per-machine, per-round probabilities.
  double crash_prob = 0.0;
  double straggler_prob = 0.0;
  // Per-message, per-delivery probabilities.
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  // Per-message, per-delivery-attempt probability of a payload bit flip
  // (retransmissions re-draw, so a noisy link can corrupt its own retry).
  // Messages without payload words cannot corrupt — the 2-word header
  // carries the addressing and checksum the defense depends on.
  double corrupt_prob = 0.0;
  // Per-phase probability that this delivery's in-flight messages arrive in
  // a seeded random permutation instead of canonical merge order.
  double reorder_prob = 0.0;
  // Straggler delays are drawn uniformly from [1, max_straggler_rounds].
  std::uint64_t max_straggler_rounds = 4;
  // Deterministic plan, applied in addition to the probability draws.
  std::vector<ScheduledFault> schedule;
};

// Parses the CLI/bench fault spec: comma-separated tokens
//
//   crash@R:M            crash machine M at round R
//   straggler@R:M:D      machine M stalls D rounds at round R (D default 1)
//   crash~P straggler~P  per-machine, per-round probabilities
//   drop~P dup~P         per-message probabilities
//   corrupt~P            per-delivery-attempt payload bit-flip probability
//   reorder~P            per-phase delivery-permutation probability
//   seed=X               injector RNG seed
//
// An empty spec returns a disabled config; any token enables injection.
// Malformed or unknown tokens are rejected with rsets::Error
// (ErrorCode::kBadFlag) naming the 1-based token position — an unknown
// fault kind must never be silently ignored.
FaultConfig parse_fault_spec(const std::string& spec);

}  // namespace rsets::mpc
