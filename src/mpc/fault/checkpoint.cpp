#include "mpc/fault/checkpoint.hpp"

#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "util/fnv.hpp"

namespace rsets::mpc {
namespace {

// Reads and header-validates one file. Decode failures (bad magic, wrong
// version, truncation) throw CheckpointError; the caller decides whether a
// fallback exists.
Checkpoint read_one_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("read_checkpoint_file: cannot open " + path);
  }
  Checkpoint checkpoint;
  checkpoint.bytes.assign(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
  // Validate the header and recover the barrier round without decoding the
  // full state (that needs the simulator's registered hooks).
  SnapshotReader r(checkpoint.bytes.data(), checkpoint.bytes.size());
  if (r.u64() != kCheckpointMagic) {
    throw CheckpointError("read_checkpoint_file: bad magic in " + path);
  }
  if (r.u64() != kCheckpointVersion) {
    throw CheckpointError("read_checkpoint_file: unsupported version in " +
                          path);
  }
  // A torn or bit-rotted image fails here rather than at restore time, so
  // the caller's .prev fallback can still save the run.
  verify_checkpoint_image(checkpoint.bytes, "read_checkpoint_file: " + path);
  checkpoint.round = r.u64();
  return checkpoint;
}

}  // namespace

void seal_checkpoint(std::vector<std::uint8_t>& bytes) {
  const std::uint64_t digest = fnv1a_bytes(bytes.data(), bytes.size());
  SnapshotWriter w(bytes);
  w.u64(digest);
}

void verify_checkpoint_image(const std::vector<std::uint8_t>& bytes,
                             const std::string& context) {
  if (bytes.size() < sizeof(std::uint64_t)) {
    throw CheckpointError(context + ": image too short for a checksum");
  }
  const std::size_t body = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof(stored));
  if (fnv1a_bytes(bytes.data(), body) != stored) {
    throw CheckpointError(context + ": whole-image checksum mismatch");
  }
}

void write_checkpoint_file(const Checkpoint& checkpoint,
                           const std::string& path) {
  if (checkpoint.empty()) {
    throw CheckpointError("write_checkpoint_file: empty checkpoint");
  }
  // Atomic publish: the bytes land in a sibling temp file, reach the disk via
  // fsync, and only then replace `path` with rename(2) — so a crash at any
  // point leaves either the old complete checkpoint or the new complete one,
  // never a torn RSCKPT01 file.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw CheckpointError("write_checkpoint_file: cannot open " + tmp);
  }
  const std::uint8_t* data = checkpoint.bytes.data();
  std::size_t left = checkpoint.bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n <= 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      throw CheckpointError("write_checkpoint_file: short write to " + tmp);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  const bool closed = ::close(fd) == 0;
  if (!synced || !closed) {
    std::remove(tmp.c_str());
    throw CheckpointError("write_checkpoint_file: cannot sync " + tmp);
  }
  // Keep the checkpoint being replaced as `.prev`, the fallback
  // read_checkpoint_file uses when the primary fails to decode. Best-effort:
  // on the first write there is nothing to rotate.
  std::rename(path.c_str(), (path + ".prev").c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("write_checkpoint_file: cannot publish " + path);
  }
}

Checkpoint read_checkpoint_file(const std::string& path) {
  try {
    return read_one_checkpoint(path);
  } catch (const CheckpointError& primary) {
    // Reject-and-fall-back: a corrupt or unreadable primary is not fatal if
    // the previous generation (rotated aside by write_checkpoint_file) still
    // decodes — recovery just restarts from one checkpoint earlier. When no
    // usable fallback exists, surface the original failure.
    try {
      return read_one_checkpoint(path + ".prev");
    } catch (const CheckpointError&) {
      throw CheckpointError(std::string(primary.what()) +
                            " (no usable .prev fallback)");
    }
  }
}

}  // namespace rsets::mpc
