#include "mpc/fault/checkpoint.hpp"

#include <fstream>

namespace rsets::mpc {

void write_checkpoint_file(const Checkpoint& checkpoint,
                           const std::string& path) {
  if (checkpoint.empty()) {
    throw CheckpointError("write_checkpoint_file: empty checkpoint");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw CheckpointError("write_checkpoint_file: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(checkpoint.bytes.data()),
            static_cast<std::streamsize>(checkpoint.bytes.size()));
  if (!out) {
    throw CheckpointError("write_checkpoint_file: short write to " + path);
  }
}

Checkpoint read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("read_checkpoint_file: cannot open " + path);
  }
  Checkpoint checkpoint;
  checkpoint.bytes.assign(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
  // Validate the header and recover the barrier round without decoding the
  // full state (that needs the simulator's registered hooks).
  SnapshotReader r(checkpoint.bytes.data(), checkpoint.bytes.size());
  if (r.u64() != kCheckpointMagic) {
    throw CheckpointError("read_checkpoint_file: bad magic in " + path);
  }
  if (r.u64() != kCheckpointVersion) {
    throw CheckpointError("read_checkpoint_file: unsupported version in " +
                          path);
  }
  checkpoint.round = r.u64();
  return checkpoint;
}

}  // namespace rsets::mpc
