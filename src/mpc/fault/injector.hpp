// Seeded fault injection for the MPC simulator.
//
// The injector owns a private RNG stream and is consulted only on the
// simulator's calling thread, in a fixed order (machines in id order at
// every round barrier, in-flight buffers in canonical merge order at every
// delivery), so the injected fault sequence is a pure function of
// (FaultConfig, round structure) — identical at any MpcConfig::num_threads
// and reproducible for trace replay.
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/fault/fault.hpp"
#include "util/rng.hpp"

namespace rsets::mpc {

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, std::uint32_t num_machines);

  // Crash/straggler draws for the barrier entering `round`: one flip per
  // machine per kind, plus any scheduled faults pinned to this round.
  // Events come back with kind/machine/delay filled in; the simulator owns
  // recovery bookkeeping (checkpoint round, recovery charge).
  std::vector<FaultEvent> barrier_faults(std::uint64_t round);

  // Transport draws for one in-flight message about to be delivered in
  // `round`. At most one of drop/duplicate fires per message (drop wins).
  // Returns true if a transport fault fired and fills `event`.
  bool transport_fault(std::uint64_t round, std::uint32_t src,
                       std::uint64_t words, FaultEvent& event);

  // Corruption draw for one delivery attempt of a message with
  // `payload_bits` flippable bits. Consumes exactly one flip per call (plus
  // one index draw when the flip fires), so the stream stays aligned across
  // replays. On a hit fills `event` (kCorrupt) and `bit_index` with the bit
  // to flip and returns true. Messages without payload bits consume the
  // flip but never corrupt. The simulator calls this in a bounded retry
  // loop: a retransmission re-draws, so a noisy link can corrupt its own
  // retry.
  bool corrupt_fault(std::uint64_t round, std::uint32_t src,
                     std::uint64_t words, std::uint64_t payload_bits,
                     FaultEvent& event, std::uint64_t& bit_index);

  // Reorder draw for one delivery of `n` in-flight messages. Consumes one
  // flip per phase with messages; on a hit fills `perm` with a seeded
  // permutation of [0, n) and returns true.
  bool reorder_fault(std::uint64_t round, std::size_t n,
                     std::vector<std::uint32_t>& perm);

  // True if any probability knob or scheduled entry can produce transport
  // faults (lets the delivery loop skip per-message work entirely).
  bool has_transport_faults() const {
    return config_.drop_prob > 0.0 || config_.duplicate_prob > 0.0;
  }

  // True if payload corruption can fire — the simulator then activates
  // checksum verification regardless of MpcConfig::integrity, because the
  // attack is survivable only with the defense on.
  bool has_corrupt_faults() const { return config_.corrupt_prob > 0.0; }

  // True if delivery-order permutation can fire.
  bool has_reorder_faults() const { return config_.reorder_prob > 0.0; }

  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  std::uint32_t num_machines_;
  Rng rng_;
};

}  // namespace rsets::mpc
