// Versioned binary snapshots of MPC simulator state.
//
// A Checkpoint captures everything needed to restore a run to a superstep
// barrier: the metrics ledger, in-flight messages, per-machine counters and
// RNG cursors, and — via Snapshotable hooks registered by the algorithm
// driver — the per-machine algorithm state slices (activity bitsets, result
// accumulators, priority arrays, ...). The encoding is a little-endian
// byte stream behind a magic/version header, so checkpoints can be held in
// memory for crash recovery, written to disk, and validated on decode.
//
// Snapshotable hooks run on the simulator's calling thread at superstep
// barriers only (never concurrently with round callbacks), so they may read
// any driver state without synchronization.
#pragma once

#include <concepts>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

namespace rsets::mpc {

class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

// --- byte-stream primitives ------------------------------------------------

class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u64(std::uint64_t value) {
    const std::size_t at = out_->size();
    out_->resize(at + sizeof(value));
    std::memcpy(out_->data() + at, &value, sizeof(value));
  }

  void bytes(const void* data, std::size_t size) {
    const std::size_t at = out_->size();
    out_->resize(at + size);
    if (size != 0) std::memcpy(out_->data() + at, data, size);
  }

  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  // Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    bytes(v.data(), v.size() * sizeof(T));
  }

  // std::vector<bool> is bit-packed; serialize one byte per element (these
  // vectors are n-bit activity masks — small next to adjacency payloads).
  void vec(const std::vector<bool>& v) {
    u64(v.size());
    for (const bool b : v) {
      const std::uint8_t byte = b ? 1 : 0;
      bytes(&byte, 1);
    }
  }

  // field() overloads so FieldsSnapshot can fold over mixed members.
  template <std::unsigned_integral T>
  void field(const T& v) {
    u64(v);
  }
  template <typename T>
  void field(const std::vector<T>& v) {
    vec(v);
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class SnapshotReader {
 public:
  SnapshotReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint64_t u64() {
    std::uint64_t value = 0;
    bytes(&value, sizeof(value));
    return value;
  }

  void bytes(void* out, std::size_t size) {
    if (size > size_ - at_) {
      throw CheckpointError("checkpoint truncated: read past end");
    }
    if (size != 0) std::memcpy(out, data_ + at_, size);
    at_ += size;
  }

  std::string str() {
    std::string s(checked_count(u64(), 1), '\0');
    bytes(s.data(), s.size());
    return s;
  }

  template <typename T>
  void vec(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    v.resize(checked_count(u64(), sizeof(T)));
    bytes(v.data(), v.size() * sizeof(T));
  }

  void vec(std::vector<bool>& v) {
    const std::size_t n = checked_count(u64(), 1);
    v.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint8_t byte = 0;
      bytes(&byte, 1);
      v[i] = byte != 0;
    }
  }

  template <std::unsigned_integral T>
  void field(T& v) {
    v = static_cast<T>(u64());
  }
  template <typename T>
  void field(std::vector<T>& v) {
    vec(v);
  }

  std::size_t remaining() const { return size_ - at_; }

 private:
  // Rejects length prefixes that cannot fit in the remaining bytes before
  // any allocation happens (corrupt-input hardening).
  std::size_t checked_count(std::uint64_t count, std::size_t elem_size) {
    if (count > (size_ - at_) / elem_size) {
      throw CheckpointError("checkpoint corrupt: impossible length prefix");
    }
    return static_cast<std::size_t>(count);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

// --- driver hooks ----------------------------------------------------------

class Snapshotable {
 public:
  virtual ~Snapshotable() = default;
  virtual void save(SnapshotWriter& w) const = 0;
  virtual void restore(SnapshotReader& r) = 0;
};

// Serializes a fixed list of driver members (counters and vectors) by
// reference — the one-liner algorithm drivers use to register their state:
//
//   auto snap = mpc::snapshot_of(result.ruling_set, result.phases, priority);
//   sim.register_snapshotable("det_ruling", &snap);
template <typename... Fields>
class FieldsSnapshot final : public Snapshotable {
 public:
  explicit FieldsSnapshot(Fields&... fields) : fields_(&fields...) {}

  void save(SnapshotWriter& w) const override {
    std::apply([&w](auto*... f) { (w.field(*f), ...); }, fields_);
  }

  void restore(SnapshotReader& r) override {
    std::apply([&r](auto*... f) { (r.field(*f), ...); }, fields_);
  }

 private:
  std::tuple<Fields*...> fields_;
};

template <typename... Fields>
FieldsSnapshot<Fields...> snapshot_of(Fields&... fields) {
  return FieldsSnapshot<Fields...>(fields...);
}

// --- the checkpoint object -------------------------------------------------

struct Checkpoint {
  // Value of MpcMetrics::rounds at the barrier this snapshot captures.
  std::uint64_t round = 0;
  // Encoded state (see simulator.cpp for the section layout). Starts with
  // the magic/version header below.
  std::vector<std::uint8_t> bytes;

  bool empty() const { return bytes.empty(); }
};

inline constexpr std::uint64_t kCheckpointMagic = 0x3130544B43535253ull;  // "RSCKPT01"
// v2: metrics ledger gains degraded_subrounds/deadline_misses/
// speculative_rounds, per-machine section gains the deadline-miss streak.
// v3: metrics ledger gains corrupt_detected/integrity_retries/
// quarantined_rounds, per-machine section gains the corruption streak, and
// the image ends with a whole-image FNV-1a digest (see seal_checkpoint) so
// bit rot in a durable checkpoint is detected at read time instead of
// surfacing as a silently wrong restore.
// v4: the in-flight section serializes aggregated transport buffers —
// (src, dst, messages, arena) per buffer, framing validated on decode —
// instead of per-message (src, dst, tag, payload) records.
inline constexpr std::uint64_t kCheckpointVersion = 4;

// Appends the 64-bit FNV-1a digest of `bytes` to `bytes` itself — the last
// encoding step of every v3 image. The digest covers everything before it,
// including the magic/version header.
void seal_checkpoint(std::vector<std::uint8_t>& bytes);

// Recomputes and checks the trailing digest; throws CheckpointError naming
// `context` on a mismatch or an image too short to carry one. Called both
// when a file is read back (catching on-disk rot, enabling the .prev
// fallback) and before an in-memory restore decodes anything.
void verify_checkpoint_image(const std::vector<std::uint8_t>& bytes,
                             const std::string& context);

// Disk round trip (binary, exactly Checkpoint::bytes). Throws
// CheckpointError on I/O failure or a bad header.
//
// Writes are atomic: bytes go to `path.tmp`, are fsync'd, and rename(2) over
// `path`, rotating any prior checkpoint to `path.prev` — a crash mid-write
// can never leave a torn file. Reads fall back to `path.prev` when `path`
// fails to decode, so one corrupt generation costs one checkpoint interval,
// not the run.
void write_checkpoint_file(const Checkpoint& checkpoint,
                           const std::string& path);
Checkpoint read_checkpoint_file(const std::string& path);

}  // namespace rsets::mpc
