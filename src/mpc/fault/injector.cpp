#include "mpc/fault/injector.hpp"

#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "util/error.hpp"

namespace rsets::mpc {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

// A malformed --faults spec is a usage error like any other bad flag value:
// reject it with the structured taxonomy (and the 1-based token position,
// mirroring the line numbers graph/io.cpp reports), never run with a
// silently-ignored fault kind.
[[noreturn]] void bad_token(std::size_t index, const std::string& token,
                            const std::string& why) {
  throw Error(ErrorCode::kBadFlag, "fault spec token " + std::to_string(index) +
                                       " ('" + token + "'): " + why);
}

std::uint64_t parse_u64(const std::string& s, std::size_t index,
                        const std::string& token) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size()) {
    bad_token(index, token, "'" + s + "' is not a number");
  }
  return v;
}

double parse_prob(const std::string& s, std::size_t index,
                  const std::string& token) {
  char* end = nullptr;
  const double p = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || p < 0.0 || p > 1.0) {
    bad_token(index, token, "'" + s + "' is not a probability in [0, 1]");
  }
  return p;
}

}  // namespace

FaultConfig parse_fault_spec(const std::string& spec) {
  FaultConfig config;
  if (spec.empty()) return config;
  config.enabled = true;
  const std::vector<std::string> tokens = split(spec, ',');
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t pos = i + 1;  // 1-based, like io.cpp line numbers
    if (token.empty()) continue;
    if (const std::size_t at = token.find('@'); at != std::string::npos) {
      const std::string kind = token.substr(0, at);
      const std::vector<std::string> parts = split(token.substr(at + 1), ':');
      ScheduledFault f;
      if (kind == "crash" && parts.size() == 2) {
        f.kind = FaultKind::kCrash;
      } else if (kind == "straggler" &&
                 (parts.size() == 2 || parts.size() == 3)) {
        f.kind = FaultKind::kStraggler;
        if (parts.size() == 3) {
          f.delay_rounds = parse_u64(parts[2], pos, token);
        }
      } else if (kind == "crash" || kind == "straggler") {
        bad_token(pos, token,
                  "want crash@R:M or straggler@R:M[:D]");
      } else {
        bad_token(pos, token,
                  "unknown scheduled fault kind '" + kind +
                      "' (only crash and straggler can be scheduled; "
                      "transport faults are per-message probabilities)");
      }
      f.round = parse_u64(parts[0], pos, token);
      f.machine = static_cast<std::uint32_t>(parse_u64(parts[1], pos, token));
      config.schedule.push_back(f);
      continue;
    }
    if (const std::size_t tilde = token.find('~'); tilde != std::string::npos) {
      const std::string kind = token.substr(0, tilde);
      const double p = parse_prob(token.substr(tilde + 1), pos, token);
      if (kind == "crash") {
        config.crash_prob = p;
      } else if (kind == "straggler") {
        config.straggler_prob = p;
      } else if (kind == "drop") {
        config.drop_prob = p;
      } else if (kind == "dup") {
        config.duplicate_prob = p;
      } else if (kind == "corrupt") {
        config.corrupt_prob = p;
      } else if (kind == "reorder") {
        config.reorder_prob = p;
      } else {
        bad_token(pos, token,
                  "unknown fault kind '" + kind +
                      "' (want crash|straggler|drop|dup|corrupt|reorder)");
      }
      continue;
    }
    if (token.rfind("seed=", 0) == 0) {
      config.seed = parse_u64(token.substr(5), pos, token);
      continue;
    }
    bad_token(pos, token,
              "unrecognized token (want kind@R:M[:D], kind~P, or seed=X)");
  }
  return config;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kCheckpoint:
      return "checkpoint";
    case FaultKind::kDeadline:
      return "deadline";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kQuarantine:
      return "quarantine";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultConfig& config,
                             std::uint32_t num_machines)
    : config_(config),
      num_machines_(num_machines),
      rng_(Rng::for_stream(config.seed, 0xFA17)) {
  auto check_prob = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(std::string("FaultInjector: ") + name +
                                  " must be in [0, 1]");
    }
  };
  check_prob(config_.crash_prob, "crash_prob");
  check_prob(config_.straggler_prob, "straggler_prob");
  check_prob(config_.drop_prob, "drop_prob");
  check_prob(config_.duplicate_prob, "duplicate_prob");
  check_prob(config_.corrupt_prob, "corrupt_prob");
  check_prob(config_.reorder_prob, "reorder_prob");
  if (config_.max_straggler_rounds == 0) {
    throw std::invalid_argument(
        "FaultInjector: max_straggler_rounds must be >= 1");
  }
  for (const ScheduledFault& f : config_.schedule) {
    if (f.kind == FaultKind::kCheckpoint) {
      throw std::invalid_argument(
          "FaultInjector: checkpoints are driven by "
          "MpcConfig::checkpoint_every, not the fault schedule");
    }
    if (f.kind == FaultKind::kDrop || f.kind == FaultKind::kDuplicate ||
        f.kind == FaultKind::kCorrupt || f.kind == FaultKind::kReorder) {
      throw std::invalid_argument(
          "FaultInjector: transport faults are per-message/per-phase; use "
          "the *_prob knobs instead of the schedule");
    }
    if (f.kind == FaultKind::kDeadline || f.kind == FaultKind::kQuarantine) {
      throw std::invalid_argument(
          "FaultInjector: deadline and quarantine events are emitted by the "
          "simulator, never scheduled");
    }
    if (f.machine >= num_machines_) {
      throw std::invalid_argument(
          "FaultInjector: scheduled fault names a machine out of range");
    }
  }
}

std::vector<FaultEvent> FaultInjector::barrier_faults(std::uint64_t round) {
  std::vector<FaultEvent> events;
  // Probability draws first, machines in id order, one flip per kind per
  // machine — a fixed consumption pattern keeps the stream aligned across
  // replays regardless of outcomes.
  if (config_.crash_prob > 0.0 || config_.straggler_prob > 0.0) {
    for (std::uint32_t m = 0; m < num_machines_; ++m) {
      const bool crash =
          config_.crash_prob > 0.0 && rng_.flip(config_.crash_prob);
      const bool straggle =
          config_.straggler_prob > 0.0 && rng_.flip(config_.straggler_prob);
      if (crash) {
        FaultEvent e;
        e.kind = FaultKind::kCrash;
        e.round = round;
        e.machine = m;
        events.push_back(e);
      } else if (straggle) {
        FaultEvent e;
        e.kind = FaultKind::kStraggler;
        e.round = round;
        e.machine = m;
        e.delay_rounds = 1 + rng_.below(config_.max_straggler_rounds);
        events.push_back(e);
      }
    }
  }
  for (const ScheduledFault& f : config_.schedule) {
    if (f.round != round) continue;
    FaultEvent e;
    e.kind = f.kind;
    e.round = round;
    e.machine = f.machine;
    if (f.kind == FaultKind::kStraggler) e.delay_rounds = f.delay_rounds;
    events.push_back(e);
  }
  return events;
}

bool FaultInjector::transport_fault(std::uint64_t round, std::uint32_t src,
                                    std::uint64_t words, FaultEvent& event) {
  if (!has_transport_faults()) return false;
  // One flip per knob per message, always consumed, so the stream stays
  // aligned whether or not a fault fires.
  const bool drop = config_.drop_prob > 0.0 && rng_.flip(config_.drop_prob);
  const bool dup =
      config_.duplicate_prob > 0.0 && rng_.flip(config_.duplicate_prob);
  if (!drop && !dup) return false;
  event.kind = drop ? FaultKind::kDrop : FaultKind::kDuplicate;
  event.round = round;
  event.machine = src;
  event.words = words;
  return true;
}

bool FaultInjector::corrupt_fault(std::uint64_t round, std::uint32_t src,
                                  std::uint64_t words,
                                  std::uint64_t payload_bits,
                                  FaultEvent& event,
                                  std::uint64_t& bit_index) {
  if (!has_corrupt_faults()) return false;
  // The flip is consumed for every delivery attempt — including ones on
  // payload-free messages that cannot corrupt — so the stream position is a
  // function of the delivery structure alone.
  const bool hit = rng_.flip(config_.corrupt_prob);
  if (!hit || payload_bits == 0) return false;
  bit_index = rng_.below(payload_bits);
  event.kind = FaultKind::kCorrupt;
  event.round = round;
  event.machine = src;
  event.words = words;
  return true;
}

bool FaultInjector::reorder_fault(std::uint64_t round, std::size_t n,
                                  std::vector<std::uint32_t>& perm) {
  (void)round;
  if (!has_reorder_faults() || n < 2) return false;
  if (!rng_.flip(config_.reorder_prob)) return false;
  // Seeded Fisher–Yates over [0, n): the adversary's permutation is as
  // reproducible as every other injected fault.
  perm.resize(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng_.below(i + 1));
    std::swap(perm[i], perm[j]);
  }
  return true;
}

}  // namespace rsets::mpc
