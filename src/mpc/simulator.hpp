// The synchronous MPC round loop with word-exact accounting.
//
// Algorithms are written as drivers: per-machine state lives in arrays owned
// by the algorithm, and each round executes a callback once per machine. The
// discipline (not enforceable in-process, but honored by every algorithm in
// this library, spot-checked in tests, and guarded by the TSan build — see
// tools/check_tsan.sh) is that the callback for machine i reads and writes
// only machine i's state slice and its Inbox; all cross-machine information
// flows through messages, which the simulator counts and caps.
//
// That discipline is exactly what makes rounds embarrassingly parallel: when
// MpcConfig::num_threads != 1 the callbacks of one phase execute on a worker
// pool, and the superstep barrier itself is sharded by destination machine
// (DESIGN.md §4.6): checksum verification, inbox index builds, and the
// canonical outbox merge each run as a parallel pass over destinations,
// while the ordered fault-event drain and quarantine/retry escalation stay
// on the coordinator. The merged in-flight sequence is still canonical —
// machines in id order, destinations ascending, send order within a buffer —
// because slot positions are fixed serially before workers move any bytes.
// The receive-side bandwidth check is word-exact and each machine's RNG
// stream is private — so results and MpcMetrics are bit-identical to
// sequential execution (asserted in tests/test_threaded_determinism.cpp and
// tests/test_transport_parity.cpp).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mpc/fault/checkpoint.hpp"
#include "mpc/fault/injector.hpp"
#include "mpc/machine.hpp"
#include "mpc/message.hpp"

namespace rsets::mpc {

// Bounded self-healing knobs of the integrity layer (DESIGN.md §4.4). A
// corrupted delivery is retransmitted at most kMaxIntegrityRetries times
// before the source is quarantined; a source whose messages corrupt in
// kQuarantineStreak consecutive phases is quarantined even when every
// individual delivery healed within the bound.
inline constexpr unsigned kMaxIntegrityRetries = 3;
inline constexpr std::uint64_t kQuarantineStreak = 3;

class Simulator {
 public:
  explicit Simulator(const MpcConfig& config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  MachineId num_machines() const { return config_.num_machines; }
  const MpcConfig& config() const { return config_; }
  Machine& machine(MachineId m) { return machines_.at(m); }
  const Machine& machine(MachineId m) const { return machines_.at(m); }

  // Threads the round callbacks actually run on (num_threads resolved
  // against hardware_concurrency and the machine count).
  unsigned effective_threads() const { return effective_threads_; }

  // Runs one synchronous round: delivers the messages sent in the previous
  // round, then invokes `body(machine, inbox)` once per machine (in id order
  // when sequential, concurrently otherwise), then collects outboxes in
  // machine-id order for the next delivery and enforces the receive-side
  // bandwidth cap.
  using RoundBody = std::function<void(Machine&, const Inbox&)>;
  void round(const RoundBody& body);

  // Delivers all in-flight messages now WITHOUT spending a round: in the BSP
  // semantics, receipt happens at the start of the next round, so a
  // send-round followed by drain() models one full MPC round (send + receive
  // of <= S words each). The receive-side bandwidth cap is enforced here.
  void drain(const RoundBody& body);

  // True if any aggregated buffer is still awaiting delivery.
  bool messages_in_flight() const { return !in_flight_.empty(); }

  // Folds per-machine counters (storage peaks, violations, RNG draws) into
  // the metrics without running a round; call after setup work done outside
  // `round`, or before reading final metrics.
  void sync_metrics();

  const MpcMetrics& metrics() const { return metrics_; }

  // Adds `extra` to the round counter without executing anything — used to
  // charge rounds that the simulation collapses for computational
  // feasibility but that the real algorithm would spend (documented at each
  // call site).
  void charge_rounds(std::uint64_t extra) { metrics_.rounds += extra; }

  // --- fault tolerance -----------------------------------------------------
  // Registers a named hook whose state is serialized into every checkpoint
  // and decoded back on restore. Drivers register their per-machine state
  // arrays (and the DistGraph) right after construction, before the first
  // round that might checkpoint or crash. Registration order defines the
  // encoding order; names are validated on restore. The hook must outlive
  // the simulator's last checkpoint/restore call.
  void register_snapshotable(const std::string& name, Snapshotable* hook);

  // Encodes the full simulator state at the current superstep barrier:
  // metrics, in-flight messages, per-machine counters and RNG cursors, and
  // every registered Snapshotable. Call only between rounds (never from a
  // round body).
  Checkpoint make_checkpoint() const;

  // Decodes `checkpoint` back into the simulator and the registered hooks,
  // returning the run to the barrier it was taken at. Throws CheckpointError
  // on version/shape mismatch or if the registered hooks differ from the
  // ones the checkpoint was written with.
  void restore_checkpoint(const Checkpoint& checkpoint);

  // Round of the last durable checkpoint (0 = the initial state, which is
  // always durable — it can be reconstructed from the input). Crash recovery
  // charges `current round - last_checkpoint_round()` re-executed rounds.
  std::uint64_t last_checkpoint_round() const { return last_checkpoint_round_; }

  // Most recent durable checkpoint image (empty until the first one is taken
  // by MpcConfig::checkpoint_every).
  const Checkpoint& last_checkpoint() const { return last_checkpoint_; }

 private:
  class WorkerPool;

  void run_phase(const RoundBody& body, bool reset_send_budget, bool drain);
  // Runs task(0..num_tasks-1): sequentially on the calling thread when
  // effective_threads_ == 1 (the historical behavior, including the early
  // exception exit), otherwise on the worker pool with every task executed,
  // exceptions captured per task, and the lowest-index exception rethrown —
  // the same exception a sequential run surfaces first.
  void run_indexed(std::uint32_t num_tasks,
                   const std::function<void(std::uint32_t)>& task);
  // Folds per-machine counters into metrics_; returns the cap violations
  // newly observed this phase (the per-round delta surfaced in traces).
  std::uint64_t refresh_metrics_after_round(
      const std::vector<std::uint64_t>& recv_words);
  // Barrier-level fault work for the round being entered: periodic durable
  // checkpoint, injected crashes (snapshot/scramble/restore + recovery
  // charge) and stragglers. Appends events to `events` and returns the round
  // charge to apply after the phase's trace hook ran.
  std::uint64_t handle_barrier(std::vector<FaultEvent>& events);

  // Arena recycling (coordinator thread only): delivered buffers hand their
  // arenas back after the phase's callbacks returned, and the outbox merge
  // hands them out again — so steady-state rounds allocate nothing on the
  // transport path.
  std::vector<Word> acquire_arena();
  void recycle_arena(std::vector<Word>&& arena);

  MpcConfig config_;
  unsigned effective_threads_ = 1;
  // Checksum verification on every delivery: forced on by corruption faults
  // (the attack is survivable only with the defense on) or opted into with
  // MpcConfig::integrity. Checksums ride in the charged message header, so
  // this flag never moves the word ledger.
  bool integrity_active_ = false;
  std::vector<Machine> machines_;
  // One aggregated buffer per (src, dst) pair with traffic, in canonical
  // merge order: machines in id order, destinations ascending within a
  // machine, send order within a buffer.
  std::vector<AggBuffer> in_flight_;
  // Spare arenas, cleared but with capacity retained (see acquire_arena).
  std::vector<std::vector<Word>> arena_pool_;
  // Phase-scoped scratch, kept as members so steady-state rounds reuse their
  // capacity. delivery_[d] holds the whole buffers addressed to machine d
  // this phase; inboxes_[d] is rebuilt over them each phase (its views alias
  // the delivered arenas, dead once those recycle). During a parallel phase
  // each index d is written by exactly one worker.
  std::vector<std::vector<AggBuffer>> delivery_;
  std::vector<Inbox> inboxes_;
  // Destination-sharded merge plan (DESIGN.md §4.6): the coordinator scans
  // out_counts_ in canonical order, recording one slot per (src, dst) pair
  // with traffic — the slot's index IS the buffer's in-flight position and
  // seq — plus a pre-acquired replacement arena (arena_pool_ is
  // coordinator-only). Workers then execute dest_slots_[d] (src-ascending by
  // construction), so each arena move targets a distinct slot.
  struct MergeSlot {
    MachineId src = 0;
    MachineId dst = 0;
    std::uint32_t messages = 0;
    std::vector<Word> replacement;
  };
  std::vector<MergeSlot> merge_slots_;
  std::vector<std::vector<std::uint32_t>> dest_slots_;
  MpcMetrics metrics_;
  std::unique_ptr<WorkerPool> pool_;  // created on demand, only if parallel
  std::unique_ptr<FaultInjector> injector_;  // only if config_.faults.enabled
  std::vector<std::pair<std::string, Snapshotable*>> snapshotables_;
  std::uint64_t last_checkpoint_round_ = 0;
  Checkpoint last_checkpoint_;
  // Consecutive round-deadline misses per machine; drives the exponential
  // backoff of speculative re-execution charges. Serialized in checkpoints
  // (format v2) so recovery resumes the same backoff schedule.
  std::vector<std::uint64_t> deadline_streak_;
  // Consecutive phases in which a machine's outgoing messages corrupted;
  // reaching kQuarantineStreak (or exhausting the per-message retry bound)
  // quarantines the source: its round is re-executed from the barrier
  // snapshot. Serialized in checkpoints (format v3) so recovery resumes the
  // same quarantine pressure.
  std::vector<std::uint64_t> corrupt_streak_;
  // metrics_.violations as of the last emitted trace line, so each line
  // reports every violation observed since the previous line — including
  // ones folded in by hook-less sync_metrics() calls (e.g. charge_rounds
  // during graph distribution).
  std::uint64_t last_traced_violations_ = 0;
};

}  // namespace rsets::mpc
