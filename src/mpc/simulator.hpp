// The synchronous MPC round loop with word-exact accounting.
//
// Algorithms are written as drivers: per-machine state lives in arrays owned
// by the algorithm, and each round executes a callback once per machine. The
// discipline (not enforceable in-process, but honored by every algorithm in
// this library, spot-checked in tests, and guarded by the TSan build — see
// tools/check_tsan.sh) is that the callback for machine i reads and writes
// only machine i's state slice and its Inbox; all cross-machine information
// flows through messages, which the simulator counts and caps.
//
// That discipline is exactly what makes rounds embarrassingly parallel: when
// MpcConfig::num_threads != 1 the callbacks of one phase execute on a worker
// pool. Outboxes are still collected and merged in machine-id order after
// every callback has returned, the receive-side bandwidth check is
// word-exact, and each machine's RNG stream is private — so results and
// MpcMetrics are bit-identical to sequential execution (asserted in
// tests/test_threaded_determinism.cpp).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpc/machine.hpp"
#include "mpc/message.hpp"

namespace rsets::mpc {

class Simulator {
 public:
  explicit Simulator(const MpcConfig& config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  MachineId num_machines() const { return config_.num_machines; }
  const MpcConfig& config() const { return config_; }
  Machine& machine(MachineId m) { return machines_.at(m); }
  const Machine& machine(MachineId m) const { return machines_.at(m); }

  // Threads the round callbacks actually run on (num_threads resolved
  // against hardware_concurrency and the machine count).
  unsigned effective_threads() const { return effective_threads_; }

  // Runs one synchronous round: delivers the messages sent in the previous
  // round, then invokes `body(machine, inbox)` once per machine (in id order
  // when sequential, concurrently otherwise), then collects outboxes in
  // machine-id order for the next delivery and enforces the receive-side
  // bandwidth cap.
  using RoundBody = std::function<void(Machine&, const Inbox&)>;
  void round(const RoundBody& body);

  // Delivers all in-flight messages now WITHOUT spending a round: in the BSP
  // semantics, receipt happens at the start of the next round, so a
  // send-round followed by drain() models one full MPC round (send + receive
  // of <= S words each). The receive-side bandwidth cap is enforced here.
  void drain(const RoundBody& body);

  // True if any message is still awaiting delivery.
  bool messages_in_flight() const { return !in_flight_.empty(); }

  // Folds per-machine counters (storage peaks, violations, RNG draws) into
  // the metrics without running a round; call after setup work done outside
  // `round`, or before reading final metrics.
  void sync_metrics();

  const MpcMetrics& metrics() const { return metrics_; }

  // Adds `extra` to the round counter without executing anything — used to
  // charge rounds that the simulation collapses for computational
  // feasibility but that the real algorithm would spend (documented at each
  // call site).
  void charge_rounds(std::uint64_t extra) { metrics_.rounds += extra; }

 private:
  class WorkerPool;

  void run_phase(const RoundBody& body, bool reset_send_budget, bool drain);
  void refresh_metrics_after_round(
      const std::vector<std::uint64_t>& recv_words);

  MpcConfig config_;
  unsigned effective_threads_ = 1;
  std::vector<Machine> machines_;
  std::vector<Message> in_flight_;
  MpcMetrics metrics_;
  std::unique_ptr<WorkerPool> pool_;  // created on demand, only if parallel
};

}  // namespace rsets::mpc
