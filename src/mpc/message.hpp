// Messages and configuration for the MPC round simulator.
//
// The Massively Parallel Computation model (Karloff–Suri–Vassilvitskii):
// M machines, each with S words of memory; computation proceeds in
// synchronous rounds; per round each machine sends and receives at most S
// words. The simulator counts every word and (by default) hard-fails on
// violations, so model conformance (claim C3 in DESIGN.md) is structural.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpc/fault/fault.hpp"
#include "mpc/trace.hpp"

namespace rsets::mpc {

using Word = std::uint64_t;
using MachineId = std::uint32_t;

// Every message is charged a fixed header in addition to its payload,
// modelling addressing overhead and discouraging word-free signalling.
inline constexpr std::size_t kHeaderWords = 2;

struct Message {
  MachineId src = 0;
  MachineId dst = 0;
  std::uint32_t tag = 0;
  std::vector<Word> payload;

  std::size_t words() const { return payload.size() + kHeaderWords; }
};

struct MpcConfig {
  MachineId num_machines = 8;
  std::size_t memory_words = std::size_t{1} << 20;  // S
  // When true (default), exceeding S in storage or per-round bandwidth
  // throws MpcViolation. When false, violations are counted in metrics —
  // used by stress benches that chart how close algorithms run to the caps.
  bool enforce = true;
  std::uint64_t seed = 1;  // base seed for per-machine RNG streams
  // Worker threads executing the per-machine round callbacks: 1 runs them
  // sequentially on the calling thread (the historical behavior), 0 uses
  // hardware_concurrency, k > 1 uses k workers. Results and metrics are
  // bit-identical for every value — see "Threading model" in DESIGN.md —
  // because callbacks only touch their own machine's state slice and
  // outboxes are merged in machine-id order.
  unsigned num_threads = 1;
  // Optional per-phase observer (see mpc/trace.hpp). Purely observational:
  // it runs on the simulator's calling thread after the phase completes and
  // cannot change results or metrics.
  TraceHook trace_hook;
  // Fault injection plan (see mpc/fault/fault.hpp). Disabled by default;
  // with faults.enabled == false the simulator takes the historical code
  // path and results, metrics, and traces are bit-identical to a build
  // without the fault subsystem.
  FaultConfig faults;
  // Take a durable checkpoint at every k-th round barrier (0 = never).
  // Checkpoints bound crash-recovery re-execution: a crash at round r
  // restores from the last checkpoint at round c and charges r - c
  // recovery rounds. Checkpointing alone never changes results or the
  // existing metrics fields — only MpcMetrics::checkpoints and the trace's
  // checkpoint events.
  std::uint64_t checkpoint_every = 0;
};

struct MpcMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_words = 0;
  // Worst per-machine, per-round bandwidth actually used.
  std::uint64_t max_send_words = 0;
  std::uint64_t max_recv_words = 0;
  // Worst persistent storage held by any machine at any time.
  std::size_t max_storage_words = 0;
  // Cap violations observed (only counted when enforce == false).
  std::uint64_t violations = 0;
  // Random 64-bit words drawn across all machines (0 for deterministic
  // algorithms — claim C2). Fault-injector draws are NOT counted here —
  // the injector has its own stream.
  std::uint64_t random_words = 0;
  // Fault subsystem ledger (all zero when faults are disabled and
  // checkpoint_every == 0).
  std::uint64_t faults_injected = 0;
  std::uint64_t checkpoints = 0;       // durable checkpoints taken
  std::uint64_t recovery_rounds = 0;   // supersteps re-executed after crashes
};

class MpcViolation : public std::runtime_error {
 public:
  explicit MpcViolation(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace rsets::mpc
