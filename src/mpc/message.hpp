// Messages and configuration for the MPC round simulator.
//
// The Massively Parallel Computation model (Karloff–Suri–Vassilvitskii):
// M machines, each with S words of memory; computation proceeds in
// synchronous rounds; per round each machine sends and receives at most S
// words. The simulator counts every word and (by default) hard-fails on
// violations, so model conformance (claim C3 in DESIGN.md) is structural.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpc/fault/fault.hpp"
#include "mpc/trace.hpp"
#include "util/error.hpp"
#include "util/fnv.hpp"

namespace rsets::mpc {

using Word = std::uint64_t;
using MachineId = std::uint32_t;

// Every message is charged a fixed header in addition to its payload,
// modelling addressing overhead and discouraging word-free signalling. The
// header is where the transport metadata rides: addressing (src/dst/tag),
// the delivery sequence number, and — when the integrity layer is active —
// the FNV-1a payload checksum. None of them are charged beyond these two
// words, which is why enabling integrity checking never moves the ledger.
inline constexpr std::size_t kHeaderWords = 2;

// The transport unit: every (src, dst) pair
// with traffic in a phase moves exactly one AggBuffer. The arena is a flat
// Word sequence of framed records, one per logical message:
//
//   [tag, payload_len, payload_0, ..., payload_{len-1}] ...
//
// The two framing words per record ARE the charged kHeaderWords — they carry
// the tag and the record boundary, and (amortized across the buffer) the
// addressing, sequence number, and batch checksum below — so
// words() == arena.size() and the word ledger is exactly where the
// per-message transport had it.
struct AggBuffer {
  MachineId src = 0;
  MachineId dst = 0;
  // Logical messages framed in the arena.
  std::uint32_t messages = 0;
  // Transport header fields, stamped by the simulator when the buffer is
  // merged into the in-flight sequence (never by senders): `seq` is the
  // position in canonical machine-id merge order — the self-healing anchor
  // reorder faults are sorted back by — and `checksum` is the FNV-1a batch
  // digest verify-on-receive compares against (stamped only while the
  // integrity layer is active).
  std::uint64_t seq = 0;
  Word checksum = 0;
  std::vector<Word> arena;

  std::size_t words() const { return arena.size(); }
};

// FNV-1a digest of everything the transport must deliver intact: addressing
// plus the whole framed arena — ONE digest per aggregated buffer instead of
// one per message. The arena (the bulk of the work) goes through the
// four-lane batch construction so the word multiplies pipeline instead of
// serializing; every lane keeps the multiply-by-odd-prime bijection, so the
// digest stays sensitive to every single-bit flip within a word (see
// util/fnv.hpp) — exactly the corruption the fault model injects. Checksums
// are recomputed at stamp and verify time, never persisted, so the digest
// formula is free to change between releases.
inline Word buffer_checksum(const AggBuffer& b) {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a_word(h, b.src);
  h = fnv1a_word(h, b.dst);
  h = fnv1a_word(h, b.messages);
  return fnv1a_words_batch(b.arena.data(), b.arena.size(), h);
}

// A decoded view of one logical message inside a delivered AggBuffer. The
// payload span aliases the buffer's arena — receiving copies nothing.
struct MessageView {
  MachineId src = 0;
  std::uint32_t tag = 0;
  std::span<const Word> payload;
};

// What happens when a machine exceeds its S-word storage or per-round
// bandwidth budget.
enum class BudgetPolicy : std::uint8_t {
  // Count the violation in metrics and keep going — used by stress benches
  // that chart how close algorithms run to the caps.
  kTrace = 0,
  // Throw MpcViolation at the first excess word (the historical default):
  // model conformance is structural.
  kStrict = 1,
  // Graceful degradation: the excess is spilled and re-sent across extra
  // sub-rounds, charged to MpcMetrics::rounds and attributed per phase as
  // degraded_subrounds in the trace. Results are bit-identical to a kTrace
  // run — degradation only changes the round accounting, never delivery
  // order or payloads. Violations stay 0: the budget was honored, at a
  // latency cost.
  kDegrade = 2,
};

inline const char* budget_policy_name(BudgetPolicy policy) {
  switch (policy) {
    case BudgetPolicy::kTrace:
      return "trace";
    case BudgetPolicy::kStrict:
      return "strict";
    case BudgetPolicy::kDegrade:
      return "degrade";
  }
  return "?";
}

// Parses "trace" | "strict" | "degrade"; throws rsets::Error(kBadFlag)
// otherwise — the same structured taxonomy every other user-facing parser
// (fault specs, edge lists, CLI flags) reports through.
inline BudgetPolicy parse_budget_policy(const std::string& name) {
  if (name == "trace") return BudgetPolicy::kTrace;
  if (name == "strict") return BudgetPolicy::kStrict;
  if (name == "degrade") return BudgetPolicy::kDegrade;
  throw Error(ErrorCode::kBadFlag,
              "budget policy must be trace|strict|degrade, got '" + name +
                  "'");
}

struct MpcConfig {
  MachineId num_machines = 8;
  std::size_t memory_words = std::size_t{1} << 20;  // S
  BudgetPolicy budget_policy = BudgetPolicy::kStrict;
  std::uint64_t seed = 1;  // base seed for per-machine RNG streams
  // Worker threads executing the per-machine round callbacks AND the
  // destination-sharded barrier (canonical merge, checksum stamp/verify,
  // inbox index builds): 1 runs everything sequentially on the calling
  // thread (the historical behavior), 0 uses hardware_concurrency, k > 1
  // uses k workers. Results and metrics are bit-identical for every value —
  // see "Threading model" and §4.6 in DESIGN.md — because callbacks only
  // touch their own machine's state slice, and each (src, dst) arena slot
  // and each destination's inbox is written by exactly one worker in the
  // fixed canonical order.
  unsigned num_threads = 1;
  // Optional per-phase observer (see mpc/trace.hpp). Purely observational:
  // it runs on the simulator's calling thread after the phase completes and
  // cannot change results or metrics.
  TraceHook trace_hook;
  // Fault injection plan (see mpc/fault/fault.hpp). Disabled by default;
  // with faults.enabled == false the simulator takes the historical code
  // path and results, metrics, and traces are bit-identical to a build
  // without the fault subsystem.
  FaultConfig faults;
  // Work-unit budget per round (0 = no deadline). A machine's work in a
  // phase is the words it received plus the words it sent; a machine whose
  // work exceeds the deadline is a straggler: the simulator speculatively
  // re-executes it from an in-memory checkpoint (exercising the registered
  // Snapshotable hooks) and charges retry rounds with exponential backoff
  // per consecutive miss. Results are unchanged — speculation replays the
  // exact same deterministic work — only the rounds/deadline ledger moves.
  std::uint64_t round_deadline = 0;
  // Take a durable checkpoint at every k-th round barrier (0 = never).
  // Checkpoints bound crash-recovery re-execution: a crash at round r
  // restores from the last checkpoint at round c and charges r - c
  // recovery rounds. Checkpointing alone never changes results or the
  // existing metrics fields — only MpcMetrics::checkpoints and the trace's
  // checkpoint events.
  std::uint64_t checkpoint_every = 0;
  // Verify the FNV-1a checksum of every delivered message even when no
  // corruption fault can fire. The check is CPU-only: checksums ride in the
  // already-charged message header, so a fault-free run with integrity on
  // is byte-identical to one with it off (tools/check_integrity_parity.sh
  // gates exactly this). Corruption faults (FaultConfig::corrupt_prob)
  // activate verification implicitly — the attack is survivable only with
  // the defense on.
  bool integrity = false;
};

struct MpcMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_words = 0;
  // Worst per-machine, per-round bandwidth actually used.
  std::uint64_t max_send_words = 0;
  std::uint64_t max_recv_words = 0;
  // Worst persistent storage held by any machine at any time.
  std::size_t max_storage_words = 0;
  // Cap violations observed (only counted under BudgetPolicy::kTrace).
  std::uint64_t violations = 0;
  // Random 64-bit words drawn across all machines (0 for deterministic
  // algorithms — claim C2). Fault-injector draws are NOT counted here —
  // the injector has its own stream.
  std::uint64_t random_words = 0;
  // Fault subsystem ledger (all zero when faults are disabled and
  // checkpoint_every == 0).
  std::uint64_t faults_injected = 0;
  std::uint64_t checkpoints = 0;       // durable checkpoints taken
  std::uint64_t recovery_rounds = 0;   // supersteps re-executed after crashes
  // Graceful-degradation ledger (all zero outside BudgetPolicy::kDegrade).
  // Extra sub-rounds charged for spill-and-resend of over-budget phases;
  // also folded into rounds.
  std::uint64_t degraded_subrounds = 0;
  // Straggler-deadline ledger (all zero when round_deadline == 0).
  std::uint64_t deadline_misses = 0;    // machine-phases over the deadline
  std::uint64_t speculative_rounds = 0; // retry rounds charged (with backoff)
  // Integrity ledger (all zero unless corruption faults fire; verification
  // alone — MpcConfig::integrity on a clean run — never moves it).
  std::uint64_t corrupt_detected = 0;   // checksum mismatches caught on receive
  std::uint64_t integrity_retries = 0;  // retransmissions those triggered
  std::uint64_t quarantined_rounds = 0; // rounds re-executed after quarantine
};

class MpcViolation : public std::runtime_error {
 public:
  explicit MpcViolation(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace rsets::mpc
