// Collective communication primitives over the MPC simulator.
//
// Every primitive spends real simulated rounds and words; nothing is free.
// Round costs (with M = #machines, assuming M and payloads fit the per-round
// bandwidth budget S, which the simulator enforces):
//   broadcast       1 round   (root sends to all M machines)
//   gather_to       1 round   (all machines send to root)
//   allreduce_*     2 rounds  (gather + broadcast)
//   all_to_all      1 round
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mpc/simulator.hpp"

namespace rsets::mpc {

// Root sends `payload` to every machine (including itself, free locally).
// Returns the payload as received by each machine.
std::vector<std::vector<Word>> broadcast(Simulator& sim, MachineId root,
                                         const std::vector<Word>& payload,
                                         std::uint32_t tag = 0xB0);

// Every machine sends its contribution to root; returns, indexed by source
// machine, what root received.
std::vector<std::vector<Word>> gather_to(
    Simulator& sim, MachineId root,
    const std::vector<std::vector<Word>>& contributions,
    std::uint32_t tag = 0xA0);

// Element-wise sum of per-machine double vectors, result known to all
// machines. All contributions must have equal length. Doubles are carried
// bit-exactly through word payloads.
std::vector<double> allreduce_sum(Simulator& sim,
                                  const std::vector<std::vector<double>>&
                                      contributions,
                                  std::uint32_t tag = 0xC0);

// Like allreduce_sum, but each machine's contribution is produced by
// `compute(machine_id)` from *inside* the gather round's callback, so the
// per-machine work runs on the simulator's worker pool when
// MpcConfig::num_threads != 1. `compute` must return exactly `width`
// doubles, touch only machine-local state, and be safe to invoke
// concurrently for distinct machine ids. Rounds, message sizes, and the
// floating-point summation order are identical to allreduce_sum, so the
// result and MpcMetrics are bit-identical at any thread count.
std::vector<double> allreduce_sum_compute(
    Simulator& sim, std::size_t width,
    const std::function<std::vector<double>(MachineId)>& compute,
    std::uint32_t tag = 0xC0);

// Max of one uint64 per machine, known to all machines.
std::uint64_t allreduce_max(Simulator& sim,
                            const std::vector<std::uint64_t>& values,
                            std::uint32_t tag = 0xD0);

// Sum of one uint64 per machine, known to all machines.
std::uint64_t allreduce_sum_u64(Simulator& sim,
                                const std::vector<std::uint64_t>& values,
                                std::uint32_t tag = 0xD1);

// out[i][j] = words machine i sends machine j; returns in[j][i].
std::vector<std::vector<std::vector<Word>>> all_to_all(
    Simulator& sim,
    const std::vector<std::vector<std::vector<Word>>>& out,
    std::uint32_t tag = 0xE0);

// Bit-exact double <-> word transport.
Word pack_double(double x);
double unpack_double(Word w);

}  // namespace rsets::mpc
