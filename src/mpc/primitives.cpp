#include "mpc/primitives.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace rsets::mpc {

Word pack_double(double x) {
  Word w;
  static_assert(sizeof(Word) == sizeof(double));
  std::memcpy(&w, &x, sizeof(w));
  return w;
}

double unpack_double(Word w) {
  double x;
  std::memcpy(&x, &w, sizeof(x));
  return x;
}

std::vector<std::vector<Word>> broadcast(Simulator& sim, MachineId root,
                                         const std::vector<Word>& payload,
                                         std::uint32_t tag) {
  const MachineId m_count = sim.num_machines();
  std::vector<std::vector<Word>> received(m_count);
  sim.round([&](Machine& machine, const Inbox& inbox) {
    if (machine.id() == root) {
      received[root] = payload;  // local copy, no message
      for (MachineId dst = 0; dst < m_count; ++dst) {
        if (dst != root) machine.send(dst, tag, payload);
      }
    }
    (void)inbox;  // messages land next round
  });
  sim.drain([&](Machine& machine, const Inbox& inbox) {
    for (const MessageView& msg : inbox.with_tag(tag)) {
      received[machine.id()].assign(msg.payload.begin(), msg.payload.end());
    }
  });
  return received;
}

std::vector<std::vector<Word>> gather_to(
    Simulator& sim, MachineId root,
    const std::vector<std::vector<Word>>& contributions, std::uint32_t tag) {
  if (contributions.size() != sim.num_machines()) {
    throw std::invalid_argument("gather_to: need one contribution/machine");
  }
  std::vector<std::vector<Word>> received(sim.num_machines());
  sim.round([&](Machine& machine, const Inbox&) {
    if (machine.id() == root) {
      received[root] = contributions[root];
    } else {
      machine.send(root, tag, contributions[machine.id()]);
    }
  });
  sim.drain([&](Machine& machine, const Inbox& inbox) {
    if (machine.id() != root) return;
    for (const MessageView& msg : inbox.with_tag(tag)) {
      received[msg.src].assign(msg.payload.begin(), msg.payload.end());
    }
  });
  return received;
}

std::vector<double> allreduce_sum(
    Simulator& sim, const std::vector<std::vector<double>>& contributions,
    std::uint32_t tag) {
  if (contributions.size() != sim.num_machines()) {
    throw std::invalid_argument("allreduce_sum: need one vector per machine");
  }
  const std::size_t width = contributions.empty() ? 0 : contributions[0].size();
  std::vector<std::vector<Word>> packed(sim.num_machines());
  for (MachineId m = 0; m < sim.num_machines(); ++m) {
    if (contributions[m].size() != width) {
      throw std::invalid_argument("allreduce_sum: ragged contributions");
    }
    packed[m].reserve(width);
    for (double x : contributions[m]) packed[m].push_back(pack_double(x));
  }
  const auto at_root = gather_to(sim, 0, packed, tag);
  std::vector<double> total(width, 0.0);
  for (const auto& vec : at_root) {
    for (std::size_t i = 0; i < width; ++i) {
      total[i] += unpack_double(vec[i]);
    }
  }
  std::vector<Word> packed_total;
  packed_total.reserve(width);
  for (double x : total) packed_total.push_back(pack_double(x));
  broadcast(sim, 0, packed_total, tag + 1);
  return total;
}

std::vector<double> allreduce_sum_compute(
    Simulator& sim, std::size_t width,
    const std::function<std::vector<double>(MachineId)>& compute,
    std::uint32_t tag) {
  const MachineId m_count = sim.num_machines();
  // Indexed by source machine; machine i's callback writes only slot i
  // (root's local copy) or sends — distinct elements, parallel-safe.
  std::vector<std::vector<Word>> received(m_count);
  sim.round([&](Machine& machine, const Inbox&) {
    const MachineId m = machine.id();
    const std::vector<double> local = compute(m);
    if (local.size() != width) {
      throw std::invalid_argument(
          "allreduce_sum_compute: compute returned wrong width");
    }
    std::vector<Word> packed;
    packed.reserve(width);
    for (double x : local) packed.push_back(pack_double(x));
    if (m == 0) {
      received[0] = std::move(packed);
    } else {
      machine.send(0, tag, std::span<const Word>(packed));
    }
  });
  sim.drain([&](Machine& machine, const Inbox& inbox) {
    if (machine.id() != 0) return;
    for (const MessageView& msg : inbox.with_tag(tag)) {
      received[msg.src].assign(msg.payload.begin(), msg.payload.end());
    }
  });
  // Same summation order as allreduce_sum: machines ascending, then index.
  std::vector<double> total(width, 0.0);
  for (const auto& vec : received) {
    for (std::size_t i = 0; i < width; ++i) {
      total[i] += unpack_double(vec.at(i));
    }
  }
  std::vector<Word> packed_total;
  packed_total.reserve(width);
  for (double x : total) packed_total.push_back(pack_double(x));
  broadcast(sim, 0, packed_total, tag + 1);
  return total;
}

std::uint64_t allreduce_max(Simulator& sim,
                            const std::vector<std::uint64_t>& values,
                            std::uint32_t tag) {
  std::vector<std::vector<Word>> contributions(sim.num_machines());
  for (MachineId m = 0; m < sim.num_machines(); ++m) {
    contributions[m] = {values.at(m)};
  }
  const auto at_root = gather_to(sim, 0, contributions, tag);
  std::uint64_t best = 0;
  for (const auto& vec : at_root) best = std::max(best, vec.at(0));
  broadcast(sim, 0, {best}, tag + 1);
  return best;
}

std::uint64_t allreduce_sum_u64(Simulator& sim,
                                const std::vector<std::uint64_t>& values,
                                std::uint32_t tag) {
  std::vector<std::vector<Word>> contributions(sim.num_machines());
  for (MachineId m = 0; m < sim.num_machines(); ++m) {
    contributions[m] = {values.at(m)};
  }
  const auto at_root = gather_to(sim, 0, contributions, tag);
  std::uint64_t total = 0;
  for (const auto& vec : at_root) total += vec.at(0);
  broadcast(sim, 0, {total}, tag + 1);
  return total;
}

std::vector<std::vector<std::vector<Word>>> all_to_all(
    Simulator& sim, const std::vector<std::vector<std::vector<Word>>>& out,
    std::uint32_t tag) {
  const MachineId m_count = sim.num_machines();
  if (out.size() != m_count) {
    throw std::invalid_argument("all_to_all: need one row per machine");
  }
  std::vector<std::vector<std::vector<Word>>> in(
      m_count, std::vector<std::vector<Word>>(m_count));
  sim.round([&](Machine& machine, const Inbox&) {
    const MachineId src = machine.id();
    for (MachineId dst = 0; dst < m_count; ++dst) {
      if (dst == src) {
        in[src][src] = out[src][src];
      } else if (!out[src][dst].empty()) {
        machine.send(dst, tag, out[src][dst]);
      }
    }
  });
  sim.drain([&](Machine& machine, const Inbox& inbox) {
    for (const MessageView& msg : inbox.with_tag(tag)) {
      in[machine.id()][msg.src].assign(msg.payload.begin(), msg.payload.end());
    }
  });
  return in;
}

}  // namespace rsets::mpc
