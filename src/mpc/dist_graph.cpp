#include "mpc/dist_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash_family.hpp"

namespace rsets::mpc {

DistGraph::DistGraph(Simulator& sim, const Graph& g,
                     std::uint64_t partition_salt)
    : graph_(&g),
      num_vertices_(g.num_vertices()),
      num_edges_(g.num_edges()),
      num_machines_(sim.num_machines()),
      salt_(partition_salt),
      owned_(sim.num_machines()),
      active_(g.num_vertices(), true),
      active_count_(g.num_vertices()),
      charged_words_(sim.num_machines(), 0) {
  finish_load(sim);
}

DistGraph::DistGraph(Simulator& sim, const shard::ShardedSource& src,
                     const shard::IngestOptions& ingest,
                     std::uint64_t partition_salt)
    : graph_(nullptr),
      csr_(shard::build_shard_csr(src, ingest)),
      num_vertices_(csr_.num_vertices()),
      num_edges_(csr_.num_edges()),
      num_machines_(sim.num_machines()),
      salt_(partition_salt),
      owned_(sim.num_machines()),
      active_(csr_.num_vertices(), true),
      active_count_(csr_.num_vertices()),
      charged_words_(sim.num_machines(), 0) {
  finish_load(sim);
}

void DistGraph::finish_load(Simulator& sim) {
  for (VertexId v = 0; v < num_vertices_; ++v) {
    owned_[owner(v)].push_back(v);
  }
  // Charge storage: per owned vertex, its id + degree + adjacency words,
  // plus the replicated activity bitset (n bits -> n/64 words).
  const std::size_t bitset_words = (num_vertices_ + 63) / 64;
  for (MachineId m = 0; m < num_machines_; ++m) {
    std::size_t words = bitset_words;
    for (VertexId v : owned_[m]) {
      words += 2 + degree(v);
    }
    charged_words_[m] = words;
    sim.machine(m).charge_storage(words);
  }
  // The initial shuffle that routes each adjacency row to its owner costs
  // one round; the simulation builds the partition directly, so the round is
  // charged explicitly.
  sim.charge_rounds(1);
  sim.sync_metrics();
}

MachineId DistGraph::owner(VertexId v) const {
  return static_cast<MachineId>(mix_hash(v, salt_) % num_machines_);
}

std::uint32_t DistGraph::active_degree(VertexId v) const {
  std::uint32_t d = 0;
  for (VertexId u : neighbors(v)) {
    if (active_[u]) ++d;
  }
  return d;
}

std::uint32_t DistGraph::active_max_degree(Simulator& sim) const {
  std::vector<std::uint64_t> local_max(num_machines_, 0);
  // Local scan per machine (free), then a 2-round allreduce.
  for (MachineId m = 0; m < num_machines_; ++m) {
    for (VertexId v : owned_[m]) {
      if (!active_[v]) continue;
      local_max[m] =
          std::max<std::uint64_t>(local_max[m], active_degree(v));
    }
  }
  return static_cast<std::uint32_t>(allreduce_max(sim, local_max));
}

void DistGraph::deactivate(
    Simulator& sim,
    const std::vector<std::vector<VertexId>>& per_machine_removals) {
  if (per_machine_removals.size() != num_machines_) {
    throw std::invalid_argument("deactivate: need one batch per machine");
  }
  // Validate ownership (catches driver bugs early).
  for (MachineId m = 0; m < num_machines_; ++m) {
    for (VertexId v : per_machine_removals[m]) {
      if (owner(v) != m) {
        throw std::logic_error("deactivate: machine announced a vertex it "
                               "does not own");
      }
    }
  }
  // One round: every machine broadcasts its removal list to all others.
  sim.round([&](Machine& machine, const Inbox&) {
    const MachineId src = machine.id();
    if (per_machine_removals[src].empty()) return;
    std::vector<Word> payload;
    payload.reserve(per_machine_removals[src].size());
    for (VertexId v : per_machine_removals[src]) payload.push_back(v);
    for (MachineId dst = 0; dst < num_machines_; ++dst) {
      if (dst != src) machine.send(dst, 0xDE, payload);
    }
  });
  sim.drain([](Machine&, const Inbox&) {});
  // Apply to the replicated bitset (identical update on every machine).
  for (MachineId m = 0; m < num_machines_; ++m) {
    for (VertexId v : per_machine_removals[m]) {
      if (active_[v]) {
        active_[v] = false;
        --active_count_;
      }
    }
  }
}

void DistGraph::save(SnapshotWriter& w) const {
  w.vec(active_);
  w.u64(active_count_);
}

void DistGraph::restore(SnapshotReader& r) {
  std::vector<bool> active;
  r.vec(active);
  const std::uint64_t count = r.u64();
  if (active.size() != num_vertices_) {
    throw CheckpointError("DistGraph::restore: vertex count mismatch");
  }
  active_ = std::move(active);
  active_count_ = count;
}

std::vector<VertexId> DistGraph::active_vertices() const {
  std::vector<VertexId> out;
  out.reserve(active_count_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (active_[v]) out.push_back(v);
  }
  return out;
}

}  // namespace rsets::mpc
