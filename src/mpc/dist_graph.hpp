// Vertex-partitioned distributed graph storage for the MPC simulator.
//
// Each vertex is owned by machine mix_hash(v, salt) % M; the owner stores the
// vertex's full adjacency list. This is the standard input layout for
// vertex-centric MPC graph algorithms: loading charges one round for the
// initial shuffle and counts its words, and per-machine storage is charged
// against the memory budget S (so an undersized configuration fails loudly).
//
// An *activity* bitset over all vertices is replicated on every machine
// (n bits each = n/64 words; this is the near-linear-memory regime the
// paper's main algorithm lives in). Deactivations are announced via an
// all-to-all broadcast costing one round per batch; total announcement
// traffic over a whole run is O(n * M) words since each vertex deactivates
// once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/shard/shard_csr.hpp"
#include "graph/shard/sharded_source.hpp"
#include "mpc/primitives.hpp"
#include "mpc/simulator.hpp"

namespace rsets::mpc {

class DistGraph : public Snapshotable {
 public:
  // Loads `g` into `sim`, charging storage and the distribution round.
  DistGraph(Simulator& sim, const Graph& g, std::uint64_t partition_salt = 0);

  // Sharded ingestion: each machine generates its own shard of `src` and
  // the union is assembled into an out-of-core CSR (see shard/shard_csr.hpp)
  // without ever building a global Graph. The CSR is bit-identical to what
  // the materialized constructor stores, so storage charges, round counts,
  // and the whole metrics ledger match the global path exactly.
  DistGraph(Simulator& sim, const shard::ShardedSource& src,
            const shard::IngestOptions& ingest = {},
            std::uint64_t partition_salt = 0);

  VertexId num_vertices() const { return num_vertices_; }
  std::uint64_t num_edges() const { return num_edges_; }

  // Stateless ownership function — every machine can evaluate it locally.
  MachineId owner(VertexId v) const;

  // Vertices owned by machine m (sorted).
  std::span<const VertexId> owned(MachineId m) const {
    return owned_[m];
  }

  // Adjacency of an owned vertex; caller must be (conceptually) machine
  // owner(v).
  std::span<const VertexId> neighbors(VertexId v) const {
    return graph_ != nullptr ? graph_->neighbors(v) : csr_.neighbors(v);
  }
  std::uint32_t degree(VertexId v) const {
    return graph_ != nullptr ? graph_->degree(v) : csr_.degree(v);
  }

  // True when this graph was ingested from a ShardedSource.
  bool sharded() const { return graph_ == nullptr; }

  // --- replicated activity ------------------------------------------------
  bool active(VertexId v) const { return active_[v]; }
  std::uint64_t active_count() const { return active_count_; }

  // Current max degree *within the active subgraph* — computed with one
  // allreduce (2 rounds): owners scan their active vertices' active
  // neighbors locally.
  std::uint32_t active_max_degree(Simulator& sim) const;

  // Active degree of an owned vertex (local scan).
  std::uint32_t active_degree(VertexId v) const;

  // Deactivates a batch of vertices cluster-wide. `per_machine_removals[m]`
  // is what machine m announces (they must own those vertices). Costs one
  // round. Words sent by machine m: |removals_m| * (M-1) + headers.
  void deactivate(Simulator& sim,
                  const std::vector<std::vector<VertexId>>& per_machine_removals);

  // All currently active vertices (driver-side convenience; owners know
  // their own, and the replicated bitset makes this consistent).
  std::vector<VertexId> active_vertices() const;

  // --- Snapshotable --------------------------------------------------------
  // The mutable state is the replicated activity bitset; the graph itself,
  // ownership map, and storage charges are immutable after construction and
  // reconstructible from the input, so they stay out of checkpoints.
  void save(SnapshotWriter& w) const override;
  void restore(SnapshotReader& r) override;

 private:
  // Charges per-machine storage (bitset + owned adjacency) and the
  // distribution round; shared by both constructors.
  void finish_load(Simulator& sim);

  const Graph* graph_;  // simulation backing store; per-machine slices are
                        // what is *charged*, access discipline is by owner
  shard::ShardCsr csr_;  // backing store for sharded ingestion (graph_ null)
  VertexId num_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  MachineId num_machines_ = 1;
  std::uint64_t salt_ = 0;
  std::vector<std::vector<VertexId>> owned_;
  std::vector<bool> active_;  // replicated (identical on all machines)
  std::uint64_t active_count_ = 0;
  std::vector<std::size_t> charged_words_;  // per machine, for release
};

}  // namespace rsets::mpc
