// Per-round execution traces for the MPC simulator.
//
// When MpcConfig::trace_hook is set, the simulator invokes it once per
// executed phase (round or drain boundary) with the communication ledger of
// that phase and the wall time spent running the machine callbacks. The hook
// observes; it cannot perturb the simulation — metrics and results are
// identical with or without it.
//
// The JSONL encoding (one object per line, stable key order) is the exchange
// format the CLI (`--trace=FILE`) and the benches emit, so round-level
// behavior is observable rather than asserted:
//
//   {"round":12,"drain":0,"wall_ms":0.41,"messages":96,"words_sent":4032,
//    "words_recv":4032,"max_recv_words":560}
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mpc/fault/fault.hpp"

namespace rsets::mpc {

struct RoundTrace {
  // Value of the round counter when the phase ran (1-based; a drain shares
  // the index of the round whose sends it delivers).
  std::uint64_t round = 0;
  // True for a drain boundary (delivery without spending a round).
  bool drain = false;
  // Wall time spent executing the machine callbacks of this phase, across
  // all workers, in milliseconds.
  double wall_ms = 0.0;
  // Messages collected from the per-destination send arenas this phase.
  std::uint64_t messages = 0;
  // Words (payload + headers) those messages carry.
  std::uint64_t words_sent = 0;
  // Words delivered to inboxes at the start of this phase.
  std::uint64_t words_recv = 0;
  // Largest single inbox delivered this phase (the receive-side peak the
  // bandwidth cap is checked against).
  std::uint64_t max_recv_words = 0;
  // Cap violations observed this phase (non-zero only under
  // BudgetPolicy::kTrace; a strict run throws at the first one).
  std::uint64_t violations = 0;
  // Extra sub-rounds charged to this phase by BudgetPolicy::kDegrade
  // (spill-and-resend waves beyond the S-word budget). Emitted in JSON only
  // when non-zero, keeping default traces in the historical byte format.
  std::uint64_t degraded_subrounds = 0;
  // Faults injected and checkpoints taken during this phase (empty unless
  // the fault subsystem is active). Extra JSON keys for these appear only
  // when non-empty/non-zero, so default-config traces are byte-identical to
  // the pre-fault format.
  std::vector<FaultEvent> faults;
};

using TraceHook = std::function<void(const RoundTrace&)>;

// One-line JSON object (no trailing newline), stable key order.
std::string to_json(const RoundTrace& trace);

}  // namespace rsets::mpc
