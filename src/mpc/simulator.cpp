#include "mpc/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace rsets::mpc {
namespace {

unsigned resolve_threads(unsigned requested, MachineId num_machines) {
  unsigned t = requested == 0
                   ? std::max(1u, std::thread::hardware_concurrency())
                   : requested;
  return std::min<unsigned>(std::max(1u, t), std::max<MachineId>(1, num_machines));
}

}  // namespace

// A persistent pool executing one task index set per generation. Workers
// claim machine indices through an atomic counter, so scheduling order is
// arbitrary — correctness does not depend on it because each task touches
// only its machine's slice; determinism is restored by the caller merging
// arenas against the serially-fixed canonical plan afterwards.
class Simulator::WorkerPool {
 public:
  explicit WorkerPool(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  // Runs task(0..num_tasks-1) across the workers and the calling thread;
  // returns after every task has finished. `task` must not throw (callers
  // capture exceptions per task).
  void run(std::uint32_t num_tasks,
           const std::function<void(std::uint32_t)>& task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = &task;
      num_tasks_ = num_tasks;
      next_task_.store(0, std::memory_order_relaxed);
      idle_workers_ = 0;
      ++generation_;
    }
    work_ready_.notify_all();
    // The caller participates instead of blocking idle.
    drain_tasks(task, num_tasks);
    std::unique_lock<std::mutex> lock(mu_);
    all_idle_.wait(lock, [&] { return idle_workers_ == threads_.size(); });
    task_ = nullptr;
  }

 private:
  void drain_tasks(const std::function<void(std::uint32_t)>& task,
                   std::uint32_t num_tasks) {
    while (true) {
      const std::uint32_t i =
          next_task_.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) break;
      task(i);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(std::uint32_t)>* task = nullptr;
      std::uint32_t num_tasks = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        task = task_;
        num_tasks = num_tasks_;
      }
      drain_tasks(*task, num_tasks);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (++idle_workers_ == threads_.size()) all_idle_.notify_one();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::vector<std::thread> threads_;
  const std::function<void(std::uint32_t)>* task_ = nullptr;
  std::uint32_t num_tasks_ = 0;
  std::atomic<std::uint32_t> next_task_{0};
  std::size_t idle_workers_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

Simulator::Simulator(const MpcConfig& config) : config_(config) {
  if (config_.num_machines == 0) {
    throw std::invalid_argument("Simulator: need at least one machine");
  }
  effective_threads_ =
      resolve_threads(config_.num_threads, config_.num_machines);
  machines_.reserve(config_.num_machines);
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    machines_.emplace_back(m, config_);
  }
  deadline_streak_.assign(config_.num_machines, 0);
  corrupt_streak_.assign(config_.num_machines, 0);
  delivery_.resize(config_.num_machines);
  inboxes_.resize(config_.num_machines);
  dest_slots_.resize(config_.num_machines);
  if (config_.faults.enabled) {
    injector_ =
        std::make_unique<FaultInjector>(config_.faults, config_.num_machines);
  }
  integrity_active_ =
      config_.integrity || (injector_ && injector_->has_corrupt_faults());
}

Simulator::~Simulator() = default;

void Simulator::run_indexed(std::uint32_t num_tasks,
                            const std::function<void(std::uint32_t)>& task) {
  if (effective_threads_ <= 1) {
    // Sequential path: identical to the historical loop, including the
    // exception point (a throwing task exits before later tasks run).
    for (std::uint32_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  if (!pool_) {
    pool_ = std::make_unique<WorkerPool>(effective_threads_ - 1);
  }
  // Parallel path: every task runs (exceptions are captured, not propagated
  // mid-pass), then the lowest-index exception is rethrown — the same
  // exception a sequential run surfaces first.
  std::vector<std::exception_ptr> errors(num_tasks);
  pool_->run(num_tasks, [&](std::uint32_t i) {
    try {
      task(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void Simulator::round(const RoundBody& body) {
  ++metrics_.rounds;
  run_phase(body, /*reset_send_budget=*/true, /*drain=*/false);
}

void Simulator::drain(const RoundBody& body) {
  // Receipt of the previous round's sends; no new round starts. Sends made
  // inside a drain body count against the *next* round's budget, so we do
  // not reset the send accounting here — but drain bodies by convention do
  // not send (delivery handlers only).
  run_phase(body, /*reset_send_budget=*/false, /*drain=*/true);
}

void Simulator::run_phase(const RoundBody& body, bool reset_send_budget,
                          bool drain) {
  const auto wall_start = std::chrono::steady_clock::now();

  // Barrier-level fault work (periodic checkpoints, crashes, stragglers)
  // happens only when a round starts, not at drain boundaries — a drain is
  // the receive half of the round whose barrier already ran.
  std::vector<FaultEvent> fault_events;
  std::uint64_t deferred_round_charge = 0;
  if (!drain && (injector_ || config_.checkpoint_every != 0)) {
    deferred_round_charge = handle_barrier(fault_events);
  }

  // Deliver: partition in-flight aggregated buffers by destination. Buffer
  // order within a destination follows in_flight_ order, which run_phase
  // fixed by merging send arenas in canonical order last phase — so delivery is
  // identical regardless of how the upcoming callbacks are scheduled.
  // Transport faults are drawn here, per buffer in merged order: the
  // reliable-delivery layer retransmits a dropped copy and deduplicates a
  // duplicated one within the barrier, so the inbox contents are unchanged
  // and only the retransmitted words are charged (into this phase's ledger,
  // keeping the trace-sum == metrics identity). Since aggregation, the unit
  // the adversary can drop/duplicate/corrupt is the whole (src, dst) buffer
  // — one wire transfer — so a retransmission recharges every message it
  // carried.
  std::uint64_t retransmit_messages = 0;
  std::uint64_t retransmit_words = 0;
  const bool transport_faults = injector_ && injector_->has_transport_faults();
  const bool corrupt_faults = injector_ && injector_->has_corrupt_faults();

  // Reorder fault: the adversary permutes this delivery's in-flight buffer
  // sequence; the transport heals by re-sorting on the sequence numbers
  // stamped at arena merge, restoring canonical order before any
  // per-buffer draw or partition happens. No words are charged — sequence
  // numbers ride in the already-charged framing words.
  if (injector_ && injector_->has_reorder_faults()) {
    std::vector<std::uint32_t> perm;
    if (injector_->reorder_fault(metrics_.rounds, in_flight_.size(), perm)) {
      std::vector<AggBuffer> shuffled(in_flight_.size());
      for (std::size_t i = 0; i < perm.size(); ++i) {
        shuffled[i] = std::move(in_flight_[perm[i]]);
      }
      in_flight_ = std::move(shuffled);
      std::sort(in_flight_.begin(), in_flight_.end(),
                [](const AggBuffer& a, const AggBuffer& b) {
                  return a.seq < b.seq;
                });
      FaultEvent e;
      e.kind = FaultKind::kReorder;
      e.round = metrics_.rounds;
      e.words = in_flight_.size();  // buffers permuted
      ++metrics_.faults_injected;
      fault_events.push_back(e);
    }
  }

  // Per-source integrity bookkeeping for this phase: which sources produced
  // a corrupted delivery, and which exhausted the bounded retry.
  std::vector<std::uint8_t> corrupted_src;
  std::vector<std::uint8_t> exhausted_src;
  if (corrupt_faults) {
    corrupted_src.assign(config_.num_machines, 0);
    exhausted_src.assign(config_.num_machines, 0);
  }

  // Maps the flat payload-bit index the injector drew to the arena word
  // holding it, walking the record framing (framing words carry addressing
  // and are modelled as protected — only payload bits corrupt, exactly as
  // in the per-message transport).
  const auto payload_word_at = [](const AggBuffer& buf,
                                  std::uint64_t word_idx) -> std::size_t {
    std::size_t at = 0;
    while (true) {
      const std::uint64_t len = buf.arena[at + 1];
      if (word_idx < len) {
        return at + kHeaderWords + static_cast<std::size_t>(word_idx);
      }
      word_idx -= len;
      at += kHeaderWords + static_cast<std::size_t>(len);
    }
  };

  for (AggBuffer& buf : in_flight_) {
    if (transport_faults) {
      FaultEvent event;
      if (injector_->transport_fault(metrics_.rounds, buf.src, buf.words(),
                                     event)) {
        retransmit_messages += buf.messages;
        retransmit_words += event.words;
        ++metrics_.faults_injected;
        fault_events.push_back(event);
      }
    }
    if (corrupt_faults) {
      // Bounded self-healing delivery: each attempt may corrupt (the
      // injector flips a real payload bit somewhere in the buffer); the
      // receive-side batch checksum catches the flip and triggers a
      // retransmission of the whole buffer, charged like a dropped-buffer
      // retransmit. The retry re-draws, so a noisy link can corrupt its own
      // retry — after kMaxIntegrityRetries corrupted attempts the transport
      // delivers the pristine copy and hands the source to quarantine
      // instead of retrying forever.
      const std::uint64_t payload_bits =
          static_cast<std::uint64_t>(buf.words() -
                                     std::size_t{kHeaderWords} * buf.messages) *
          64;
      for (unsigned attempt = 1;; ++attempt) {
        FaultEvent event;
        std::uint64_t bit = 0;
        if (!injector_->corrupt_fault(metrics_.rounds, buf.src, buf.words(),
                                      payload_bits, event, bit)) {
          break;  // this attempt delivered clean
        }
        const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
        const std::size_t flipped = payload_word_at(buf, bit >> 6);
        buf.arena[flipped] ^= mask;  // the flip happens for real
        if (buffer_checksum(buf) == buf.checksum) {
          // Unreachable: FNV-1a detects every single-bit flip in a word
          // (see util/fnv.hpp). Kept as the honest alternative — if the
          // digest ever missed, the corrupted payload would be delivered.
          break;
        }
        ++metrics_.corrupt_detected;
        ++metrics_.faults_injected;
        fault_events.push_back(event);
        // Heal: the sender retransmits the pristine copy (undo the flip),
        // charged into this phase's ledger like a drop retransmission.
        buf.arena[flipped] ^= mask;
        ++metrics_.integrity_retries;
        retransmit_messages += buf.messages;
        retransmit_words += buf.words();
        corrupted_src[buf.src] = 1;
        if (attempt >= kMaxIntegrityRetries) {
          exhausted_src[buf.src] = 1;
          break;
        }
      }
    }
    delivery_[buf.dst].push_back(std::move(buf));
  }
  in_flight_.clear();

  // Quarantine: a source that corrupted in kQuarantineStreak consecutive
  // phases — or exhausted a message's retry bound outright — has its round
  // re-executed from the barrier snapshot (the roundtrip happens after the
  // callbacks, sharing the deadline-speculation path). One re-executed
  // round is charged per quarantined source.
  bool barrier_roundtrip = false;
  if (corrupt_faults) {
    for (MachineId m = 0; m < config_.num_machines; ++m) {
      bool quarantine = exhausted_src[m] != 0;
      if (corrupted_src[m] != 0) {
        if (++corrupt_streak_[m] >= kQuarantineStreak) quarantine = true;
      } else {
        corrupt_streak_[m] = 0;
      }
      if (!quarantine) continue;
      FaultEvent e;
      e.kind = FaultKind::kQuarantine;
      e.round = metrics_.rounds;
      e.machine = m;
      e.words = corrupt_streak_[m];  // streak that triggered it
      e.delay_rounds = 1;            // rounds re-executed
      ++metrics_.quarantined_rounds;
      deferred_round_charge += 1;
      ++metrics_.faults_injected;
      fault_events.push_back(e);
      corrupt_streak_[m] = 0;  // the source restarts clean
      barrier_roundtrip = true;
    }
  }

  // Snapshot per-machine send cursors so degrade/deadline accounting can
  // attribute exactly this phase's sent words (drain phases do not reset the
  // cursor). Taken on the coordinating thread before any callback runs.
  std::vector<std::uint64_t> sent_before;
  const bool track_phase_work = config_.budget_policy == BudgetPolicy::kDegrade ||
                                config_.round_deadline != 0;
  if (track_phase_work && !reset_send_budget) {
    sent_before.resize(config_.num_machines);
    for (MachineId m = 0; m < config_.num_machines; ++m) {
      sent_before[m] = machines_[m].sent_words_this_round_;
    }
  }

  // Parallel delivery pass, sharded by destination (DESIGN.md §4.6): one
  // worker per destination verifies the batch checksum of every buffer
  // addressed to it (when the integrity layer is active) and builds the
  // (tag, src) inbox index over the delivered arenas. Worker d touches only
  // delivery_[d], inboxes_[d], and recv_words[d], so the pass is race-free;
  // the buffers within a destination are already in canonical order (the
  // serial partition above preserved in-flight order), so the index —
  // including its sorted-detection fast path — is byte-identical to the
  // sequential build.
  std::vector<std::uint64_t> recv_words(config_.num_machines, 0);
  run_indexed(config_.num_machines, [&](std::uint32_t d) {
    if (integrity_active_) {
      for (const AggBuffer& buf : delivery_[d]) {
        // Verify-on-receive, one digest per aggregated buffer. After the
        // healing loop above a mismatch means the transport itself is
        // broken, so it is a hard failure — and in fault-free integrity
        // runs this check is exactly what tools/check_integrity_parity.sh
        // proves to be free.
        if (buffer_checksum(buf) != buf.checksum) {
          throw MpcViolation("integrity: checksum mismatch on delivery from "
                             "machine " +
                             std::to_string(buf.src));
        }
      }
    }
    // The inbox only indexes the delivered buffers — payload views alias
    // their arenas, which the coordinator keeps alive (and recycles) after
    // every callback has returned.
    inboxes_[d].build(std::span<const AggBuffer>(delivery_[d]));
    recv_words[d] = inboxes_[d].total_words();
  });

  auto run_machine = [&](MachineId m) {
    Machine& machine = machines_[m];
    if (reset_send_budget) machine.sent_words_this_round_ = 0;
    const Inbox& inbox = inboxes_[m];
    if (recv_words[m] > config_.memory_words) {
      // kDegrade spreads the over-budget receive across sub-rounds, charged
      // at the phase barrier below; the inbox itself is delivered whole so
      // the callback's behavior is bit-identical to the unconstrained run.
      if (config_.budget_policy == BudgetPolicy::kStrict) {
        throw MpcViolation("machine " + std::to_string(m) +
                           " exceeded receive bandwidth: " +
                           std::to_string(recv_words[m]) + " > " +
                           std::to_string(config_.memory_words) + " words");
      }
      if (config_.budget_policy == BudgetPolicy::kTrace) ++machine.violations_;
    }
    body(machine, inbox);
  };

  run_indexed(config_.num_machines,
              [&](std::uint32_t m) { run_machine(static_cast<MachineId>(m)); });

  // Every callback has returned: the delivered arenas are dead weight now,
  // so hand them to the recycle pool before the merge below asks for fresh
  // ones. Coordinator thread only. (The inbox views over these arenas are
  // dead too — each inboxes_[d] is rebuilt before its next read.)
  for (std::vector<AggBuffer>& bufs : delivery_) {
    for (AggBuffer& buf : bufs) recycle_arena(std::move(buf.arena));
    bufs.clear();
  }

  // Collect sends in canonical merge order — machines in id order,
  // destinations ascending within a machine, send order within a buffer —
  // so the merged in_flight_ sequence (and with it all downstream delivery,
  // accounting, and tie-breaking) is independent of callback scheduling.
  //
  // The merge is sharded by destination (DESIGN.md §4.6). The coordinator
  // first fixes the canonical plan serially: one slot per (src, dst) pair
  // with traffic, whose index IS the buffer's in-flight position (and seq —
  // the anchor reorder healing sorts back to), plus a replacement arena
  // pre-acquired from the coordinator-only recycle pool. Workers — one per
  // destination — then move the arenas out of the machines, install the
  // replacements, and stamp the batch checksum (the expensive part, and the
  // reason the pass is parallel). dest_slots_[d] is src-ascending because
  // the serial scan is src-major, each slot is touched by exactly one
  // worker, and slot positions never depend on scheduling — so the merged
  // bytes are identical at any thread width.
  std::uint64_t phase_messages = retransmit_messages;
  std::uint64_t phase_words = retransmit_words;
  merge_slots_.clear();
  for (std::vector<std::uint32_t>& slots : dest_slots_) slots.clear();
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    Machine& machine = machines_[m];
    for (MachineId dst = 0; dst < config_.num_machines; ++dst) {
      if (machine.out_counts_[dst] == 0) continue;
      dest_slots_[dst].push_back(
          static_cast<std::uint32_t>(merge_slots_.size()));
      merge_slots_.push_back(
          {m, dst, machine.out_counts_[dst], acquire_arena()});
    }
  }
  in_flight_.resize(merge_slots_.size());
  run_indexed(config_.num_machines, [&](std::uint32_t d) {
    for (const std::uint32_t i : dest_slots_[d]) {
      MergeSlot& slot = merge_slots_[i];
      Machine& machine = machines_[slot.src];
      AggBuffer& buf = in_flight_[i];
      buf.src = slot.src;
      buf.dst = slot.dst;
      buf.messages = slot.messages;
      buf.arena = std::move(machine.out_arenas_[slot.dst]);
      machine.out_arenas_[slot.dst] = std::move(slot.replacement);
      machine.out_counts_[slot.dst] = 0;
      // Stamp the transport header: seq is the canonical position fixed by
      // the serial scan; the batch checksum is computed only when
      // verification will run. Both ride in the per-record framing words
      // already charged at send time.
      buf.seq = i;
      if (integrity_active_) buf.checksum = buffer_checksum(buf);
    }
  });
  for (const AggBuffer& buf : in_flight_) {
    phase_messages += buf.messages;
    phase_words += buf.words();
  }
  metrics_.messages += phase_messages;
  metrics_.total_words += phase_words;

  // This phase's sent words per machine (cursors were reset for round
  // phases, so the delta against sent_before is 0 there).
  auto phase_sent = [&](MachineId m) {
    const std::uint64_t now = machines_[m].sent_words_this_round_;
    return sent_before.empty() ? now : now - sent_before[m];
  };

  // Graceful degradation: an over-budget phase is modelled as spill-and-
  // resend. Each S-word wave beyond the first costs one extra sub-round;
  // waves on different machines of the same phase overlap (the barrier
  // waits for the slowest machine), so the charge is the max over machines,
  // per direction. Over-budget persistent storage pays its spill/fetch
  // waves every round it persists (round phases only — a drain is the
  // receive half of a round already charged).
  std::uint64_t phase_degraded = 0;
  if (config_.budget_policy == BudgetPolicy::kDegrade) {
    const std::uint64_t cap = config_.memory_words;
    auto extra_waves = [cap](std::uint64_t words) -> std::uint64_t {
      return words > cap ? (words + cap - 1) / cap - 1 : 0;
    };
    std::uint64_t recv_waves = 0, send_waves = 0, storage_waves = 0;
    for (MachineId m = 0; m < config_.num_machines; ++m) {
      recv_waves = std::max(recv_waves, extra_waves(recv_words[m]));
      send_waves = std::max(send_waves, extra_waves(phase_sent(m)));
      if (!drain && machines_[m].storage_words_ > cap) {
        const std::uint64_t excess = machines_[m].storage_words_ - cap;
        storage_waves = std::max(storage_waves, (excess + cap - 1) / cap);
      }
    }
    phase_degraded = recv_waves + send_waves + storage_waves;
    metrics_.degraded_subrounds += phase_degraded;
    deferred_round_charge += phase_degraded;
  }

  // Straggler deadlines: a machine whose phase work (words in + words out)
  // exceeds the deadline missed the barrier. It is speculatively re-executed
  // from an in-memory barrier snapshot — a genuine encode/decode through the
  // registered Snapshotable hooks, landing on the exact same state because
  // the work is deterministic — and the retry is charged with exponential
  // backoff per consecutive miss (capped at 32 rounds per retry).
  if (config_.round_deadline != 0) {
    bool any_miss = false;
    for (MachineId m = 0; m < config_.num_machines; ++m) {
      const std::uint64_t work = recv_words[m] + phase_sent(m);
      if (work > config_.round_deadline) {
        any_miss = true;
        ++metrics_.deadline_misses;
        const std::uint64_t streak = ++deadline_streak_[m];
        const std::uint64_t backoff = std::uint64_t{1}
                                      << std::min<std::uint64_t>(streak - 1, 5);
        metrics_.speculative_rounds += backoff;
        deferred_round_charge += backoff;
        FaultEvent e;
        e.kind = FaultKind::kDeadline;
        e.round = metrics_.rounds;
        e.machine = m;
        e.delay_rounds = backoff;
        e.words = work;
        fault_events.push_back(e);
      } else {
        deadline_streak_[m] = 0;
      }
    }
    if (any_miss) barrier_roundtrip = true;
  }

  // Speculative/quarantine re-execution shares one barrier-snapshot
  // roundtrip: a genuine encode/decode through the registered Snapshotable
  // hooks, landing on the exact same state because the work is
  // deterministic.
  if (barrier_roundtrip) {
    // The roundtrip resets trace attribution (restore_checkpoint cannot
    // know it is an identity replay), so preserve it across the replay.
    const std::uint64_t saved_traced = last_traced_violations_;
    restore_checkpoint(make_checkpoint());
    last_traced_violations_ = saved_traced;
  }

  refresh_metrics_after_round(recv_words);

  if (config_.trace_hook) {
    RoundTrace trace;
    trace.round = metrics_.rounds;
    trace.drain = drain;
    trace.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    trace.messages = phase_messages;
    trace.words_sent = phase_words;
    for (std::uint64_t words : recv_words) {
      trace.words_recv += words;
      trace.max_recv_words = std::max(trace.max_recv_words, words);
    }
    // Delta since the previous trace line (not the previous sync), so
    // violations folded in by hook-less syncs still surface on a line.
    trace.violations = metrics_.violations - last_traced_violations_;
    last_traced_violations_ = metrics_.violations;
    trace.degraded_subrounds = phase_degraded;
    trace.faults = std::move(fault_events);
    config_.trace_hook(trace);
  }

  // Straggler stalls and crash-recovery re-execution are charged after the
  // trace hook, so the phase keeps the round label its barrier ran under and
  // the next round starts past the charged delay.
  metrics_.rounds += deferred_round_charge;
}

std::uint64_t Simulator::handle_barrier(std::vector<FaultEvent>& events) {
  // A durable checkpoint scheduled for this barrier is taken first, so a
  // crash injected at the same barrier recovers from it at zero charge.
  if (config_.checkpoint_every != 0 &&
      metrics_.rounds % config_.checkpoint_every == 0) {
    last_checkpoint_ = make_checkpoint();
    last_checkpoint_round_ = metrics_.rounds;
    ++metrics_.checkpoints;
    FaultEvent e;
    e.kind = FaultKind::kCheckpoint;
    e.round = metrics_.rounds;
    e.checkpoint = last_checkpoint_.bytes.size();
    events.push_back(e);
  }
  if (!injector_) return 0;

  std::uint64_t round_charge = 0;
  std::vector<FaultEvent> injected = injector_->barrier_faults(metrics_.rounds);
  std::vector<MachineId> crashed;
  for (const FaultEvent& e : injected) {
    if (e.kind == FaultKind::kCrash) {
      crashed.push_back(e.machine);
    } else {
      round_charge += e.delay_rounds;  // straggler: the barrier waits
    }
  }
  if (!crashed.empty()) {
    // Crash-restart at the barrier: snapshot the barrier state, lose the
    // crashed machines' volatile state (and in-transit messages), then
    // recover by decoding the snapshot — a real restore, not a no-op — and
    // charge the supersteps since the last durable checkpoint, which
    // re-execution would replay bit-identically.
    Checkpoint barrier = make_checkpoint();
    for (MachineId m : crashed) {
      Machine& machine = machines_[m];
      machine.storage_words_ = ~std::size_t{0};
      machine.peak_storage_words_ = ~std::size_t{0};
      machine.sent_words_this_round_ = ~std::uint64_t{0};
      machine.violations_ = ~std::uint64_t{0};
      for (std::vector<Word>& arena : machine.out_arenas_) arena.clear();
      machine.out_counts_.assign(machine.out_counts_.size(), 0);
      Rng::State junk;
      for (std::uint64_t& s : junk.s) s = 0xDEADDEADDEADDEADull;
      junk.draws = ~std::uint64_t{0};
      machine.rng_.set_state(junk);
    }
    in_flight_.clear();
    restore_checkpoint(barrier);
    const std::uint64_t recovery = metrics_.rounds - last_checkpoint_round_;
    round_charge += recovery;
    metrics_.recovery_rounds += recovery;
    for (FaultEvent& e : injected) {
      if (e.kind != FaultKind::kCrash) continue;
      e.delay_rounds = recovery;
      e.checkpoint = last_checkpoint_round_;
    }
  }
  metrics_.faults_injected += injected.size();
  events.insert(events.end(), injected.begin(), injected.end());
  return round_charge;
}

void Simulator::register_snapshotable(const std::string& name,
                                      Snapshotable* hook) {
  if (name.empty() || hook == nullptr) {
    throw std::invalid_argument(
        "register_snapshotable: need a name and a hook");
  }
  for (const auto& [existing, _] : snapshotables_) {
    if (existing == name) {
      throw std::invalid_argument("register_snapshotable: duplicate name " +
                                  name);
    }
  }
  snapshotables_.emplace_back(name, hook);
}

Checkpoint Simulator::make_checkpoint() const {
  Checkpoint checkpoint;
  checkpoint.round = metrics_.rounds;
  SnapshotWriter w(checkpoint.bytes);
  w.u64(kCheckpointMagic);
  w.u64(kCheckpointVersion);
  w.u64(metrics_.rounds);
  w.u64(config_.num_machines);
  // Metrics ledger.
  w.u64(metrics_.rounds);
  w.u64(metrics_.messages);
  w.u64(metrics_.total_words);
  w.u64(metrics_.max_send_words);
  w.u64(metrics_.max_recv_words);
  w.u64(metrics_.max_storage_words);
  w.u64(metrics_.violations);
  w.u64(metrics_.random_words);
  w.u64(metrics_.faults_injected);
  w.u64(metrics_.checkpoints);
  w.u64(metrics_.recovery_rounds);
  w.u64(metrics_.degraded_subrounds);
  w.u64(metrics_.deadline_misses);
  w.u64(metrics_.speculative_rounds);
  w.u64(metrics_.corrupt_detected);
  w.u64(metrics_.integrity_retries);
  w.u64(metrics_.quarantined_rounds);
  // In-flight aggregated buffers (awaiting delivery at this barrier) —
  // format v4: (src, dst, messages, arena) per buffer; seq and checksum are
  // derived and re-stamped on restore.
  w.u64(in_flight_.size());
  for (const AggBuffer& buf : in_flight_) {
    w.u64(buf.src);
    w.u64(buf.dst);
    w.u64(buf.messages);
    w.vec(buf.arena);
  }
  // Per-machine counters and RNG cursors.
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    const Machine& machine = machines_[m];
    w.u64(machine.storage_words_);
    w.u64(machine.peak_storage_words_);
    w.u64(machine.sent_words_this_round_);
    w.u64(machine.violations_);
    const Rng::State rng = machine.rng_.state();
    for (const std::uint64_t s : rng.s) w.u64(s);
    w.u64(rng.draws);
    w.u64(deadline_streak_[m]);
    w.u64(corrupt_streak_[m]);
  }
  // Driver state via registered hooks, each length-prefixed and named so
  // restore can validate shape before decoding.
  w.u64(snapshotables_.size());
  for (const auto& [name, hook] : snapshotables_) {
    w.str(name);
    std::vector<std::uint8_t> payload;
    SnapshotWriter pw(payload);
    hook->save(pw);
    w.u64(payload.size());
    w.bytes(payload.data(), payload.size());
  }
  // Seal last: the trailing whole-image digest covers everything above and
  // is what read_checkpoint_file / restore_checkpoint verify.
  seal_checkpoint(checkpoint.bytes);
  return checkpoint;
}

void Simulator::restore_checkpoint(const Checkpoint& checkpoint) {
  // Never decode an image whose whole-image digest does not verify: a
  // bit-rotted checkpoint must fail loudly here, not restore silently-wrong
  // state.
  verify_checkpoint_image(checkpoint.bytes, "restore_checkpoint");
  SnapshotReader r(checkpoint.bytes.data(), checkpoint.bytes.size());
  if (r.u64() != kCheckpointMagic) {
    throw CheckpointError("restore_checkpoint: bad magic");
  }
  if (r.u64() != kCheckpointVersion) {
    throw CheckpointError("restore_checkpoint: unsupported version");
  }
  r.u64();  // header round (duplicated in the metrics section below)
  if (r.u64() != config_.num_machines) {
    throw CheckpointError(
        "restore_checkpoint: machine count differs from this simulator");
  }
  metrics_.rounds = r.u64();
  metrics_.messages = r.u64();
  metrics_.total_words = r.u64();
  metrics_.max_send_words = r.u64();
  metrics_.max_recv_words = r.u64();
  metrics_.max_storage_words = static_cast<std::size_t>(r.u64());
  metrics_.violations = r.u64();
  metrics_.random_words = r.u64();
  metrics_.faults_injected = r.u64();
  metrics_.checkpoints = r.u64();
  metrics_.recovery_rounds = r.u64();
  metrics_.degraded_subrounds = r.u64();
  metrics_.deadline_misses = r.u64();
  metrics_.speculative_rounds = r.u64();
  metrics_.corrupt_detected = r.u64();
  metrics_.integrity_retries = r.u64();
  metrics_.quarantined_rounds = r.u64();
  const std::uint64_t num_buffers = r.u64();
  in_flight_.clear();
  for (std::uint64_t i = 0; i < num_buffers; ++i) {
    AggBuffer buf;
    buf.src = static_cast<MachineId>(r.u64());
    buf.dst = static_cast<MachineId>(r.u64());
    buf.messages = static_cast<std::uint32_t>(r.u64());
    r.vec(buf.arena);
    if (buf.dst >= config_.num_machines) {
      throw CheckpointError("restore_checkpoint: buffer to unknown machine");
    }
    // Validate the record framing before accepting the buffer: a decoder
    // must never hand the delivery path an arena whose walk would overrun.
    std::size_t at = 0;
    for (std::uint32_t msg = 0; msg < buf.messages; ++msg) {
      if (buf.arena.size() - at < kHeaderWords ||
          buf.arena[at + 1] > buf.arena.size() - at - kHeaderWords) {
        throw CheckpointError("restore_checkpoint: malformed buffer framing");
      }
      at += kHeaderWords + static_cast<std::size_t>(buf.arena[at + 1]);
    }
    if (at != buf.arena.size()) {
      throw CheckpointError("restore_checkpoint: malformed buffer framing");
    }
    // Transport header fields are not serialized; re-stamp them exactly as
    // the barrier merge did — seq is the in-flight position and the batch
    // checksum is a pure function of the buffer, so the restored sequence
    // is byte-identical to the snapshotted one.
    buf.seq = in_flight_.size();
    if (integrity_active_) buf.checksum = buffer_checksum(buf);
    in_flight_.push_back(std::move(buf));
  }
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    Machine& machine = machines_[m];
    machine.storage_words_ = static_cast<std::size_t>(r.u64());
    machine.peak_storage_words_ = static_cast<std::size_t>(r.u64());
    machine.sent_words_this_round_ = r.u64();
    machine.violations_ = r.u64();
    Rng::State rng;
    for (std::uint64_t& s : rng.s) s = r.u64();
    rng.draws = r.u64();
    machine.rng_.set_state(rng);
    for (std::vector<Word>& arena : machine.out_arenas_) arena.clear();
    machine.out_counts_.assign(machine.out_counts_.size(), 0);
    deadline_streak_[m] = r.u64();
    corrupt_streak_[m] = r.u64();
  }
  if (r.u64() != snapshotables_.size()) {
    throw CheckpointError(
        "restore_checkpoint: registered snapshotables differ from the "
        "checkpoint's");
  }
  for (const auto& [name, hook] : snapshotables_) {
    if (r.str() != name) {
      throw CheckpointError("restore_checkpoint: expected section " + name);
    }
    const std::uint64_t size = r.u64();
    if (size > r.remaining()) {
      throw CheckpointError("restore_checkpoint: section " + name +
                            " truncated");
    }
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(size));
    r.bytes(payload.data(), payload.size());
    SnapshotReader section(payload.data(), payload.size());
    hook->restore(section);
    if (section.remaining() != 0) {
      throw CheckpointError("restore_checkpoint: section " + name +
                            " has trailing bytes");
    }
  }
  // The only bytes allowed after the last section are the whole-image
  // digest appended by seal_checkpoint (already verified above).
  if (r.remaining() != sizeof(std::uint64_t)) {
    throw CheckpointError("restore_checkpoint: trailing bytes");
  }
  // Trace attribution cannot span a restore: the next trace line reports
  // violations observed from this barrier onward.
  last_traced_violations_ = metrics_.violations;
}

std::vector<Word> Simulator::acquire_arena() {
  if (arena_pool_.empty()) return {};
  std::vector<Word> arena = std::move(arena_pool_.back());
  arena_pool_.pop_back();
  return arena;
}

void Simulator::recycle_arena(std::vector<Word>&& arena) {
  arena.clear();  // capacity is the whole point; contents are dead
  arena_pool_.push_back(std::move(arena));
}

void Simulator::sync_metrics() {
  refresh_metrics_after_round(
      std::vector<std::uint64_t>(config_.num_machines, 0));
}

std::uint64_t Simulator::refresh_metrics_after_round(
    const std::vector<std::uint64_t>& recv_words) {
  std::uint64_t rng_draws = 0;
  std::uint64_t new_violations = 0;
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    const Machine& machine = machines_[m];
    metrics_.max_send_words =
        std::max(metrics_.max_send_words, machine.sent_words_this_round_);
    metrics_.max_recv_words = std::max(metrics_.max_recv_words, recv_words[m]);
    metrics_.max_storage_words =
        std::max(metrics_.max_storage_words, machine.peak_storage_words_);
    new_violations += machine.violations_;
    machines_[m].violations_ = 0;
    rng_draws += machine.rng_.draws();
  }
  metrics_.violations += new_violations;
  metrics_.random_words = rng_draws;
  return new_violations;
}

}  // namespace rsets::mpc
