#include "mpc/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsets::mpc {

Simulator::Simulator(const MpcConfig& config) : config_(config) {
  if (config_.num_machines == 0) {
    throw std::invalid_argument("Simulator: need at least one machine");
  }
  machines_.reserve(config_.num_machines);
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    machines_.emplace_back(m, config_);
  }
}

void Simulator::round(const RoundBody& body) {
  ++metrics_.rounds;
  run_phase(body, /*reset_send_budget=*/true);
}

void Simulator::drain(const RoundBody& body) {
  // Receipt of the previous round's sends; no new round starts. Sends made
  // inside a drain body count against the *next* round's budget, so we do
  // not reset the send accounting here — but drain bodies by convention do
  // not send (delivery handlers only).
  run_phase(body, /*reset_send_budget=*/false);
}

void Simulator::run_phase(const RoundBody& body, bool reset_send_budget) {
  // Deliver: partition in-flight messages by destination.
  std::vector<std::vector<Message>> delivery(config_.num_machines);
  for (Message& msg : in_flight_) {
    delivery[msg.dst].push_back(std::move(msg));
  }
  in_flight_.clear();

  std::vector<std::uint64_t> recv_words(config_.num_machines, 0);
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    Machine& machine = machines_[m];
    if (reset_send_budget) machine.sent_words_this_round_ = 0;
    const Inbox inbox(std::move(delivery[m]));
    recv_words[m] = inbox.total_words();
    if (recv_words[m] > config_.memory_words) {
      if (config_.enforce) {
        throw MpcViolation("machine " + std::to_string(m) +
                           " exceeded receive bandwidth: " +
                           std::to_string(recv_words[m]) + " > " +
                           std::to_string(config_.memory_words) + " words");
      }
      ++machine.violations_;
    }
    body(machine, inbox);
    // Collect what this machine sent during the round.
    for (Message& msg : machine.outbox_) {
      ++metrics_.messages;
      metrics_.total_words += msg.words();
      in_flight_.push_back(std::move(msg));
    }
    machine.outbox_.clear();
  }

  refresh_metrics_after_round(recv_words);
}

void Simulator::sync_metrics() {
  refresh_metrics_after_round(
      std::vector<std::uint64_t>(config_.num_machines, 0));
}

void Simulator::refresh_metrics_after_round(
    const std::vector<std::uint64_t>& recv_words) {
  std::uint64_t rng_draws = 0;
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    const Machine& machine = machines_[m];
    metrics_.max_send_words =
        std::max(metrics_.max_send_words, machine.sent_words_this_round_);
    metrics_.max_recv_words = std::max(metrics_.max_recv_words, recv_words[m]);
    metrics_.max_storage_words =
        std::max(metrics_.max_storage_words, machine.peak_storage_words_);
    metrics_.violations += machine.violations_;
    machines_[m].violations_ = 0;
    rng_draws += machine.rng_.draws();
  }
  metrics_.random_words = rng_draws;
}

}  // namespace rsets::mpc
