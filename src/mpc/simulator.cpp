#include "mpc/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace rsets::mpc {
namespace {

unsigned resolve_threads(unsigned requested, MachineId num_machines) {
  unsigned t = requested == 0
                   ? std::max(1u, std::thread::hardware_concurrency())
                   : requested;
  return std::min<unsigned>(std::max(1u, t), std::max<MachineId>(1, num_machines));
}

}  // namespace

// A persistent pool executing one task index set per generation. Workers
// claim machine indices through an atomic counter, so scheduling order is
// arbitrary — correctness does not depend on it because each task touches
// only its machine's slice; determinism is restored by the caller merging
// outboxes in machine-id order afterwards.
class Simulator::WorkerPool {
 public:
  explicit WorkerPool(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  // Runs task(0..num_tasks-1) across the workers and the calling thread;
  // returns after every task has finished. `task` must not throw (callers
  // capture exceptions per task).
  void run(std::uint32_t num_tasks,
           const std::function<void(std::uint32_t)>& task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = &task;
      num_tasks_ = num_tasks;
      next_task_.store(0, std::memory_order_relaxed);
      idle_workers_ = 0;
      ++generation_;
    }
    work_ready_.notify_all();
    // The caller participates instead of blocking idle.
    drain_tasks(task, num_tasks);
    std::unique_lock<std::mutex> lock(mu_);
    all_idle_.wait(lock, [&] { return idle_workers_ == threads_.size(); });
    task_ = nullptr;
  }

 private:
  void drain_tasks(const std::function<void(std::uint32_t)>& task,
                   std::uint32_t num_tasks) {
    while (true) {
      const std::uint32_t i =
          next_task_.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) break;
      task(i);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(std::uint32_t)>* task = nullptr;
      std::uint32_t num_tasks = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        task = task_;
        num_tasks = num_tasks_;
      }
      drain_tasks(*task, num_tasks);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (++idle_workers_ == threads_.size()) all_idle_.notify_one();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::vector<std::thread> threads_;
  const std::function<void(std::uint32_t)>* task_ = nullptr;
  std::uint32_t num_tasks_ = 0;
  std::atomic<std::uint32_t> next_task_{0};
  std::size_t idle_workers_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

Simulator::Simulator(const MpcConfig& config) : config_(config) {
  if (config_.num_machines == 0) {
    throw std::invalid_argument("Simulator: need at least one machine");
  }
  effective_threads_ =
      resolve_threads(config_.num_threads, config_.num_machines);
  machines_.reserve(config_.num_machines);
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    machines_.emplace_back(m, config_);
  }
}

Simulator::~Simulator() = default;

void Simulator::round(const RoundBody& body) {
  ++metrics_.rounds;
  run_phase(body, /*reset_send_budget=*/true, /*drain=*/false);
}

void Simulator::drain(const RoundBody& body) {
  // Receipt of the previous round's sends; no new round starts. Sends made
  // inside a drain body count against the *next* round's budget, so we do
  // not reset the send accounting here — but drain bodies by convention do
  // not send (delivery handlers only).
  run_phase(body, /*reset_send_budget=*/false, /*drain=*/true);
}

void Simulator::run_phase(const RoundBody& body, bool reset_send_budget,
                          bool drain) {
  const auto wall_start = std::chrono::steady_clock::now();

  // Deliver: partition in-flight messages by destination. Message order
  // within a destination follows in_flight_ order, which run_phase fixed by
  // merging outboxes in machine-id order last phase — so delivery is
  // identical regardless of how the upcoming callbacks are scheduled.
  std::vector<std::vector<Message>> delivery(config_.num_machines);
  for (Message& msg : in_flight_) {
    delivery[msg.dst].push_back(std::move(msg));
  }
  in_flight_.clear();

  std::vector<std::uint64_t> recv_words(config_.num_machines, 0);
  auto run_machine = [&](MachineId m) {
    Machine& machine = machines_[m];
    if (reset_send_budget) machine.sent_words_this_round_ = 0;
    const Inbox inbox(std::move(delivery[m]));
    recv_words[m] = inbox.total_words();
    if (recv_words[m] > config_.memory_words) {
      if (config_.enforce) {
        throw MpcViolation("machine " + std::to_string(m) +
                           " exceeded receive bandwidth: " +
                           std::to_string(recv_words[m]) + " > " +
                           std::to_string(config_.memory_words) + " words");
      }
      ++machine.violations_;
    }
    body(machine, inbox);
  };

  if (effective_threads_ <= 1) {
    // Sequential path: identical to the historical loop, including the
    // exception point (a violating machine throws before later machines
    // run).
    for (MachineId m = 0; m < config_.num_machines; ++m) run_machine(m);
  } else {
    if (!pool_) {
      pool_ = std::make_unique<WorkerPool>(effective_threads_ - 1);
    }
    // Parallel path: every callback runs (exceptions are captured, not
    // propagated mid-phase), then the lowest-machine-id exception is
    // rethrown — the same exception a sequential run surfaces first.
    std::vector<std::exception_ptr> errors(config_.num_machines);
    pool_->run(config_.num_machines, [&](std::uint32_t m) {
      try {
        run_machine(static_cast<MachineId>(m));
      } catch (...) {
        errors[m] = std::current_exception();
      }
    });
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  // Collect sends in machine-id order: the merged in_flight_ sequence (and
  // with it all downstream delivery, accounting, and tie-breaking) is
  // independent of callback scheduling.
  std::uint64_t phase_messages = 0;
  std::uint64_t phase_words = 0;
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    Machine& machine = machines_[m];
    for (Message& msg : machine.outbox_) {
      ++phase_messages;
      phase_words += msg.words();
      in_flight_.push_back(std::move(msg));
    }
    machine.outbox_.clear();
  }
  metrics_.messages += phase_messages;
  metrics_.total_words += phase_words;

  refresh_metrics_after_round(recv_words);

  if (config_.trace_hook) {
    RoundTrace trace;
    trace.round = metrics_.rounds;
    trace.drain = drain;
    trace.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    trace.messages = phase_messages;
    trace.words_sent = phase_words;
    for (std::uint64_t words : recv_words) {
      trace.words_recv += words;
      trace.max_recv_words = std::max(trace.max_recv_words, words);
    }
    config_.trace_hook(trace);
  }
}

void Simulator::sync_metrics() {
  refresh_metrics_after_round(
      std::vector<std::uint64_t>(config_.num_machines, 0));
}

void Simulator::refresh_metrics_after_round(
    const std::vector<std::uint64_t>& recv_words) {
  std::uint64_t rng_draws = 0;
  for (MachineId m = 0; m < config_.num_machines; ++m) {
    const Machine& machine = machines_[m];
    metrics_.max_send_words =
        std::max(metrics_.max_send_words, machine.sent_words_this_round_);
    metrics_.max_recv_words = std::max(metrics_.max_recv_words, recv_words[m]);
    metrics_.max_storage_words =
        std::max(metrics_.max_storage_words, machine.peak_storage_words_);
    metrics_.violations += machine.violations_;
    machines_[m].violations_ = 0;
    rng_draws += machine.rng_.draws();
  }
  metrics_.random_words = rng_draws;
}

}  // namespace rsets::mpc
