// Umbrella header: the whole public API of mpc-ruling-sets.
//
//   #include "rsets.hpp"
//
// pulls in the graph toolkit, verification, both simulators, and every
// ruling-set algorithm. Fine-grained headers remain available for faster
// compiles; this exists for examples, quick tools, and downstream users who
// prefer one include.
#pragma once

// Graph substrate.
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"
#include "graph/verify.hpp"

// MPC substrate.
#include "mpc/dist_graph.hpp"
#include "mpc/primitives.hpp"
#include "mpc/simulator.hpp"

// CONGEST substrate and its algorithms.
#include "congest/aglp_ruling.hpp"
#include "congest/beta_ruling_congest.hpp"
#include "congest/coloring_mis.hpp"
#include "congest/congest.hpp"
#include "congest/det_ruling_congest.hpp"
#include "congest/luby_congest.hpp"

// Derandomization toolkit.
#include "util/cond_expect.hpp"
#include "util/hash_family.hpp"

// Core algorithms and the dispatcher.
#include "core/det_luby.hpp"
#include "core/det_matching.hpp"
#include "core/det_ruling.hpp"
#include "core/greedy.hpp"
#include "core/luby.hpp"
#include "core/ruling_set.hpp"
#include "core/sample_gather.hpp"
