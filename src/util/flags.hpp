// A tiny --key=value command line parser for examples and benches.
//
// Not a general-purpose flags library: no registration, no help generation
// beyond what the caller prints. Unknown flags are collected so callers can
// reject them explicitly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rsets {

class Flags {
 public:
  // Parses argv entries of the form --key=value or --key (value "true").
  // Positional arguments are kept in order.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  // Typed getters return `fallback` when the key is absent and throw
  // rsets::Error (ErrorCode::kBadFlag) when the value is present but does
  // not parse completely — "--n=1x" is an error, never silently 1.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  // Keys that were parsed; callers can diff against their expected set.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rsets
