#include "util/flags.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "util/error.hpp"

namespace rsets {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get(const std::string& key,
                       const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
    throw Error(ErrorCode::kBadFlag,
                "--" + key + "=" + s + " is not an integer");
  }
  return v;
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
    throw Error(ErrorCode::kBadFlag, "--" + key + "=" + s + " is not a number");
  }
  return v;
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace rsets
