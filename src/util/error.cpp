#include "util/error.hpp"

namespace rsets {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIoFailure:
      return "io_failure";
    case ErrorCode::kTruncatedInput:
      return "truncated_input";
    case ErrorCode::kMalformedLine:
      return "malformed_line";
    case ErrorCode::kVertexIdOverflow:
      return "vertex_id_overflow";
    case ErrorCode::kSelfLoop:
      return "self_loop";
    case ErrorCode::kDuplicateEdge:
      return "duplicate_edge";
    case ErrorCode::kBadFlag:
      return "bad_flag";
    case ErrorCode::kChecksumMismatch:
      return "checksum_mismatch";
  }
  return "?";
}

}  // namespace rsets
