// Minimal leveled logging for the library.
//
// Logging is intentionally tiny: a global level, a stream sink, and a
// printf-free streaming interface. Algorithms in this library log at
// kDebug/kTrace during phase loops; benches and examples run at kInfo.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace rsets {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

// Global logging configuration. Thread-safe for concurrent emission;
// configuration (set_level/set_sink) is expected at startup only.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Sink defaults to std::clog. Not owned.
  void set_sink(std::ostream* sink) { sink_ = sink; }

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_);
  }

  void emit(LogLevel level, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = &std::clog;
  std::mutex mu_;
};

// Streaming helper: builds the message, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (Logger::instance().enabled(level_)) {
      Logger::instance().emit(level_, out_.str());
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (Logger::instance().enabled(level_)) out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

const char* log_level_name(LogLevel level);

}  // namespace rsets

#define RSETS_LOG(level) ::rsets::LogLine(::rsets::LogLevel::level)
#define RSETS_ERROR RSETS_LOG(kError)
#define RSETS_WARN RSETS_LOG(kWarn)
#define RSETS_INFO RSETS_LOG(kInfo)
#define RSETS_DEBUG RSETS_LOG(kDebug)
#define RSETS_TRACE RSETS_LOG(kTrace)
