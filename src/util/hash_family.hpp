// GF(2)-linear pairwise-independent marking families with *exact*
// conditional probability queries under partially fixed seeds.
//
// This is the deterministic-sampling primitive behind the paper's
// derandomized MPC algorithms. A vertex v in [0, 2^L) is marked iff k
// independent "level bits" all equal 1, where level j's bit is the affine
// form
//
//     b_j(v) = <r_j, x_v> XOR c_j          (inner product over GF(2))
//
// with x_v the L-bit encoding of v and seed (r_j in GF(2)^L, c_j in GF(2)).
// Over a uniform seed:
//   * P(mark v) = 2^-k exactly, and the marks are pairwise independent:
//     for u != v, P(mark u AND mark v) = 4^-k.
//   * Per-vertex truncation depth k_v <= k yields non-uniform marking
//     probabilities 2^-k_v from the *same* seed (used by derandomized Luby).
//
// The seed has k*(L+1) bits total. The point of this class — and what makes
// the method of conditional expectations implementable — is that with any
// subset of seed bits fixed, the marginal P(b_j(v)=1 | fixed bits) and the
// joint P(b_j(u)=1 AND b_j(v)=1 | fixed bits) are exactly computable in
// O(1) word operations:
//   * the free-coefficient vector of b_j(v) is x_v restricted to the unfixed
//     positions of r_j (plus c_j if unfixed);
//   * a single affine form with a nonzero free part is uniform;
//   * two affine forms with nonzero free parts are either equal (then their
//     XOR is determined and the pair is uniform on a coset) or linearly
//     independent (then jointly uniform on {0,1}^2).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bits.hpp"

namespace rsets {

// One level: the affine form b(v) = <r, x_v> XOR c with partial assignment
// state. Small value type; copyable for tentative chunk evaluation.
class PairwiseBitLevel {
 public:
  // `bits` = L, the id width; ids must lie in [0, 2^L). L <= 63.
  explicit PairwiseBitLevel(int bits);

  int bits() const { return bits_; }
  // Total seed bits of this level: L coefficients + 1 constant.
  int seed_bits() const { return bits_ + 1; }

  // Index i in [0, bits()) fixes coefficient r_i; index bits() fixes c.
  void fix_bit(int index, int value);
  bool bit_fixed(int index) const;
  bool fully_fixed() const;
  int fixed_count() const;

  // P(b(v) = 1 | fixed bits): one of {0, 0.5, 1}.
  double prob_one(std::uint64_t v) const;

  // P(b(u) = 1 AND b(v) = 1 | fixed bits) for u != v:
  // one of {0, 0.25, 0.5, 1}.
  double prob_both_one(std::uint64_t u, std::uint64_t v) const;

  // Evaluates b(v); requires fully_fixed().
  int eval(std::uint64_t v) const;

  // Seed bit value; requires bit_fixed(index).
  int seed_bit(int index) const;

 private:
  // Determined XOR contribution of already-fixed coefficient bits.
  int fixed_part(std::uint64_t x) const {
    return parity64(x & fixed_vals_) ^ (c_fixed_ ? c_val_ : 0);
  }
  // Coefficients of v over the free r-bits.
  std::uint64_t free_coeff(std::uint64_t x) const { return x & ~fixed_mask_; }

  int bits_;
  std::uint64_t id_mask_;
  std::uint64_t fixed_mask_ = 0;  // which r-bits are fixed
  std::uint64_t fixed_vals_ = 0;  // their values (subset of fixed_mask_)
  bool c_fixed_ = false;
  int c_val_ = 0;
};

// A k-level marking family over ids in [0, n_ids). Marking probability is
// 2^-k, or 2^-depth with per-id truncation depth <= k.
class MarkingFamily {
 public:
  MarkingFamily(std::uint64_t n_ids, int k);

  int levels() const { return static_cast<int>(levels_.size()); }
  int id_bits() const { return id_bits_; }
  int total_seed_bits() const { return levels() * (id_bits_ + 1); }

  PairwiseBitLevel& level(int j) { return levels_.at(static_cast<std::size_t>(j)); }
  const PairwiseBitLevel& level(int j) const {
    return levels_.at(static_cast<std::size_t>(j));
  }

  // Global seed-bit index -> (level, index within level).
  std::pair<int, int> locate(int global_bit) const;
  void fix_global_bit(int global_bit, int value);
  bool fully_fixed() const;
  int fixed_levels() const;

  // Full-depth mark; requires fully_fixed().
  bool mark(std::uint64_t v) const { return mark_depth(v, levels()); }
  // Truncated mark: AND of the first `depth` level bits.
  bool mark_depth(std::uint64_t v, int depth) const;

  // P(mark_depth(v, depth)=1 | current partial assignment), exact.
  double prob_mark(std::uint64_t v, int depth) const;
  // Exact pairwise joint for u != v at depths du, dv.
  double prob_mark_both(std::uint64_t u, int du, std::uint64_t v,
                        int dv) const;

  // The fixed seed as a bit vector (for logging / replication); requires
  // fully_fixed().
  std::vector<std::uint8_t> seed() const;

 private:
  int id_bits_;
  std::vector<PairwiseBitLevel> levels_;
};

// Deterministic stateless 64-bit mixer used for data partitioning in the MPC
// substrate (NOT for the derandomized sampling — that is what MarkingFamily
// is for). splitmix64 finalizer over (x ^ salt).
std::uint64_t mix_hash(std::uint64_t x, std::uint64_t salt);

}  // namespace rsets
