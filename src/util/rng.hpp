// Deterministic, counter-friendly random number generation.
//
// All randomized algorithms in this library draw from Xoshiro256** streams
// seeded through SplitMix64 from a single experiment seed, so that a run is
// reproducible given (seed, machine id). The deterministic algorithms consume
// *zero* bits from these generators; tests assert that via Rng::draws().
#pragma once

#include <cstdint>
#include <limits>

namespace rsets {

// SplitMix64: used only for seeding; passes BigCrush as a 64-bit mixer.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Xoshiro256** with draw accounting.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
    draws_ = 0;
  }

  // Derives an independent stream for a (seed, stream) pair, e.g. one per
  // simulated machine.
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    return Rng(splitmix64(sm));
  }

  std::uint64_t next() {
    ++draws_;
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  // Uniform in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli with probability p.
  bool flip(double p) { return uniform() < p; }

  // Number of 64-bit words drawn since construction/reseed. Deterministic
  // code paths must leave this untouched.
  std::uint64_t draws() const { return draws_; }

  // Full generator cursor, for checkpoint/restore: restoring a saved state
  // resumes the stream exactly (same future draws, same draw count).
  struct State {
    std::uint64_t s[4] = {};
    std::uint64_t draws = 0;
  };

  State state() const {
    State out;
    for (int i = 0; i < 4; ++i) out.s[i] = s_[i];
    out.draws = draws_;
    return out;
  }

  void set_state(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    draws_ = state.draws;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  std::uint64_t draws_ = 0;
};

}  // namespace rsets
