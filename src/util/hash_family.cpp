#include "util/hash_family.hpp"

#include <stdexcept>

namespace rsets {

PairwiseBitLevel::PairwiseBitLevel(int bits) : bits_(bits) {
  if (bits < 1 || bits > 63) {
    throw std::invalid_argument("PairwiseBitLevel: bits must be in [1, 63]");
  }
  id_mask_ = (std::uint64_t{1} << bits) - 1;
}

void PairwiseBitLevel::fix_bit(int index, int value) {
  if (index < 0 || index > bits_) {
    throw std::out_of_range("PairwiseBitLevel::fix_bit: bad index");
  }
  if (value != 0 && value != 1) {
    throw std::invalid_argument("PairwiseBitLevel::fix_bit: bad value");
  }
  if (index == bits_) {
    c_fixed_ = true;
    c_val_ = value;
    return;
  }
  const std::uint64_t bit = std::uint64_t{1} << index;
  fixed_mask_ |= bit;
  if (value) {
    fixed_vals_ |= bit;
  } else {
    fixed_vals_ &= ~bit;
  }
}

bool PairwiseBitLevel::bit_fixed(int index) const {
  if (index == bits_) return c_fixed_;
  return (fixed_mask_ >> index) & 1;
}

bool PairwiseBitLevel::fully_fixed() const {
  return c_fixed_ && fixed_mask_ == id_mask_;
}

int PairwiseBitLevel::fixed_count() const {
  return std::popcount(fixed_mask_) + (c_fixed_ ? 1 : 0);
}

double PairwiseBitLevel::prob_one(std::uint64_t v) const {
  const std::uint64_t x = v & id_mask_;
  // The constant c always participates; if it (or any coefficient position
  // with x-bit 1) is free, the form is uniform.
  if (!c_fixed_ || free_coeff(x) != 0) return 0.5;
  return fixed_part(x) ? 1.0 : 0.0;
}

double PairwiseBitLevel::prob_both_one(std::uint64_t u,
                                       std::uint64_t v) const {
  const std::uint64_t xu = u & id_mask_;
  const std::uint64_t xv = v & id_mask_;
  const std::uint64_t au = free_coeff(xu);
  const std::uint64_t av = free_coeff(xv);
  const bool u_free = !c_fixed_ || au != 0;
  const bool v_free = !c_fixed_ || av != 0;
  if (!u_free && !v_free) {
    return (fixed_part(xu) && fixed_part(xv)) ? 1.0 : 0.0;
  }
  if (!u_free) return fixed_part(xu) ? 0.5 : 0.0;
  if (!v_free) return fixed_part(xv) ? 0.5 : 0.0;
  // Both forms depend on free seed bits. Including the free constant c, the
  // free-coefficient vectors are (au, !c_fixed) and (av, !c_fixed); since c's
  // coefficient is 1 in both forms, the vectors differ iff au != av.
  if (au != av) return 0.25;  // linearly independent -> jointly uniform
  // Equal free parts: b(u) XOR b(v) is determined (= XOR of fixed parts; the
  // constants cancel). Pair is uniform on the corresponding coset.
  const int diff = parity64((xu ^ xv) & fixed_vals_);
  return diff == 0 ? 0.5 : 0.0;
}

int PairwiseBitLevel::eval(std::uint64_t v) const {
  if (!fully_fixed()) {
    throw std::logic_error("PairwiseBitLevel::eval: seed not fully fixed");
  }
  return fixed_part(v & id_mask_);
}

int PairwiseBitLevel::seed_bit(int index) const {
  if (!bit_fixed(index)) {
    throw std::logic_error("PairwiseBitLevel::seed_bit: bit not fixed");
  }
  if (index == bits_) return c_val_;
  return (fixed_vals_ >> index) & 1;
}

MarkingFamily::MarkingFamily(std::uint64_t n_ids, int k)
    : id_bits_(bit_width_for(n_ids)) {
  if (k < 1) throw std::invalid_argument("MarkingFamily: k must be >= 1");
  levels_.reserve(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) levels_.emplace_back(id_bits_);
}

std::pair<int, int> MarkingFamily::locate(int global_bit) const {
  const int per_level = id_bits_ + 1;
  if (global_bit < 0 || global_bit >= total_seed_bits()) {
    throw std::out_of_range("MarkingFamily::locate: bad bit index");
  }
  return {global_bit / per_level, global_bit % per_level};
}

void MarkingFamily::fix_global_bit(int global_bit, int value) {
  const auto [lvl, idx] = locate(global_bit);
  levels_[static_cast<std::size_t>(lvl)].fix_bit(idx, value);
}

bool MarkingFamily::fully_fixed() const {
  for (const auto& lvl : levels_) {
    if (!lvl.fully_fixed()) return false;
  }
  return true;
}

int MarkingFamily::fixed_levels() const {
  int count = 0;
  for (const auto& lvl : levels_) {
    if (!lvl.fully_fixed()) break;
    ++count;
  }
  return count;
}

bool MarkingFamily::mark_depth(std::uint64_t v, int depth) const {
  for (int j = 0; j < depth; ++j) {
    if (levels_[static_cast<std::size_t>(j)].eval(v) == 0) return false;
  }
  return true;
}

double MarkingFamily::prob_mark(std::uint64_t v, int depth) const {
  double p = 1.0;
  for (int j = 0; j < depth && p > 0.0; ++j) {
    p *= levels_[static_cast<std::size_t>(j)].prob_one(v);
  }
  return p;
}

double MarkingFamily::prob_mark_both(std::uint64_t u, int du, std::uint64_t v,
                                     int dv) const {
  if (u == v) {
    throw std::invalid_argument("prob_mark_both: ids must differ");
  }
  const int shared = du < dv ? du : dv;
  double p = 1.0;
  for (int j = 0; j < shared && p > 0.0; ++j) {
    p *= levels_[static_cast<std::size_t>(j)].prob_both_one(u, v);
  }
  const std::uint64_t deeper = du > dv ? u : v;
  const int hi = du > dv ? du : dv;
  for (int j = shared; j < hi && p > 0.0; ++j) {
    p *= levels_[static_cast<std::size_t>(j)].prob_one(deeper);
  }
  return p;
}

std::vector<std::uint8_t> MarkingFamily::seed() const {
  if (!fully_fixed()) {
    throw std::logic_error("MarkingFamily::seed: seed not fully fixed");
  }
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(total_seed_bits()));
  for (const auto& lvl : levels_) {
    for (int i = 0; i <= id_bits_; ++i) {
      out.push_back(static_cast<std::uint8_t>(lvl.seed_bit(i)));
    }
  }
  return out;
}

std::uint64_t mix_hash(std::uint64_t x, std::uint64_t salt) {
  std::uint64_t z = x ^ (salt + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace rsets
