#include "util/rng.hpp"

namespace rsets {

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace rsets
