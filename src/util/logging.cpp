#include "util/logging.hpp"

namespace rsets {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::emit(LogLevel level, std::string_view msg) {
  std::lock_guard<std::mutex> lock(mu_);
  (*sink_) << "[" << log_level_name(level) << "] " << msg << '\n';
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
  }
  return "?";
}

}  // namespace rsets
