// The method of conditional expectations over MarkingFamily seeds.
//
// Given a pessimistic estimator Phi whose conditional expectation under a
// partially fixed seed is exactly computable (see hash_family.hpp for why it
// is), `fix_seed` deterministically chooses every seed bit so that the final
// (fully determined) value of Phi is at least E[Phi] under a uniform seed.
//
// Bits are fixed in chunks of `chunk_bits` at a time, enumerating all 2^c
// assignments of a chunk and keeping the best — this mirrors the distributed
// implementation, where one chunk costs O(1) MPC aggregation rounds because
// the 2^c candidate partial sums fit in a machine's bandwidth budget. Chunks
// never straddle level boundaries so that estimators can maintain per-level
// survivor structures.
#pragma once

#include <cstdint>
#include <vector>

#include "util/hash_family.hpp"

namespace rsets {

// Client-provided conditional expectation of the pessimistic estimator.
class SeedEstimator {
 public:
  virtual ~SeedEstimator() = default;

  // E[Phi | family's current partial seed assignment]. Must be exact: the
  // greedy guarantee (final >= initial expectation) rests on it.
  virtual double value() const = 0;

  // Notification that level `j` has just become fully and permanently fixed;
  // estimators typically shrink their survivor sets here.
  virtual void on_level_fixed(int j);
};

struct FixOptions {
  // Seed bits decided per enumeration step (1..16). Each chunk corresponds
  // to O(1) rounds in the distributed implementation.
  int chunk_bits = 4;
};

struct FixReport {
  double initial_value = 0.0;  // E[Phi] before any bit is fixed
  double final_value = 0.0;    // Phi under the chosen seed
  int chunks = 0;              // enumeration steps (-> MPC aggregations)
  int bits = 0;                // total seed bits fixed
  // Estimator value after each permanently applied chunk; by the
  // supermartingale property this sequence is non-decreasing.
  std::vector<double> trajectory;
};

// Greedily fixes all remaining seed bits of `family` to MAXIMIZE the
// estimator. Deterministic: ties break toward the lexicographically smallest
// chunk assignment. Returns the trajectory for auditing.
FixReport fix_seed(MarkingFamily& family, SeedEstimator& estimator,
                   const FixOptions& options = {});

}  // namespace rsets
