// Small bit-manipulation helpers used across the library.
#pragma once

#include <bit>
#include <cstdint>

namespace rsets {

// Parity (XOR of all bits) of x: 0 or 1.
inline int parity64(std::uint64_t x) { return std::popcount(x) & 1; }

// Number of bits needed to represent values in [0, n); at least 1.
inline int bit_width_for(std::uint64_t n) {
  if (n <= 1) return 1;
  return std::bit_width(n - 1);
}

// Ceiling of log2(n) for n >= 1.
inline int ceil_log2(std::uint64_t n) {
  if (n <= 1) return 0;
  return std::bit_width(n - 1);
}

// Floor of log2(n) for n >= 1.
inline int floor_log2(std::uint64_t n) { return std::bit_width(n) - 1; }

// Smallest power of two >= n.
inline std::uint64_t next_pow2(std::uint64_t n) {
  return n <= 1 ? 1 : std::uint64_t{1} << ceil_log2(n);
}

inline bool is_pow2(std::uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace rsets
