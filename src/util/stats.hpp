// Summary statistics, histograms, and CSV emission for experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rsets {

// Online mean/min/max/variance accumulator (Welford).
class Summary {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range values clamp to
// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Peak resident set (VmHWM from /proc/self/status) in kB; 0 where /proc is
// unavailable. Every CLI run mode and the serve/churn benches report this
// uniformly — it is the number memory-footprint claims (out-of-core spill,
// resident-service overhead) are judged by. Linux-only, like the mmap spill.
std::uint64_t peak_rss_kb();

// Row-oriented CSV table with a fixed header; used by benches to emit the
// experiment series alongside google-benchmark counters.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  // Convenience: formats doubles with 6 significant digits.
  static std::string fmt(double v);
  static std::string fmt(std::uint64_t v);
  void write(std::ostream& os) const;
  // Writes to path, returns false on I/O failure.
  bool write_file(const std::string& path) const;
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rsets
