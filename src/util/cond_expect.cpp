#include "util/cond_expect.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace rsets {

void SeedEstimator::on_level_fixed(int /*j*/) {}

namespace {

// Indices (within a level) of the unfixed seed bits.
std::vector<int> unfixed_bits(const PairwiseBitLevel& level) {
  std::vector<int> out;
  for (int i = 0; i <= level.bits(); ++i) {
    if (!level.bit_fixed(i)) out.push_back(i);
  }
  return out;
}

}  // namespace

FixReport fix_seed(MarkingFamily& family, SeedEstimator& estimator,
                   const FixOptions& options) {
  if (options.chunk_bits < 1 || options.chunk_bits > 16) {
    throw std::invalid_argument("fix_seed: chunk_bits must be in [1, 16]");
  }
  FixReport report;
  report.initial_value = estimator.value();

  for (int j = 0; j < family.levels(); ++j) {
    PairwiseBitLevel& level = family.level(j);
    while (!level.fully_fixed()) {
      std::vector<int> todo = unfixed_bits(level);
      const int take = std::min<int>(options.chunk_bits,
                                     static_cast<int>(todo.size()));
      todo.resize(static_cast<std::size_t>(take));

      // Enumerate all assignments of this chunk; first strict improvement
      // wins, so ties break toward the smallest assignment word.
      const PairwiseBitLevel saved = level;
      double best_value = 0.0;
      std::uint32_t best_assign = 0;
      bool have_best = false;
      for (std::uint32_t assign = 0; assign < (1u << take); ++assign) {
        level = saved;
        for (int b = 0; b < take; ++b) {
          level.fix_bit(todo[static_cast<std::size_t>(b)],
                        (assign >> b) & 1u);
        }
        const double v = estimator.value();
        if (!have_best || v > best_value) {
          have_best = true;
          best_value = v;
          best_assign = assign;
        }
      }
      level = saved;
      for (int b = 0; b < take; ++b) {
        level.fix_bit(todo[static_cast<std::size_t>(b)],
                      (best_assign >> b) & 1u);
      }
      ++report.chunks;
      report.bits += take;
      report.trajectory.push_back(best_value);
    }
    estimator.on_level_fixed(j);
  }

  report.final_value = estimator.value();
  RSETS_TRACE << "fix_seed: " << report.bits << " bits in " << report.chunks
              << " chunks, E[Phi]=" << report.initial_value
              << " -> Phi=" << report.final_value;
  return report;
}

}  // namespace rsets
