#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace rsets {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::uint64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  for (std::string line; std::getline(status, line);) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || !(lo < hi)) {
    throw std::invalid_argument("Histogram: need lo < hi and buckets > 0");
  }
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>(std::floor((x - lo_) / width));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvTable: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string CsvTable::fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

std::string CsvTable::fmt(std::uint64_t v) { return std::to_string(v); }

void CsvTable::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << header_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
}

bool CsvTable::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return static_cast<bool>(out);
}

}  // namespace rsets
