// Structured error taxonomy for hardened input boundaries.
//
// Everything that parses untrusted bytes (edge lists, CLI flags, replay
// logs) throws rsets::Error with a machine-checkable code instead of
// asserting, invoking UB, or surfacing a raw stream error. Error derives
// from std::runtime_error, so existing catch sites keep working; new code
// can switch on code() to react precisely (and the fuzz harnesses treat
// any escaping exception that is NOT an rsets::Error as a found bug).
#pragma once

#include <stdexcept>
#include <string>

namespace rsets {

enum class ErrorCode {
  kIoFailure = 0,        // cannot open/read/write the underlying stream
  kTruncatedInput = 1,   // header promised more data than the stream holds
  kMalformedLine = 2,    // a line is not "u v" (or a comment/header)
  kVertexIdOverflow = 3, // id >= declared n, or does not fit VertexId
  kSelfLoop = 4,         // edge u u
  kDuplicateEdge = 5,    // edge listed twice (in either orientation)
  kBadFlag = 6,          // --key=value where value fails to parse
  kChecksumMismatch = 7, // a `checksum` protocol line disagrees with the data
};

// Stable spelling for diagnostics and tests.
const char* error_code_name(ErrorCode code);

class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + what),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace rsets
