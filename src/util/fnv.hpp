// FNV-1a fingerprints for the integrity layer.
//
// Every byte the MPC substrate trusts across a failure domain — message
// payloads crossing the simulated transport, checkpoint images crossing a
// disk write — is covered by a 64-bit FNV-1a digest. FNV-1a is not a
// cryptographic hash; it is a fast, dependency-free detector for the fault
// model we simulate (seeded bit flips, torn writes): the multiply by an odd
// prime is a bijection on 64-bit words, so any single-bit flip inside one
// absorbed word always changes the digest, and multi-bit corruption escapes
// only with probability ~2^-64.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rsets {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

// Absorbs one 64-bit word (word-granular variant used for message payloads,
// where flips are modelled at word resolution).
inline constexpr std::uint64_t fnv1a_word(std::uint64_t h,
                                          std::uint64_t word) {
  return (h ^ word) * kFnvPrime;
}

// Byte-granular digest used for whole checkpoint images.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                                 std::uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * kFnvPrime;
  }
  return h;
}

// Batch digest over a word array: four independent FNV-1a lanes absorb the
// stream strided (lane j takes words j, j+4, j+8, ...), then the lane
// digests and the word count are folded into the running state. The lanes
// carry no sequential dependence on each other, so the hot loop sustains
// four multiplies in flight instead of one — a different (fixed, versioned)
// construction from sequential FNV-1a, with the same per-word bijection and
// therefore the same single-bit-flip sensitivity. Seeding each lane with
// fnv1a_word(h, lane index) makes the lanes distinct and chains the caller's
// prefix state; absorbing `count` at the end separates a short stream from
// its zero-padded extension.
inline constexpr std::size_t kFnvBatchLanes = 4;

// Reference implementation: one loop, lane selected by index. This is the
// specification the unrolled variant must match bit-for-bit (asserted in
// tests/test_fnv_batch.cpp); keep the two in sync.
inline std::uint64_t fnv1a_words_batch_reference(
    const std::uint64_t* words, std::size_t count,
    std::uint64_t h = kFnvOffsetBasis) {
  std::uint64_t lane[kFnvBatchLanes];
  for (std::size_t j = 0; j < kFnvBatchLanes; ++j) {
    lane[j] = fnv1a_word(h, j);
  }
  for (std::size_t i = 0; i < count; ++i) {
    lane[i % kFnvBatchLanes] = fnv1a_word(lane[i % kFnvBatchLanes], words[i]);
  }
  std::uint64_t out = h;
  for (std::size_t j = 0; j < kFnvBatchLanes; ++j) {
    out = fnv1a_word(out, lane[j]);
  }
  return fnv1a_word(out, count);
}

// Unrolled implementation of the same construction: the main loop retires
// four words per iteration with the lane multiplies independent, so the
// compiler can keep all four chains in flight (and auto-vectorize where the
// target has a 64-bit SIMD multiply). The <= 3 leftover words land on lanes
// 0..2 because the unrolled loop always leaves `i` a multiple of 4.
inline std::uint64_t fnv1a_words_batch(const std::uint64_t* words,
                                       std::size_t count,
                                       std::uint64_t h = kFnvOffsetBasis) {
  std::uint64_t l0 = fnv1a_word(h, 0);
  std::uint64_t l1 = fnv1a_word(h, 1);
  std::uint64_t l2 = fnv1a_word(h, 2);
  std::uint64_t l3 = fnv1a_word(h, 3);
  std::size_t i = 0;
  for (; i + kFnvBatchLanes <= count; i += kFnvBatchLanes) {
    l0 = fnv1a_word(l0, words[i]);
    l1 = fnv1a_word(l1, words[i + 1]);
    l2 = fnv1a_word(l2, words[i + 2]);
    l3 = fnv1a_word(l3, words[i + 3]);
  }
  if (i < count) l0 = fnv1a_word(l0, words[i]);
  if (i + 1 < count) l1 = fnv1a_word(l1, words[i + 1]);
  if (i + 2 < count) l2 = fnv1a_word(l2, words[i + 2]);
  std::uint64_t out = h;
  out = fnv1a_word(out, l0);
  out = fnv1a_word(out, l1);
  out = fnv1a_word(out, l2);
  out = fnv1a_word(out, l3);
  return fnv1a_word(out, count);
}

}  // namespace rsets
