// FNV-1a fingerprints for the integrity layer.
//
// Every byte the MPC substrate trusts across a failure domain — message
// payloads crossing the simulated transport, checkpoint images crossing a
// disk write — is covered by a 64-bit FNV-1a digest. FNV-1a is not a
// cryptographic hash; it is a fast, dependency-free detector for the fault
// model we simulate (seeded bit flips, torn writes): the multiply by an odd
// prime is a bijection on 64-bit words, so any single-bit flip inside one
// absorbed word always changes the digest, and multi-bit corruption escapes
// only with probability ~2^-64.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
#define RSETS_FNV_X86 1
#include <immintrin.h>
#endif
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define RSETS_FNV_NEON 1
#include <arm_neon.h>
#endif

namespace rsets {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

// Absorbs one 64-bit word (word-granular variant used for message payloads,
// where flips are modelled at word resolution).
inline constexpr std::uint64_t fnv1a_word(std::uint64_t h,
                                          std::uint64_t word) {
  return (h ^ word) * kFnvPrime;
}

// Byte-granular digest used for whole checkpoint images.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                                 std::uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * kFnvPrime;
  }
  return h;
}

// Batch digest over a word array: four independent FNV-1a lanes absorb the
// stream strided (lane j takes words j, j+4, j+8, ...), then the lane
// digests and the word count are folded into the running state. The lanes
// carry no sequential dependence on each other, so the hot loop sustains
// four multiplies in flight instead of one — a different (fixed, versioned)
// construction from sequential FNV-1a, with the same per-word bijection and
// therefore the same single-bit-flip sensitivity. Seeding each lane with
// fnv1a_word(h, lane index) makes the lanes distinct and chains the caller's
// prefix state; absorbing `count` at the end separates a short stream from
// its zero-padded extension.
inline constexpr std::size_t kFnvBatchLanes = 4;

// Reference implementation: one loop, lane selected by index. This is the
// specification every batch variant (scalar, SSE2, AVX2, NEON) must match
// bit-for-bit (asserted in tests/test_fnv_batch.cpp); keep them in sync.
inline std::uint64_t fnv1a_words_batch_reference(
    const std::uint64_t* words, std::size_t count,
    std::uint64_t h = kFnvOffsetBasis) {
  std::uint64_t lane[kFnvBatchLanes];
  for (std::size_t j = 0; j < kFnvBatchLanes; ++j) {
    lane[j] = fnv1a_word(h, j);
  }
  for (std::size_t i = 0; i < count; ++i) {
    lane[i % kFnvBatchLanes] = fnv1a_word(lane[i % kFnvBatchLanes], words[i]);
  }
  std::uint64_t out = h;
  for (std::size_t j = 0; j < kFnvBatchLanes; ++j) {
    out = fnv1a_word(out, lane[j]);
  }
  return fnv1a_word(out, count);
}

// Scalar fallback: the main loop retires four words per iteration with the
// lane multiplies independent, so the compiler can keep all four chains in
// flight even without vector units. The <= 3 leftover words land on lanes
// 0..2 because the unrolled loop always leaves `i` a multiple of 4 — every
// SIMD variant below shares this tail convention.
inline std::uint64_t fnv1a_words_batch_scalar(const std::uint64_t* words,
                                              std::size_t count,
                                              std::uint64_t h) {
  std::uint64_t l0 = fnv1a_word(h, 0);
  std::uint64_t l1 = fnv1a_word(h, 1);
  std::uint64_t l2 = fnv1a_word(h, 2);
  std::uint64_t l3 = fnv1a_word(h, 3);
  std::size_t i = 0;
  for (; i + kFnvBatchLanes <= count; i += kFnvBatchLanes) {
    l0 = fnv1a_word(l0, words[i]);
    l1 = fnv1a_word(l1, words[i + 1]);
    l2 = fnv1a_word(l2, words[i + 2]);
    l3 = fnv1a_word(l3, words[i + 3]);
  }
  if (i < count) l0 = fnv1a_word(l0, words[i]);
  if (i + 1 < count) l1 = fnv1a_word(l1, words[i + 1]);
  if (i + 2 < count) l2 = fnv1a_word(l2, words[i + 2]);
  std::uint64_t out = h;
  out = fnv1a_word(out, l0);
  out = fnv1a_word(out, l1);
  out = fnv1a_word(out, l2);
  out = fnv1a_word(out, l3);
  return fnv1a_word(out, count);
}

// --- SIMD variants -----------------------------------------------------
//
// The FNV prime has the special form 2^40 + 0x1b3, so the 64-bit product
//   x * kFnvPrime  ==  (x << 40) + x * 0x1b3   (mod 2^64)
// and because 0x1b3 < 2^9, the x * 0x1b3 term decomposes into two 32x32->64
// multiplies:  lo32(x)*0x1b3 + ((hi32(x)*0x1b3) << 32).  That is exactly the
// shape of pmuludq / vmull_u32, which is how the variants below synthesize a
// 64-bit lane multiply on ISAs that lack one (AVX2's _mm256_mullo_epi64 is
// AVX-512 DQ; NEON has no 64-bit multiply at all). Each vector step computes
//   lanes = fnv_mul_prime(lanes ^ loaded_words)
// which is bit-for-bit fnv1a_word applied per lane.

#if defined(RSETS_FNV_X86)

// SSE2 (x86-64 baseline): the four lanes live in two xmm registers.
__attribute__((target("sse2"))) inline __m128i fnv_mul_prime_sse2(__m128i x) {
  const __m128i k1b3 = _mm_set1_epi64x(0x1b3);
  const __m128i lo = _mm_mul_epu32(x, k1b3);
  const __m128i hi = _mm_mul_epu32(_mm_srli_epi64(x, 32), k1b3);
  const __m128i mul = _mm_add_epi64(lo, _mm_slli_epi64(hi, 32));
  return _mm_add_epi64(mul, _mm_slli_epi64(x, 40));
}

__attribute__((target("sse2"))) inline std::uint64_t fnv1a_words_batch_sse2(
    const std::uint64_t* words, std::size_t count, std::uint64_t h) {
  __m128i lanes01 = _mm_set_epi64x(
      static_cast<long long>(fnv1a_word(h, 1)),
      static_cast<long long>(fnv1a_word(h, 0)));
  __m128i lanes23 = _mm_set_epi64x(
      static_cast<long long>(fnv1a_word(h, 3)),
      static_cast<long long>(fnv1a_word(h, 2)));
  std::size_t i = 0;
  for (; i + kFnvBatchLanes <= count; i += kFnvBatchLanes) {
    const __m128i w01 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i));
    const __m128i w23 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i + 2));
    lanes01 = fnv_mul_prime_sse2(_mm_xor_si128(lanes01, w01));
    lanes23 = fnv_mul_prime_sse2(_mm_xor_si128(lanes23, w23));
  }
  std::uint64_t l[kFnvBatchLanes];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&l[0]), lanes01);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&l[2]), lanes23);
  if (i < count) l[0] = fnv1a_word(l[0], words[i]);
  if (i + 1 < count) l[1] = fnv1a_word(l[1], words[i + 1]);
  if (i + 2 < count) l[2] = fnv1a_word(l[2], words[i + 2]);
  std::uint64_t out = h;
  for (std::size_t j = 0; j < kFnvBatchLanes; ++j) {
    out = fnv1a_word(out, l[j]);
  }
  return fnv1a_word(out, count);
}

// AVX2: all four lanes in one ymm register — kFnvBatchLanes was chosen as 4
// precisely so one 256-bit register holds the whole lane state.
__attribute__((target("avx2"))) inline __m256i fnv_mul_prime_avx2(__m256i x) {
  const __m256i k1b3 = _mm256_set1_epi64x(0x1b3);
  const __m256i lo = _mm256_mul_epu32(x, k1b3);
  const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), k1b3);
  const __m256i mul = _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
  return _mm256_add_epi64(mul, _mm256_slli_epi64(x, 40));
}

__attribute__((target("avx2"))) inline std::uint64_t fnv1a_words_batch_avx2(
    const std::uint64_t* words, std::size_t count, std::uint64_t h) {
  __m256i lanes = _mm256_set_epi64x(
      static_cast<long long>(fnv1a_word(h, 3)),
      static_cast<long long>(fnv1a_word(h, 2)),
      static_cast<long long>(fnv1a_word(h, 1)),
      static_cast<long long>(fnv1a_word(h, 0)));
  std::size_t i = 0;
  for (; i + kFnvBatchLanes <= count; i += kFnvBatchLanes) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    lanes = fnv_mul_prime_avx2(_mm256_xor_si256(lanes, w));
  }
  std::uint64_t l[kFnvBatchLanes];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(l), lanes);
  if (i < count) l[0] = fnv1a_word(l[0], words[i]);
  if (i + 1 < count) l[1] = fnv1a_word(l[1], words[i + 1]);
  if (i + 2 < count) l[2] = fnv1a_word(l[2], words[i + 2]);
  std::uint64_t out = h;
  for (std::size_t j = 0; j < kFnvBatchLanes; ++j) {
    out = fnv1a_word(out, l[j]);
  }
  return fnv1a_word(out, count);
}

#elif defined(RSETS_FNV_NEON)

// NEON: two q registers hold the four lanes; vmull_n_u32 provides the
// 32x32->64 multiply halves.
inline uint64x2_t fnv_mul_prime_neon(uint64x2_t x) {
  const uint32x2_t xlo = vmovn_u64(x);
  const uint32x2_t xhi = vshrn_n_u64(x, 32);
  const uint64x2_t lo = vmull_n_u32(xlo, 0x1b3u);
  const uint64x2_t hi = vmull_n_u32(xhi, 0x1b3u);
  const uint64x2_t mul = vaddq_u64(lo, vshlq_n_u64(hi, 32));
  return vaddq_u64(mul, vshlq_n_u64(x, 40));
}

inline std::uint64_t fnv1a_words_batch_neon(const std::uint64_t* words,
                                            std::size_t count,
                                            std::uint64_t h) {
  std::uint64_t seed[kFnvBatchLanes] = {fnv1a_word(h, 0), fnv1a_word(h, 1),
                                        fnv1a_word(h, 2), fnv1a_word(h, 3)};
  uint64x2_t lanes01 = vld1q_u64(&seed[0]);
  uint64x2_t lanes23 = vld1q_u64(&seed[2]);
  std::size_t i = 0;
  for (; i + kFnvBatchLanes <= count; i += kFnvBatchLanes) {
    const uint64x2_t w01 = vld1q_u64(words + i);
    const uint64x2_t w23 = vld1q_u64(words + i + 2);
    lanes01 = fnv_mul_prime_neon(veorq_u64(lanes01, w01));
    lanes23 = fnv_mul_prime_neon(veorq_u64(lanes23, w23));
  }
  std::uint64_t l[kFnvBatchLanes];
  vst1q_u64(&l[0], lanes01);
  vst1q_u64(&l[2], lanes23);
  if (i < count) l[0] = fnv1a_word(l[0], words[i]);
  if (i + 1 < count) l[1] = fnv1a_word(l[1], words[i + 1]);
  if (i + 2 < count) l[2] = fnv1a_word(l[2], words[i + 2]);
  std::uint64_t out = h;
  for (std::size_t j = 0; j < kFnvBatchLanes; ++j) {
    out = fnv1a_word(out, l[j]);
  }
  return fnv1a_word(out, count);
}

#endif  // RSETS_FNV_X86 / RSETS_FNV_NEON

// --- Runtime dispatch ---------------------------------------------------

using FnvBatchFn = std::uint64_t (*)(const std::uint64_t*, std::size_t,
                                     std::uint64_t);

namespace detail {

struct FnvBatchImpl {
  FnvBatchFn fn;
  const char* name;
};

inline FnvBatchImpl fnv1a_batch_resolve() {
#if defined(RSETS_FNV_X86)
  if (__builtin_cpu_supports("avx2")) {
    return {&fnv1a_words_batch_avx2, "avx2"};
  }
  if (__builtin_cpu_supports("sse2")) {
    return {&fnv1a_words_batch_sse2, "sse2"};
  }
#elif defined(RSETS_FNV_NEON)
  return {&fnv1a_words_batch_neon, "neon"};
#endif
  return {&fnv1a_words_batch_scalar, "scalar"};
}

// Resolved once; the magic static makes concurrent first calls safe.
inline const FnvBatchImpl& fnv1a_batch_impl() {
  static const FnvBatchImpl impl = fnv1a_batch_resolve();
  return impl;
}

}  // namespace detail

// Name of the variant the dispatcher selected on this host:
// "avx2" | "sse2" | "neon" | "scalar". Exposed for tests and diagnostics.
inline const char* fnv1a_batch_target() {
  return detail::fnv1a_batch_impl().name;
}

// Public entry point: dispatches to the widest variant this CPU supports.
// Every variant implements the identical construction, so the digest is
// host-independent — a checkpoint sealed on an AVX2 box verifies on a
// scalar one.
inline std::uint64_t fnv1a_words_batch(const std::uint64_t* words,
                                       std::size_t count,
                                       std::uint64_t h = kFnvOffsetBasis) {
  return detail::fnv1a_batch_impl().fn(words, count, h);
}

}  // namespace rsets
