// FNV-1a fingerprints for the integrity layer.
//
// Every byte the MPC substrate trusts across a failure domain — message
// payloads crossing the simulated transport, checkpoint images crossing a
// disk write — is covered by a 64-bit FNV-1a digest. FNV-1a is not a
// cryptographic hash; it is a fast, dependency-free detector for the fault
// model we simulate (seeded bit flips, torn writes): the multiply by an odd
// prime is a bijection on 64-bit words, so any single-bit flip inside one
// absorbed word always changes the digest, and multi-bit corruption escapes
// only with probability ~2^-64.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rsets {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

// Absorbs one 64-bit word (word-granular variant used for message payloads,
// where flips are modelled at word resolution).
inline constexpr std::uint64_t fnv1a_word(std::uint64_t h,
                                          std::uint64_t word) {
  return (h ^ word) * kFnvPrime;
}

// Byte-granular digest used for whole checkpoint images.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                                 std::uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * kFnvPrime;
  }
  return h;
}

}  // namespace rsets
