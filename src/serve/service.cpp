#include "serve/service.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <deque>
#include <fstream>
#include <limits>
#include <set>
#include <unordered_map>
#include <utility>

#include "graph/verify.hpp"
#include "mpc/certify.hpp"
#include "mpc/fault/checkpoint.hpp"

namespace rsets::serve {
namespace {

// "RSSRVJ01", little-endian — the journal is NOT a simulator checkpoint
// (read_checkpoint_file would rightly reject it), it only shares the v4
// byte-stream/seal/atomic-publish primitives.
constexpr std::uint64_t kJournalMagic = 0x31304A5652535352ull;
// v2 (PR 9) appends the liveness/ejection ledger — heartbeats, the sealed
// fail-stop flag, and producer tombstones — between the pending queue and
// the graph fingerprint. v1 journals are rejected (re-initialize the
// service), same no-silent-upgrade policy as checkpoint v4 / replay v5.
constexpr std::uint64_t kJournalVersion = 2;

void widen(RepairScope& into, RepairScope scope) {
  if (static_cast<std::uint8_t>(scope) > static_cast<std::uint8_t>(into)) {
    into = scope;
  }
}

// Same atomic publish discipline as write_checkpoint_file (tmp + fsync +
// rename with .prev rotation), surfaced through the service's error type.
void write_journal_file(const std::vector<std::uint8_t>& bytes,
                        const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw ServiceError("journal: cannot open " + tmp);
  const std::uint8_t* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n <= 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      throw ServiceError("journal: short write to " + tmp);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  const bool closed = ::close(fd) == 0;
  if (!synced || !closed) {
    std::remove(tmp.c_str());
    throw ServiceError("journal: cannot sync " + tmp);
  }
  std::rename(path.c_str(), (path + ".prev").c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ServiceError("journal: cannot publish " + path);
  }
}

std::vector<std::uint8_t> read_journal_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ServiceError("journal: cannot open " + path);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  try {
    mpc::verify_checkpoint_image(bytes, "journal: " + path);
  } catch (const mpc::CheckpointError& e) {
    // Surface seal failures as ServiceError so recover()'s .prev fallback
    // treats a corrupt primary generation like any other unusable journal.
    throw ServiceError(e.what());
  }
  return bytes;
}

}  // namespace

const char* repair_scope_name(RepairScope scope) {
  switch (scope) {
    case RepairScope::kSkip:
      return "skip";
    case RepairScope::kFrontier:
      return "frontier";
    case RepairScope::kFull:
      return "full";
  }
  return "?";
}

RulingSetService::RulingSetService(const Graph& initial, ServiceConfig config)
    : config_(std::move(config)),
      graph_(initial),
      last_options_(config_.options) {
  in_set_.assign(initial.num_vertices(), false);
  BatchReport report;
  bool force_full = true;
  RulingSetResult r = run_repair(initial, report, &force_full);
  set_ = r.ruling_set;
  last_result_ = std::move(r);
  for (VertexId v : set_) in_set_[v] = true;
  metrics_.repairs_full += 1;
  certify_epoch({}, set_, /*full=*/true, report);
  write_journal();
  publish_snapshot();
}

BatchReport RulingSetService::apply(const UpdateBatch& batch) {
  if (sealed_) {
    throw ServiceError("service sealed by watchdog fail-stop at epoch " +
                       std::to_string(epoch_) + "; recover() to resume");
  }
  metrics_.batches += 1;
  metrics_.updates_seen += batch.size();
  pending_.insert(pending_.end(), batch.updates.begin(), batch.updates.end());
  BatchReport report;
  report.updates = batch.size();
  return drain_pending(report);
}

BatchReport RulingSetService::drain() {
  if (sealed_) {
    throw ServiceError("service sealed by watchdog fail-stop at epoch " +
                       std::to_string(epoch_) + "; recover() to resume");
  }
  return drain_pending(BatchReport{});
}

BatchReport RulingSetService::drain_pending(BatchReport report) {
  report.certified = true;  // every committed epoch below certifies or throws
  while (!pending_.empty()) {
    if (config_.max_epochs_per_apply != 0 &&
        report.epochs >= config_.max_epochs_per_apply) {
      break;  // deferred, not dropped: the remainder stays queued + journaled
    }
    commit_epoch(report);
  }
  report.deferred = pending_.size();
  report.set_size = set_.size();
  return report;
}

void RulingSetService::commit_epoch(BatchReport& report) {
  if (crash_hook) crash_hook("pre-apply");

  // Admit raw updates from the queue until the effective-change budget for
  // one epoch is spent. No-ops (insert-present / delete-absent) are
  // cancelled against the resident graph and cost no budget.
  std::vector<VertexId> seeds;
  std::vector<std::pair<VertexId, VertexId>> deleted;
  std::uint64_t effective = 0;
  std::uint64_t noops = 0;
  std::size_t taken = 0;
  while (taken < pending_.size()) {
    const EdgeUpdate u = pending_[taken];
    const bool changed = u.op == EdgeUpdate::Op::kInsert
                             ? graph_.insert(u.u, u.v)
                             : graph_.erase(u.u, u.v);
    ++taken;
    if (!changed) {
      ++noops;
      continue;
    }
    ++effective;
    seeds.push_back(u.u);
    seeds.push_back(u.v);
    if (u.op == EdgeUpdate::Op::kDelete) deleted.emplace_back(u.u, u.v);
    if (config_.admit_budget != 0 && effective >= config_.admit_budget) break;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(taken));
  metrics_.updates_applied += effective;
  metrics_.updates_noop += noops;
  report.effective_updates += effective;

  if (effective == 0) {
    // The sub-batch cancelled to nothing: F(G) is unchanged by definition,
    // so no repair, no certification, no epoch. The journal still holds the
    // consumed raw updates as pending; re-applying them after a recovery is
    // harmless because they cancel again.
    metrics_.skips += 1;
    widen(report.scope, RepairScope::kSkip);
    return;
  }

  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  // Churn estimator: EWMA of the effective-update fraction decides whether
  // the frontier analysis is still worth it.
  const double frac =
      static_cast<double>(effective) /
      static_cast<double>(std::max<std::uint64_t>(graph_.num_edges(), 1));
  churn_ewma_ = config_.churn_ewma_alpha * frac +
                (1.0 - config_.churn_ewma_alpha) * churn_ewma_;
  RepairScope scope =
      (churn_ewma_ > config_.full_threshold || frac > config_.full_threshold)
          ? RepairScope::kFull
          : RepairScope::kFrontier;

  const std::vector<VertexId> old_set = set_;
  bool force_full_certify = scope == RepairScope::kFull;
  bool used_cascade = false;
  std::uint64_t repair_work = 0;  // watchdog work measure (deterministic)
  if (scope == RepairScope::kFrontier &&
      config_.options.algorithm == Algorithm::kGreedySequential) {
    set_ = cascade_repair(seeds, deleted, &repair_work);
    used_cascade = true;
  } else {
    RulingSetResult r = run_repair(graph_.snapshot(), report,
                                   &force_full_certify);
    repair_work = r.metrics.rounds;
    set_ = r.ruling_set;
    last_result_ = std::move(r);
  }
  metrics_.heartbeats += 1;  // repair tier finished

  // Watchdog tier 1 — stuck frontier repair: the deterministic work measure
  // (cascade pops / simulator rounds) blew the per-epoch deadline, so stop
  // trusting locality for this epoch and escalate to the full tier. For the
  // MPC backends the frontier rerun is already a full recompute of the set,
  // so escalation only upgrades the certification; the cascade path
  // recomputes through the registered algorithm to refresh the full ledger.
  if (scope == RepairScope::kFrontier && config_.watchdog_deadline != 0 &&
      repair_work > config_.watchdog_deadline) {
    metrics_.watchdog_escalations += 1;
    scope = RepairScope::kFull;
    force_full_certify = true;
    if (used_cascade) {
      RulingSetResult r = run_repair(graph_.snapshot(), report,
                                     &force_full_certify);
      repair_work = r.metrics.rounds;
      set_ = r.ruling_set;
      last_result_ = std::move(r);
      used_cascade = false;
      metrics_.heartbeats += 1;
    }
  }
  if (used_cascade) metrics_.cascade_repairs += 1;
  if (scope == RepairScope::kFull) {
    metrics_.repairs_full += 1;
  } else {
    metrics_.repairs_frontier += 1;
  }

  // Watchdog tier 2 — the full tier exhausted its own (larger) budget:
  // certify and commit what we have (the state is consistent), then
  // fail-stop with the journal sealed rather than limp into the next epoch.
  const bool fail_stop =
      config_.watchdog_deadline != 0 && scope == RepairScope::kFull &&
      repair_work > config_.watchdog_deadline * kWatchdogFullFactor;

  in_set_.assign(graph_.num_vertices(), false);
  for (VertexId v : set_) in_set_[v] = true;

  const bool full =
      force_full_certify ||
      (config_.full_certify_every != 0 &&
       (epoch_ + 1) % config_.full_certify_every == 0);
  certify_epoch(seeds, old_set, full, report);
  metrics_.heartbeats += 1;  // certification finished

  widen(report.scope, scope);
  if (crash_hook) crash_hook("pre-commit");
  epoch_ += 1;
  metrics_.epochs += 1;
  report.epochs += 1;
  // The commit tick lands BEFORE the journal write so the journaled
  // liveness position equals an uncrashed twin's at the same epoch —
  // ticking after the write would leave every recovered service one
  // heartbeat behind forever.
  metrics_.heartbeats += 1;
  if (fail_stop) {
    sealed_ = true;
    metrics_.watchdog_failstops += 1;
  }
  write_journal();
  publish_snapshot();
  if (crash_hook) crash_hook("committed");
  if (fail_stop) {
    throw ServiceError(
        "watchdog fail-stop: full-tier repair work " +
        std::to_string(repair_work) + " > " +
        std::to_string(config_.watchdog_deadline * kWatchdogFullFactor) +
        "; epoch " + std::to_string(epoch_) +
        " committed and journal sealed");
  }
}

RulingSetResult RulingSetService::run_repair(const Graph& snapshot,
                                             BatchReport& report,
                                             bool* force_full_certify) {
  RulingSetOptions opts = config_.options;
  std::uint32_t attempt = 0;
  for (;;) {
    bool retry = false;
    try {
      RulingSetResult r = compute_ruling_set(snapshot, opts);
      if (opts.mpc.round_deadline != 0 && r.metrics.deadline_misses > 0 &&
          attempt < config_.max_repair_retries) {
        // The run met its output contract but tripped the latency SLO:
        // retry with the deadline doubled; the final attempt drops it so a
        // bounded number of retries always converges. The deadline never
        // changes outputs (speculation replays identical work), so parity
        // with from-scratch recompute is preserved across retries.
        ++attempt;
        opts.mpc.round_deadline = attempt == config_.max_repair_retries
                                      ? 0
                                      : opts.mpc.round_deadline * 2;
        retry = true;
      } else {
        if (r.metrics.quarantined_rounds > 0) {
          // Corrupted traffic was quarantined and re-executed during this
          // repair; the result self-healed, but escalate this epoch to the
          // full certification pass instead of trusting region locality.
          *force_full_certify = true;
          metrics_.quarantine_escalations += 1;
        }
        metrics_.faults_injected += r.metrics.faults_injected;
        last_options_ = opts;
        return r;
      }
    } catch (const mpc::MpcViolation&) {
      // Strict budget trip: re-admit the repair through the degrade
      // machinery (spill-and-resend sub-rounds) instead of failing the
      // batch — the same budget, honored at a latency cost.
      if (attempt >= config_.max_repair_retries) throw;
      ++attempt;
      opts.mpc.budget_policy = mpc::BudgetPolicy::kDegrade;
      retry = true;
    }
    if (retry) {
      metrics_.repair_retries += 1;
      report.repair_retries += 1;
    }
  }
}

std::vector<VertexId> RulingSetService::cascade_repair(
    std::span<const VertexId> seeds,
    const std::vector<std::pair<VertexId, VertexId>>& deleted,
    std::uint64_t* pops) {
  const std::uint32_t beta = config_.options.beta;
  const VertexId n = graph_.num_vertices();

  // Candidate frontier: every vertex whose β-ball changed, i.e. the β-hop
  // ball around the touched endpoints in the union of the old and new
  // graphs. The union is the current graph plus the deleted edges (it has a
  // superset of both edge sets, so its balls contain both graphs' balls).
  std::unordered_map<VertexId, std::vector<VertexId>> ghost;
  for (const auto& [u, v] : deleted) {
    ghost[u].push_back(v);
    ghost[v].push_back(u);
  }
  std::vector<bool> seen(n, false);
  std::deque<std::pair<VertexId, std::uint32_t>> bfs;
  std::set<VertexId> work;  // ordered: the cascade must process ids ascending
  for (VertexId s : seeds) {
    if (seen[s]) continue;
    seen[s] = true;
    work.insert(s);
    bfs.emplace_back(s, 0);
  }
  while (!bfs.empty()) {
    const auto [v, d] = bfs.front();
    bfs.pop_front();
    if (d >= beta) continue;
    const auto visit = [&](VertexId w) {
      if (seen[w]) return;
      seen[w] = true;
      work.insert(w);
      bfs.emplace_back(w, d + 1);
    };
    for (VertexId w : graph_.neighbors(v)) visit(w);
    if (const auto it = ghost.find(v); it != ghost.end()) {
      for (VertexId w : it->second) visit(w);
    }
  }

  // Truncated BFS: is some final member u < v within β hops of v (in the
  // new graph)? That is exactly greedy's exclusion rule, so recomputing
  // candidates in ascending id order against already-final smaller ids
  // reproduces greedy_ruling_set(G_new) — vertices never enqueued keep
  // their membership because neither their β-ball nor any smaller member
  // inside it changed.
  std::vector<VertexId> touched;
  std::vector<std::uint32_t> dist(n, std::numeric_limits<std::uint32_t>::max());
  const auto dominated_by_smaller = [&](VertexId v) {
    bool found = false;
    touched.clear();
    dist[v] = 0;
    touched.push_back(v);
    std::deque<VertexId> q{v};
    while (!q.empty() && !found) {
      const VertexId x = q.front();
      q.pop_front();
      if (dist[x] >= beta) continue;
      for (VertexId w : graph_.neighbors(x)) {
        if (dist[w] != std::numeric_limits<std::uint32_t>::max()) continue;
        dist[w] = dist[x] + 1;
        touched.push_back(w);
        if (w < v && in_set_[w]) {
          found = true;
          break;
        }
        q.push_back(w);
      }
    }
    for (VertexId w : touched) {
      dist[w] = std::numeric_limits<std::uint32_t>::max();
    }
    return found;
  };

  *pops = 0;
  while (!work.empty()) {
    const VertexId v = *work.begin();
    work.erase(work.begin());
    ++*pops;  // the watchdog's work measure for the cascade tier
    const bool keep = !dominated_by_smaller(v);
    if (keep == static_cast<bool>(in_set_[v])) continue;
    in_set_[v] = keep;
    // A membership flip at v can only change the rule for larger ids within
    // β of v; pops are ascending, so every such id is still ahead of us.
    const VertexId one[1] = {v};
    for (VertexId w : graph_.ball(one, beta)) {
      if (w > v) work.insert(w);
    }
  }

  std::vector<VertexId> out;
  out.reserve(set_.size());
  for (VertexId v = 0; v < n; ++v) {
    if (in_set_[v]) out.push_back(v);
  }
  return out;
}

void RulingSetService::certify_epoch(std::span<const VertexId> dirty_seeds,
                                     std::span<const VertexId> old_set,
                                     bool full, BatchReport& report) {
  const std::uint32_t beta = config_.options.beta;
  if (full) {
    const Graph snap = graph_.snapshot();
    const RulingSetCertificate cert =
        mpc::certify_ruling_set(snap, set_, beta, config_.options.mpc);
    if (!cert.valid()) {
      throw ServiceError("certification failed at epoch " +
                         std::to_string(epoch_ + 1) + ": " + cert.to_string());
    }
    if (!cross_validate_certificate(snap, set_, cert)) {
      throw ServiceError("certificate cross-validation failed at epoch " +
                         std::to_string(epoch_ + 1));
    }
    metrics_.certifications_full += 1;
    report.dirty_vertices = graph_.num_vertices();
    return;
  }
  // Region pass: the dirty region is the β-ball around the touched
  // endpoints plus every membership flip — outside it neither the graph nor
  // the set changed since the last certified epoch, so the previous
  // certificate's independence/domination witnesses still stand there.
  std::vector<VertexId> olds(old_set.begin(), old_set.end());
  std::vector<VertexId> news(set_.begin(), set_.end());
  std::sort(olds.begin(), olds.end());
  std::sort(news.begin(), news.end());
  std::vector<VertexId> dirty;
  std::set_symmetric_difference(olds.begin(), olds.end(), news.begin(),
                                news.end(), std::back_inserter(dirty));
  dirty.insert(dirty.end(), dirty_seeds.begin(), dirty_seeds.end());
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  const std::vector<VertexId> region = graph_.ball(dirty, beta);
  if (!region_valid(graph_, set_, beta, region)) {
    throw ServiceError("region certification failed at epoch " +
                       std::to_string(epoch_ + 1) + " (" +
                       std::to_string(region.size()) + " dirty vertices)");
  }
  metrics_.certifications_region += 1;
  report.dirty_vertices = region.size();
}

void RulingSetService::write_journal() {
  if (config_.journal_path.empty()) return;
  std::vector<std::uint8_t> bytes;
  mpc::SnapshotWriter w(bytes);
  w.u64(kJournalMagic);
  w.u64(kJournalVersion);
  w.str(algorithm_name(config_.options.algorithm));
  w.u64(config_.options.beta);
  w.u64(epoch_);
  w.u64(std::bit_cast<std::uint64_t>(churn_ewma_));
  w.u64(graph_.num_vertices());
  for (const auto& nbrs : graph_.adjacency()) w.vec(nbrs);
  w.vec(set_);
  w.u64(pending_.size());
  for (const EdgeUpdate& u : pending_) {
    w.u64(static_cast<std::uint64_t>(u.op));
    w.u64(u.u);
    w.u64(u.v);
  }
  // v2 liveness/ejection ledger: heartbeats persist like epoch_ (absolute
  // liveness position), the sealed flag records a watchdog fail-stop, and
  // tombstones name every producer the ingest front ejected.
  w.u64(metrics_.heartbeats);
  w.u64(sealed_ ? 1 : 0);
  w.u64(tombstones_.size());
  for (const ProducerTombstone& t : tombstones_) {
    w.u64(t.producer);
    w.u64(t.line);
    w.u64(t.strikes);
    w.str(t.reason);
  }
  w.u64(graph_.fingerprint());
  mpc::seal_checkpoint(bytes);
  write_journal_file(bytes, config_.journal_path);
  metrics_.journal_writes += 1;
}

void RulingSetService::record_tombstone(const ProducerTombstone& tombstone) {
  if (sealed_) {
    throw ServiceError("service sealed by watchdog fail-stop at epoch " +
                       std::to_string(epoch_) + "; recover() to resume");
  }
  if (crash_hook) crash_hook("pre-tombstone");
  tombstones_.push_back(tombstone);
  metrics_.tombstones += 1;
  write_journal();
  if (crash_hook) crash_hook("tombstone-recorded");
}

QueryHandle RulingSetService::query() const {
  std::lock_guard<std::mutex> lock(*query_mu_);
  return query_handle_;
}

void RulingSetService::publish_snapshot() {
  // Built outside the lock (O(n+m)); the critical section is one pointer
  // swap, so a concurrent reader never waits on snapshot construction.
  auto snapshot = std::make_shared<const QuerySnapshot>(
      epoch_, config_.options.beta, graph_.snapshot(), set_);
  std::lock_guard<std::mutex> lock(*query_mu_);
  query_handle_ = std::move(snapshot);
}

RulingSetService RulingSetService::recover(ServiceConfig config) {
  if (config.journal_path.empty()) {
    throw ServiceError("recover: no journal_path configured");
  }
  const auto restore = [&config](const std::string& path) {
    const std::vector<std::uint8_t> bytes = read_journal_bytes(path);
    RulingSetService svc;
    svc.config_ = config;
    svc.last_options_ = config.options;
    try {
      mpc::SnapshotReader r(bytes.data(), bytes.size());
      if (r.u64() != kJournalMagic) {
        throw ServiceError("journal: bad magic in " + path);
      }
      const std::uint64_t version = r.u64();
      if (version != kJournalVersion) {
        throw ServiceError("journal: version " + std::to_string(version) +
                           " unsupported (this build reads only version " +
                           std::to_string(kJournalVersion) +
                           "; re-initialize the service) in " + path);
      }
      const std::string alg = r.str();
      if (alg != algorithm_name(config.options.algorithm)) {
        throw ServiceError("journal: written by algorithm '" + alg +
                           "', config wants '" +
                           algorithm_name(config.options.algorithm) + "'");
      }
      const std::uint64_t beta = r.u64();
      if (beta != config.options.beta) {
        throw ServiceError("journal: written with beta " +
                           std::to_string(beta) + ", config wants " +
                           std::to_string(config.options.beta));
      }
      svc.epoch_ = r.u64();
      svc.churn_ewma_ = std::bit_cast<double>(r.u64());
      const std::uint64_t n = r.u64();
      std::vector<std::vector<VertexId>> adjacency(n);
      for (std::uint64_t v = 0; v < n; ++v) r.vec(adjacency[v]);
      r.vec(svc.set_);
      const std::uint64_t npending = r.u64();
      svc.pending_.reserve(npending);
      for (std::uint64_t i = 0; i < npending; ++i) {
        const std::uint64_t op = r.u64();
        const std::uint64_t u = r.u64();
        const std::uint64_t v = r.u64();
        if (op > 1 || u >= n || v >= n) {
          throw ServiceError("journal: corrupt pending entry in " + path);
        }
        svc.pending_.push_back({static_cast<EdgeUpdate::Op>(op),
                                static_cast<VertexId>(u),
                                static_cast<VertexId>(v)});
      }
      svc.metrics_.heartbeats = r.u64();
      const bool was_sealed = r.u64() != 0;
      const std::uint64_t ntombstones = r.u64();
      svc.tombstones_.reserve(ntombstones);
      for (std::uint64_t i = 0; i < ntombstones; ++i) {
        ProducerTombstone t;
        t.producer = static_cast<std::uint32_t>(r.u64());
        t.line = r.u64();
        t.strikes = static_cast<std::uint32_t>(r.u64());
        t.reason = r.str();
        svc.tombstones_.push_back(std::move(t));
      }
      // recover() IS the operator's explicit un-seal: the fail-stop is
      // surfaced in the metrics ledger, and serving resumes.
      svc.metrics_.watchdog_failstops = was_sealed ? 1 : 0;
      svc.metrics_.tombstones = ntombstones;
      svc.sealed_ = false;
      const std::uint64_t fingerprint = r.u64();
      svc.graph_ = DynamicGraph(static_cast<VertexId>(n),
                                std::move(adjacency));
      if (svc.graph_.fingerprint() != fingerprint) {
        throw ServiceError("journal: graph fingerprint mismatch in " + path);
      }
      svc.in_set_.assign(svc.graph_.num_vertices(), false);
      for (VertexId v : svc.set_) {
        if (v >= svc.graph_.num_vertices()) {
          throw ServiceError("journal: set member out of range in " + path);
        }
        svc.in_set_[v] = true;
      }
    } catch (const mpc::CheckpointError& e) {
      throw ServiceError(std::string("journal: ") + e.what());
    } catch (const std::invalid_argument& e) {
      throw ServiceError(std::string("journal: ") + e.what());
    }
    // Metrics are per-process counters: a recovered service starts a fresh
    // ledger (epoch() and heartbeats alone carry absolute positions).
    svc.metrics_.recoveries = 1;
    svc.publish_snapshot();
    return svc;
  };
  try {
    return restore(config.journal_path);
  } catch (const ServiceError& primary) {
    // Same reject-and-fall-back policy as checkpoint reads: one corrupt
    // generation costs one epoch, not the service.
    try {
      return restore(config.journal_path + ".prev");
    } catch (const ServiceError&) {
      throw ServiceError(std::string(primary.what()) +
                         " (no usable .prev fallback)");
    }
  }
}

bool region_valid(const DynamicGraph& g, std::span<const VertexId> set,
                  std::uint32_t beta, std::span<const VertexId> region) {
  const VertexId n = g.num_vertices();
  std::vector<bool> in_set(n, false);
  for (VertexId v : set) {
    if (v >= n) return false;
    in_set[v] = true;
  }
  // Independence: every member inside the region gets its full neighbor
  // scan (the neighbor may be outside the region — a flip adjacent to an
  // untouched member is still caught, because the flip itself is dirty).
  for (VertexId v : region) {
    if (v >= n) return false;
    if (!in_set[v]) continue;
    for (VertexId w : g.neighbors(v)) {
      if (in_set[w]) return false;
    }
  }
  // Domination: multi-source BFS from the members of the β-hop fringe
  // around the region, restricted to the fringe. Complete for region
  // targets: every vertex on a ≤β-hop path ending inside the region is
  // itself within β of the region, hence inside the fringe.
  const std::vector<VertexId> fringe = g.ball(region, beta);
  std::vector<bool> in_fringe(n, false);
  for (VertexId v : fringe) in_fringe[v] = true;
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(n, kUnreached);
  std::deque<VertexId> queue;
  for (VertexId v : fringe) {
    if (in_set[v]) {
      dist[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    if (dist[v] >= beta) continue;
    for (VertexId w : g.neighbors(v)) {
      if (!in_fringe[w] || dist[w] != kUnreached) continue;
      dist[w] = dist[v] + 1;
      queue.push_back(w);
    }
  }
  for (VertexId v : region) {
    if (dist[v] > beta) return false;
  }
  return true;
}

}  // namespace rsets::serve
