#include "serve/dynamic_graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/fnv.hpp"

namespace rsets::serve {

DynamicGraph::DynamicGraph(const Graph& g) {
  adjacency_.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.num_edges();
}

DynamicGraph::DynamicGraph(VertexId num_vertices,
                           std::vector<std::vector<VertexId>> adjacency) {
  if (adjacency.size() != num_vertices) {
    throw std::invalid_argument(
        "DynamicGraph: adjacency size != num_vertices");
  }
  adjacency_ = std::move(adjacency);
  // Delegate the per-list validation (sortedness, range, self-loops) to the
  // snapshot fast path; it throws before this object escapes.
  const Graph g = Graph::from_sorted_adjacency(adjacency_);
  num_edges_ = g.num_edges();
}

bool DynamicGraph::has_edge(VertexId u, VertexId v) const {
  const auto& nbrs = adjacency_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool DynamicGraph::splice_in(VertexId u, VertexId v) {
  auto& nbrs = adjacency_[u];
  const auto at = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (at != nbrs.end() && *at == v) return false;
  nbrs.insert(at, v);
  return true;
}

bool DynamicGraph::splice_out(VertexId u, VertexId v) {
  auto& nbrs = adjacency_[u];
  const auto at = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (at == nbrs.end() || *at != v) return false;
  nbrs.erase(at);
  return true;
}

bool DynamicGraph::insert(VertexId u, VertexId v) {
  if (u == v) throw std::invalid_argument("DynamicGraph::insert: self-loop");
  if (u >= num_vertices() || v >= num_vertices()) {
    throw std::invalid_argument("DynamicGraph::insert: vertex out of range");
  }
  if (!splice_in(u, v)) return false;
  splice_in(v, u);
  ++num_edges_;
  return true;
}

bool DynamicGraph::erase(VertexId u, VertexId v) {
  if (u == v) throw std::invalid_argument("DynamicGraph::erase: self-loop");
  if (u >= num_vertices() || v >= num_vertices()) {
    throw std::invalid_argument("DynamicGraph::erase: vertex out of range");
  }
  if (!splice_out(u, v)) return false;
  splice_out(v, u);
  --num_edges_;
  return true;
}

Graph DynamicGraph::snapshot() const {
  return Graph::from_sorted_adjacency(adjacency_);
}

std::vector<VertexId> DynamicGraph::ball(std::span<const VertexId> seeds,
                                         std::uint32_t hops) const {
  std::vector<bool> seen(num_vertices(), false);
  std::deque<std::pair<VertexId, std::uint32_t>> queue;
  std::vector<VertexId> out;
  for (VertexId s : seeds) {
    if (s >= num_vertices() || seen[s]) continue;
    seen[s] = true;
    out.push_back(s);
    queue.emplace_back(s, 0);
  }
  while (!queue.empty()) {
    const auto [v, d] = queue.front();
    queue.pop_front();
    if (d >= hops) continue;
    for (VertexId w : adjacency_[v]) {
      if (seen[w]) continue;
      seen[w] = true;
      out.push_back(w);
      queue.emplace_back(w, d + 1);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t DynamicGraph::fingerprint() const {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a_word(h, num_vertices());
  for (const auto& nbrs : adjacency_) {
    h = fnv1a_word(h, nbrs.size());
    for (VertexId v : nbrs) h = fnv1a_word(h, v);
  }
  return h;
}

}  // namespace rsets::serve
