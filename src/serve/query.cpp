#include "serve/query.hpp"

#include <deque>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace rsets::serve {

QuerySnapshot::QuerySnapshot(std::uint64_t epoch, std::uint32_t beta,
                             Graph graph, std::vector<VertexId> ruling_set)
    : epoch_(epoch),
      beta_(beta),
      graph_(std::move(graph)),
      set_(std::move(ruling_set)) {
  in_set_.assign(graph_.num_vertices(), false);
  for (VertexId v : set_) {
    if (v >= graph_.num_vertices()) {
      throw std::invalid_argument("query snapshot: member " +
                                  std::to_string(v) + " out of range");
    }
    in_set_[v] = true;
  }
}

bool QuerySnapshot::is_member(VertexId v) const {
  if (v >= graph_.num_vertices()) {
    throw std::invalid_argument("query: vertex " + std::to_string(v) +
                                " >= n = " +
                                std::to_string(graph_.num_vertices()));
  }
  return in_set_[v];
}

PointQueryResult QuerySnapshot::nearest_member(VertexId v) const {
  if (v >= graph_.num_vertices()) {
    throw std::invalid_argument("query: vertex " + std::to_string(v) +
                                " >= n = " +
                                std::to_string(graph_.num_vertices()));
  }
  PointQueryResult out;
  if (in_set_[v]) {
    out.covered = true;
    out.member = v;
    out.distance = 0;
    return out;
  }
  // Truncated BFS; the frontier is explored a full level at a time so the
  // first level containing members yields the minimum distance, and the
  // smallest member id in that level breaks the tie deterministically.
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(graph_.num_vertices(), kUnreached);
  std::deque<VertexId> queue{v};
  dist[v] = 0;
  bool found = false;
  VertexId best = 0;
  std::uint32_t best_dist = 0;
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop_front();
    if (found && dist[x] >= best_dist) break;  // deeper levels cannot win
    if (dist[x] >= beta_) continue;
    for (VertexId w : graph_.neighbors(x)) {
      if (dist[w] != kUnreached) continue;
      dist[w] = dist[x] + 1;
      if (in_set_[w]) {
        if (!found || dist[w] < best_dist || (dist[w] == best_dist && w < best)) {
          found = true;
          best = w;
          best_dist = dist[w];
        }
        continue;  // members terminate their branch: nothing closer beyond
      }
      queue.push_back(w);
    }
  }
  out.covered = found;
  out.member = best;
  out.distance = best_dist;
  return out;
}

}  // namespace rsets::serve
