// Multi-producer ingest front for the long-lived ruling-set service.
//
// N producer streams feed bounded per-producer queues of committed batches;
// the epoch loop drains them in deterministic *generations*. Generation g is
// the concatenation, in producer-id order, of every producer's g-th
// committed batch — and a generation is only ready once every producer that
// is still live (not closed, not ejected) has one queued. That alignment is
// what makes epoch contents schedule-independent: no matter how the OS
// interleaves producer threads, the service applies the same update sequence
// in the same order, so the incremental ≡ from-scratch bit-parity gates of
// the chaos soak keep holding under concurrency.
//
// Overload is handled by backpressure, never by dropping: a `commit` that
// would exceed `queue_cap` queued batches blocks (push_line) or returns
// kWouldBlock without consuming the line (offer_line — the caller resubmits
// after draining). Work the service itself defers stays in its journaled
// pending queue exactly as in the single-producer path.
//
// Faults are isolated per producer: a malformed line or a `checksum`
// integrity mismatch discards that producer's open batch (back to its last
// commit), counts a strike, and quarantines only that producer behind a
// deterministic exponential backoff of 2^strikes push *attempts* (attempts,
// not wall time, so replays stay bit-reproducible). After `max_strikes`
// strikes the producer is ejected and a tombstone is emitted for the service
// to journal; its already-committed batches remain valid (they were
// validated at commit time) and still merge. Other producers never notice.
//
// Thread-safety: every public member is safe to call concurrently; each
// producer id must have at most one pushing thread (ids are the identity of
// the stream, and per-stream line order is the protocol).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/updates.hpp"

namespace rsets::serve {

class RulingSetService;

struct IngestConfig {
  std::uint32_t num_producers = 1;
  // Max committed batches queued per producer awaiting merge; 0 = unbounded.
  // The cap bounds batches, not updates, so a single oversized batch can
  // always commit (no deadlock against its own backpressure).
  std::uint64_t queue_cap = 4;
  // Strikes (malformed line / checksum mismatch / duplicate commit, each
  // discarding the open batch) tolerated before the producer is ejected.
  std::uint32_t max_strikes = 3;
  VertexId num_vertices = kNoVertexBound;
};

enum class PushStatus : std::uint8_t {
  kAccepted = 0,     // line consumed into the open batch (or blank/verified)
  kCommitted = 1,    // commit consumed; batch queued for merge
  kWouldBlock = 2,   // queue full (offer_line only); line NOT consumed
  kBackoff = 3,      // quarantine cooldown; line NOT consumed, retry later
  kRejected = 4,     // strike: open batch discarded, producer quarantined
  kEjected = 5,      // producer is ejected (now or earlier); line discarded
  kClosed = 6,       // producer already closed; line discarded
  kBadTag = 7,       // tagged form only: unparseable/out-of-range producer tag
};

const char* push_status_name(PushStatus status);

// Durable record of an ejection, journaled by the service so recovery knows
// which streams died and why.
struct ProducerTombstone {
  std::uint32_t producer = 0;
  std::uint64_t line = 0;  // 1-based line index within the producer's stream
  std::uint32_t strikes = 0;
  std::string reason;

  friend bool operator==(const ProducerTombstone&,
                         const ProducerTombstone&) = default;
};

struct IngestMetrics {
  std::uint64_t lines = 0;              // lines consumed (all producers)
  std::uint64_t updates_accepted = 0;
  std::uint64_t batches_committed = 0;
  std::uint64_t generations = 0;        // generations taken so far
  std::uint64_t backpressure = 0;       // blocking waits + kWouldBlock returns
  std::uint64_t strikes = 0;
  std::uint64_t backoff_rejections = 0; // pushes bounced by a cooldown
  std::uint64_t ejections = 0;
  std::uint64_t bad_tags = 0;
};

class MultiProducerIngest {
 public:
  explicit MultiProducerIngest(IngestConfig config);

  // Feeds one protocol line from `producer`'s stream. Blocks while the
  // producer's committed-batch queue is at queue_cap (backpressure: block,
  // never drop). Safe to call from one thread per producer.
  PushStatus push_line(std::uint32_t producer, const std::string& line);

  // Non-blocking variant: returns kWouldBlock instead of waiting; the line
  // is not consumed and must be resubmitted after the queue drains.
  PushStatus offer_line(std::uint32_t producer, const std::string& line);

  // Producer-tagged single-stream form: "p<ID> <payload>" routes <payload>
  // to producer ID; untagged lines belong to producer 0. Returns kBadTag
  // (line dropped) when the tag is unparseable or ID >= num_producers. The
  // resolved producer id is written to *producer_out when non-null.
  PushStatus offer_tagged_line(const std::string& line,
                               std::uint32_t* producer_out = nullptr);

  // End of `producer`'s stream: a non-empty open batch commits implicitly
  // (exactly like end-of-stream in parse_update_stream; the queue cap is
  // waived — close is final, blocking would deadlock single-threaded
  // drivers). Closed producers no longer gate generation readiness.
  void close(std::uint32_t producer);
  void close_all();

  // Pre-eject a producer without consuming a line (recovery path: a journal
  // tombstone proves this stream already died in a previous life).
  void mark_ejected(std::uint32_t producer, const std::string& reason);

  bool quarantined(std::uint32_t producer) const;  // cooling down right now
  bool ejected(std::uint32_t producer) const;
  bool closed(std::uint32_t producer) const;

  // True when the next generation is fully aligned: at least one batch is
  // queued and every live (open, non-ejected) producer has one.
  bool generation_ready() const;

  // True when nothing more can ever come out: every producer is closed or
  // ejected and all queues are empty.
  bool drained() const;

  // Pops generation g (each producer's oldest queued batch, concatenated in
  // producer-id order) if ready; nullopt otherwise. Never blocks.
  std::optional<UpdateBatch> take_generation();

  // Drains tombstones emitted since the last call (the caller journals them
  // via RulingSetService::record_tombstone before applying further work).
  std::vector<ProducerTombstone> take_tombstones();

  IngestMetrics metrics() const;
  std::uint64_t generations_taken() const;
  std::uint32_t num_producers() const { return config_.num_producers; }

 private:
  struct Producer {
    UpdateBatch open;
    std::deque<UpdateBatch> queued;
    std::uint64_t lineno = 0;    // 1-based, counts consumed lines
    std::uint32_t strikes = 0;
    std::uint64_t cooldown = 0;  // remaining bounced attempts
    bool closed = false;
    bool ejected = false;
  };

  PushStatus push_locked(std::unique_lock<std::mutex>& lock,
                         std::uint32_t producer, const std::string& line,
                         bool blocking);
  PushStatus strike_locked(Producer& p, std::uint32_t producer,
                           const std::string& reason);
  bool generation_ready_locked() const;

  IngestConfig config_;
  mutable std::mutex mu_;
  std::condition_variable space_;  // a queue shrank below the cap
  std::vector<Producer> producers_;
  std::vector<ProducerTombstone> tombstones_;  // pending, not yet taken
  IngestMetrics metrics_;
};

// Drains everything currently actionable from `ingest` into `service`:
// journals pending tombstones first (ejection durability precedes applying
// any update that could depend on it), then applies every ready generation.
// Returns what it did. Crash-simulation exceptions from the service's
// crash_hook propagate; the generation being applied is consumed, so the
// caller recovers from the journal and replays producer streams.
struct PumpReport {
  std::uint64_t generations = 0;
  std::uint64_t epochs = 0;
  std::uint64_t tombstones = 0;
  bool certified = true;
};

PumpReport pump_ready(MultiProducerIngest& ingest, RulingSetService& service);

}  // namespace rsets::serve
