// Mutable adjacency store backing the long-lived ruling-set service.
//
// Graph (graph/graph.hpp) is an immutable flat CSR — perfect for one-shot
// runs, wrong for a resident graph under churn, where rebuilding the flat
// arrays from an edge list costs an O(m log m) sort per batch. DynamicGraph
// keeps per-vertex sorted neighbor vectors instead: an edge insert/delete is
// two O(degree) splices, a batch touches only its endpoints, and snapshot()
// produces a bona fide Graph through the sort-free
// Graph::from_sorted_adjacency fast path (one O(n + m) copy) whenever an
// algorithm or a sequential checker needs the immutable view.
//
// Invariants (maintained structurally, relied on by snapshot()): every list
// strictly increasing, symmetric, no self-loops, ids < n. The vertex count
// is fixed at construction — the serving scenario is edge churn over a fixed
// id space; vertex churn is an explicit non-goal (DESIGN.md §4.7).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace rsets::serve {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  explicit DynamicGraph(const Graph& g);
  // Adopts already-sorted symmetric adjacency (journal recovery path);
  // validated through the same checks as Graph::from_sorted_adjacency.
  DynamicGraph(VertexId num_vertices,
               std::vector<std::vector<VertexId>> adjacency);

  VertexId num_vertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  std::uint64_t num_edges() const { return num_edges_; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return adjacency_[v];
  }
  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(adjacency_[v].size());
  }
  bool has_edge(VertexId u, VertexId v) const;

  // Mutators return false (and change nothing) when the edge was already
  // present / already absent, so callers can apply raw update streams and
  // count the effective changes. Self-loops and out-of-range ids throw
  // std::invalid_argument.
  bool insert(VertexId u, VertexId v);
  bool erase(VertexId u, VertexId v);

  // Immutable CSR copy of the current graph (O(n + m), no sort).
  Graph snapshot() const;

  // Sorted ids of every vertex within `hops` of a seed (seeds included) —
  // the β-hop dirty region the service certifies after a repair.
  std::vector<VertexId> ball(std::span<const VertexId> seeds,
                             std::uint32_t hops) const;

  // FNV-1a over (n, per-vertex degrees, adjacency) — the journal's cheap
  // graph identity check at recovery time.
  std::uint64_t fingerprint() const;

  const std::vector<std::vector<VertexId>>& adjacency() const {
    return adjacency_;
  }

 private:
  // Splices v into adj[u]; returns false if already present.
  bool splice_in(VertexId u, VertexId v);
  bool splice_out(VertexId u, VertexId v);

  std::vector<std::vector<VertexId>> adjacency_;
  std::uint64_t num_edges_ = 0;
};

}  // namespace rsets::serve
