// Long-lived ruling-set service: a resident graph under edge churn whose
// β-ruling set is maintained incrementally and certified after every batch.
//
// Contract (the one the fault+churn chaos soak asserts bit-for-bit): after
// every committed epoch, ruling_set() equals the registered algorithm's
// from-scratch output on the current graph — the maintained object is a pure
// function of the graph, never of the update history. Repair exploits the
// locality of ruling sets (a β-ruling set's influence radius is β hops, the
// observation Pai–Pemmaraju's bounds rest on) in three tiers:
//
//   kSkip      the batch cancelled to nothing against the resident graph
//              (insert of a present edge, delete of an absent one): the
//              output is provably unchanged and no algorithm runs.
//   kFrontier  low churn. The sequential greedy backend is repaired exactly
//              by an id-ordered cascade confined to the β-hop frontier of
//              the batch (DESIGN.md §4.7 proves the fixed-point argument);
//              the MPC/CONGEST backends re-run the registered algorithm —
//              their outputs are global functions of the graph, so a
//              frontier-local rerun cannot reproduce them bit-for-bit — but
//              certification is restricted to the β-hop dirty region around
//              the touched edges and the membership diff (sound: outside
//              that region neither the graph nor the set changed, so old
//              dominating paths survive verbatim).
//   kFull      the churn estimator (EWMA of per-epoch effective-update
//              fraction) exceeded its threshold: recompute and run the full
//              in-model certification pass plus its sequential
//              cross-validation.
//
// Admission control reuses the degrade-budget idea at the batch layer:
// batches with more effective updates than `admit_budget` are split into
// sub-batches (one committed epoch each), sub-batches beyond
// `max_epochs_per_apply` stay in the pending queue — deferred, never
// silently dropped — and a repair whose MPC run trips the strict memory
// budget or the round deadline is retried with exponential relaxation
// (degrade policy / doubled deadline) up to `max_repair_retries`.
//
// Epochs are durable through a sealed journal written with the checkpoint
// subsystem's v4 primitives (SnapshotWriter + whole-image FNV seal + atomic
// tmp/fsync/rename publish with .prev rotation): a crash mid-batch recovers
// to the last committed epoch, with the pending queue intact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/ruling_set.hpp"
#include "serve/dynamic_graph.hpp"
#include "serve/ingest.hpp"
#include "serve/query.hpp"
#include "serve/updates.hpp"

namespace rsets::serve {

class ServiceError : public std::runtime_error {
 public:
  explicit ServiceError(const std::string& what) : std::runtime_error(what) {}
};

struct ServiceConfig {
  // The registered algorithm maintained by this service (any registry
  // entry; the MPC backends are the serving scenario, greedy demonstrates
  // exact frontier repair).
  RulingSetOptions options;
  // Max effective (graph-changing) updates admitted into one committed
  // epoch; 0 = unlimited. Larger batches are split into sub-batches.
  std::uint64_t admit_budget = 0;
  // Max epochs committed per apply()/drain() call; 0 = drain fully. The
  // remainder stays pending (deferred, journaled, never dropped).
  std::uint64_t max_epochs_per_apply = 0;
  // Full-path escalation: when the churn EWMA (effective updates / edges,
  // smoothed) or the instantaneous batch fraction exceeds this, skip the
  // frontier analysis and run full recompute + full certification.
  double full_threshold = 0.10;
  double churn_ewma_alpha = 0.5;
  // Every k-th committed epoch runs the full in-model certification
  // (mpc::certify_ruling_set + sequential cross-validation) even on the
  // frontier path; 0 = only when escalated. Ignored (always full) for
  // non-MPC-certifiable backends? No: the full pass runs on the snapshot
  // regardless of backend.
  std::uint64_t full_certify_every = 16;
  // Bounded retry for repairs that trip the strict budget (retried under
  // the degrade policy) or report deadline misses (retried with the
  // deadline doubled; the final attempt drops it).
  std::uint32_t max_repair_retries = 3;
  // Durable epoch journal; "" disables journaling (recover() then throws).
  std::string journal_path;
  // Liveness watchdog over the epoch loop; 0 disables. The work measure is
  // deterministic (MPC backends: simulator rounds of the repair run; greedy
  // cascade: work-queue pops), never wall time, so a watchdog decision is
  // bit-reproducible. A frontier-tier repair whose work exceeds this
  // deadline escalates the epoch to the full tier (full recompute + full
  // certification); a full-tier repair whose work exceeds
  // kWatchdogFullFactor * deadline fail-stops the service — the epoch still
  // commits (it is already certified and journaled), the journal is marked
  // sealed, and apply()/drain() throw ServiceError until an operator
  // recover()s explicitly.
  std::uint64_t watchdog_deadline = 0;
};

// Full-tier watchdog budget multiplier: the full tier is allowed
// kWatchdogFullFactor times the frontier deadline before fail-stop.
inline constexpr std::uint64_t kWatchdogFullFactor = 4;

enum class RepairScope : std::uint8_t { kSkip = 0, kFrontier = 1, kFull = 2 };

const char* repair_scope_name(RepairScope scope);

// What one apply()/drain() call did.
struct BatchReport {
  std::uint64_t updates = 0;            // raw updates enqueued by this call
  std::uint64_t effective_updates = 0;  // graph-changing updates committed
  std::uint64_t epochs = 0;             // epochs committed by this call
  std::uint64_t deferred = 0;           // updates still pending afterwards
  RepairScope scope = RepairScope::kSkip;  // widest scope this call used
  std::uint64_t dirty_vertices = 0;     // last certified region size
  std::uint64_t repair_retries = 0;     // retries spent by this call
  bool certified = false;               // every committed epoch certified
  std::uint64_t set_size = 0;
};

struct ServiceMetrics {
  std::uint64_t epochs = 0;             // committed epochs (monotone)
  std::uint64_t batches = 0;            // apply() calls
  std::uint64_t updates_seen = 0;       // raw updates enqueued
  std::uint64_t updates_applied = 0;    // effective graph changes
  std::uint64_t updates_noop = 0;       // cancelled against the graph
  std::uint64_t skips = 0;              // sub-batches with no effective update
  std::uint64_t repairs_frontier = 0;
  std::uint64_t repairs_full = 0;
  std::uint64_t cascade_repairs = 0;    // greedy exact-frontier repairs
  std::uint64_t repair_retries = 0;
  std::uint64_t quarantine_escalations = 0;  // repairs that forced full certify
  std::uint64_t certifications_region = 0;
  std::uint64_t certifications_full = 0;
  std::uint64_t journal_writes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t faults_injected = 0;  // summed over all repair reruns
  // Liveness ledger (PR 9): heartbeats tick at fixed stages of every epoch
  // commit (post-repair, post-certify, and at the commit point just before
  // the journal write) and persist in the journal like epoch_ — an absolute
  // liveness position, not a per-process counter, so a crashed-and-recovered
  // service ends at the same position as an uncrashed twin.
  std::uint64_t heartbeats = 0;
  std::uint64_t watchdog_escalations = 0;  // frontier → full promotions
  std::uint64_t watchdog_failstops = 0;    // full-tier budget exhausted
  std::uint64_t tombstones = 0;            // producer ejections journaled
};

class RulingSetService {
 public:
  // Loads the initial graph, computes the initial set (epoch 0), certifies
  // it, and writes the first journal entry when journaling is configured.
  RulingSetService(const Graph& initial, ServiceConfig config);

  // Restores a service from cfg.journal_path (falling back to the .prev
  // generation exactly like checkpoint reads): graph, set, epoch, and the
  // pending queue land at the last committed epoch. Throws ServiceError
  // when the journal is missing/corrupt beyond the fallback or was written
  // by a different (algorithm, beta, n) configuration.
  static RulingSetService recover(ServiceConfig config);

  // Applies one client batch: enqueue, then drain the pending queue within
  // the admission limits. Throws ServiceError if certification fails (the
  // service must never serve an uncertified set); after any throw the
  // in-memory state is indeterminate and the owner should recover() from
  // the journal.
  BatchReport apply(const UpdateBatch& batch);

  // Drains deferred updates only (same admission limits).
  BatchReport drain();

  const std::vector<VertexId>& ruling_set() const { return set_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t pending() const { return pending_.size(); }
  double churn_ewma() const { return churn_ewma_; }
  const ServiceMetrics& metrics() const { return metrics_; }
  const DynamicGraph& graph() const { return graph_; }
  Graph snapshot() const { return graph_.snapshot(); }
  const ServiceConfig& config() const { return config_; }

  // The last algorithm rerun: its full result ledger and the options the
  // run actually used after retry relaxation — a from-scratch
  // compute_ruling_set(snapshot(), last_repair_options()) reproduces both
  // byte-for-byte (the churn-parity tests pin exactly this). Zeroed /
  // config defaults while no rerun has happened (skip or cascade paths).
  const RulingSetResult& last_repair_result() const { return last_result_; }
  const RulingSetOptions& last_repair_options() const {
    return last_options_;
  }

  // Epoch-pinned point queries: an immutable snapshot of the last committed
  // epoch, republished under a mutex only at commit points (construction,
  // each committed epoch, recovery). Safe to call from any thread while the
  // owner thread applies batches; the handle stays valid (and frozen at its
  // epoch) for as long as the caller holds it.
  QueryHandle query() const;

  // Journals a producer ejection from the ingest front. Durable before it
  // returns (when journaling is configured): the tombstone write uses the
  // same sealed tmp/fsync/rename path as epoch commits, so a crash after
  // this call recovers a journal that still names the dead producer.
  void record_tombstone(const ProducerTombstone& tombstone);
  const std::vector<ProducerTombstone>& tombstones() const {
    return tombstones_;
  }

  // True after a watchdog fail-stop: the journal is sealed and
  // apply()/drain() throw until an operator recover()s.
  bool sealed() const { return sealed_; }

  // Test/chaos hook, called at named stages of every epoch commit
  // ("pre-apply", "pre-commit", "committed") and of every tombstone record
  // ("pre-tombstone", "tombstone-recorded"); throwing from it simulates a
  // crash at that point.
  std::function<void(std::string_view)> crash_hook;

 private:
  RulingSetService() = default;

  BatchReport drain_pending(BatchReport report);
  void commit_epoch(BatchReport& report);
  RulingSetResult run_repair(const Graph& snapshot, BatchReport& report,
                             bool* force_full_certify);
  std::vector<VertexId> cascade_repair(
      std::span<const VertexId> seeds,
      const std::vector<std::pair<VertexId, VertexId>>& deleted,
      std::uint64_t* pops);
  void certify_epoch(std::span<const VertexId> dirty_seeds,
                     std::span<const VertexId> old_set, bool full,
                     BatchReport& report);
  void write_journal();
  void publish_snapshot();

  ServiceConfig config_;
  DynamicGraph graph_;
  std::vector<VertexId> set_;
  std::vector<bool> in_set_;  // mirrors set_
  std::uint64_t epoch_ = 0;
  double churn_ewma_ = 0.0;
  std::vector<EdgeUpdate> pending_;  // FIFO deferred-update queue
  ServiceMetrics metrics_;
  RulingSetResult last_result_;
  RulingSetOptions last_options_;
  std::vector<ProducerTombstone> tombstones_;
  bool sealed_ = false;
  // unique_ptr keeps the service movable (recover() returns by value); the
  // mutex guards only the handle swap, never the snapshot contents.
  std::unique_ptr<std::mutex> query_mu_ = std::make_unique<std::mutex>();
  QueryHandle query_handle_;
};

// Frontier-restricted sequential validity check, exposed for tests and the
// chaos harness: independence for members inside `region` plus
// β-domination of every region vertex, examined only through the β-hop
// fringe around the region. Sound as a per-epoch certificate when, outside
// `region`, neither the graph nor the membership changed since the last
// certified epoch (DESIGN.md §4.7).
bool region_valid(const DynamicGraph& g, std::span<const VertexId> set,
                  std::uint32_t beta, std::span<const VertexId> region);

}  // namespace rsets::serve
