// Edge-update batches for the long-lived ruling-set service.
//
// The wire protocol is line-oriented text (the same hardened-input rules as
// the edge-list reader in graph/io.cpp: structured rsets::Error with 1-based
// line numbers, CRLF tolerance, '#'/'%' comments):
//
//   + u v      insert the undirected edge {u, v}
//   - u v      delete the undirected edge {u, v}
//   commit     close the current batch (one service epoch group)
//
// Blank lines and comments are ignored; end-of-stream closes a trailing
// non-empty batch. Duplicate and contradictory lines are legal — batch
// semantics are last-write-wins per unordered pair, and an insert of a
// present edge or a delete of an absent one is a no-op — so any interleaving
// of producers can be replayed verbatim. Malformed lines (unknown op, wrong
// field count, non-numeric or out-of-range ids, self-loops) throw
// rsets::Error naming the exact source line; they are never skipped.
#pragma once

#include <cstdint>
#include <istream>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace rsets::serve {

struct EdgeUpdate {
  enum class Op : std::uint8_t { kInsert = 0, kDelete = 1 };
  Op op = Op::kInsert;
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

struct UpdateBatch {
  std::vector<EdgeUpdate> updates;

  bool empty() const { return updates.empty(); }
  std::size_t size() const { return updates.size(); }
};

// Accept ids up to this bound (exclusive). Pass the resident graph's vertex
// count; kNoVertexBound disables the range check (raw protocol fuzzing).
inline constexpr VertexId kNoVertexBound = 0xffffffffu;

// Parses a whole update stream into batches. Throws rsets::Error
// (kMalformedLine / kVertexIdOverflow / kSelfLoop) with 1-based line
// diagnostics; an empty stream parses to zero batches and `commit` on an
// empty batch is ignored (idempotent flush).
std::vector<UpdateBatch> parse_update_stream(std::istream& in,
                                             VertexId num_vertices);

// One line of the protocol rendered back to text (round-trips through
// parse_update_stream).
std::string to_line(const EdgeUpdate& update);

}  // namespace rsets::serve
