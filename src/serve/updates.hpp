// Edge-update batches for the long-lived ruling-set service.
//
// The wire protocol is line-oriented text (the same hardened-input rules as
// the edge-list reader in graph/io.cpp: structured rsets::Error with 1-based
// line numbers, CRLF tolerance, '#'/'%' comments):
//
//   + u v        insert the undirected edge {u, v}
//   - u v        delete the undirected edge {u, v}
//   checksum H   FNV-1a digest of the open batch (optional integrity line)
//   commit       close the current batch (one service epoch group)
//
// Blank lines and comments are ignored; end-of-stream closes a trailing
// non-empty batch. Duplicate and contradictory update lines are legal —
// batch semantics are last-write-wins per unordered pair, and an insert of a
// present edge or a delete of an absent one is a no-op — so any interleaving
// of producers can be replayed verbatim. Malformed lines (unknown op, wrong
// field count, non-numeric or out-of-range ids, self-loops) and a `commit`
// that closes an EMPTY batch (duplicate commit) throw rsets::Error naming
// the exact source line; they are never skipped. A `checksum H` line, if
// present, must match batch_checksum() over the updates accumulated since
// the last commit, else kChecksumMismatch is thrown — the multi-producer
// ingest front turns that into a per-producer quarantine instead of a
// stream-wide failure.
#pragma once

#include <cstdint>
#include <istream>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace rsets::serve {

struct EdgeUpdate {
  enum class Op : std::uint8_t { kInsert = 0, kDelete = 1 };
  Op op = Op::kInsert;
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

struct UpdateBatch {
  std::vector<EdgeUpdate> updates;

  bool empty() const { return updates.empty(); }
  std::size_t size() const { return updates.size(); }
};

// Accept ids up to this bound (exclusive). Pass the resident graph's vertex
// count; kNoVertexBound disables the range check (raw protocol fuzzing).
inline constexpr VertexId kNoVertexBound = 0xffffffffu;

// One protocol line, classified. Shared by the whole-stream parser and the
// incremental multi-producer ingest front so both enforce identical rules.
struct ParsedLine {
  enum class Kind : std::uint8_t {
    kBlank = 0,     // empty line or comment — ignore
    kUpdate = 1,    // `+ u v` / `- u v`, in `update`
    kCommit = 2,    // `commit`
    kChecksum = 3,  // `checksum H`, digest in `checksum`
  };
  Kind kind = Kind::kBlank;
  EdgeUpdate update{};
  std::uint64_t checksum = 0;
};

// Parses and validates a single protocol line (CRLF already allowed in
// `line`). Throws rsets::Error (kMalformedLine / kVertexIdOverflow /
// kSelfLoop) with the given 1-based line number in the diagnostic.
ParsedLine parse_update_line(const std::string& line, std::size_t lineno,
                             VertexId num_vertices);

// FNV-1a over the canonical `to_line()` rendering (newline-terminated) of
// each update, in order. This is what a `checksum H` protocol line must
// carry for the batch accumulated since the previous commit.
std::uint64_t batch_checksum(std::span<const EdgeUpdate> updates);

// Parses a whole update stream into batches. Throws rsets::Error
// (kMalformedLine / kVertexIdOverflow / kSelfLoop / kChecksumMismatch) with
// 1-based line diagnostics; an empty stream parses to zero batches and a
// `commit` that closes an empty batch (duplicate commit) is rejected.
std::vector<UpdateBatch> parse_update_stream(std::istream& in,
                                             VertexId num_vertices);

// One line of the protocol rendered back to text (round-trips through
// parse_update_stream).
std::string to_line(const EdgeUpdate& update);

}  // namespace rsets::serve
