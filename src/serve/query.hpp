// Epoch-pinned point queries for the long-lived ruling-set service.
//
// A QuerySnapshot is an immutable capture of one committed epoch: the graph,
// the certified ruling set, and the epoch number. The service publishes a
// fresh shared_ptr<const QuerySnapshot> under a mutex only at commit points
// (construction, each committed epoch, recovery) — readers grab the handle
// once and then answer any number of point queries against a state that can
// never change underneath them, so a query issued between commits reflects
// exactly the last committed epoch and never a half-applied batch. Holding a
// handle across commits pins that epoch: the service moves on, the holder's
// answers stay frozen (shared_ptr keeps the snapshot alive).
//
// The queries themselves are the β-ruling-set membership questions:
// `is v covered?` (is some member within β hops) and `nearest member`
// (smallest distance, ties broken by smallest member id — deterministic).
// Both are one truncated BFS, O(ball_β(v)) — the same β-hop locality that
// bounds repair latency bounds query latency.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"

namespace rsets::serve {

struct PointQueryResult {
  bool covered = false;      // some member within beta hops (always true for
                             // a valid ruling set; false answers are how the
                             // tests prove a snapshot is really pinned)
  VertexId member = 0;       // the nearest member (valid when covered)
  std::uint32_t distance = 0;  // hops to `member` (0 = v itself is a member)
};

class QuerySnapshot {
 public:
  QuerySnapshot(std::uint64_t epoch, std::uint32_t beta, Graph graph,
                std::vector<VertexId> ruling_set);

  std::uint64_t epoch() const { return epoch_; }
  std::uint32_t beta() const { return beta_; }
  const Graph& graph() const { return graph_; }
  const std::vector<VertexId>& ruling_set() const { return set_; }

  // O(1): membership of v itself. Throws std::invalid_argument when v is
  // out of range (queries are an external input boundary).
  bool is_member(VertexId v) const;

  // Truncated BFS from v, depth <= beta. Nearest member by hop distance,
  // ties broken by smallest id; covered=false when no member is within
  // beta hops.
  PointQueryResult nearest_member(VertexId v) const;

  bool covered(VertexId v) const { return nearest_member(v).covered; }

 private:
  std::uint64_t epoch_ = 0;
  std::uint32_t beta_ = 0;
  Graph graph_;
  std::vector<VertexId> set_;
  std::vector<bool> in_set_;
};

// The handle the service hands out: immutable, shareable across threads
// without further synchronization.
using QueryHandle = std::shared_ptr<const QuerySnapshot>;

}  // namespace rsets::serve
