#include "serve/updates.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace rsets::serve {
namespace {

std::uint64_t parse_id(const std::string& token, std::size_t line,
                       const std::string& text) {
  // strtoull accepts leading signs and partial prefixes; both are malformed
  // here, exactly as in the edge-list reader.
  if (token.empty() || token[0] == '-' || token[0] == '+') {
    throw Error(ErrorCode::kMalformedLine,
                "line " + std::to_string(line) + ": '" + text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    throw Error(ErrorCode::kMalformedLine,
                "line " + std::to_string(line) + ": '" + text + "'");
  }
  if (errno == ERANGE) {
    throw Error(ErrorCode::kVertexIdOverflow,
                "line " + std::to_string(line) + ": value out of range");
  }
  return v;
}

VertexId check_vertex(std::uint64_t v, VertexId num_vertices,
                      std::size_t line) {
  if (v >= num_vertices) {
    throw Error(ErrorCode::kVertexIdOverflow,
                "line " + std::to_string(line) + ": id " + std::to_string(v) +
                    " >= n = " + std::to_string(num_vertices));
  }
  return static_cast<VertexId>(v);
}

}  // namespace

std::vector<UpdateBatch> parse_update_stream(std::istream& in,
                                             VertexId num_vertices) {
  std::vector<UpdateBatch> batches;
  UpdateBatch open;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Tolerate CRLF files: the '\r' is line framing, not data.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#' || line[start] == '%')
      continue;

    std::istringstream ls(line);
    std::string op, tu, tv, extra;
    ls >> op;
    if (op == "commit") {
      if (ls >> extra) {
        throw Error(ErrorCode::kMalformedLine,
                    "line " + std::to_string(lineno) +
                        ": trailing data after commit: '" + line + "'");
      }
      if (!open.empty()) {
        batches.push_back(std::move(open));
        open = UpdateBatch{};
      }
      continue;
    }
    if (op != "+" && op != "-") {
      throw Error(ErrorCode::kMalformedLine,
                  "line " + std::to_string(lineno) + ": op must be +|-|commit: '" +
                      line + "'");
    }
    if (!(ls >> tu >> tv) || (ls >> extra)) {
      throw Error(ErrorCode::kMalformedLine,
                  "line " + std::to_string(lineno) + ": '" + line + "'");
    }
    const VertexId u =
        check_vertex(parse_id(tu, lineno, line), num_vertices, lineno);
    const VertexId v =
        check_vertex(parse_id(tv, lineno, line), num_vertices, lineno);
    if (u == v) {
      throw Error(ErrorCode::kSelfLoop,
                  "line " + std::to_string(lineno) + ": self-loop on " +
                      std::to_string(u));
    }
    open.updates.push_back({op == "+" ? EdgeUpdate::Op::kInsert
                                      : EdgeUpdate::Op::kDelete,
                            u, v});
  }
  if (!open.empty()) batches.push_back(std::move(open));
  return batches;
}

std::string to_line(const EdgeUpdate& update) {
  return std::string(update.op == EdgeUpdate::Op::kInsert ? "+ " : "- ") +
         std::to_string(update.u) + " " + std::to_string(update.v);
}

}  // namespace rsets::serve
