#include "serve/updates.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <string>

#include "util/error.hpp"
#include "util/fnv.hpp"

namespace rsets::serve {
namespace {

std::uint64_t parse_number(const std::string& token, std::size_t line,
                           const std::string& text, int base) {
  // strtoull accepts leading signs and partial prefixes; both are malformed
  // here, exactly as in the edge-list reader.
  if (token.empty() || token[0] == '-' || token[0] == '+') {
    throw Error(ErrorCode::kMalformedLine,
                "line " + std::to_string(line) + ": '" + text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, base);
  if (end != token.c_str() + token.size()) {
    throw Error(ErrorCode::kMalformedLine,
                "line " + std::to_string(line) + ": '" + text + "'");
  }
  if (errno == ERANGE) {
    throw Error(ErrorCode::kVertexIdOverflow,
                "line " + std::to_string(line) + ": value out of range");
  }
  return v;
}

VertexId check_vertex(std::uint64_t v, VertexId num_vertices,
                      std::size_t line) {
  if (v >= num_vertices) {
    throw Error(ErrorCode::kVertexIdOverflow,
                "line " + std::to_string(line) + ": id " + std::to_string(v) +
                    " >= n = " + std::to_string(num_vertices));
  }
  return static_cast<VertexId>(v);
}

}  // namespace

ParsedLine parse_update_line(const std::string& raw, std::size_t lineno,
                             VertexId num_vertices) {
  std::string line = raw;
  // Tolerate CRLF files: the '\r' is line framing, not data.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos || line[start] == '#' || line[start] == '%')
    return ParsedLine{};

  std::istringstream ls(line);
  std::string op, tu, tv, extra;
  ls >> op;
  if (op == "commit") {
    if (ls >> extra) {
      throw Error(ErrorCode::kMalformedLine,
                  "line " + std::to_string(lineno) +
                      ": trailing data after commit: '" + line + "'");
    }
    ParsedLine out;
    out.kind = ParsedLine::Kind::kCommit;
    return out;
  }
  if (op == "checksum") {
    if (!(ls >> tu) || (ls >> extra)) {
      throw Error(ErrorCode::kMalformedLine,
                  "line " + std::to_string(lineno) + ": '" + line + "'");
    }
    ParsedLine out;
    out.kind = ParsedLine::Kind::kChecksum;
    out.checksum = parse_number(tu, lineno, line, 16);
    return out;
  }
  if (op != "+" && op != "-") {
    throw Error(ErrorCode::kMalformedLine,
                "line " + std::to_string(lineno) +
                    ": op must be +|-|checksum|commit: '" + line + "'");
  }
  if (!(ls >> tu >> tv) || (ls >> extra)) {
    throw Error(ErrorCode::kMalformedLine,
                "line " + std::to_string(lineno) + ": '" + line + "'");
  }
  const VertexId u =
      check_vertex(parse_number(tu, lineno, line, 10), num_vertices, lineno);
  const VertexId v =
      check_vertex(parse_number(tv, lineno, line, 10), num_vertices, lineno);
  if (u == v) {
    throw Error(ErrorCode::kSelfLoop,
                "line " + std::to_string(lineno) + ": self-loop on " +
                    std::to_string(u));
  }
  ParsedLine out;
  out.kind = ParsedLine::Kind::kUpdate;
  out.update = {op == "+" ? EdgeUpdate::Op::kInsert : EdgeUpdate::Op::kDelete,
                u, v};
  return out;
}

std::uint64_t batch_checksum(std::span<const EdgeUpdate> updates) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const EdgeUpdate& update : updates) {
    const std::string line = to_line(update) + "\n";
    h = fnv1a_bytes(line.data(), line.size(), h);
  }
  return h;
}

std::vector<UpdateBatch> parse_update_stream(std::istream& in,
                                             VertexId num_vertices) {
  std::vector<UpdateBatch> batches;
  UpdateBatch open;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const ParsedLine parsed = parse_update_line(line, lineno, num_vertices);
    switch (parsed.kind) {
      case ParsedLine::Kind::kBlank:
        break;
      case ParsedLine::Kind::kUpdate:
        open.updates.push_back(parsed.update);
        break;
      case ParsedLine::Kind::kChecksum: {
        const std::uint64_t expect = batch_checksum(open.updates);
        if (parsed.checksum != expect) {
          std::ostringstream oss;
          oss << "line " << lineno << ": batch digest " << std::hex
              << expect << ", line claims " << parsed.checksum;
          throw Error(ErrorCode::kChecksumMismatch, oss.str());
        }
        break;
      }
      case ParsedLine::Kind::kCommit:
        if (open.empty()) {
          throw Error(ErrorCode::kMalformedLine,
                      "line " + std::to_string(lineno) +
                          ": duplicate commit (no updates since the last "
                          "commit)");
        }
        batches.push_back(std::move(open));
        open = UpdateBatch{};
        break;
    }
  }
  if (!open.empty()) batches.push_back(std::move(open));
  return batches;
}

std::string to_line(const EdgeUpdate& update) {
  return std::string(update.op == EdgeUpdate::Op::kInsert ? "+ " : "- ") +
         std::to_string(update.u) + " " + std::to_string(update.v);
}

}  // namespace rsets::serve
