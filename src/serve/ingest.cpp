#include "serve/ingest.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "serve/service.hpp"
#include "util/error.hpp"

namespace rsets::serve {

const char* push_status_name(PushStatus status) {
  switch (status) {
    case PushStatus::kAccepted:
      return "accepted";
    case PushStatus::kCommitted:
      return "committed";
    case PushStatus::kWouldBlock:
      return "would_block";
    case PushStatus::kBackoff:
      return "backoff";
    case PushStatus::kRejected:
      return "rejected";
    case PushStatus::kEjected:
      return "ejected";
    case PushStatus::kClosed:
      return "closed";
    case PushStatus::kBadTag:
      return "bad_tag";
  }
  return "?";
}

MultiProducerIngest::MultiProducerIngest(IngestConfig config)
    : config_(config) {
  if (config_.num_producers == 0) {
    throw std::invalid_argument("ingest: num_producers must be >= 1");
  }
  producers_.resize(config_.num_producers);
}

PushStatus MultiProducerIngest::push_line(std::uint32_t producer,
                                          const std::string& line) {
  std::unique_lock<std::mutex> lock(mu_);
  return push_locked(lock, producer, line, /*blocking=*/true);
}

PushStatus MultiProducerIngest::offer_line(std::uint32_t producer,
                                           const std::string& line) {
  std::unique_lock<std::mutex> lock(mu_);
  return push_locked(lock, producer, line, /*blocking=*/false);
}

PushStatus MultiProducerIngest::push_locked(
    std::unique_lock<std::mutex>& lock, std::uint32_t producer,
    const std::string& line, bool blocking) {
  if (producer >= config_.num_producers) {
    throw std::invalid_argument("ingest: producer id out of range");
  }
  Producer& p = producers_[producer];
  if (p.ejected) return PushStatus::kEjected;
  if (p.closed) return PushStatus::kClosed;
  if (p.cooldown > 0) {
    // Quarantine cooldown is measured in bounced push attempts, not wall
    // time: deterministic under any thread schedule.
    --p.cooldown;
    ++metrics_.backoff_rejections;
    return PushStatus::kBackoff;
  }

  // Parse before consuming: a kWouldBlock below must leave the producer's
  // stream position untouched so the caller can resubmit the same line.
  ParsedLine parsed;
  try {
    parsed = parse_update_line(line, p.lineno + 1, config_.num_vertices);
  } catch (const Error& e) {
    ++p.lineno;
    ++metrics_.lines;
    return strike_locked(p, producer, e.what());
  }

  if (parsed.kind == ParsedLine::Kind::kCommit && !p.open.empty() &&
      config_.queue_cap != 0 && p.queued.size() >= config_.queue_cap) {
    ++metrics_.backpressure;
    if (!blocking) return PushStatus::kWouldBlock;
    space_.wait(lock, [&] { return p.queued.size() < config_.queue_cap; });
  }

  ++p.lineno;
  ++metrics_.lines;
  switch (parsed.kind) {
    case ParsedLine::Kind::kBlank:
      return PushStatus::kAccepted;
    case ParsedLine::Kind::kUpdate:
      p.open.updates.push_back(parsed.update);
      ++metrics_.updates_accepted;
      return PushStatus::kAccepted;
    case ParsedLine::Kind::kChecksum: {
      const std::uint64_t expect = batch_checksum(p.open.updates);
      if (parsed.checksum != expect) {
        std::ostringstream oss;
        oss << error_code_name(ErrorCode::kChecksumMismatch) << ": line "
            << p.lineno << ": batch digest " << std::hex << expect
            << ", line claims " << parsed.checksum;
        return strike_locked(p, producer, oss.str());
      }
      return PushStatus::kAccepted;
    }
    case ParsedLine::Kind::kCommit: {
      if (p.open.empty()) {
        return strike_locked(
            p, producer,
            std::string(error_code_name(ErrorCode::kMalformedLine)) +
                ": line " + std::to_string(p.lineno) +
                ": duplicate commit (no updates since the last commit)");
      }
      p.queued.push_back(std::move(p.open));
      p.open = UpdateBatch{};
      ++metrics_.batches_committed;
      return PushStatus::kCommitted;
    }
  }
  return PushStatus::kAccepted;  // unreachable
}

PushStatus MultiProducerIngest::strike_locked(Producer& p,
                                              std::uint32_t producer,
                                              const std::string& reason) {
  // A strike rolls the producer back to its last commit: the open batch is
  // poisoned data and is never merged.
  p.open = UpdateBatch{};
  ++p.strikes;
  ++metrics_.strikes;
  if (p.strikes > config_.max_strikes) {
    p.ejected = true;
    ++metrics_.ejections;
    tombstones_.push_back({producer, p.lineno, p.strikes, reason});
    return PushStatus::kEjected;
  }
  p.cooldown = std::uint64_t{1} << p.strikes;  // 2, 4, 8, ... attempts
  return PushStatus::kRejected;
}

PushStatus MultiProducerIngest::offer_tagged_line(
    const std::string& line, std::uint32_t* producer_out) {
  std::uint32_t producer = 0;
  std::string payload = line;
  if (!line.empty() && line[0] == 'p') {
    std::size_t i = 1;
    while (i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const bool delimited =
        i == line.size() || line[i] == ' ' || line[i] == '\t';
    if (i > 1 && delimited) {
      if (i - 1 > 9) {  // tag longer than any uint32 — unparseable
        std::lock_guard<std::mutex> lock(mu_);
        ++metrics_.bad_tags;
        return PushStatus::kBadTag;
      }
      const std::uint64_t id = std::stoull(line.substr(1, i - 1));
      if (id >= config_.num_producers) {
        std::lock_guard<std::mutex> lock(mu_);
        ++metrics_.bad_tags;
        return PushStatus::kBadTag;
      }
      producer = static_cast<std::uint32_t>(id);
      payload = i < line.size() ? line.substr(i + 1) : std::string();
    }
  }
  if (producer_out != nullptr) *producer_out = producer;
  return offer_line(producer, payload);
}

void MultiProducerIngest::close(std::uint32_t producer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (producer >= config_.num_producers) {
    throw std::invalid_argument("ingest: producer id out of range");
  }
  Producer& p = producers_[producer];
  if (p.closed || p.ejected) return;
  if (!p.open.empty()) {
    // End-of-stream closes a trailing non-empty batch, exactly like
    // parse_update_stream. The cap is waived: close is final and blocking
    // here would deadlock a single-threaded driver.
    p.queued.push_back(std::move(p.open));
    p.open = UpdateBatch{};
    ++metrics_.batches_committed;
  }
  p.closed = true;
}

void MultiProducerIngest::close_all() {
  for (std::uint32_t producer = 0; producer < config_.num_producers;
       ++producer) {
    close(producer);
  }
}

void MultiProducerIngest::mark_ejected(std::uint32_t producer,
                                       const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (producer >= config_.num_producers) {
    throw std::invalid_argument("ingest: producer id out of range");
  }
  Producer& p = producers_[producer];
  if (p.ejected) return;
  p.open = UpdateBatch{};
  p.ejected = true;
  ++metrics_.ejections;
  tombstones_.push_back({producer, p.lineno, p.strikes, reason});
}

bool MultiProducerIngest::quarantined(std::uint32_t producer) const {
  std::lock_guard<std::mutex> lock(mu_);
  return producer < producers_.size() && producers_[producer].cooldown > 0;
}

bool MultiProducerIngest::ejected(std::uint32_t producer) const {
  std::lock_guard<std::mutex> lock(mu_);
  return producer < producers_.size() && producers_[producer].ejected;
}

bool MultiProducerIngest::closed(std::uint32_t producer) const {
  std::lock_guard<std::mutex> lock(mu_);
  return producer < producers_.size() && producers_[producer].closed;
}

bool MultiProducerIngest::generation_ready_locked() const {
  bool any_queued = false;
  for (const Producer& p : producers_) {
    if (!p.queued.empty()) {
      any_queued = true;
    } else if (!p.closed && !p.ejected) {
      return false;  // a live producer has not aligned yet — wait for it
    }
  }
  return any_queued;
}

bool MultiProducerIngest::generation_ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_ready_locked();
}

bool MultiProducerIngest::drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Producer& p : producers_) {
    if (!p.queued.empty()) return false;
    if (!p.closed && !p.ejected) return false;
  }
  return true;
}

std::optional<UpdateBatch> MultiProducerIngest::take_generation() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!generation_ready_locked()) return std::nullopt;
  UpdateBatch out;
  for (Producer& p : producers_) {
    if (p.queued.empty()) continue;  // closed/ejected stragglers contribute 0
    UpdateBatch& head = p.queued.front();
    out.updates.insert(out.updates.end(), head.updates.begin(),
                       head.updates.end());
    p.queued.pop_front();
  }
  ++metrics_.generations;
  space_.notify_all();
  return out;
}

std::vector<ProducerTombstone> MultiProducerIngest::take_tombstones() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(tombstones_, {});
}

IngestMetrics MultiProducerIngest::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

std::uint64_t MultiProducerIngest::generations_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.generations;
}

PumpReport pump_ready(MultiProducerIngest& ingest, RulingSetService& service) {
  PumpReport report;
  // Tombstones first: an ejection must be durable before any update that
  // could causally follow it is applied, so recovery never resurrects a
  // stream the pre-crash service already declared dead.
  for (const ProducerTombstone& t : ingest.take_tombstones()) {
    service.record_tombstone(t);
    ++report.tombstones;
  }
  while (std::optional<UpdateBatch> generation = ingest.take_generation()) {
    const BatchReport r = service.apply(*generation);
    ++report.generations;
    report.epochs += r.epochs;
    report.certified = report.certified && r.certified;
  }
  return report;
}

}  // namespace rsets::serve
