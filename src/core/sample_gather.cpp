#include "core/sample_gather.hpp"

#include <algorithm>
#include <cmath>

#include "core/phase_common.hpp"
#include "mpc/dist_graph.hpp"
#include "mpc/primitives.hpp"
#include "util/logging.hpp"

namespace rsets {
using detail::count_active_edges;
using detail::gather_and_mis;
using detail::remove_ball;
using mpc::MachineId;
using mpc::Word;

RulingSetResult sample_gather_2ruling(const Graph& g,
                                      const mpc::MpcConfig& cfg,
                                      const SampleGatherOptions& options) {
  mpc::Simulator sim(cfg);
  mpc::DistGraph dg(sim, g);
  const VertexId n = g.num_vertices();
  const MachineId m_count = sim.num_machines();

  std::uint64_t budget = options.gather_budget_words;
  if (budget == 0) budget = 32ull * std::max<VertexId>(n, 1);
  budget = std::min<std::uint64_t>(budget, cfg.memory_words);

  RulingSetResult result;
  result.beta = 2;
  std::vector<VertexId>& ruling = result.ruling_set;
  const double log_n = std::log(std::max<double>(n, 2.0));

  // Checkpointable driver state: everything that survives across rounds.
  sim.register_snapshotable("dist_graph", &dg);
  auto driver_state = mpc::snapshot_of(result.ruling_set, result.phases,
                                       result.degree_trajectory);
  sim.register_snapshotable("sample_gather", &driver_state);

  while (dg.active_count() > 0) {
    const std::uint64_t m_active = count_active_edges(sim, dg);
    if (m_active == 0) {
      // Only isolated active vertices remain: all join directly.
      std::vector<std::vector<VertexId>> batches(m_count);
      for (VertexId v : dg.active_vertices()) {
        ruling.push_back(v);
        batches[dg.owner(v)].push_back(v);
      }
      dg.deactivate(sim, batches);
      break;
    }
    if (2 * m_active + 2 * dg.active_count() <= budget) {
      const std::vector<VertexId> members = dg.active_vertices();
      std::vector<std::uint8_t> mask(n, 0);
      for (VertexId v : members) mask[v] = 1;
      const auto mis = gather_and_mis(sim, dg, members, mask);
      ruling.insert(ruling.end(), mis.begin(), mis.end());
      std::vector<std::vector<VertexId>> batches(m_count);
      for (VertexId v : members) batches[dg.owner(v)].push_back(v);
      dg.deactivate(sim, batches);
      break;
    }

    const std::uint32_t delta = dg.active_max_degree(sim);
    result.degree_trajectory.push_back(delta);
    ++result.phases;

    // Threshold: all vertices of active degree >= d are covered w.h.p.
    // E[sampled edges] = p^2 * m <= budget/8 by this choice of d.
    const double c = options.sample_scale;
    // Do NOT clamp d by Delta: when the graph exceeds the budget at small
    // Delta, d > Delta simply means no vertex needs coverage this phase and
    // the sample's removal ball alone makes progress. Clamping would push p
    // to 1 and the sampled graph past the budget forever.
    const double d = std::max(
        2.0, std::ceil(c * log_n *
                       std::sqrt(8.0 * static_cast<double>(m_active) /
                                 static_cast<double>(budget))));
    const double p = std::min(1.0, c * log_n / d);
    (void)delta;

    // Sample (owners flip coins), retry if the realized sample would blow
    // the gather budget — a low-probability event the analysis absorbs.
    // Byte-per-vertex mask: owners set their own vertices' entries from
    // inside the round callback, which may run concurrently per machine.
    std::vector<std::uint8_t> sampled(n, 0);
    std::vector<VertexId> sample;
    for (int attempt = 0; attempt < options.max_retries_per_phase;
         ++attempt) {
      std::fill(sampled.begin(), sampled.end(), std::uint8_t{0});
      sample.clear();
      sim.round([&](mpc::Machine& machine, const mpc::Inbox&) {
        for (VertexId v : dg.owned(machine.id())) {
          if (dg.active(v) && machine.rng().flip(p)) {
            sampled[v] = 1;
          }
        }
      });
      // Announce the sample cluster-wide (1 round) so edge filtering and
      // ball removal are locally decidable, mirroring the seed broadcast of
      // the deterministic algorithm.
      std::vector<std::vector<Word>> lists(m_count);
      for (MachineId m = 0; m < m_count; ++m) {
        for (VertexId v : dg.owned(m)) {
          if (sampled[v]) lists[m].push_back(v);
        }
      }
      sim.round([&](mpc::Machine& machine, const mpc::Inbox&) {
        const MachineId src = machine.id();
        if (lists[src].empty()) return;
        for (MachineId dst = 0; dst < m_count; ++dst) {
          if (dst != src) machine.send(dst, 0x80, lists[src]);
        }
      });
      sim.drain([](mpc::Machine&, const mpc::Inbox&) {});
      for (VertexId v = 0; v < n; ++v) {
        if (sampled[v]) sample.push_back(v);
      }
      // Owners count sampled-sampled edges (2-round allreduce) to check
      // the budget before gathering.
      std::vector<std::uint64_t> local_edges(m_count, 0);
      for (MachineId m = 0; m < m_count; ++m) {
        for (VertexId u : dg.owned(m)) {
          if (!sampled[u]) continue;
          for (VertexId w : dg.neighbors(u)) {
            if (u < w && sampled[w] && dg.active(w)) ++local_edges[m];
          }
        }
      }
      const std::uint64_t sampled_edges =
          allreduce_sum_u64(sim, local_edges);
      if (2 * sampled_edges + 2 * sample.size() <= budget) break;
      RSETS_WARN << "sample_gather: resampling, " << sampled_edges
                 << " sampled edges exceed budget " << budget;
      sample.clear();
    }
    if (sample.empty()) {
      // Nothing sampled (tiny p or repeated bad luck): spend another phase.
      continue;
    }

    const auto mis = gather_and_mis(sim, dg, sample, sampled);
    ruling.insert(ruling.end(), mis.begin(), mis.end());
    remove_ball(sim, dg, sampled, 1);
  }

  std::sort(ruling.begin(), ruling.end());
  sim.sync_metrics();
  result.metrics = sim.metrics();
  RSETS_INFO << "sample_gather: n=" << n << " |R|=" << ruling.size()
             << " phases=" << result.phases
             << " rounds=" << result.metrics.rounds;
  return result;
}

}  // namespace rsets
