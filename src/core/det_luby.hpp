// Derandomized Luby MIS in MPC — the deterministic O(log n)-round baseline
// that the paper's algorithm improves upon.
//
// Each iteration derandomizes one Luby step with the same machinery as the
// ruling-set algorithm (pairwise-independent marking family + distributed
// conditional expectations), but with *per-vertex* marking probabilities
// p_v = 2^-k_v in (1/(4 deg v), 1/(2 deg v)] realized as per-vertex
// truncation depths of one shared seed. The pessimistic estimator is
//
//   Psi = sum_v w_v * ( P(M_v) - sum_{u in N(v), u > v} P(M_u AND M_v) )
//
// with priority order (higher active degree, then lower id) and weights
// w_v = deg(v) + 1. E[Psi] > 0 whenever any active vertex remains, and a
// realized Psi > 0 guarantees at least one vertex joins the MIS each
// iteration, so termination is deterministic. Empirically the iteration
// count tracks Luby's O(log n).
#pragma once

#include "core/ruling_set.hpp"

namespace rsets::mpc {
class DistGraph;
class Simulator;
}  // namespace rsets::mpc

namespace rsets {

struct DetLubyOptions {
  int chunk_bits = 4;
};

RulingSetResult det_luby_mis_mpc(const Graph& g, const mpc::MpcConfig& cfg,
                                 const DetLubyOptions& options = {});

// Same algorithm on an already-loaded distributed graph (sharded ingestion
// path); the materialized overload wraps this one.
RulingSetResult det_luby_mis_mpc(mpc::Simulator& sim, mpc::DistGraph& dg,
                                 const DetLubyOptions& options = {});

}  // namespace rsets
