#include "core/replay.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/fnv.hpp"

namespace rsets {
namespace {

void append_json_str(std::ostream& out, const char* key,
                     const std::string& value) {
  out << "\"" << key << "\":\"" << value << "\"";
}

// Minimal extraction from the flat JSON the recorder writes: values are
// unescaped strings or plain numbers, keys are unique. Not a JSON parser.
std::string json_value(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) {
    throw std::invalid_argument("replay log: meta line lacks key '" + key +
                                "'");
  }
  std::size_t v = at + needle.size();
  if (v < line.size() && line[v] == '"') {
    const std::size_t end = line.find('"', v + 1);
    if (end == std::string::npos) {
      throw std::invalid_argument("replay log: unterminated string for '" +
                                  key + "'");
    }
    return line.substr(v + 1, end - v - 1);
  }
  std::size_t end = v;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(v, end - v);
}

std::uint64_t json_u64(const std::string& line, const std::string& key) {
  const std::string value = json_value(line, key);
  try {
    std::size_t consumed = 0;
    const std::uint64_t v = std::stoull(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("replay log: key '" + key +
                                "' has non-numeric value '" + value + "'");
  }
}

double json_double(const std::string& line, const std::string& key) {
  const std::string value = json_value(line, key);
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("replay log: key '" + key +
                                "' has non-numeric value '" + value + "'");
  }
}

}  // namespace

std::string spec_to_json(const RunSpec& spec) {
  std::ostringstream out;
  out << "{";
  append_json_str(out, "format", kReplayFormat);
  out << ",";
  append_json_str(out, "algorithm", spec.algorithm);
  out << ",\"beta\":" << spec.beta << ",";
  append_json_str(out, "input", spec.input);
  out << ",";
  append_json_str(out, "gen", spec.gen);
  char avg_deg[64];
  std::snprintf(avg_deg, sizeof(avg_deg), "%.17g", spec.avg_deg);
  out << ",\"n\":" << spec.n << ",\"avg_deg\":" << avg_deg
      << ",\"seed\":" << spec.seed << ",\"machines\":" << spec.machines
      << ",\"memory_words\":" << spec.memory_words
      << ",\"threads\":" << spec.threads << ",\"budget\":" << spec.budget
      << ",";
  append_json_str(out, "faults", spec.faults);
  out << ",\"checkpoint_every\":" << spec.checkpoint_every << ",";
  append_json_str(out, "budget_policy", spec.budget_policy);
  out << ",\"deadline\":" << spec.deadline
      << ",\"integrity\":" << (spec.integrity ? 1 : 0) << "}";
  return out.str();
}

RunSpec spec_from_json(const std::string& line) {
  if (const std::string format = json_value(line, "format");
      format != kReplayFormat) {
    throw std::invalid_argument("replay log: format is '" + format +
                                "', this build replays " +
                                std::string(kReplayFormat) + " only");
  }
  RunSpec spec;
  spec.algorithm = json_value(line, "algorithm");
  spec.beta = static_cast<std::uint32_t>(json_u64(line, "beta"));
  spec.input = json_value(line, "input");
  spec.gen = json_value(line, "gen");
  spec.n = json_u64(line, "n");
  spec.avg_deg = json_double(line, "avg_deg");
  spec.seed = json_u64(line, "seed");
  spec.machines = static_cast<std::uint32_t>(json_u64(line, "machines"));
  spec.memory_words = json_u64(line, "memory_words");
  spec.threads = static_cast<std::uint32_t>(json_u64(line, "threads"));
  spec.budget = json_u64(line, "budget");
  spec.faults = json_value(line, "faults");
  spec.checkpoint_every = json_u64(line, "checkpoint_every");
  spec.budget_policy = json_value(line, "budget_policy");
  mpc::parse_budget_policy(spec.budget_policy);  // validate before running
  spec.deadline = json_u64(line, "deadline");
  spec.integrity = json_u64(line, "integrity") != 0;
  return spec;
}

Graph build_graph(const RunSpec& spec) {
  if (!spec.input.empty()) {
    return read_edge_list_file(spec.input);
  }
  const auto n = static_cast<VertexId>(spec.n);
  if (spec.gen == "gnp") return gen::gnp(n, spec.avg_deg / n, spec.seed);
  if (spec.gen == "gnm") {
    return gen::gnm(n, static_cast<std::uint64_t>(spec.avg_deg * n / 2),
                    spec.seed);
  }
  if (spec.gen == "power_law") {
    return gen::power_law(n, 2.5, spec.avg_deg, spec.seed);
  }
  if (spec.gen == "regular") {
    auto d = static_cast<std::uint32_t>(spec.avg_deg);
    if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ++d;
    return gen::random_regular(n, d, spec.seed);
  }
  if (spec.gen == "ba") {
    return gen::barabasi_albert(
        n,
        std::max<std::uint32_t>(1,
                                static_cast<std::uint32_t>(spec.avg_deg / 2)),
        spec.seed);
  }
  if (spec.gen == "tree") return gen::random_tree(n, spec.seed);
  if (spec.gen == "grid") {
    const auto side = static_cast<std::uint32_t>(std::sqrt(n));
    return gen::grid(side, side);
  }
  throw std::invalid_argument("unknown generator: " + spec.gen);
}

RulingSetOptions options_from_spec(const RunSpec& spec) {
  const auto algorithm = algorithm_from_name(spec.algorithm);
  if (!algorithm) {
    throw std::invalid_argument("unknown algorithm: " + spec.algorithm);
  }
  RulingSetOptions options;
  options.algorithm = *algorithm;
  options.beta = spec.beta;
  options.mpc.num_machines = spec.machines;
  options.mpc.memory_words = static_cast<std::size_t>(spec.memory_words);
  options.mpc.seed = spec.seed;
  options.mpc.num_threads = spec.threads;
  options.mpc.faults = mpc::parse_fault_spec(spec.faults);
  options.mpc.checkpoint_every = spec.checkpoint_every;
  options.mpc.budget_policy = mpc::parse_budget_policy(spec.budget_policy);
  options.mpc.round_deadline = spec.deadline;
  options.mpc.integrity = spec.integrity;
  options.congest.seed = spec.seed;
  options.gather_budget_words = spec.budget;
  return options;
}

std::uint64_t ruling_set_hash(const std::vector<VertexId>& set) {
  std::uint64_t h = kFnvOffsetBasis;
  for (VertexId v : set) {
    h = fnv1a_word(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

std::string summary_json(const RulingSetResult& result) {
  const mpc::MpcMetrics& m = result.metrics;
  std::ostringstream out;
  out << "{\"summary\":1,\"size\":" << result.ruling_set.size()
      << ",\"phases\":" << result.phases << ",\"rounds\":" << m.rounds
      << ",\"messages\":" << m.messages << ",\"total_words\":" << m.total_words
      << ",\"max_send_words\":" << m.max_send_words
      << ",\"max_recv_words\":" << m.max_recv_words
      << ",\"max_storage_words\":" << m.max_storage_words
      << ",\"violations\":" << m.violations
      << ",\"random_words\":" << m.random_words
      << ",\"faults_injected\":" << m.faults_injected
      << ",\"checkpoints\":" << m.checkpoints
      << ",\"recovery_rounds\":" << m.recovery_rounds
      << ",\"degraded_subrounds\":" << m.degraded_subrounds
      << ",\"deadline_misses\":" << m.deadline_misses
      << ",\"speculative_rounds\":" << m.speculative_rounds
      << ",\"corrupt_detected\":" << m.corrupt_detected
      << ",\"integrity_retries\":" << m.integrity_retries
      << ",\"quarantined_rounds\":" << m.quarantined_rounds
      << ",\"set_hash\":" << ruling_set_hash(result.ruling_set) << "}";
  return out.str();
}

std::string record_line(const mpc::RoundTrace& trace) {
  // Wall time is the only nondeterministic trace field; zero it so recorded
  // lines are byte-reproducible.
  mpc::RoundTrace stable = trace;
  stable.wall_ms = 0.0;
  return mpc::to_json(stable);
}

std::vector<std::string> record_run(const RunSpec& spec,
                                    RulingSetResult* result_out) {
  const Graph g = build_graph(spec);
  RulingSetOptions options = options_from_spec(spec);
  std::vector<std::string> lines;
  lines.push_back(spec_to_json(spec));
  options.mpc.trace_hook = [&lines](const mpc::RoundTrace& trace) {
    lines.push_back(record_line(trace));
  };
  RulingSetResult result = compute_ruling_set(g, options);
  lines.push_back(summary_json(result));
  if (result_out != nullptr) *result_out = std::move(result);
  return lines;
}

ReplayReport replay_log(const std::vector<std::string>& lines) {
  if (lines.size() < 2) {
    throw std::invalid_argument(
        "replay log: need at least a meta and a summary line");
  }
  ReplayReport report;
  report.spec = spec_from_json(lines.front());
  const Graph g = build_graph(report.spec);
  RulingSetOptions options = options_from_spec(report.spec);

  // Recorded phase lines sit between the meta line and the summary line.
  const std::size_t num_recorded = lines.size() - 2;
  std::size_t emitted = 0;
  options.mpc.trace_hook = [&](const mpc::RoundTrace& trace) {
    const std::string got = record_line(trace);
    if (emitted >= num_recorded) {
      ++report.mismatches;
      if (report.first_mismatch.empty()) {
        report.first_mismatch = "extra phase beyond recorded log: " + got;
      }
    } else if (got != lines[1 + emitted]) {
      ++report.mismatches;
      if (report.first_mismatch.empty()) {
        report.first_mismatch = "line " + std::to_string(2 + emitted) +
                                "\n  recorded: " + lines[1 + emitted] +
                                "\n  replayed: " + got;
      }
    }
    ++emitted;
  };

  report.result = compute_ruling_set(g, options);
  report.phases_checked = emitted;
  if (emitted < num_recorded) {
    ++report.mismatches;
    if (report.first_mismatch.empty()) {
      report.first_mismatch = "replay produced " + std::to_string(emitted) +
                              " phases, log has " +
                              std::to_string(num_recorded);
    }
  }
  const std::string summary = summary_json(report.result);
  if (summary != lines.back()) {
    ++report.mismatches;
    if (report.first_mismatch.empty()) {
      report.first_mismatch = "summary\n  recorded: " + lines.back() +
                              "\n  replayed: " + summary;
    }
  }
  return report;
}

}  // namespace rsets
