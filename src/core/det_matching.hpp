// Deterministic maximal matching in MPC — an extension demonstrating that
// the paper's derandomization machinery is not ruling-set-specific.
//
// Maximal matching is the edge-world sibling of MIS: the same Luby-style
// step (mark edges with probability ~1/(2 * edge-degree), locally minimal
// marked edges join) derandomizes with the same pairwise-independent
// marking family and conditional-expectations engine, using the estimator
//
//   Psi = sum_e w_e * ( P(M_e) - sum_{f ~ e, f > e} P(M_f AND M_e) )
//
// over edge ids, where f ~ e means sharing an endpoint and the priority
// order is (higher edge degree, then lower edge id). E[Psi] > 0 whenever an
// active edge remains, and realized Psi > 0 guarantees at least one edge
// joins per iteration, so termination is deterministic; empirically the
// iteration count tracks O(log n).
//
// Output invariants (tested): a matching (no two chosen edges share an
// endpoint) that is maximal (every edge has a matched endpoint), produced
// with zero random bits.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/message.hpp"

namespace rsets {

struct DetMatchingOptions {
  int chunk_bits = 4;
};

struct DetMatchingResult {
  std::vector<Edge> matching;  // canonical u < v, sorted
  std::uint64_t iterations = 0;
  std::uint64_t derand_chunks = 0;
  mpc::MpcMetrics metrics;
};

DetMatchingResult det_matching_mpc(const Graph& g, const mpc::MpcConfig& cfg,
                                   const DetMatchingOptions& options = {});

// Independent checkers (shared with tests; no algorithm code reused).
bool is_matching(const Graph& g, const std::vector<Edge>& matching);
bool is_maximal_matching(const Graph& g, const std::vector<Edge>& matching);

}  // namespace rsets
