#include "core/derand.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mpc/primitives.hpp"
#include "util/logging.hpp"

namespace rsets {
namespace {

using mpc::MachineId;

// Estimator shard held by one machine: the targets it owns (with truncated
// candidate neighborhoods) and the candidate edges it owns. Lists shrink to
// level survivors as seed levels are finalized.
struct Shard {
  std::vector<std::vector<VertexId>> target_lists;
  std::vector<Edge> edges;
};

// Factors applied to not-yet-reached levels (> current): each contributes
// 1/2 to a marginal and 1/4 to a pairwise joint.
struct FutureFactors {
  double single;
  double pair;
};

// Partial estimator sums over one shard under the given tentative state of
// the current level. Levels below `level` are already folded in (survivor
// lists), levels above contribute the future factors.
std::pair<double, double> shard_partial(const Shard& shard,
                                        const PairwiseBitLevel& level,
                                        const FutureFactors& f) {
  double cover = 0.0;
  for (const auto& t_list : shard.target_lists) {
    double singles = 0.0;
    double pairs = 0.0;
    for (std::size_t i = 0; i < t_list.size(); ++i) {
      singles += level.prob_one(t_list[i]);
      for (std::size_t j = i + 1; j < t_list.size(); ++j) {
        pairs += level.prob_both_one(t_list[i], t_list[j]);
      }
    }
    cover += singles * f.single - pairs * f.pair;
  }
  double edge_mass = 0.0;
  for (const Edge& e : shard.edges) {
    edge_mass += level.prob_both_one(e.u, e.v) * f.pair;
  }
  return {cover, edge_mass};
}

void filter_survivors(Shard& shard, const PairwiseBitLevel& level) {
  for (auto& t_list : shard.target_lists) {
    std::erase_if(t_list, [&](VertexId u) { return level.eval(u) == 0; });
  }
  std::erase_if(shard.edges, [&](const Edge& e) {
    return level.eval(e.u) == 0 || level.eval(e.v) == 0;
  });
}

std::vector<int> unfixed_bits(const PairwiseBitLevel& level) {
  std::vector<int> out;
  for (int i = 0; i <= level.bits(); ++i) {
    if (!level.bit_fixed(i)) out.push_back(i);
  }
  return out;
}

}  // namespace

DerandMarkResult derand_mark(mpc::Simulator& sim, const mpc::DistGraph& dg,
                             const std::vector<bool>& candidates_mask,
                             const std::vector<VertexId>& targets,
                             const DerandMarkOptions& options) {
  if (options.levels < 1) {
    throw std::invalid_argument("derand_mark: levels must be >= 1");
  }
  if (options.chunk_bits < 1 || options.chunk_bits > 12) {
    throw std::invalid_argument("derand_mark: chunk_bits must be in [1, 12]");
  }
  if (options.edge_budget == 0) {
    throw std::invalid_argument("derand_mark: edge_budget must be positive");
  }
  const VertexId n = dg.num_vertices();
  const int k = options.levels;
  const std::size_t trunc = std::size_t{1} << std::min(k, 20);
  const MachineId m_count = sim.num_machines();

  auto is_candidate = [&](VertexId v) {
    return v < candidates_mask.size() && candidates_mask[v] && dg.active(v);
  };

  // --- build shards (local work at each owner) -----------------------------
  std::vector<Shard> shards(m_count);
  for (VertexId v : targets) {
    std::vector<VertexId> t_list;
    if (is_candidate(v)) t_list.push_back(v);
    for (VertexId u : dg.neighbors(v)) {
      if (t_list.size() >= trunc) break;
      if (is_candidate(u)) t_list.push_back(u);
    }
    shards[dg.owner(v)].target_lists.push_back(std::move(t_list));
  }
  for (MachineId m = 0; m < m_count; ++m) {
    for (VertexId u : dg.owned(m)) {
      if (!is_candidate(u)) continue;
      for (VertexId w : dg.neighbors(u)) {
        if (u < w && is_candidate(w)) shards[m].edges.push_back({u, w});
      }
    }
  }

  const double lambda =
      8.0 * std::max<double>(1.0, static_cast<double>(targets.size()));
  const double budget = static_cast<double>(options.edge_budget);

  MarkingFamily family(std::max<std::uint64_t>(n, 2), k);
  DerandMarkResult result;
  result.seed_bits = family.total_seed_bits();

  const std::uint64_t rounds_before = sim.metrics().rounds;

  auto evaluate_phi = [&](int level_idx, const PairwiseBitLevel& level)
      -> std::pair<double, double> {
    const int remaining = k - 1 - level_idx;
    const FutureFactors f{std::exp2(-remaining), std::exp2(-2 * remaining)};
    double cover = 0.0;
    double edge_mass = 0.0;
    for (MachineId m = 0; m < m_count; ++m) {
      const auto [c, x] = shard_partial(shards[m], level, f);
      cover += c;
      edge_mass += x;
    }
    return {cover, edge_mass};
  };

  {
    const auto [cover, edge_mass] = evaluate_phi(0, family.level(0));
    result.initial_estimate = cover - lambda * edge_mass / budget;
  }

  // --- chunked conditional expectations ------------------------------------
  for (int j = 0; j < k; ++j) {
    PairwiseBitLevel& level = family.level(j);
    while (!level.fully_fixed()) {
      std::vector<int> todo = unfixed_bits(level);
      const int take =
          std::min<int>(options.chunk_bits, static_cast<int>(todo.size()));
      todo.resize(static_cast<std::size_t>(take));
      const std::uint32_t assignments = 1u << take;

      // Each machine evaluates its shard for every assignment inside the
      // gather round's callback (parallel across machines when the simulator
      // runs threaded); the partials are summed with one width-2*2^c
      // allreduce (2 real MPC rounds). Each callback works on a private
      // tentative copy of the level, so `level` itself is only read.
      const int remaining = k - 1 - j;
      const FutureFactors f{std::exp2(-remaining),
                            std::exp2(-2 * remaining)};
      const std::vector<double> totals = mpc::allreduce_sum_compute(
          sim, 2 * static_cast<std::size_t>(assignments),
          [&](MachineId m) {
            std::vector<double> partials(2 * assignments, 0.0);
            for (std::uint32_t a = 0; a < assignments; ++a) {
              PairwiseBitLevel tentative = level;
              for (int b = 0; b < take; ++b) {
                tentative.fix_bit(todo[static_cast<std::size_t>(b)],
                                  (a >> b) & 1u);
              }
              const auto [c, x] = shard_partial(shards[m], tentative, f);
              partials[2 * a] = c;
              partials[2 * a + 1] = x;
            }
            return partials;
          });

      double best_phi = 0.0;
      std::uint32_t best_a = 0;
      bool have_best = false;
      for (std::uint32_t a = 0; a < assignments; ++a) {
        const double phi =
            totals[2 * a] - lambda * totals[2 * a + 1] / budget;
        if (!have_best || phi > best_phi) {
          have_best = true;
          best_phi = phi;
          best_a = a;
        }
      }
      for (int b = 0; b < take; ++b) {
        level.fix_bit(todo[static_cast<std::size_t>(b)], (best_a >> b) & 1u);
      }
      ++result.chunks;
    }
    // Level finalized: every machine filters its shard locally (free).
    for (Shard& shard : shards) filter_survivors(shard, level);
  }

  // --- realized outcome (all quantities now deterministic) -----------------
  {
    double cover = 0.0;
    std::uint64_t covered = 0;
    std::uint64_t edges = 0;
    for (const Shard& shard : shards) {
      for (const auto& t_list : shard.target_lists) {
        const double y = static_cast<double>(t_list.size());
        cover += y - y * (y - 1) / 2.0;
        if (!t_list.empty()) ++covered;
      }
      edges += shard.edges.size();
    }
    result.covered_targets = covered;
    result.marked_edges = edges;
    result.final_estimate =
        cover - lambda * static_cast<double>(edges) / budget;
  }

  for (VertexId v = 0; v < n; ++v) {
    if (is_candidate(v) && family.mark(v)) result.marked.push_back(v);
  }

  result.rounds = sim.metrics().rounds - rounds_before;
  RSETS_DEBUG << "derand_mark: |T|=" << targets.size() << " k=" << k
              << " covered=" << result.covered_targets
              << " |M|=" << result.marked.size()
              << " edges(M)=" << result.marked_edges << "/"
              << options.edge_budget << " Phi " << result.initial_estimate
              << " -> " << result.final_estimate;
  return result;
}

}  // namespace rsets
