#include "core/det_matching.hpp"

#include <algorithm>
#include <stdexcept>

#include "mpc/dist_graph.hpp"
#include "mpc/primitives.hpp"
#include "util/bits.hpp"
#include "util/cond_expect.hpp"
#include "util/hash_family.hpp"
#include "util/logging.hpp"

namespace rsets {
namespace {

using mpc::MachineId;
using mpc::Word;

// Priority: higher edge degree wins; ties go to the lower edge id.
bool beats(std::uint32_t deg_f, std::uint32_t f, std::uint32_t deg_e,
           std::uint32_t e) {
  if (deg_f != deg_e) return deg_f > deg_e;
  return f < e;
}

}  // namespace

bool is_matching(const Graph& g, const std::vector<Edge>& matching) {
  std::vector<bool> used(g.num_vertices(), false);
  for (const Edge& e : matching) {
    if (e.u >= g.num_vertices() || e.v >= g.num_vertices()) return false;
    if (!g.has_edge(e.u, e.v)) return false;
    if (used[e.u] || used[e.v]) return false;
    used[e.u] = true;
    used[e.v] = true;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const std::vector<Edge>& matching) {
  if (!is_matching(g, matching)) return false;
  std::vector<bool> used(g.num_vertices(), false);
  for (const Edge& e : matching) {
    used[e.u] = true;
    used[e.v] = true;
  }
  for (const Edge& e : g.edges()) {
    if (!used[e.u] && !used[e.v]) return false;  // augmentable edge
  }
  return true;
}

DetMatchingResult det_matching_mpc(const Graph& g, const mpc::MpcConfig& cfg,
                                   const DetMatchingOptions& options) {
  if (options.chunk_bits < 1 || options.chunk_bits > 12) {
    throw std::invalid_argument("det_matching: chunk_bits must be in [1,12]");
  }
  mpc::Simulator sim(cfg);
  mpc::DistGraph dg(sim, g);
  const MachineId m_count = sim.num_machines();

  // Canonical edge ids: position in the sorted (u < v) edge list. An edge
  // is owned by owner(u) — the machine that stores u's adjacency row.
  const std::vector<Edge> edges = g.edges();
  const auto num_edges = static_cast<std::uint32_t>(edges.size());
  // Storage for edge-id bookkeeping at owners (already covered by the
  // adjacency charge shape-wise; charge the id words explicitly).
  for (MachineId m = 0; m < m_count; ++m) {
    std::size_t words = 0;
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      if (dg.owner(edges[e].u) == m) ++words;
    }
    sim.machine(m).charge_storage(words);
  }

  std::vector<bool> vertex_matched(g.num_vertices(), false);
  std::vector<bool> edge_active(num_edges, true);
  DetMatchingResult result;

  // Per-vertex incident edge ids, for edge-degree and adjacency scans.
  std::vector<std::vector<std::uint32_t>> incident(g.num_vertices());
  for (std::uint32_t e = 0; e < num_edges; ++e) {
    incident[edges[e].u].push_back(e);
    incident[edges[e].v].push_back(e);
  }

  std::vector<std::uint32_t> edge_deg(num_edges, 0);

  // Checkpointable driver state: everything that survives across rounds.
  sim.register_snapshotable("dist_graph", &dg);
  auto driver_state =
      mpc::snapshot_of(result.matching, result.iterations,
                       result.derand_chunks, vertex_matched, edge_active);
  sim.register_snapshotable("det_matching", &driver_state);

  std::uint64_t active_edges = num_edges;
  while (active_edges > 0) {
    ++result.iterations;
    // Edge degrees: active edges sharing an endpoint. Owners compute these
    // after a degree exchange mirroring det_luby's (1 round; each owner
    // ships its endpoints' active incident counts to the co-owner).
    std::vector<std::uint32_t> active_at(g.num_vertices(), 0);
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      if (!edge_active[e]) continue;
      ++active_at[edges[e].u];
      ++active_at[edges[e].v];
    }
    std::uint32_t max_deg = 1;
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      if (!edge_active[e]) continue;
      edge_deg[e] = active_at[edges[e].u] + active_at[edges[e].v] - 2;
      max_deg = std::max(max_deg, std::max(edge_deg[e], 1u));
    }
    sim.round([&](mpc::Machine& machine, const mpc::Inbox&) {
      const MachineId m = machine.id();
      std::vector<std::vector<Word>> buckets(m_count);
      for (std::uint32_t e = 0; e < num_edges; ++e) {
        if (!edge_active[e] || dg.owner(edges[e].u) != m) continue;
        const MachineId other = dg.owner(edges[e].v);
        if (other != m) {
          buckets[other].push_back(e);
          buckets[other].push_back(edge_deg[e]);
        }
      }
      for (MachineId dst = 0; dst < m_count; ++dst) {
        if (dst != m && !buckets[dst].empty()) {
          machine.send(dst, 0xA5, buckets[dst]);
        }
      }
    });
    sim.drain([](mpc::Machine&, const mpc::Inbox&) {});

    auto depth_of = [&](std::uint32_t e) {
      return ceil_log2(2ull * std::max<std::uint32_t>(edge_deg[e], 1));
    };
    const int k_max = std::max(ceil_log2(2ull * max_deg), 1);
    MarkingFamily family(std::max<std::uint32_t>(num_edges, 2), k_max);

    // Estimator shards by owner: singleton per active edge; pair terms per
    // adjacent active edge pair (f beats e), assigned to e's owner.
    struct PairTerm {
      std::uint32_t e;
      std::uint32_t f;
      int de;
      int df;
    };
    std::vector<std::vector<std::uint32_t>> singles(m_count);
    std::vector<std::vector<PairTerm>> pairs(m_count);
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      if (!edge_active[e]) continue;
      const MachineId m = dg.owner(edges[e].u);
      singles[m].push_back(e);
      for (VertexId endpoint : {edges[e].u, edges[e].v}) {
        for (std::uint32_t f : incident[endpoint]) {
          if (f == e || !edge_active[f]) continue;
          if (beats(edge_deg[f], f, edge_deg[e], e)) {
            pairs[m].push_back({e, f, depth_of(e), depth_of(f)});
          }
        }
      }
    }

    // Chunked conditional expectations (same allreduce structure as the
    // ruling-set marking step).
    const int total_bits = family.total_seed_bits();
    int global_bit = 0;
    while (global_bit < total_bits) {
      const int lvl = family.locate(global_bit).first;
      std::vector<int> todo;
      for (int b = global_bit;
           b < total_bits && family.locate(b).first == lvl &&
           static_cast<int>(todo.size()) < options.chunk_bits;
           ++b) {
        todo.push_back(b);
      }
      const std::uint32_t assignments = 1u << todo.size();
      // Shard evaluation runs inside the gather round's callback (parallel
      // across machines when the simulator runs threaded); each callback
      // fixes the chunk on a private copy of the family.
      const auto totals = mpc::allreduce_sum_compute(
          sim, assignments, [&](MachineId m) {
            MarkingFamily local = family;
            const PairwiseBitLevel saved = local.level(lvl);
            std::vector<double> partials(assignments, 0.0);
            for (std::uint32_t a = 0; a < assignments; ++a) {
              for (std::size_t b = 0; b < todo.size(); ++b) {
                local.fix_global_bit(todo[b], (a >> b) & 1u);
              }
              double psi = 0.0;
              for (std::uint32_t e : singles[m]) {
                const double w = static_cast<double>(edge_deg[e]) + 1.0;
                psi += w * local.prob_mark(e, depth_of(e));
              }
              for (const PairTerm& t : pairs[m]) {
                const double w = static_cast<double>(edge_deg[t.e]) + 1.0;
                psi -= w * local.prob_mark_both(t.f, t.df, t.e, t.de);
              }
              partials[a] = psi;
              local.level(lvl) = saved;
            }
            return partials;
          });
      std::uint32_t best_a = 0;
      double best = 0.0;
      bool have = false;
      for (std::uint32_t a = 0; a < assignments; ++a) {
        if (!have || totals[a] > best) {
          have = true;
          best = totals[a];
          best_a = a;
        }
      }
      for (std::size_t b = 0; b < todo.size(); ++b) {
        family.fix_global_bit(todo[b], (best_a >> b) & 1u);
      }
      ++result.derand_chunks;
      global_bit += static_cast<int>(todo.size());
    }

    // Winners: marked edges with no marked beating adjacent edge; locally
    // evaluable from the shared seed + exchanged degrees.
    std::vector<std::uint32_t> winners;
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      if (!edge_active[e] || !family.mark_depth(e, depth_of(e))) continue;
      bool blocked = false;
      for (VertexId endpoint : {edges[e].u, edges[e].v}) {
        for (std::uint32_t f : incident[endpoint]) {
          if (f == e || !edge_active[f]) continue;
          if (beats(edge_deg[f], f, edge_deg[e], e) &&
              family.mark_depth(f, depth_of(f))) {
            blocked = true;
            break;
          }
        }
        if (blocked) break;
      }
      if (!blocked) winners.push_back(e);
    }
    // Guard against an estimator bug: Psi_final > 0 forces a winner
    // whenever an active edge remains.
    if (winners.empty()) {
      throw std::logic_error("det_matching: no winner in an iteration");
    }

    // Announce winners (1 round) so all owners retire touched edges.
    std::vector<std::vector<Word>> lists(m_count);
    for (std::uint32_t e : winners) {
      lists[dg.owner(edges[e].u)].push_back(e);
    }
    sim.round([&](mpc::Machine& machine, const mpc::Inbox&) {
      const MachineId src = machine.id();
      if (lists[src].empty()) return;
      for (MachineId dst = 0; dst < m_count; ++dst) {
        if (dst != src) machine.send(dst, 0xA6, lists[src]);
      }
    });
    sim.drain([](mpc::Machine&, const mpc::Inbox&) {});

    for (std::uint32_t e : winners) {
      result.matching.push_back(edges[e]);
      vertex_matched[edges[e].u] = true;
      vertex_matched[edges[e].v] = true;
    }
    active_edges = 0;
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      if (!edge_active[e]) continue;
      if (vertex_matched[edges[e].u] || vertex_matched[edges[e].v]) {
        edge_active[e] = false;
      } else {
        ++active_edges;
      }
    }
  }

  std::sort(result.matching.begin(), result.matching.end(),
            [](const Edge& a, const Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  sim.sync_metrics();
  result.metrics = sim.metrics();
  RSETS_INFO << "det_matching: m=" << num_edges
             << " |M|=" << result.matching.size()
             << " iterations=" << result.iterations
             << " rounds=" << result.metrics.rounds
             << " random_words=" << result.metrics.random_words;
  return result;
}

}  // namespace rsets
