#include "core/phase_common.hpp"

#include <algorithm>

#include "core/greedy.hpp"
#include "graph/ops.hpp"
#include "mpc/primitives.hpp"

namespace rsets::detail {

using mpc::MachineId;
using mpc::Simulator;
using mpc::Word;

// Total active edges (2 rounds: one u64 allreduce).
std::uint64_t count_active_edges(Simulator& sim, const mpc::DistGraph& dg) {
  std::vector<std::uint64_t> local(sim.num_machines(), 0);
  for (MachineId m = 0; m < sim.num_machines(); ++m) {
    for (VertexId v : dg.owned(m)) {
      if (dg.active(v)) local[m] += dg.active_degree(v);
    }
  }
  return allreduce_sum_u64(sim, local) / 2;
}

// Gathers the active induced subgraph restricted to `members` onto machine
// 0 (1 round), computes a greedy MIS there, and broadcasts it (1 round).
// `in_members` must be consistent with `members`.
std::vector<VertexId> gather_and_mis(Simulator& sim,
                                     const mpc::DistGraph& dg,
                                     const std::vector<VertexId>& members,
                                     const std::vector<std::uint8_t>& in_members) {
  const MachineId m_count = sim.num_machines();
  // Owners serialize their members' member-restricted adjacency:
  // v, deg, neighbors...
  std::vector<std::vector<Word>> contributions(m_count);
  for (VertexId v : members) {
    auto& payload = contributions[dg.owner(v)];
    payload.push_back(v);
    const std::size_t deg_slot = payload.size();
    payload.push_back(0);
    std::uint64_t deg = 0;
    for (VertexId u : dg.neighbors(v)) {
      if (u < v && in_members[u]) {  // each edge shipped once (by higher id)
        payload.push_back(u);
        ++deg;
      }
    }
    payload[deg_slot] = deg;
  }
  const auto at_root = gather_to(sim, 0, contributions, 0xF1);

  // Machine 0: decode, charge transient storage, greedy MIS by id order.
  std::size_t gathered_words = 0;
  std::vector<Edge> edges;
  std::vector<VertexId> nodes;
  for (const auto& payload : at_root) {
    gathered_words += payload.size();
    std::size_t i = 0;
    while (i < payload.size()) {
      const auto v = static_cast<VertexId>(payload[i++]);
      const auto deg = payload[i++];
      nodes.push_back(v);
      for (std::uint64_t d = 0; d < deg; ++d) {
        edges.push_back({static_cast<VertexId>(payload[i++]), v});
      }
    }
  }
  sim.machine(0).charge_storage(gathered_words);

  std::sort(nodes.begin(), nodes.end());
  // Relabel into a compact subgraph for the greedy oracle.
  const InducedSubgraph sub = [&] {
    // Build directly from gathered edges; ids are original, so relabel.
    std::vector<VertexId> relabel_src = nodes;
    std::vector<Edge> relabelled;
    relabelled.reserve(edges.size());
    auto index_of = [&](VertexId v) {
      return static_cast<VertexId>(
          std::lower_bound(relabel_src.begin(), relabel_src.end(), v) -
          relabel_src.begin());
    };
    for (const Edge& e : edges) {
      relabelled.push_back({index_of(e.u), index_of(e.v)});
    }
    InducedSubgraph s;
    s.graph = Graph::from_edges(static_cast<VertexId>(relabel_src.size()),
                                relabelled);
    s.to_original = std::move(relabel_src);
    return s;
  }();

  const std::vector<VertexId> local_mis = greedy_mis(sub.graph);
  std::vector<VertexId> mis;
  mis.reserve(local_mis.size());
  for (VertexId v : local_mis) mis.push_back(sub.to_original[v]);
  sim.machine(0).release_storage(gathered_words);

  // Broadcast the MIS (1 round).
  std::vector<Word> packed(mis.begin(), mis.end());
  broadcast(sim, 0, packed, 0xF2);
  return mis;
}

// Deactivates every active vertex within `radius` hops of the marked set
// `in_marked` (hop 1 is locally decidable because marks are seed-evaluable
// everywhere; further hops cost one notification round each) and then one
// deactivation round. Returns the number of removed vertices.
std::uint64_t remove_ball(Simulator& sim, mpc::DistGraph& dg,
                          const std::vector<std::uint8_t>& in_marked,
                          std::uint32_t radius) {
  const MachineId m_count = sim.num_machines();
  const VertexId n = dg.num_vertices();
  std::vector<std::uint8_t> removed(n, 0);
  std::vector<VertexId> frontier;
  // Hop 0 and 1: local evaluation at each owner.
  for (MachineId m = 0; m < m_count; ++m) {
    for (VertexId v : dg.owned(m)) {
      if (!dg.active(v)) continue;
      bool hit = in_marked[v];
      if (!hit) {
        for (VertexId u : dg.neighbors(v)) {
          if (dg.active(u) && in_marked[u]) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        removed[v] = true;
        frontier.push_back(v);
      }
    }
  }
  // Hops 2..radius: frontier owners notify neighbors' owners (1 round/hop).
  for (std::uint32_t hop = 2; hop <= radius; ++hop) {
    std::vector<std::vector<std::vector<Word>>> out(
        m_count, std::vector<std::vector<Word>>(m_count));
    for (VertexId v : frontier) {
      for (VertexId u : dg.neighbors(v)) {
        if (dg.active(u) && !removed[u]) {
          out[dg.owner(v)][dg.owner(u)].push_back(u);
        }
      }
    }
    const auto in = all_to_all(sim, out, 0xF3);
    std::vector<VertexId> next;
    for (MachineId m = 0; m < m_count; ++m) {
      for (const auto& payload : in[m]) {
        for (Word w : payload) {
          const auto u = static_cast<VertexId>(w);
          if (!removed[u]) {
            removed[u] = true;
            next.push_back(u);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  // One deactivation round.
  std::vector<std::vector<VertexId>> batches(m_count);
  std::uint64_t count = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (removed[v]) {
      batches[dg.owner(v)].push_back(v);
      ++count;
    }
  }
  dg.deactivate(sim, batches);
  return count;
}

}  // namespace rsets::detail
