#include "core/greedy.hpp"

#include <deque>
#include <limits>
#include <stdexcept>

namespace rsets {

std::vector<VertexId> greedy_mis(const Graph& g) {
  std::vector<VertexId> mis;
  std::vector<bool> blocked(g.num_vertices(), false);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (blocked[v]) continue;
    mis.push_back(v);
    for (VertexId u : g.neighbors(v)) blocked[u] = true;
  }
  return mis;
}

std::vector<VertexId> greedy_ruling_set(const Graph& g, std::uint32_t beta) {
  if (beta == 0) {
    throw std::invalid_argument("greedy_ruling_set: beta must be >= 1");
  }
  if (beta == 1) return greedy_mis(g);
  const VertexId n = g.num_vertices();
  // dist_to_set[v] = hop distance to the nearest chosen member, capped at
  // beta+1 (= "far"). Adding a member relaxes distances by truncated BFS.
  const std::uint32_t kFar = beta + 1;
  std::vector<std::uint32_t> dist_to_set(n, kFar);
  std::vector<VertexId> set;
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (dist_to_set[v] <= beta) continue;
    set.push_back(v);
    dist_to_set[v] = 0;
    queue.push_back(v);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      if (dist_to_set[u] >= beta) continue;
      for (VertexId w : g.neighbors(u)) {
        if (dist_to_set[w] > dist_to_set[u] + 1) {
          dist_to_set[w] = dist_to_set[u] + 1;
          queue.push_back(w);
        }
      }
    }
  }
  return set;
}

std::vector<VertexId> greedy_alpha_beta_ruling_set(const Graph& g,
                                                   std::uint32_t alpha,
                                                   std::uint32_t beta) {
  if (alpha < 1 || beta < 1 || alpha > beta + 1) {
    throw std::invalid_argument(
        "greedy_alpha_beta_ruling_set: need 1 <= alpha <= beta + 1");
  }
  // Greedy by id with distance-to-set tracking capped at alpha-1 for the
  // addability test; a separate cap at beta certifies domination. One
  // array capped at max(alpha - 1, beta) serves both.
  const VertexId n = g.num_vertices();
  const std::uint32_t cap = std::max(alpha - 1, beta);
  const std::uint32_t kFar = cap + 1;
  std::vector<std::uint32_t> dist_to_set(n, kFar);
  std::vector<VertexId> set;
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (dist_to_set[v] <= alpha - 1) continue;  // too close to the set
    set.push_back(v);
    dist_to_set[v] = 0;
    queue.push_back(v);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      if (dist_to_set[u] >= cap) continue;
      for (VertexId w : g.neighbors(u)) {
        if (dist_to_set[w] > dist_to_set[u] + 1) {
          dist_to_set[w] = dist_to_set[u] + 1;
          queue.push_back(w);
        }
      }
    }
  }
  return set;
}

}  // namespace rsets
