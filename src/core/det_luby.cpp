#include "core/det_luby.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mpc/dist_graph.hpp"
#include "mpc/primitives.hpp"
#include "util/bits.hpp"
#include "util/cond_expect.hpp"
#include "util/hash_family.hpp"
#include "util/logging.hpp"

namespace rsets {
namespace {

using mpc::MachineId;
using mpc::Word;

// Priority: higher active degree wins; ties go to the lower id.
bool beats(std::uint32_t deg_u, VertexId u, std::uint32_t deg_v, VertexId v) {
  if (deg_u != deg_v) return deg_u > deg_v;
  return u < v;
}

}  // namespace

RulingSetResult det_luby_mis_mpc(const Graph& g, const mpc::MpcConfig& cfg,
                                 const DetLubyOptions& options) {
  mpc::Simulator sim(cfg);
  mpc::DistGraph dg(sim, g);
  return det_luby_mis_mpc(sim, dg, options);
}

RulingSetResult det_luby_mis_mpc(mpc::Simulator& sim, mpc::DistGraph& dg,
                                 const DetLubyOptions& options) {
  if (options.chunk_bits < 1 || options.chunk_bits > 12) {
    throw std::invalid_argument("det_luby: chunk_bits must be in [1, 12]");
  }
  const VertexId n = dg.num_vertices();
  const MachineId m_count = sim.num_machines();

  RulingSetResult result;
  result.beta = 1;
  std::vector<VertexId>& mis = result.ruling_set;

  std::vector<std::uint32_t> adeg(n, 0);

  // Checkpointable driver state: everything that survives across rounds.
  sim.register_snapshotable("dist_graph", &dg);
  auto driver_state =
      mpc::snapshot_of(result.ruling_set, result.phases, result.mark_steps,
                       result.derand_chunks, adeg);
  sim.register_snapshotable("det_luby", &driver_state);

  while (dg.active_count() > 0) {
    ++result.phases;
    // Degrees: owners compute their own; one all-to-all ships each active
    // vertex's degree to its neighbors' owners (mirrors Luby's priority
    // exchange; 1 round, O(sum active degrees) words).
    std::uint32_t max_deg = 0;
    for (MachineId m = 0; m < m_count; ++m) {
      for (VertexId v : dg.owned(m)) {
        if (!dg.active(v)) continue;
        adeg[v] = dg.active_degree(v);
        max_deg = std::max(max_deg, adeg[v]);
      }
    }
    sim.round([&](mpc::Machine& machine, const mpc::Inbox&) {
      const MachineId m = machine.id();
      std::vector<std::vector<Word>> buckets(m_count);
      for (VertexId v : dg.owned(m)) {
        if (!dg.active(v)) continue;
        for (VertexId u : dg.neighbors(v)) {
          if (dg.active(u)) {
            auto& b = buckets[dg.owner(u)];
            b.push_back(v);
            b.push_back(adeg[v]);
          }
        }
      }
      for (MachineId dst = 0; dst < m_count; ++dst) {
        if (dst != m && !buckets[dst].empty()) {
          machine.send(dst, 0x90, buckets[dst]);
        }
      }
    });
    sim.drain([](mpc::Machine&, const mpc::Inbox&) {});

    // Isolated actives join immediately (no estimator work needed).
    std::vector<bool> joined(n, false);
    bool any_positive_degree = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!dg.active(v)) continue;
      if (adeg[v] == 0) {
        joined[v] = true;
      } else {
        any_positive_degree = true;
      }
    }

    if (any_positive_degree) {
      // Per-vertex truncation depths: p_v = 2^-k_v in
      // (1/(4 deg v), 1/(2 deg v)].
      auto depth_of = [&](VertexId v) {
        return ceil_log2(2ull * std::max<std::uint32_t>(adeg[v], 1));
      };
      const int k_max = ceil_log2(2ull * max_deg);
      MarkingFamily family(std::max<VertexId>(n, 2), std::max(k_max, 1));

      // Estimator terms, sharded by owner: singleton (v, w_v, k_v) and pair
      // (v, u, w_v, k_v, k_u) for u in N(v) with u beating v.
      struct Singleton {
        VertexId v;
        double w;
        int depth;
      };
      struct PairTerm {
        VertexId v;
        VertexId u;
        double w;
        int dv;
        int du;
      };
      std::vector<std::vector<Singleton>> singles(m_count);
      std::vector<std::vector<PairTerm>> pairs(m_count);
      for (MachineId m = 0; m < m_count; ++m) {
        for (VertexId v : dg.owned(m)) {
          if (!dg.active(v) || adeg[v] == 0) continue;
          const double w = static_cast<double>(adeg[v]) + 1.0;
          singles[m].push_back({v, w, depth_of(v)});
          for (VertexId u : dg.neighbors(v)) {
            if (dg.active(u) && beats(adeg[u], u, adeg[v], v)) {
              pairs[m].push_back({v, u, w, depth_of(v), depth_of(u)});
            }
          }
        }
      }

      // Chunked conditional expectations: identical structure to
      // derand_mark but with depth-aware terms.
      const int total_bits = family.total_seed_bits();
      int global_bit = 0;
      while (global_bit < total_bits) {
        const auto [lvl, idx0] = family.locate(global_bit);
        (void)idx0;
        // Bits of the current level not yet fixed, chunked.
        std::vector<int> todo;
        for (int b = global_bit;
             b < total_bits && family.locate(b).first == lvl &&
             static_cast<int>(todo.size()) < options.chunk_bits;
             ++b) {
          todo.push_back(b);
        }
        const std::uint32_t assignments = 1u << todo.size();
        // Each machine evaluates its shard for every tentative chunk fixing
        // inside the gather round's callback (parallel across machines when
        // the simulator runs threaded). Callbacks work on private copies of
        // the family; the shared `family` is only read.
        const auto totals = mpc::allreduce_sum_compute(
            sim, assignments, [&](MachineId m) {
              MarkingFamily local = family;
              const PairwiseBitLevel saved = local.level(lvl);
              std::vector<double> partials(assignments, 0.0);
              for (std::uint32_t a = 0; a < assignments; ++a) {
                for (std::size_t b = 0; b < todo.size(); ++b) {
                  local.fix_global_bit(todo[b], (a >> b) & 1u);
                }
                double psi = 0.0;
                for (const Singleton& s : singles[m]) {
                  psi += s.w * local.prob_mark(s.v, s.depth);
                }
                for (const PairTerm& t : pairs[m]) {
                  psi -= t.w * local.prob_mark_both(t.u, t.du, t.v, t.dv);
                }
                partials[a] = psi;
                local.level(lvl) = saved;
              }
              return partials;
            });
        std::uint32_t best_a = 0;
        double best = 0.0;
        bool have = false;
        for (std::uint32_t a = 0; a < assignments; ++a) {
          if (!have || totals[a] > best) {
            have = true;
            best = totals[a];
            best_a = a;
          }
        }
        for (std::size_t b = 0; b < todo.size(); ++b) {
          family.fix_global_bit(todo[b], (best_a >> b) & 1u);
        }
        result.derand_chunks += 1;
        global_bit += static_cast<int>(todo.size());
      }
      ++result.mark_steps;

      // Joins: marked vertices with no marked beating neighbor. Marks and
      // neighbor degrees are locally known to owners.
      for (MachineId m = 0; m < m_count; ++m) {
        for (VertexId v : dg.owned(m)) {
          if (!dg.active(v) || adeg[v] == 0) continue;
          if (!family.mark_depth(v, depth_of(v))) continue;
          bool blocked = false;
          for (VertexId u : dg.neighbors(v)) {
            if (dg.active(u) && beats(adeg[u], u, adeg[v], v) &&
                family.mark_depth(u, depth_of(u))) {
              blocked = true;
              break;
            }
          }
          if (!blocked) joined[v] = true;
        }
      }
    }

    // Announce joins (1 round); owners retire joiners + dominated.
    std::vector<std::vector<Word>> join_lists(m_count);
    for (MachineId m = 0; m < m_count; ++m) {
      for (VertexId v : dg.owned(m)) {
        if (joined[v]) join_lists[m].push_back(v);
      }
    }
    sim.round([&](mpc::Machine& machine, const mpc::Inbox&) {
      const MachineId src = machine.id();
      if (join_lists[src].empty()) return;
      for (MachineId dst = 0; dst < m_count; ++dst) {
        if (dst != src) machine.send(dst, 0x91, join_lists[src]);
      }
    });
    sim.drain([](mpc::Machine&, const mpc::Inbox&) {});

    std::vector<std::vector<VertexId>> removals(m_count);
    for (MachineId m = 0; m < m_count; ++m) {
      for (VertexId v : dg.owned(m)) {
        if (!dg.active(v)) continue;
        bool leave = joined[v];
        if (!leave) {
          for (VertexId u : dg.neighbors(v)) {
            if (dg.active(u) && joined[u]) {
              leave = true;
              break;
            }
          }
        }
        if (leave) removals[m].push_back(v);
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (joined[v]) mis.push_back(v);
    }
    dg.deactivate(sim, removals);
  }

  std::sort(mis.begin(), mis.end());
  sim.sync_metrics();
  result.metrics = sim.metrics();
  RSETS_INFO << "det_luby: n=" << n << " |MIS|=" << mis.size()
             << " iterations=" << result.phases
             << " rounds=" << result.metrics.rounds
             << " random_words=" << result.metrics.random_words;
  return result;
}

}  // namespace rsets
