// Chaos-soak harness: seeded mixed-fault schedules across every MPC
// algorithm, asserting the fault-tolerance contract end to end.
//
// Each schedule derives a graph and a mixed fault specification (crashes,
// stragglers, drops, duplicates, payload corruption, delivery reordering,
// plus periodic checkpoints) deterministically from (base_seed, schedule
// index), then runs every Model::kMpc algorithm in the registry twice: once
// fault-free and once under the schedule. The contract checked per run:
//
//   1. the faulty run's ruling set is bit-identical to the fault-free one
//      (faults may only move the cost ledger, never the answer), and
//   2. the output passes in-model certification plus an independent
//      sequential cross-validation (mpc::certify_ruling_set).
//
// Everything is a pure function of ChaosOptions, so a failing schedule
// index reproduces exactly — the failure record carries the fault spec
// string to rerun it under `rsets_cli --faults=...`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rsets {

struct ChaosOptions {
  // Seeded mixed-fault schedules to run (each covers every MPC algorithm).
  std::uint64_t schedules = 200;
  std::uint64_t base_seed = 1;
  // Per-schedule graph shape (the generator cycles through gnp, gnm,
  // power_law, and tree).
  std::uint64_t n = 600;
  double avg_deg = 6.0;
  std::uint32_t machines = 8;
  // Run the certification + cross-validation pass on every faulty output
  // (skippable for quick smoke runs; identity against the fault-free set is
  // always checked).
  bool certify = true;
  // Optional progress callback: (schedules finished, runs finished).
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct ChaosFailure {
  std::uint64_t schedule = 0;
  std::string algorithm;
  std::string fault_spec;  // rerun with rsets_cli --faults=<this>
  std::string what;        // which contract broke, with detail
};

struct ChaosReport {
  std::uint64_t schedules_run = 0;
  std::uint64_t runs = 0;  // faulty executions (algorithms x schedules)
  // Aggregated over all faulty runs.
  std::uint64_t faults_injected = 0;
  std::uint64_t corrupt_detected = 0;
  std::uint64_t integrity_retries = 0;
  std::uint64_t quarantined_rounds = 0;
  std::uint64_t recovery_rounds = 0;
  std::uint64_t certified = 0;  // runs that passed the certification pass
  std::vector<ChaosFailure> failures;

  bool ok() const { return failures.empty(); }
};

// The deterministic fault specification schedule `index` runs under (public
// so a failure can be reproduced or inspected without rerunning the soak).
std::string chaos_fault_spec(std::uint64_t base_seed, std::uint64_t index);

ChaosReport run_chaos_soak(const ChaosOptions& options);

}  // namespace rsets
