// Chaos-soak harness: seeded mixed-fault schedules across every MPC
// algorithm, asserting the fault-tolerance contract end to end.
//
// Each schedule derives a graph and a mixed fault specification (crashes,
// stragglers, drops, duplicates, payload corruption, delivery reordering,
// plus periodic checkpoints) deterministically from (base_seed, schedule
// index), then runs every Model::kMpc algorithm in the registry twice: once
// fault-free and once under the schedule. The contract checked per run:
//
//   1. the faulty run's ruling set is bit-identical to the fault-free one
//      (faults may only move the cost ledger, never the answer), and
//   2. the output passes in-model certification plus an independent
//      sequential cross-validation (mpc::certify_ruling_set).
//
// Everything is a pure function of ChaosOptions, so a failing schedule
// index reproduces exactly — the failure record carries the fault spec
// string to rerun it under `rsets_cli --faults=...`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/updates.hpp"

namespace rsets {

struct ChaosOptions {
  // Seeded mixed-fault schedules to run (each covers every MPC algorithm).
  std::uint64_t schedules = 200;
  std::uint64_t base_seed = 1;
  // Per-schedule graph shape (the generator cycles through gnp, gnm,
  // power_law, and tree).
  std::uint64_t n = 600;
  double avg_deg = 6.0;
  std::uint32_t machines = 8;
  // Run the certification + cross-validation pass on every faulty output
  // (skippable for quick smoke runs; identity against the fault-free set is
  // always checked).
  bool certify = true;
  // Optional progress callback: (schedules finished, runs finished).
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct ChaosFailure {
  std::uint64_t schedule = 0;
  std::string algorithm;
  std::string fault_spec;  // rerun with rsets_cli --faults=<this>
  std::string what;        // which contract broke, with detail
};

struct ChaosReport {
  std::uint64_t schedules_run = 0;
  std::uint64_t runs = 0;  // faulty executions (algorithms x schedules)
  // Aggregated over all faulty runs.
  std::uint64_t faults_injected = 0;
  std::uint64_t corrupt_detected = 0;
  std::uint64_t integrity_retries = 0;
  std::uint64_t quarantined_rounds = 0;
  std::uint64_t recovery_rounds = 0;
  std::uint64_t certified = 0;  // runs that passed the certification pass
  std::vector<ChaosFailure> failures;

  bool ok() const { return failures.empty(); }
};

// The deterministic fault specification schedule `index` runs under (public
// so a failure can be reproduced or inspected without rerunning the soak).
std::string chaos_fault_spec(std::uint64_t base_seed, std::uint64_t index);

ChaosReport run_chaos_soak(const ChaosOptions& options);

// --- fault + churn soak -----------------------------------------------------
//
// The long-lived-service counterpart of run_chaos_soak: each schedule builds
// a resident RulingSetService per algorithm (the MPC registry plus the
// sequential greedy backend, whose exact cascade repair is the locality
// showcase), then drives seeded update batches through it under the same
// mixed fault specification, rotating admission budgets, deferral limits,
// escalation thresholds, and simulator thread widths. The contract checked
// after every drained batch: the incrementally maintained set is
// bit-identical to a from-scratch, fault-free recompute on the current
// graph. Every third schedule also kills the service mid-batch (a
// crash_hook throw at the pre-commit stage), recovers it from the sealed
// journal, and finishes the batch — recovery must land on the same bits.

struct ChurnOptions {
  std::uint64_t schedules = 100;
  std::uint64_t base_seed = 1;
  // Initial per-schedule graph shape (same generator rotation as the fault
  // soak: gnp, gnm, power_law, tree).
  std::uint64_t n = 300;
  double avg_deg = 5.0;
  std::uint32_t machines = 8;
  // Update batches pushed through each service and raw updates per batch.
  std::uint64_t batches = 5;
  std::uint64_t batch_updates = 24;
  // Run the full in-model certification + sequential cross-validation on
  // each service's final state (per-epoch certification always runs inside
  // the service itself).
  bool certify = true;
  // Directory for service journals; "" disables journaling AND the
  // crash/recovery exercise (quick in-memory smoke). The soak writes one
  // journal per (schedule, algorithm) and leaves cleanup to the caller.
  std::string journal_dir;
  // Concurrent multi-producer front (PR 9): producers > 1 routes every
  // schedule's update batches through a MultiProducerIngest driven by a
  // seeded line-interleaving scheduler. Schedule flavors poison one
  // producer's stream (s%4==1: repeated strikes until ejection + tombstone;
  // s%4==3: one strike, then the producer heals and recovers from
  // quarantine), and the checks per schedule are: (1) the taken generations
  // are exactly the canonical per-producer batch alignment (merge
  // determinism under any interleaving), (2) every drained state matches a
  // from-scratch fault-free recompute bit-for-bit, with the repair ledger
  // and record-log bodies compared whenever a single-epoch rerun happened,
  // (3) the final state is bit-identical (set + graph fingerprint + epoch +
  // heartbeats; full metrics ledger on crash-free schedules) to a
  // single-producer twin service fed the merged sequence from scratch, and
  // (4) epoch-pinned point queries answered between commits reflect exactly
  // the last committed epoch. producers == 1 is the classic path.
  std::uint32_t producers = 1;
  // Per-producer committed-batch queue cap for the concurrent front
  // (exercises backpressure); 0 = unbounded.
  std::uint64_t queue_cap = 2;
  // Optional progress callback: (schedules finished, service runs finished).
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct ChurnReport {
  std::uint64_t schedules_run = 0;
  std::uint64_t runs = 0;  // service lifetimes (algorithms x schedules)
  std::uint64_t batches_applied = 0;
  std::uint64_t epochs = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_deferred = 0;
  // Repair-scope mix over all epochs.
  std::uint64_t skips = 0;
  std::uint64_t frontier_repairs = 0;
  std::uint64_t full_recomputes = 0;
  std::uint64_t cascade_repairs = 0;
  std::uint64_t repair_retries = 0;
  std::uint64_t region_certifications = 0;
  std::uint64_t full_certifications = 0;
  // Fault + crash ledger.
  std::uint64_t faults_injected = 0;
  std::uint64_t crashes_injected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t certified = 0;  // final states that passed full certification
  // Concurrent-front ledger (producers > 1; zero on the classic path).
  std::uint64_t generations = 0;         // aligned generations applied
  std::uint64_t backpressure = 0;        // pushes bounced/blocked by the cap
  std::uint64_t producer_strikes = 0;    // malformed/integrity strikes
  std::uint64_t producer_ejections = 0;  // tombstoned producers
  std::uint64_t query_checks = 0;        // point queries verified brute-force
  std::uint64_t heartbeats = 0;          // final services' liveness ticks
  std::vector<ChaosFailure> failures;

  bool ok() const { return failures.empty(); }
};

// The deterministic update batch `batch` of churn schedule `index` over an
// n-vertex id space (public for reproduction, like chaos_fault_spec).
// Batches mix inserts and deletes and occasionally emit contradictory
// duplicate lines, exercising last-write-wins and no-op cancellation.
serve::UpdateBatch chaos_churn_batch(std::uint64_t base_seed,
                                     std::uint64_t index, std::uint64_t batch,
                                     std::uint64_t n, std::uint64_t updates);

ChurnReport run_churn_soak(const ChurnOptions& options);

}  // namespace rsets
