// Record/replay engine for ruling-set runs.
//
// A replay log is JSONL: a meta line carrying the full run specification
// (RunSpec), one line per simulator phase with wall_ms zeroed (the only
// nondeterministic trace field), and a summary line with the final metrics
// ledger and a hash of the output set. Because every algorithm, the
// simulator, and the fault injector are deterministic given the spec,
// replaying the spec regenerates the log byte-for-byte — faults,
// checkpoints, recoveries, corruption healing and all — and any divergence
// is reported with the first mismatching line.
//
// This engine is the library form of what `rsets_cli --record/--replay`
// exposes; it lives in rsets_core so round-trips are unit-testable and the
// chaos-soak harness can reuse the spec plumbing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ruling_set.hpp"
#include "graph/graph.hpp"
#include "mpc/trace.hpp"

namespace rsets {

// Everything needed to reproduce a run — captured in the meta line and
// reconstructed by replay.
struct RunSpec {
  std::string algorithm = "det_ruling_mpc";
  std::uint32_t beta = 2;  // resolved (never the "algorithm default" marker)
  std::string input;       // edge-list path; empty when generated
  std::string gen;         // generator name; empty when --input
  std::uint64_t n = 10000;
  double avg_deg = 8.0;
  std::uint64_t seed = 1;
  std::uint32_t machines = 8;
  std::uint64_t memory_words = 1 << 24;
  std::uint32_t threads = 1;
  std::uint64_t budget = 0;
  std::string faults;  // spec string, parsed by mpc::parse_fault_spec
  std::uint64_t checkpoint_every = 0;
  std::string budget_policy = "strict";
  std::uint64_t deadline = 0;
  bool integrity = false;  // force verify-on-receive in fault-free runs
};

// v2: the meta line gains budget_policy/deadline and the summary line gains
// the degradation and deadline ledgers.
// v3: the meta line gains integrity and the summary line gains the
// integrity ledger (corrupt_detected/integrity_retries/quarantined_rounds).
// v4: the meta line gains transport (aggregated|legacy) — fault draws are
// per aggregated buffer since the transport redesign, so a v3 log's faulty
// records would not replay bit-identically.
// v5: transport is dropped from the meta line — the legacy mode is deleted
// and there is exactly one transport, so the key carried no information; a
// v4 log naming a transport is rejected rather than silently accepted.
// Older logs are rejected with a clear version diagnostic rather than
// replayed against mismatched semantics.
inline constexpr const char* kReplayFormat = "rsets-replay-v5";

// Meta line round trip. spec_from_json throws std::invalid_argument on a
// missing key, a malformed value, or a log whose format tag is not
// kReplayFormat (the diagnostic names both versions).
std::string spec_to_json(const RunSpec& spec);
RunSpec spec_from_json(const std::string& line);

// Materializes the spec's graph: reads spec.input when set, otherwise runs
// the named generator. Throws on unknown generator names.
Graph build_graph(const RunSpec& spec);

// Translates the spec into dispatcher options (validating the algorithm
// name, fault spec, and budget policy).
RulingSetOptions options_from_spec(const RunSpec& spec);

// FNV-1a over the sorted vertex ids — a cheap, stable fingerprint of the
// output set for the summary line.
std::uint64_t ruling_set_hash(const std::vector<VertexId>& set);

// The summary line: final metrics ledger plus the set fingerprint.
std::string summary_json(const RulingSetResult& result);

// One recorded phase line: the trace JSON with wall_ms zeroed so recorded
// lines are byte-reproducible.
std::string record_line(const mpc::RoundTrace& trace);

// Runs the spec and returns the complete replay log (meta line, phase
// lines, summary line). When `result_out` is non-null the run's result is
// copied there.
std::vector<std::string> record_run(const RunSpec& spec,
                                    RulingSetResult* result_out = nullptr);

struct ReplayReport {
  // Zero mismatches: every regenerated line was byte-identical to the log.
  std::uint64_t mismatches = 0;
  // Human-readable description of the first divergence (empty when ok).
  std::string first_mismatch;
  // Phase lines the replay regenerated.
  std::size_t phases_checked = 0;
  RunSpec spec;
  RulingSetResult result;

  bool ok() const { return mismatches == 0; }
};

// Re-runs the specification in lines.front() and byte-compares every
// regenerated line (phases and summary) against the log. Throws
// std::invalid_argument when the log is too short or its meta line does not
// parse.
ReplayReport replay_log(const std::vector<std::string>& lines);

}  // namespace rsets
