#include "core/det_ruling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/derand.hpp"
#include "core/phase_common.hpp"
#include "core/greedy.hpp"
#include "graph/ops.hpp"
#include "mpc/dist_graph.hpp"
#include "mpc/primitives.hpp"
#include "util/bits.hpp"
#include "util/logging.hpp"

namespace rsets {
using detail::count_active_edges;
using detail::gather_and_mis;
using detail::remove_ball;
using mpc::MachineId;
using mpc::Simulator;

RulingSetResult det_ruling_set_mpc(const Graph& g, const mpc::MpcConfig& cfg,
                                   const DetRulingOptions& options) {
  Simulator sim(cfg);
  mpc::DistGraph dg(sim, g);
  return det_ruling_set_mpc(sim, dg, options);
}

RulingSetResult det_ruling_set_mpc(Simulator& sim, mpc::DistGraph& dg,
                                   const DetRulingOptions& options) {
  if (options.beta < 2) {
    throw std::invalid_argument(
        "det_ruling_set_mpc: beta must be >= 2 (use det_luby for MIS)");
  }
  const VertexId n = dg.num_vertices();

  std::uint64_t budget = options.gather_budget_words;
  if (budget == 0) budget = 32ull * std::max<VertexId>(n, 1);
  budget = std::min<std::uint64_t>(budget, sim.config().memory_words);

  RulingSetResult result;
  result.beta = options.beta;
  std::vector<VertexId>& ruling = result.ruling_set;

  // Checkpointable driver state: everything that survives across rounds.
  sim.register_snapshotable("dist_graph", &dg);
  auto driver_state =
      mpc::snapshot_of(result.ruling_set, result.phases, result.mark_steps,
                       result.derand_chunks, result.degree_trajectory);
  sim.register_snapshotable("det_ruling", &driver_state);

  while (dg.active_count() > 0) {
    const std::uint64_t m_active = count_active_edges(sim, dg);
    if (m_active == 0) {
      // Only isolated active vertices remain: all of them join (they have
      // no active neighbors, and active vertices never neighbor the set).
      std::vector<std::vector<VertexId>> batches(sim.num_machines());
      for (VertexId v : dg.active_vertices()) {
        ruling.push_back(v);
        batches[dg.owner(v)].push_back(v);
      }
      dg.deactivate(sim, batches);
      break;
    }
    if (2 * m_active + 2 * dg.active_count() <= budget) {
      // Final gather: solve the small residual exactly.
      const std::vector<VertexId> members = dg.active_vertices();
      std::vector<std::uint8_t> mask(n, 0);
      for (VertexId v : members) mask[v] = 1;
      const auto mis = gather_and_mis(sim, dg, members, mask);
      ruling.insert(ruling.end(), mis.begin(), mis.end());
      std::vector<std::vector<VertexId>> batches(sim.num_machines());
      for (VertexId v : members) batches[dg.owner(v)].push_back(v);
      dg.deactivate(sim, batches);
      break;
    }

    const std::uint32_t delta = dg.active_max_degree(sim);
    result.degree_trajectory.push_back(delta);
    std::uint32_t d = static_cast<std::uint32_t>(std::ceil(
        std::sqrt(32.0 * static_cast<double>(m_active) /
                  static_cast<double>(budget))));
    d = std::max<std::uint32_t>(d, 2);
    if (d > delta) {
      // Budget too small for the near-linear analysis; degrade gracefully.
      RSETS_WARN << "det_ruling: threshold " << d << " exceeds Delta "
                 << delta << " (budget too small for regime); clamping";
      d = delta;
    }
    // k from the threshold, raised if needed so that E[sampled edges]
    // = 4^-k * m <= budget/32 holds even when d was clamped above.
    const int k_budget = static_cast<int>(std::ceil(
        0.5 * std::log2(32.0 * static_cast<double>(m_active) /
                        static_cast<double>(budget))));
    const int k = std::max(ceil_log2(d + 1), k_budget);

    ++result.phases;
    int steps = 0;
    while (steps < options.max_mark_steps_per_phase) {
      // Targets: active vertices with active degree >= d (owners scan
      // locally).
      std::vector<VertexId> targets;
      for (MachineId m = 0; m < sim.num_machines(); ++m) {
        for (VertexId v : dg.owned(m)) {
          if (dg.active(v) && dg.active_degree(v) >= d) targets.push_back(v);
        }
      }
      if (targets.empty()) break;
      std::sort(targets.begin(), targets.end());
      ++steps;
      ++result.mark_steps;

      DerandMarkOptions mark_options;
      mark_options.chunk_bits = options.chunk_bits;
      mark_options.levels = std::max(k, 1);
      mark_options.edge_budget = budget;
      std::vector<bool> all_active(n, true);
      const DerandMarkResult mark =
          derand_mark(sim, dg, all_active, targets, mark_options);
      result.derand_chunks += static_cast<std::uint64_t>(mark.chunks);
      if (mark.marked.empty()) {
        // Cannot happen when targets is non-empty (Phi_final >= |T|/8 > 0
        // forces marks); guard against estimator bugs.
        throw std::logic_error("det_ruling: empty marked set");
      }

      std::vector<std::uint8_t> in_marked(n, 0);
      for (VertexId v : mark.marked) in_marked[v] = 1;
      const auto mis = gather_and_mis(sim, dg, mark.marked, in_marked);
      ruling.insert(ruling.end(), mis.begin(), mis.end());
      remove_ball(sim, dg, in_marked, options.beta - 1);
    }
  }

  std::sort(ruling.begin(), ruling.end());
  sim.sync_metrics();
  result.metrics = sim.metrics();
  RSETS_INFO << "det_ruling: n=" << n << " beta=" << options.beta
             << " |R|=" << ruling.size() << " phases=" << result.phases
             << " mark_steps=" << result.mark_steps
             << " rounds=" << result.metrics.rounds
             << " random_words=" << result.metrics.random_words;
  return result;
}

}  // namespace rsets
