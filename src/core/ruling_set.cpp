#include "core/ruling_set.hpp"

#include <stdexcept>

#include "core/det_luby.hpp"
#include "core/det_ruling.hpp"
#include "core/greedy.hpp"
#include "core/luby.hpp"
#include "core/sample_gather.hpp"

namespace rsets {

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kGreedySequential:
      return "greedy";
    case Algorithm::kLubyMpc:
      return "luby_mpc";
    case Algorithm::kDetLubyMpc:
      return "det_luby_mpc";
    case Algorithm::kSampleGatherMpc:
      return "sample_gather_mpc";
    case Algorithm::kDetRulingMpc:
      return "det_ruling_mpc";
  }
  return "?";
}

RulingSetResult compute_ruling_set(const Graph& g,
                                   const RulingSetOptions& options) {
  switch (options.algorithm) {
    case Algorithm::kGreedySequential: {
      RulingSetResult result;
      result.ruling_set = greedy_ruling_set(g, options.beta);
      result.beta = options.beta;
      return result;
    }
    case Algorithm::kLubyMpc: {
      if (options.beta != 1) {
        throw std::invalid_argument("luby_mpc computes an MIS: beta must be 1");
      }
      return luby_mis_mpc(g, options.mpc);
    }
    case Algorithm::kDetLubyMpc: {
      if (options.beta != 1) {
        throw std::invalid_argument(
            "det_luby_mpc computes an MIS: beta must be 1");
      }
      DetLubyOptions det;
      det.chunk_bits = options.chunk_bits;
      return det_luby_mis_mpc(g, options.mpc, det);
    }
    case Algorithm::kSampleGatherMpc: {
      if (options.beta != 2) {
        throw std::invalid_argument(
            "sample_gather_mpc computes a 2-ruling set: beta must be 2");
      }
      SampleGatherOptions sg;
      sg.gather_budget_words = options.gather_budget_words;
      return sample_gather_2ruling(g, options.mpc, sg);
    }
    case Algorithm::kDetRulingMpc: {
      if (options.beta < 2) {
        throw std::invalid_argument(
            "det_ruling_mpc requires beta >= 2 (use det_luby_mpc for MIS)");
      }
      DetRulingOptions det;
      det.beta = options.beta;
      det.gather_budget_words = options.gather_budget_words;
      det.chunk_bits = options.chunk_bits;
      det.max_mark_steps_per_phase = options.max_mark_steps_per_phase;
      return det_ruling_set_mpc(g, options.mpc, det);
    }
  }
  throw std::invalid_argument("compute_ruling_set: unknown algorithm");
}

}  // namespace rsets
