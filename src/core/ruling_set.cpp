#include "core/ruling_set.hpp"

#include <stdexcept>

#include "congest/aglp_ruling.hpp"
#include "congest/beta_ruling_congest.hpp"
#include "congest/coloring_mis.hpp"
#include "congest/det_ruling_congest.hpp"
#include "congest/luby_congest.hpp"
#include "core/det_luby.hpp"
#include "core/det_ruling.hpp"
#include "core/greedy.hpp"
#include "core/luby.hpp"
#include "core/sample_gather.hpp"
#include "graph/shard/shard_csr.hpp"
#include "mpc/dist_graph.hpp"

namespace rsets {
namespace {

// max_beta == 0 means "any beta >= min_beta" (see AlgorithmInfo).
constexpr std::uint32_t kAnyBeta = 0;

void check_beta(const AlgorithmInfo& info, std::uint32_t beta) {
  const bool ok = beta >= info.min_beta &&
                  (info.max_beta == kAnyBeta || beta <= info.max_beta);
  if (ok) return;
  std::string expect;
  if (info.max_beta == kAnyBeta) {
    expect = "beta >= " + std::to_string(info.min_beta);
  } else if (info.min_beta == info.max_beta) {
    expect = "beta == " + std::to_string(info.min_beta);
  } else {
    expect = "beta in [" + std::to_string(info.min_beta) + ", " +
             std::to_string(info.max_beta) + "]";
  }
  throw std::invalid_argument(std::string(info.name) + " requires " + expect +
                              ", got beta = " + std::to_string(beta));
}

}  // namespace

const std::vector<AlgorithmInfo>& algorithm_registry() {
  static const std::vector<AlgorithmInfo> registry = {
      {Algorithm::kGreedySequential, "greedy", Model::kSequential,
       /*deterministic=*/true, 1, kAnyBeta,
       "lexicographic greedy (sequential ground truth)"},
      {Algorithm::kLubyMpc, "luby_mpc", Model::kMpc,
       /*deterministic=*/false, 1, 1,
       "randomized Luby MIS in MPC, O(log n) rounds"},
      {Algorithm::kDetLubyMpc, "det_luby_mpc", Model::kMpc,
       /*deterministic=*/true, 1, 1,
       "derandomized Luby MIS in MPC (conditional expectations)"},
      {Algorithm::kSampleGatherMpc, "sample_gather_mpc", Model::kMpc,
       /*deterministic=*/false, 2, 2,
       "randomized sample-and-gather 2-ruling set in MPC"},
      {Algorithm::kDetRulingMpc, "det_ruling_mpc", Model::kMpc,
       /*deterministic=*/true, 2, kAnyBeta,
       "deterministic ruling set in MPC (the paper's algorithm)"},
      {Algorithm::kLubyCongest, "luby_congest", Model::kCongest,
       /*deterministic=*/false, 1, 1,
       "randomized Luby MIS in CONGEST"},
      {Algorithm::kAglpCongest, "aglp_congest", Model::kCongest,
       /*deterministic=*/true, 1, kAnyBeta,
       "AGLP bitwise elimination; guarantees beta = ceil(log2 n)"},
      {Algorithm::kDetRulingCongest, "det_ruling_congest", Model::kCongest,
       /*deterministic=*/true, 2, 2,
       "deterministic 2-ruling set in CONGEST (Linial coloring + greedy)"},
      {Algorithm::kColoringMisCongest, "coloring_mis_congest",
       Model::kCongest, /*deterministic=*/true, 1, 1,
       "deterministic MIS in CONGEST (Linial coloring + color greedy)"},
      {Algorithm::kBetaRulingCongest, "beta_ruling_congest", Model::kCongest,
       /*deterministic=*/false, 1, kAnyBeta,
       "randomized distance-beta Luby beta-ruling set in CONGEST"},
  };
  return registry;
}

const AlgorithmInfo& algorithm_info(Algorithm a) {
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.algorithm == a) return info;
  }
  throw std::invalid_argument("algorithm_info: unknown algorithm");
}

std::string algorithm_name(Algorithm a) {
  return std::string(algorithm_info(a).name);
}

std::optional<Algorithm> algorithm_from_name(std::string_view name) {
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.name == name) return info.algorithm;
  }
  // Legacy CLI spellings, kept for one release.
  if (name == "congest_luby") return Algorithm::kLubyCongest;
  if (name == "congest_det2") return Algorithm::kDetRulingCongest;
  if (name == "congest_beta") return Algorithm::kBetaRulingCongest;
  if (name == "congest_aglp") return Algorithm::kAglpCongest;
  return std::nullopt;
}

std::vector<std::string_view> algorithm_names() {
  std::vector<std::string_view> names;
  names.reserve(algorithm_registry().size());
  for (const AlgorithmInfo& info : algorithm_registry()) {
    names.push_back(info.name);
  }
  return names;
}

RulingSetResult compute_ruling_set(const Graph& g,
                                   const RulingSetOptions& options) {
  const AlgorithmInfo& info = algorithm_info(options.algorithm);
  // AGLP's radius guarantee is a function of n, not a request; every other
  // algorithm validates the requested beta against its supported range.
  if (options.algorithm != Algorithm::kAglpCongest) {
    check_beta(info, options.beta);
  }
  switch (options.algorithm) {
    case Algorithm::kGreedySequential: {
      RulingSetResult result;
      result.ruling_set = greedy_ruling_set(g, options.beta);
      result.beta = options.beta;
      return result;
    }
    case Algorithm::kLubyMpc:
      return luby_mis_mpc(g, options.mpc);
    case Algorithm::kDetLubyMpc: {
      DetLubyOptions det;
      det.chunk_bits = options.chunk_bits;
      return det_luby_mis_mpc(g, options.mpc, det);
    }
    case Algorithm::kSampleGatherMpc: {
      SampleGatherOptions sg;
      sg.gather_budget_words = options.gather_budget_words;
      return sample_gather_2ruling(g, options.mpc, sg);
    }
    case Algorithm::kDetRulingMpc: {
      DetRulingOptions det;
      det.beta = options.beta;
      det.gather_budget_words = options.gather_budget_words;
      det.chunk_bits = options.chunk_bits;
      det.max_mark_steps_per_phase = options.max_mark_steps_per_phase;
      return det_ruling_set_mpc(g, options.mpc, det);
    }
    case Algorithm::kLubyCongest:
      return congest::luby_mis_congest(g, options.congest);
    case Algorithm::kAglpCongest:
      return congest::aglp_ruling_set_congest(g, options.congest);
    case Algorithm::kDetRulingCongest:
      return congest::det_2ruling_set_congest(g, options.congest);
    case Algorithm::kColoringMisCongest:
      return congest::coloring_mis_congest(g, options.congest);
    case Algorithm::kBetaRulingCongest:
      return congest::beta_ruling_set_congest(g, options.beta,
                                              options.congest);
  }
  throw std::invalid_argument("compute_ruling_set: unknown algorithm");
}

RulingSetResult compute_ruling_set_sharded(const shard::ShardedSource& src,
                                           const shard::IngestOptions& ingest,
                                           const RulingSetOptions& options) {
  const AlgorithmInfo& info = algorithm_info(options.algorithm);
  check_beta(info, options.beta);
  // One simulator + one sharded ingestion, then the same driver overloads
  // the materialized wrappers call — so both paths share every instruction
  // past the DistGraph constructor.
  mpc::Simulator sim(options.mpc);
  mpc::DistGraph dg(sim, src, ingest);
  switch (options.algorithm) {
    case Algorithm::kLubyMpc:
      return luby_mis_mpc(sim, dg);
    case Algorithm::kDetLubyMpc: {
      DetLubyOptions det;
      det.chunk_bits = options.chunk_bits;
      return det_luby_mis_mpc(sim, dg, det);
    }
    case Algorithm::kDetRulingMpc: {
      DetRulingOptions det;
      det.beta = options.beta;
      det.gather_budget_words = options.gather_budget_words;
      det.chunk_bits = options.chunk_bits;
      det.max_mark_steps_per_phase = options.max_mark_steps_per_phase;
      return det_ruling_set_mpc(sim, dg, det);
    }
    default:
      throw std::invalid_argument(
          "compute_ruling_set_sharded: algorithm '" +
          std::string(info.name) +
          "' does not support sharded ingestion (supported: luby_mpc, "
          "det_luby_mpc, det_ruling_mpc)");
  }
}

}  // namespace rsets
