// Public API of the ruling-set library.
//
// A beta-ruling set of G is an independent set R such that every vertex of G
// is within beta hops of R. This header exposes every algorithm in the
// library — MPC, CONGEST, and sequential — behind one options/result pair
// plus a convenience dispatcher and a name registry; algorithm-specific
// entry points live in their own headers (det_ruling.hpp, luby.hpp,
// sample_gather.hpp, det_luby.hpp, greedy.hpp, congest/*.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "congest/congest.hpp"
#include "graph/graph.hpp"
#include "mpc/message.hpp"

namespace rsets::shard {
class ShardedSource;
struct IngestOptions;
}  // namespace rsets::shard

namespace rsets {

enum class Algorithm {
  kGreedySequential,   // lexicographic greedy (ground truth; not MPC)
  kLubyMpc,            // randomized Luby MIS in MPC, O(log n) rounds
  kDetLubyMpc,         // derandomized Luby MIS in MPC, deterministic
  kSampleGatherMpc,    // randomized sample-and-gather 2-ruling set
  kDetRulingMpc,       // deterministic ruling set (the paper's algorithm)
  kLubyCongest,        // randomized Luby MIS in CONGEST
  kAglpCongest,        // deterministic AGLP bitwise elimination in CONGEST
  kDetRulingCongest,   // deterministic 2-ruling via coloring in CONGEST
  kColoringMisCongest, // deterministic Linial coloring + greedy MIS
  kBetaRulingCongest,  // randomized distance-beta Luby in CONGEST
};

// Which simulator an algorithm runs on (decides which metrics/config fields
// of the options/result pair are meaningful).
enum class Model {
  kSequential,
  kMpc,
  kCongest,
};

// One registry row per Algorithm value.
struct AlgorithmInfo {
  Algorithm algorithm;
  std::string_view name;      // canonical CLI/bench name
  Model model;
  bool deterministic;         // zero random words drawn
  // Beta values the dispatcher accepts: [min_beta, max_beta]. max_beta == 0
  // means "any beta >= min_beta"; fixed_beta algorithms have min == max.
  std::uint32_t min_beta;
  std::uint32_t max_beta;
  std::string_view summary;   // one-line description for --help
};

// All algorithms, in Algorithm enum order.
const std::vector<AlgorithmInfo>& algorithm_registry();

// Registry row for one algorithm.
const AlgorithmInfo& algorithm_info(Algorithm a);

// Canonical name (stable across releases; used by CLI and benches).
std::string algorithm_name(Algorithm a);

// Parses a canonical name or a legacy alias (congest_luby, congest_det2,
// congest_beta, congest_aglp); std::nullopt if unknown.
std::optional<Algorithm> algorithm_from_name(std::string_view name);

// Canonical names, in Algorithm enum order (for --help and error messages).
std::vector<std::string_view> algorithm_names();

struct RulingSetOptions {
  Algorithm algorithm = Algorithm::kDetRulingMpc;
  std::uint32_t beta = 2;

  // MPC configuration (ignored by sequential and CONGEST algorithms).
  mpc::MpcConfig mpc;

  // CONGEST configuration (ignored by sequential and MPC algorithms).
  congest::CongestConfig congest;

  // Gather budget in words for sample/mark subgraphs; 0 means 32 * n
  // (the near-linear-memory regime). Must be <= mpc.memory_words.
  std::uint64_t gather_budget_words = 0;

  // Seed bits decided per derandomization chunk (deterministic algorithms).
  int chunk_bits = 4;

  // Safety cap on derandomized marking repetitions within one phase; the
  // loop normally exits because no high-degree target remains.
  int max_mark_steps_per_phase = 200;
};

struct RulingSetResult {
  std::vector<VertexId> ruling_set;
  std::uint32_t beta = 0;  // guarantee the algorithm promises

  // MPC accounting (zeroed for sequential and CONGEST algorithms).
  mpc::MpcMetrics metrics;

  // CONGEST accounting (zeroed for sequential and MPC algorithms).
  congest::CongestMetrics congest_metrics;

  // Phase structure of the phase-based algorithms (empty otherwise): MPC
  // degree-reduction phases, Luby/beta-Luby iterations, Linial steps, or
  // AGLP bit levels.
  std::uint64_t phases = 0;
  std::uint64_t mark_steps = 0;    // derandomized marking invocations
  std::uint64_t derand_chunks = 0; // conditional-expectation chunks spent
  std::vector<std::uint32_t> degree_trajectory;  // max active degree/phase

  // Coloring-driven CONGEST algorithms only: the proper coloring computed
  // on the way (empty otherwise) and its palette-size bound.
  std::vector<std::uint32_t> colors;
  std::uint32_t palette_size = 0;
};

// Runs the selected algorithm. Throws std::invalid_argument for unsupported
// (algorithm, beta) combinations — see AlgorithmInfo::{min,max}_beta: the
// MIS algorithms require beta == 1, the 2-ruling machinery beta >= 2 (MPC)
// or == 2 (CONGEST), beta_ruling_congest any beta >= 1, and aglp_congest
// ignores the requested beta (its guarantee is ceil(log2 n), reported in
// RulingSetResult::beta).
RulingSetResult compute_ruling_set(const Graph& g,
                                   const RulingSetOptions& options);

// Runs the selected MPC algorithm on a sharded input: each simulated
// machine generates its own edge shard and the input is ingested directly
// into the distributed store (optionally spilling to disk, see
// shard::IngestOptions) — no global Graph is ever materialized, so problem
// size is bounded by disk, not by a single process's edge list. Supported
// algorithms: kDetRulingMpc, kDetLubyMpc, kLubyMpc (the vertex-centric MPC
// drivers); anything else throws std::invalid_argument. Results and the
// full metrics ledger are bit-identical to compute_ruling_set on the
// materialized equivalent of the same source.
RulingSetResult compute_ruling_set_sharded(const shard::ShardedSource& src,
                                           const shard::IngestOptions& ingest,
                                           const RulingSetOptions& options);

}  // namespace rsets
