// Public API of the ruling-set library.
//
// A beta-ruling set of G is an independent set R such that every vertex of G
// is within beta hops of R. This header exposes every algorithm in the
// library behind one options/result pair plus a convenience dispatcher;
// algorithm-specific entry points live in their own headers (det_ruling.hpp,
// luby.hpp, sample_gather.hpp, det_luby.hpp, greedy.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/message.hpp"

namespace rsets {

enum class Algorithm {
  kGreedySequential,   // lexicographic greedy (ground truth; not MPC)
  kLubyMpc,            // randomized Luby MIS in MPC, O(log n) rounds
  kDetLubyMpc,         // derandomized Luby MIS in MPC, deterministic
  kSampleGatherMpc,    // randomized sample-and-gather 2-ruling set
  kDetRulingMpc,       // deterministic ruling set (the paper's algorithm)
};

std::string algorithm_name(Algorithm a);

struct RulingSetOptions {
  Algorithm algorithm = Algorithm::kDetRulingMpc;
  std::uint32_t beta = 2;

  // MPC configuration (ignored by the sequential algorithm).
  mpc::MpcConfig mpc;

  // Gather budget in words for sample/mark subgraphs; 0 means 32 * n
  // (the near-linear-memory regime). Must be <= mpc.memory_words.
  std::uint64_t gather_budget_words = 0;

  // Seed bits decided per derandomization chunk (deterministic algorithms).
  int chunk_bits = 4;

  // Safety cap on derandomized marking repetitions within one phase; the
  // loop normally exits because no high-degree target remains.
  int max_mark_steps_per_phase = 200;
};

struct RulingSetResult {
  std::vector<VertexId> ruling_set;
  std::uint32_t beta = 0;  // guarantee the algorithm promises

  // MPC accounting (zeroed for the sequential algorithm).
  mpc::MpcMetrics metrics;

  // Phase structure of the phase-based algorithms (empty otherwise).
  std::uint64_t phases = 0;        // degree-reduction phases / Luby iters
  std::uint64_t mark_steps = 0;    // derandomized marking invocations
  std::uint64_t derand_chunks = 0; // conditional-expectation chunks spent
  std::vector<std::uint32_t> degree_trajectory;  // max active degree/phase
};

// Runs the selected algorithm. Throws std::invalid_argument for unsupported
// (algorithm, beta) combinations: the MIS algorithms require beta == 1 and
// the 2-ruling machinery requires beta >= 2.
RulingSetResult compute_ruling_set(const Graph& g,
                                   const RulingSetOptions& options);

}  // namespace rsets
