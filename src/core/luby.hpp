// Luby's randomized MIS in the MPC model (vertex-centric).
//
// Per iteration (4 rounds): owners draw 64-bit priorities for their active
// vertices and route them to neighbors' owners (all-to-all); local minima
// join the MIS; joiners are announced cluster-wide; owners locally derive
// dominated vertices and a deactivation round retires both. O(log n)
// iterations w.h.p. — this is the classical bound the paper's deterministic
// algorithm beats.
#pragma once

#include "core/ruling_set.hpp"

namespace rsets::mpc {
class DistGraph;
class Simulator;
}  // namespace rsets::mpc

namespace rsets {

RulingSetResult luby_mis_mpc(const Graph& g, const mpc::MpcConfig& cfg);

// Same algorithm on an already-loaded distributed graph (sharded ingestion
// path); the materialized overload wraps this one.
RulingSetResult luby_mis_mpc(mpc::Simulator& sim, mpc::DistGraph& dg);

}  // namespace rsets
