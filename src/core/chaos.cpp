#include "core/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/replay.hpp"
#include "core/ruling_set.hpp"
#include "graph/graph.hpp"
#include "mpc/certify.hpp"
#include "serve/service.hpp"

namespace rsets {
namespace {

// SplitMix64: the schedule-parameter mixer. Independent of every simulator
// RNG stream — it only picks which knobs a schedule turns on.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Picks one of four values using two bits of `h` at `slot`.
double pick(std::uint64_t h, unsigned slot, const double (&choices)[4]) {
  return choices[(h >> (2 * slot)) & 3];
}

void append_prob(std::string& spec, const char* kind, double p) {
  if (p <= 0.0) return;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%s~%g", spec.empty() ? "" : ",", kind, p);
  spec += buf;
}

const char* kGenerators[4] = {"gnp", "gnm", "power_law", "tree"};

}  // namespace

std::string chaos_fault_spec(std::uint64_t base_seed, std::uint64_t index) {
  const std::uint64_t h = mix(base_seed ^ mix(index));
  std::string spec;
  // Corruption is always on — this harness exists to soak the integrity
  // layer — with the other kinds mixed in at schedule-dependent rates
  // (several slots include 0, so schedules also cover the pairwise
  // combinations).
  // The 0.3 tier is a "hot link": sources corrupt in consecutive phases
  // (and occasionally exhaust the per-message retry bound), driving the
  // quarantine path, not just single-retry healing.
  append_prob(spec, "corrupt", pick(h, 0, {0.005, 0.02, 0.05, 0.3}));
  append_prob(spec, "reorder", pick(h, 1, {0.0, 0.1, 0.25, 0.5}));
  append_prob(spec, "drop", pick(h, 2, {0.0, 0.005, 0.01, 0.02}));
  append_prob(spec, "dup", pick(h, 3, {0.0, 0.005, 0.01, 0.02}));
  append_prob(spec, "crash", pick(h, 4, {0.0, 0.0, 0.005, 0.01}));
  append_prob(spec, "straggler", pick(h, 5, {0.0, 0.0, 0.01, 0.02}));
  char seed[32];
  std::snprintf(seed, sizeof(seed), ",seed=%llu",
                static_cast<unsigned long long>(h | 1));
  spec += seed;
  return spec;
}

ChaosReport run_chaos_soak(const ChaosOptions& options) {
  ChaosReport report;
  for (std::uint64_t s = 0; s < options.schedules; ++s) {
    RunSpec base;
    base.gen = kGenerators[s % 4];
    base.n = options.n;
    base.avg_deg = options.avg_deg;
    base.seed = options.base_seed + s;
    base.machines = options.machines;
    // Every third schedule checkpoints, so crash recovery exercises both
    // the from-round-zero and the from-durable-checkpoint paths.
    base.checkpoint_every = (s % 3 == 0) ? 2 : 0;
    const std::string fault_spec =
        chaos_fault_spec(options.base_seed, s);
    const Graph g = build_graph(base);

    for (const AlgorithmInfo& info : algorithm_registry()) {
      if (info.model != Model::kMpc) continue;
      RunSpec run = base;
      run.algorithm = std::string(info.name);
      run.beta = info.min_beta;
      // Rotate the simulator's thread width across schedules so the soak
      // (and its TSan stage in tools/check_tsan.sh) exercises the parallel
      // barrier pipeline — sharded merge, parallel verify/index, threaded
      // callbacks — not just the sequential path. Results are
      // thread-invariant by construction; truth and faulty runs share the
      // width, so the faulty == truth contract is unchanged.
      static constexpr std::uint32_t kSoakThreadWidths[] = {1, 2, 4};
      run.threads = kSoakThreadWidths[s % 3];

      // Ground truth: the fault-free execution of the same spec.
      const RulingSetResult truth =
          compute_ruling_set(g, options_from_spec(run));

      run.faults = fault_spec;
      const RulingSetOptions faulty_options = options_from_spec(run);
      const RulingSetResult faulty = compute_ruling_set(g, faulty_options);
      ++report.runs;
      report.faults_injected += faulty.metrics.faults_injected;
      report.corrupt_detected += faulty.metrics.corrupt_detected;
      report.integrity_retries += faulty.metrics.integrity_retries;
      report.quarantined_rounds += faulty.metrics.quarantined_rounds;
      report.recovery_rounds += faulty.metrics.recovery_rounds;

      auto fail = [&](const std::string& what) {
        ChaosFailure f;
        f.schedule = s;
        f.algorithm = run.algorithm;
        f.fault_spec = fault_spec;
        f.what = what;
        report.failures.push_back(std::move(f));
      };

      if (faulty.ruling_set != truth.ruling_set) {
        fail("faulty output diverged from the fault-free run (size " +
             std::to_string(faulty.ruling_set.size()) + " vs " +
             std::to_string(truth.ruling_set.size()) + ")");
        continue;
      }
      if (options.certify) {
        // Clean-room certification of the faulty run's output, then the
        // independent sequential cross-validation of the certificate.
        const RulingSetCertificate cert = mpc::certify_ruling_set(
            g, faulty.ruling_set, run.beta, faulty_options.mpc);
        if (!cert.valid()) {
          fail("certification failed: " + cert.to_string());
          continue;
        }
        if (!cross_validate_certificate(g, faulty.ruling_set, cert)) {
          fail("certificate failed sequential cross-validation");
          continue;
        }
        ++report.certified;
      }
    }
    ++report.schedules_run;
    if (options.progress) options.progress(s + 1, report.runs);
  }
  return report;
}

namespace {

// Thrown from the service's crash_hook to kill it mid-batch; deliberately
// not derived from std::exception so no cleanup path can swallow it.
struct SimulatedCrash {};

std::uint64_t pick_u64(std::uint64_t h, unsigned slot,
                       const std::uint64_t (&choices)[4]) {
  return choices[(h >> (2 * slot)) & 3];
}

void accumulate(ChurnReport& report, const serve::ServiceMetrics& m) {
  report.epochs += m.epochs;
  report.updates_applied += m.updates_applied;
  report.skips += m.skips;
  report.frontier_repairs += m.repairs_frontier;
  report.full_recomputes += m.repairs_full;
  report.cascade_repairs += m.cascade_repairs;
  report.repair_retries += m.repair_retries;
  report.region_certifications += m.certifications_region;
  report.full_certifications += m.certifications_full;
  report.recoveries += m.recoveries;
  report.faults_injected += m.faults_injected;
}

}  // namespace

serve::UpdateBatch chaos_churn_batch(std::uint64_t base_seed,
                                     std::uint64_t index, std::uint64_t batch,
                                     std::uint64_t n, std::uint64_t updates) {
  serve::UpdateBatch out;
  if (n < 2) return out;
  std::uint64_t state =
      mix(base_seed ^ mix(index ^ 0x636875726eull)) ^ mix(batch + 17);
  for (std::uint64_t i = 0; i < updates; ++i) {
    state = mix(state + i + 1);
    const VertexId u = static_cast<VertexId>(state % n);
    state = mix(state);
    VertexId v = static_cast<VertexId>(state % n);
    if (v == u) v = static_cast<VertexId>((v + 1) % n);
    state = mix(state);
    const auto op = (state & 1) ? serve::EdgeUpdate::Op::kInsert
                                : serve::EdgeUpdate::Op::kDelete;
    out.updates.push_back({op, u, v});
    if ((state >> 8) % 8 == 0) {
      // Contradictory duplicate of the same pair: the later line must win
      // (stream semantics), and whichever side is a no-op must cancel.
      out.updates.push_back({op == serve::EdgeUpdate::Op::kInsert
                                 ? serve::EdgeUpdate::Op::kDelete
                                 : serve::EdgeUpdate::Op::kInsert,
                             u, v});
    }
  }
  return out;
}

ChurnReport run_churn_soak(const ChurnOptions& options) {
  ChurnReport report;
  // The MPC registry plus the sequential greedy backend (the exact
  // β-hop-cascade repair path).
  std::vector<const AlgorithmInfo*> algorithms;
  algorithms.push_back(&algorithm_info(Algorithm::kGreedySequential));
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model == Model::kMpc) algorithms.push_back(&info);
  }

  for (std::uint64_t s = 0; s < options.schedules; ++s) {
    RunSpec base;
    base.gen = kGenerators[s % 4];
    base.n = options.n;
    base.avg_deg = options.avg_deg;
    base.seed = options.base_seed + s;
    base.machines = options.machines;
    const std::string fault_spec = chaos_fault_spec(options.base_seed, s);
    const Graph g = build_graph(base);

    // Service-shape knobs rotate independently of the fault spec so the
    // admission/deferral/escalation paths all see every fault mix.
    const std::uint64_t h = mix(options.base_seed ^ mix(s ^ 0x5ca1ab1eull));
    const bool crash_schedule = !options.journal_dir.empty() && s % 3 == 0;

    for (const AlgorithmInfo* info : algorithms) {
      RunSpec run = base;
      run.algorithm = std::string(info->name);
      run.beta = info->max_beta == 0 ? std::max(info->min_beta, 2u)
                                     : info->min_beta;
      static constexpr std::uint32_t kSoakThreadWidths[] = {1, 2, 4};
      run.threads = kSoakThreadWidths[s % 3];

      // Fault-free from-scratch options: the parity oracle. The service
      // itself runs under the fault schedule — faults may only move the
      // cost ledger, so the maintained bits must still match this oracle.
      const RulingSetOptions truth_options = options_from_spec(run);
      run.faults = fault_spec;

      serve::ServiceConfig cfg;
      cfg.options = options_from_spec(run);
      cfg.admit_budget = pick_u64(h, 0, {0, 4, 8, 16});
      cfg.max_epochs_per_apply = pick_u64(h, 1, {0, 0, 2, 3});
      cfg.full_certify_every = pick_u64(h, 2, {1, 4, 8, 16});
      cfg.full_threshold =
          pick(h, 3, {0.02, 0.05, 0.1, 0.3});
      if (!options.journal_dir.empty()) {
        cfg.journal_path = options.journal_dir + "/churn_s" +
                           std::to_string(s) + "_" + run.algorithm + ".rsj";
      }

      auto fail = [&](const std::string& what) {
        ChaosFailure f;
        f.schedule = s;
        f.algorithm = run.algorithm;
        f.fault_spec = fault_spec;
        f.what = what;
        report.failures.push_back(std::move(f));
      };

      try {
        serve::RulingSetService service(g, cfg);
        const std::uint64_t crash_batch = options.batches / 2;
        bool schedule_failed = false;
        for (std::uint64_t b = 0; b < options.batches; ++b) {
          const serve::UpdateBatch batch = chaos_churn_batch(
              options.base_seed, s, b, options.n, options.batch_updates);
          const bool crash_here = crash_schedule && b == crash_batch;
          bool crashed = false;
          const std::uint64_t epoch_before = service.epoch();
          if (crash_here) {
            service.crash_hook = [](std::string_view stage) {
              if (stage == "pre-commit") throw SimulatedCrash{};
            };
          }
          serve::BatchReport breport;
          try {
            breport = service.apply(batch);
          } catch (const SimulatedCrash&) {
            crashed = true;
          }
          if (crashed) {
            ++report.crashes_injected;
            accumulate(report, service.metrics());
            service = serve::RulingSetService::recover(cfg);
            // A batch is durably admitted at its first epoch commit; a
            // crash before that means the client must resubmit it.
            breport = service.epoch() == epoch_before ? service.apply(batch)
                                                      : service.drain();
          }
          // Drain deferrals so the parity check sees the whole batch.
          while (service.pending() > 0) {
            const serve::BatchReport more = service.drain();
            breport.epochs += more.epochs;
          }
          ++report.batches_applied;
          report.updates_deferred += breport.deferred;

          const RulingSetResult oracle =
              compute_ruling_set(service.snapshot(), truth_options);
          if (service.ruling_set() != oracle.ruling_set) {
            fail("incremental set diverged from from-scratch recompute at "
                 "batch " +
                 std::to_string(b) + " (size " +
                 std::to_string(service.ruling_set().size()) + " vs " +
                 std::to_string(oracle.ruling_set.size()) + ")");
            schedule_failed = true;
            break;
          }
        }
        ++report.runs;
        if (!schedule_failed && options.certify) {
          const Graph final_graph = service.snapshot();
          const RulingSetCertificate cert = mpc::certify_ruling_set(
              final_graph, service.ruling_set(), run.beta, cfg.options.mpc);
          if (!cert.valid()) {
            fail("final certification failed: " + cert.to_string());
          } else if (!cross_validate_certificate(
                         final_graph, service.ruling_set(), cert)) {
            fail("final certificate failed sequential cross-validation");
          } else {
            ++report.certified;
          }
        }
        accumulate(report, service.metrics());
      } catch (const serve::ServiceError& e) {
        fail(std::string("service error: ") + e.what());
        ++report.runs;
      }
    }
    ++report.schedules_run;
    if (options.progress) options.progress(s + 1, report.runs);
  }
  return report;
}

}  // namespace rsets
