#include "core/chaos.hpp"

#include <cstdio>
#include <string>

#include "core/replay.hpp"
#include "core/ruling_set.hpp"
#include "graph/graph.hpp"
#include "mpc/certify.hpp"

namespace rsets {
namespace {

// SplitMix64: the schedule-parameter mixer. Independent of every simulator
// RNG stream — it only picks which knobs a schedule turns on.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Picks one of four values using two bits of `h` at `slot`.
double pick(std::uint64_t h, unsigned slot, const double (&choices)[4]) {
  return choices[(h >> (2 * slot)) & 3];
}

void append_prob(std::string& spec, const char* kind, double p) {
  if (p <= 0.0) return;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%s~%g", spec.empty() ? "" : ",", kind, p);
  spec += buf;
}

const char* kGenerators[4] = {"gnp", "gnm", "power_law", "tree"};

}  // namespace

std::string chaos_fault_spec(std::uint64_t base_seed, std::uint64_t index) {
  const std::uint64_t h = mix(base_seed ^ mix(index));
  std::string spec;
  // Corruption is always on — this harness exists to soak the integrity
  // layer — with the other kinds mixed in at schedule-dependent rates
  // (several slots include 0, so schedules also cover the pairwise
  // combinations).
  // The 0.3 tier is a "hot link": sources corrupt in consecutive phases
  // (and occasionally exhaust the per-message retry bound), driving the
  // quarantine path, not just single-retry healing.
  append_prob(spec, "corrupt", pick(h, 0, {0.005, 0.02, 0.05, 0.3}));
  append_prob(spec, "reorder", pick(h, 1, {0.0, 0.1, 0.25, 0.5}));
  append_prob(spec, "drop", pick(h, 2, {0.0, 0.005, 0.01, 0.02}));
  append_prob(spec, "dup", pick(h, 3, {0.0, 0.005, 0.01, 0.02}));
  append_prob(spec, "crash", pick(h, 4, {0.0, 0.0, 0.005, 0.01}));
  append_prob(spec, "straggler", pick(h, 5, {0.0, 0.0, 0.01, 0.02}));
  char seed[32];
  std::snprintf(seed, sizeof(seed), ",seed=%llu",
                static_cast<unsigned long long>(h | 1));
  spec += seed;
  return spec;
}

ChaosReport run_chaos_soak(const ChaosOptions& options) {
  ChaosReport report;
  for (std::uint64_t s = 0; s < options.schedules; ++s) {
    RunSpec base;
    base.gen = kGenerators[s % 4];
    base.n = options.n;
    base.avg_deg = options.avg_deg;
    base.seed = options.base_seed + s;
    base.machines = options.machines;
    // Every third schedule checkpoints, so crash recovery exercises both
    // the from-round-zero and the from-durable-checkpoint paths.
    base.checkpoint_every = (s % 3 == 0) ? 2 : 0;
    const std::string fault_spec =
        chaos_fault_spec(options.base_seed, s);
    const Graph g = build_graph(base);

    for (const AlgorithmInfo& info : algorithm_registry()) {
      if (info.model != Model::kMpc) continue;
      RunSpec run = base;
      run.algorithm = std::string(info.name);
      run.beta = info.min_beta;
      // Rotate the simulator's thread width across schedules so the soak
      // (and its TSan stage in tools/check_tsan.sh) exercises the parallel
      // barrier pipeline — sharded merge, parallel verify/index, threaded
      // callbacks — not just the sequential path. Results are
      // thread-invariant by construction; truth and faulty runs share the
      // width, so the faulty == truth contract is unchanged.
      static constexpr std::uint32_t kSoakThreadWidths[] = {1, 2, 4};
      run.threads = kSoakThreadWidths[s % 3];

      // Ground truth: the fault-free execution of the same spec.
      const RulingSetResult truth =
          compute_ruling_set(g, options_from_spec(run));

      run.faults = fault_spec;
      const RulingSetOptions faulty_options = options_from_spec(run);
      const RulingSetResult faulty = compute_ruling_set(g, faulty_options);
      ++report.runs;
      report.faults_injected += faulty.metrics.faults_injected;
      report.corrupt_detected += faulty.metrics.corrupt_detected;
      report.integrity_retries += faulty.metrics.integrity_retries;
      report.quarantined_rounds += faulty.metrics.quarantined_rounds;
      report.recovery_rounds += faulty.metrics.recovery_rounds;

      auto fail = [&](const std::string& what) {
        ChaosFailure f;
        f.schedule = s;
        f.algorithm = run.algorithm;
        f.fault_spec = fault_spec;
        f.what = what;
        report.failures.push_back(std::move(f));
      };

      if (faulty.ruling_set != truth.ruling_set) {
        fail("faulty output diverged from the fault-free run (size " +
             std::to_string(faulty.ruling_set.size()) + " vs " +
             std::to_string(truth.ruling_set.size()) + ")");
        continue;
      }
      if (options.certify) {
        // Clean-room certification of the faulty run's output, then the
        // independent sequential cross-validation of the certificate.
        const RulingSetCertificate cert = mpc::certify_ruling_set(
            g, faulty.ruling_set, run.beta, faulty_options.mpc);
        if (!cert.valid()) {
          fail("certification failed: " + cert.to_string());
          continue;
        }
        if (!cross_validate_certificate(g, faulty.ruling_set, cert)) {
          fail("certificate failed sequential cross-validation");
          continue;
        }
        ++report.certified;
      }
    }
    ++report.schedules_run;
    if (options.progress) options.progress(s + 1, report.runs);
  }
  return report;
}

}  // namespace rsets
