#include "core/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

#include "core/replay.hpp"
#include "core/ruling_set.hpp"
#include "graph/graph.hpp"
#include "mpc/certify.hpp"
#include "serve/ingest.hpp"
#include "serve/service.hpp"

namespace rsets {
namespace {

// SplitMix64: the schedule-parameter mixer. Independent of every simulator
// RNG stream — it only picks which knobs a schedule turns on.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Picks one of four values using two bits of `h` at `slot`.
double pick(std::uint64_t h, unsigned slot, const double (&choices)[4]) {
  return choices[(h >> (2 * slot)) & 3];
}

void append_prob(std::string& spec, const char* kind, double p) {
  if (p <= 0.0) return;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%s~%g", spec.empty() ? "" : ",", kind, p);
  spec += buf;
}

const char* kGenerators[4] = {"gnp", "gnm", "power_law", "tree"};

}  // namespace

std::string chaos_fault_spec(std::uint64_t base_seed, std::uint64_t index) {
  const std::uint64_t h = mix(base_seed ^ mix(index));
  std::string spec;
  // Corruption is always on — this harness exists to soak the integrity
  // layer — with the other kinds mixed in at schedule-dependent rates
  // (several slots include 0, so schedules also cover the pairwise
  // combinations).
  // The 0.3 tier is a "hot link": sources corrupt in consecutive phases
  // (and occasionally exhaust the per-message retry bound), driving the
  // quarantine path, not just single-retry healing.
  append_prob(spec, "corrupt", pick(h, 0, {0.005, 0.02, 0.05, 0.3}));
  append_prob(spec, "reorder", pick(h, 1, {0.0, 0.1, 0.25, 0.5}));
  append_prob(spec, "drop", pick(h, 2, {0.0, 0.005, 0.01, 0.02}));
  append_prob(spec, "dup", pick(h, 3, {0.0, 0.005, 0.01, 0.02}));
  append_prob(spec, "crash", pick(h, 4, {0.0, 0.0, 0.005, 0.01}));
  append_prob(spec, "straggler", pick(h, 5, {0.0, 0.0, 0.01, 0.02}));
  char seed[32];
  std::snprintf(seed, sizeof(seed), ",seed=%llu",
                static_cast<unsigned long long>(h | 1));
  spec += seed;
  return spec;
}

ChaosReport run_chaos_soak(const ChaosOptions& options) {
  ChaosReport report;
  for (std::uint64_t s = 0; s < options.schedules; ++s) {
    RunSpec base;
    base.gen = kGenerators[s % 4];
    base.n = options.n;
    base.avg_deg = options.avg_deg;
    base.seed = options.base_seed + s;
    base.machines = options.machines;
    // Every third schedule checkpoints, so crash recovery exercises both
    // the from-round-zero and the from-durable-checkpoint paths.
    base.checkpoint_every = (s % 3 == 0) ? 2 : 0;
    const std::string fault_spec =
        chaos_fault_spec(options.base_seed, s);
    const Graph g = build_graph(base);

    for (const AlgorithmInfo& info : algorithm_registry()) {
      if (info.model != Model::kMpc) continue;
      RunSpec run = base;
      run.algorithm = std::string(info.name);
      run.beta = info.min_beta;
      // Rotate the simulator's thread width across schedules so the soak
      // (and its TSan stage in tools/check_tsan.sh) exercises the parallel
      // barrier pipeline — sharded merge, parallel verify/index, threaded
      // callbacks — not just the sequential path. Results are
      // thread-invariant by construction; truth and faulty runs share the
      // width, so the faulty == truth contract is unchanged.
      static constexpr std::uint32_t kSoakThreadWidths[] = {1, 2, 4};
      run.threads = kSoakThreadWidths[s % 3];

      // Ground truth: the fault-free execution of the same spec.
      const RulingSetResult truth =
          compute_ruling_set(g, options_from_spec(run));

      run.faults = fault_spec;
      const RulingSetOptions faulty_options = options_from_spec(run);
      const RulingSetResult faulty = compute_ruling_set(g, faulty_options);
      ++report.runs;
      report.faults_injected += faulty.metrics.faults_injected;
      report.corrupt_detected += faulty.metrics.corrupt_detected;
      report.integrity_retries += faulty.metrics.integrity_retries;
      report.quarantined_rounds += faulty.metrics.quarantined_rounds;
      report.recovery_rounds += faulty.metrics.recovery_rounds;

      auto fail = [&](const std::string& what) {
        ChaosFailure f;
        f.schedule = s;
        f.algorithm = run.algorithm;
        f.fault_spec = fault_spec;
        f.what = what;
        report.failures.push_back(std::move(f));
      };

      if (faulty.ruling_set != truth.ruling_set) {
        fail("faulty output diverged from the fault-free run (size " +
             std::to_string(faulty.ruling_set.size()) + " vs " +
             std::to_string(truth.ruling_set.size()) + ")");
        continue;
      }
      if (options.certify) {
        // Clean-room certification of the faulty run's output, then the
        // independent sequential cross-validation of the certificate.
        const RulingSetCertificate cert = mpc::certify_ruling_set(
            g, faulty.ruling_set, run.beta, faulty_options.mpc);
        if (!cert.valid()) {
          fail("certification failed: " + cert.to_string());
          continue;
        }
        if (!cross_validate_certificate(g, faulty.ruling_set, cert)) {
          fail("certificate failed sequential cross-validation");
          continue;
        }
        ++report.certified;
      }
    }
    ++report.schedules_run;
    if (options.progress) options.progress(s + 1, report.runs);
  }
  return report;
}

namespace {

// Thrown from the service's crash_hook to kill it mid-batch; deliberately
// not derived from std::exception so no cleanup path can swallow it.
struct SimulatedCrash {};

std::uint64_t pick_u64(std::uint64_t h, unsigned slot,
                       const std::uint64_t (&choices)[4]) {
  return choices[(h >> (2 * slot)) & 3];
}

void accumulate(ChurnReport& report, const serve::ServiceMetrics& m) {
  report.epochs += m.epochs;
  report.updates_applied += m.updates_applied;
  report.skips += m.skips;
  report.frontier_repairs += m.repairs_frontier;
  report.full_recomputes += m.repairs_full;
  report.cascade_repairs += m.cascade_repairs;
  report.repair_retries += m.repair_retries;
  report.region_certifications += m.certifications_region;
  report.full_certifications += m.certifications_full;
  report.recoveries += m.recoveries;
  report.faults_injected += m.faults_injected;
}

}  // namespace

namespace {

// --- concurrent multi-producer front -------------------------------------

// One producer's scripted stream: protocol lines per batch, plus where (if
// anywhere) its stream is poisoned and how the producer reacts to a strike.
struct ProducerScript {
  std::vector<std::vector<std::string>> batches;
  std::size_t poison_batch = static_cast<std::size_t>(-1);
  bool heal = false;  // skip the poison line when resubmitting after a strike
};

struct ProducerState {
  std::size_t batch = 0;
  std::size_t line = 0;
  bool skip_poison = false;
  bool done = false;
};

// Advances producer `p` by exactly one push attempt against `ingest`,
// modelling real producer behavior: a strike resubmits the whole batch from
// its first line (a healing producer drops the poison line first), backoff
// and backpressure leave the cursor where it is, ejection ends the stream,
// and the last batch is followed by close(). The same state machine drives
// both the interleaved run and the canonical single-producer replay, so the
// expected generation contents are computed by the code under test's own
// validation rules — only the *interleaving* differs.
serve::PushStatus producer_step(serve::MultiProducerIngest& ingest,
                                std::uint32_t p, const ProducerScript& script,
                                ProducerState& st) {
  if (st.done) return serve::PushStatus::kClosed;
  if (st.batch >= script.batches.size()) {
    ingest.close(p);
    st.done = true;
    return serve::PushStatus::kClosed;
  }
  if (st.skip_poison && st.batch == script.poison_batch && st.line == 0) {
    st.line = 1;  // the poison line is always the first line of its batch
  }
  const std::vector<std::string>& lines = script.batches[st.batch];
  const serve::PushStatus status = ingest.offer_line(p, lines[st.line]);
  switch (status) {
    case serve::PushStatus::kAccepted:
      ++st.line;
      break;
    case serve::PushStatus::kCommitted:
      ++st.batch;
      st.line = 0;
      break;
    case serve::PushStatus::kWouldBlock:
    case serve::PushStatus::kBackoff:
      break;  // line not consumed; retry on a later turn
    case serve::PushStatus::kRejected:
      st.line = 0;
      if (script.heal) st.skip_poison = true;
      break;
    default:  // kEjected / kClosed / kBadTag
      st.done = true;
      break;
  }
  if (!st.done && st.batch >= script.batches.size()) {
    ingest.close(p);
    st.done = true;
  }
  return status;
}

std::vector<ProducerScript> build_producer_scripts(const ChurnOptions& options,
                                                   std::uint64_t s) {
  const std::uint32_t producers = options.producers;
  const std::uint64_t per_batch =
      std::max<std::uint64_t>(1, options.batch_updates / producers);
  const bool eject_flavor = s % 4 == 1;
  const bool heal_flavor = s % 4 == 3;
  const auto poisoned = static_cast<std::uint32_t>(s % producers);
  std::vector<ProducerScript> scripts(producers);
  for (std::uint32_t p = 0; p < producers; ++p) {
    ProducerScript& script = scripts[p];
    for (std::uint64_t b = 0; b < options.batches; ++b) {
      const serve::UpdateBatch batch = chaos_churn_batch(
          options.base_seed, s, b * producers + p, options.n, per_batch);
      std::vector<std::string> lines;
      if ((eject_flavor || heal_flavor) && p == poisoned &&
          b == options.batches / 2) {
        lines.push_back("+ 1 1");  // self-loop: malformed, costs a strike
        script.poison_batch = b;
        script.heal = heal_flavor;
      }
      for (const serve::EdgeUpdate& u : batch.updates) {
        lines.push_back(serve::to_line(u));
      }
      if ((b + p) % 2 == 0) {
        // Exercise the integrity line on the verify-good path.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "checksum %llx",
                      static_cast<unsigned long long>(
                          serve::batch_checksum(batch.updates)));
        lines.push_back(buf);
      }
      lines.push_back("commit");
      script.batches.push_back(std::move(lines));
    }
  }
  return scripts;
}

// Reference replay: each producer's stream alone, through a fresh
// single-producer ingest with the same validation knobs and no cap. Yields
// the committed batch list the interleaved run must align into generations.
std::vector<std::vector<serve::UpdateBatch>> canonical_producer_batches(
    const std::vector<ProducerScript>& scripts,
    const serve::IngestConfig& shape) {
  std::vector<std::vector<serve::UpdateBatch>> out(scripts.size());
  for (std::size_t p = 0; p < scripts.size(); ++p) {
    serve::IngestConfig solo_cfg;
    solo_cfg.num_producers = 1;
    solo_cfg.queue_cap = 0;  // the reference replay never feels backpressure
    solo_cfg.max_strikes = shape.max_strikes;
    solo_cfg.num_vertices = shape.num_vertices;
    serve::MultiProducerIngest solo(solo_cfg);
    ProducerState st;
    while (!st.done) producer_step(solo, 0, scripts[p], st);
    while (std::optional<serve::UpdateBatch> g = solo.take_generation()) {
      out[p].push_back(std::move(*g));
    }
  }
  return out;
}

std::vector<serve::UpdateBatch> expected_generations(
    const std::vector<std::vector<serve::UpdateBatch>>& canonical) {
  std::size_t max_generations = 0;
  for (const auto& batches : canonical) {
    max_generations = std::max(max_generations, batches.size());
  }
  std::vector<serve::UpdateBatch> gens(max_generations);
  for (std::size_t g = 0; g < max_generations; ++g) {
    for (const auto& batches : canonical) {  // producer-id order
      if (g < batches.size()) {
        gens[g].updates.insert(gens[g].updates.end(),
                               batches[g].updates.begin(),
                               batches[g].updates.end());
      }
    }
  }
  return gens;
}

bool mpc_metrics_equal(const mpc::MpcMetrics& a, const mpc::MpcMetrics& b) {
  return a.rounds == b.rounds && a.messages == b.messages &&
         a.total_words == b.total_words &&
         a.max_send_words == b.max_send_words &&
         a.max_recv_words == b.max_recv_words &&
         a.max_storage_words == b.max_storage_words &&
         a.violations == b.violations && a.random_words == b.random_words &&
         a.faults_injected == b.faults_injected &&
         a.checkpoints == b.checkpoints &&
         a.recovery_rounds == b.recovery_rounds &&
         a.degraded_subrounds == b.degraded_subrounds &&
         a.deadline_misses == b.deadline_misses &&
         a.speculative_rounds == b.speculative_rounds &&
         a.corrupt_detected == b.corrupt_detected &&
         a.integrity_retries == b.integrity_retries &&
         a.quarantined_rounds == b.quarantined_rounds;
}

// Twin-comparable slice of the service ledger: everything except the
// durability counters (journal_writes / recoveries / tombstones), which
// legitimately differ between a crashed-and-recovered service and its
// uncrashed twin.
bool service_ledgers_equal(const serve::ServiceMetrics& a,
                           const serve::ServiceMetrics& b) {
  return a.epochs == b.epochs && a.batches == b.batches &&
         a.updates_seen == b.updates_seen &&
         a.updates_applied == b.updates_applied &&
         a.updates_noop == b.updates_noop && a.skips == b.skips &&
         a.repairs_frontier == b.repairs_frontier &&
         a.repairs_full == b.repairs_full &&
         a.cascade_repairs == b.cascade_repairs &&
         a.repair_retries == b.repair_retries &&
         a.quarantine_escalations == b.quarantine_escalations &&
         a.certifications_region == b.certifications_region &&
         a.certifications_full == b.certifications_full &&
         a.faults_injected == b.faults_injected &&
         a.heartbeats == b.heartbeats &&
         a.watchdog_escalations == b.watchdog_escalations &&
         a.watchdog_failstops == b.watchdog_failstops;
}

// Brute-force check of one epoch-pinned point query: BFS over the
// snapshot's own graph, nearest member by (distance, id).
bool point_query_consistent(const serve::QuerySnapshot& snap, VertexId v) {
  const Graph& g = snap.graph();
  std::vector<bool> in_set(g.num_vertices(), false);
  for (VertexId m : snap.ruling_set()) in_set[m] = true;
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  std::deque<VertexId> queue{v};
  dist[v] = 0;
  bool covered = false;
  VertexId member = 0;
  std::uint32_t best = kUnreached;
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop_front();
    if (in_set[x] &&
        (!covered || dist[x] < best || (dist[x] == best && x < member))) {
      covered = true;
      member = x;
      best = dist[x];
    }
    if (dist[x] >= snap.beta()) continue;
    for (VertexId w : g.neighbors(x)) {
      if (dist[w] != kUnreached) continue;
      dist[w] = dist[x] + 1;
      queue.push_back(w);
    }
  }
  const serve::PointQueryResult r = snap.nearest_member(v);
  if (r.covered != covered) return false;
  if (!covered) return true;
  return r.member == member && r.distance == best &&
         snap.covered(v) && snap.is_member(member);
}

}  // namespace

serve::UpdateBatch chaos_churn_batch(std::uint64_t base_seed,
                                     std::uint64_t index, std::uint64_t batch,
                                     std::uint64_t n, std::uint64_t updates) {
  serve::UpdateBatch out;
  if (n < 2) return out;
  std::uint64_t state =
      mix(base_seed ^ mix(index ^ 0x636875726eull)) ^ mix(batch + 17);
  for (std::uint64_t i = 0; i < updates; ++i) {
    state = mix(state + i + 1);
    const VertexId u = static_cast<VertexId>(state % n);
    state = mix(state);
    VertexId v = static_cast<VertexId>(state % n);
    if (v == u) v = static_cast<VertexId>((v + 1) % n);
    state = mix(state);
    const auto op = (state & 1) ? serve::EdgeUpdate::Op::kInsert
                                : serve::EdgeUpdate::Op::kDelete;
    out.updates.push_back({op, u, v});
    if ((state >> 8) % 8 == 0) {
      // Contradictory duplicate of the same pair: the later line must win
      // (stream semantics), and whichever side is a no-op must cancel.
      out.updates.push_back({op == serve::EdgeUpdate::Op::kInsert
                                 ? serve::EdgeUpdate::Op::kDelete
                                 : serve::EdgeUpdate::Op::kInsert,
                             u, v});
    }
  }
  return out;
}

namespace {

// The concurrent counterpart of run_churn_soak (ChurnOptions::producers > 1):
// every schedule routes its update stream through a MultiProducerIngest
// driven by a seeded line-interleaving scheduler, and the parity battery
// additionally pins generation alignment against the canonical per-producer
// replay, producer quarantine/ejection semantics, epoch-pinned point
// queries, and final bit-identity against a single-producer twin.
ChurnReport run_concurrent_churn_soak(const ChurnOptions& options) {
  ChurnReport report;
  std::vector<const AlgorithmInfo*> algorithms;
  algorithms.push_back(&algorithm_info(Algorithm::kGreedySequential));
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model == Model::kMpc) algorithms.push_back(&info);
  }

  for (std::uint64_t s = 0; s < options.schedules; ++s) {
    RunSpec base;
    base.gen = kGenerators[s % 4];
    base.n = options.n;
    base.avg_deg = options.avg_deg;
    base.seed = options.base_seed + s;
    base.machines = options.machines;
    const std::string fault_spec = chaos_fault_spec(options.base_seed, s);
    const Graph g = build_graph(base);

    const std::uint64_t h = mix(options.base_seed ^ mix(s ^ 0x5ca1ab1eull));
    const bool crash_schedule = !options.journal_dir.empty() && s % 3 == 0;
    const bool eject_flavor = s % 4 == 1;
    const bool heal_flavor = s % 4 == 3;
    const auto poisoned = static_cast<std::uint32_t>(s % options.producers);

    // Producer scripts and the canonical generation alignment they must
    // merge into are pure functions of the schedule, shared across the
    // algorithm sweep.
    serve::IngestConfig ishape;
    ishape.num_producers = options.producers;
    ishape.queue_cap = options.queue_cap;
    ishape.num_vertices = static_cast<VertexId>(options.n);
    const std::vector<ProducerScript> scripts =
        build_producer_scripts(options, s);
    const std::vector<serve::UpdateBatch> expected =
        expected_generations(canonical_producer_batches(scripts, ishape));

    for (const AlgorithmInfo* info : algorithms) {
      RunSpec run = base;
      run.algorithm = std::string(info->name);
      run.beta = info->max_beta == 0 ? std::max(info->min_beta, 2u)
                                     : info->min_beta;
      static constexpr std::uint32_t kSoakThreadWidths[] = {1, 2, 4};
      run.threads = kSoakThreadWidths[s % 3];

      const RulingSetOptions truth_options = options_from_spec(run);
      run.faults = fault_spec;

      std::vector<std::string> service_lines;
      serve::ServiceConfig cfg;
      cfg.options = options_from_spec(run);
      cfg.options.mpc.trace_hook =
          [&service_lines](const mpc::RoundTrace& trace) {
            service_lines.push_back(record_line(trace));
          };
      cfg.admit_budget = pick_u64(h, 0, {0, 4, 8, 16});
      cfg.max_epochs_per_apply = pick_u64(h, 1, {0, 0, 2, 3});
      cfg.full_certify_every = pick_u64(h, 2, {1, 4, 8, 16});
      cfg.full_threshold = pick(h, 3, {0.02, 0.05, 0.1, 0.3});
      // Half the schedules arm the watchdog with a deadline far above any
      // soak-sized repair: the armed path must not perturb parity (tripping
      // it is a deliberate unit-test scenario, not a soak flavor).
      cfg.watchdog_deadline = pick_u64(h, 4, {0, 0, 1u << 20, 1u << 20});
      if (!options.journal_dir.empty()) {
        cfg.journal_path = options.journal_dir + "/cchurn_s" +
                           std::to_string(s) + "_" + run.algorithm + ".rsj";
      }

      auto fail = [&](const std::string& what) {
        ChaosFailure f;
        f.schedule = s;
        f.algorithm = run.algorithm;
        f.fault_spec = fault_spec;
        f.what = what;
        report.failures.push_back(std::move(f));
      };

      try {
        serve::MultiProducerIngest ingest(ishape);
        std::vector<ProducerState> states(options.producers);
        serve::RulingSetService service(g, cfg);

        std::vector<serve::UpdateBatch> applied;
        const std::size_t crash_generation = expected.size() / 2;
        bool crashed_any = false;
        bool schedule_failed = false;

        // Journals ready tombstones, then applies every aligned generation,
        // running the parity battery after each: canonical alignment, oracle
        // set identity, single-rerun ledger + record-log comparison,
        // brute-forced point queries, and epoch-pinning of a handle taken
        // before the commit.
        auto pump = [&] {
          for (const serve::ProducerTombstone& t : ingest.take_tombstones()) {
            service.record_tombstone(t);
          }
          std::optional<serve::UpdateBatch> gen;
          while (!schedule_failed && (gen = ingest.take_generation())) {
            const std::size_t index = applied.size();
            applied.push_back(*gen);
            if (index >= expected.size() ||
                !(gen->updates == expected[index].updates)) {
              fail("generation " + std::to_string(index) +
                   " diverged from the canonical producer alignment");
              schedule_failed = true;
              return;
            }

            const serve::QueryHandle pinned = service.query();
            const auto probe = static_cast<VertexId>(mix(h + index) % options.n);
            const std::uint64_t pinned_epoch = pinned->epoch();
            const serve::PointQueryResult before = pinned->nearest_member(probe);

            service_lines.clear();
            const bool crash_here =
                crash_schedule && !crashed_any && index == crash_generation;
            bool crashed = false;
            const std::uint64_t epoch_before = service.epoch();
            if (crash_here) {
              service.crash_hook = [](std::string_view stage) {
                if (stage == "pre-commit") throw SimulatedCrash{};
              };
            }
            serve::BatchReport breport;
            try {
              breport = service.apply(*gen);
            } catch (const SimulatedCrash&) {
              crashed = true;
            }
            if (crashed) {
              crashed_any = true;
              ++report.crashes_injected;
              accumulate(report, service.metrics());
              service = serve::RulingSetService::recover(cfg);
              service_lines.clear();
              breport = service.epoch() == epoch_before ? service.apply(*gen)
                                                        : service.drain();
            }
            service.crash_hook = nullptr;
            while (service.pending() > 0) {
              const serve::BatchReport more = service.drain();
              breport.epochs += more.epochs;
              breport.repair_retries += more.repair_retries;
            }
            ++report.batches_applied;
            report.updates_deferred += breport.deferred;

            const RulingSetResult oracle =
                compute_ruling_set(service.snapshot(), truth_options);
            if (service.ruling_set() != oracle.ruling_set) {
              fail("incremental set diverged from from-scratch recompute at "
                   "generation " +
                   std::to_string(index) + " (size " +
                   std::to_string(service.ruling_set().size()) + " vs " +
                   std::to_string(oracle.ruling_set.size()) + ")");
              schedule_failed = true;
              return;
            }
            // When the generation committed as exactly one un-retried rerun,
            // the whole repair ledger and the record-log bodies must match a
            // from-scratch run under the options the repair actually used
            // (retries trace every attempt, so they only check set parity).
            if (breport.epochs == 1 &&
                breport.scope != serve::RepairScope::kSkip &&
                breport.repair_retries == 0 && !service_lines.empty()) {
              std::vector<std::string> oracle_lines;
              RulingSetOptions oracle_options = service.last_repair_options();
              oracle_options.mpc.trace_hook =
                  [&oracle_lines](const mpc::RoundTrace& trace) {
                    oracle_lines.push_back(record_line(trace));
                  };
              const RulingSetResult rerun =
                  compute_ruling_set(service.snapshot(), oracle_options);
              if (!mpc_metrics_equal(service.last_repair_result().metrics,
                                     rerun.metrics)) {
                fail("repair cost ledger diverged from the from-scratch rerun "
                     "at generation " +
                     std::to_string(index));
                schedule_failed = true;
                return;
              }
              if (service_lines != oracle_lines) {
                fail("record-log bodies diverged from the from-scratch rerun "
                     "at generation " +
                     std::to_string(index));
                schedule_failed = true;
                return;
              }
            }

            // A fresh handle reflects exactly the committed epoch...
            const serve::QueryHandle fresh = service.query();
            if (fresh->epoch() != service.epoch()) {
              fail("fresh query handle is not at the committed epoch");
              schedule_failed = true;
              return;
            }
            for (int q = 0; q < 3; ++q) {
              const auto v =
                  static_cast<VertexId>(mix(h + 31 * index + q) % options.n);
              if (!point_query_consistent(*fresh, v)) {
                fail("point query inconsistent with brute force at epoch " +
                     std::to_string(service.epoch()));
                schedule_failed = true;
                return;
              }
              ++report.query_checks;
            }
            // ...while the pinned handle stays frozen at its epoch.
            const serve::PointQueryResult after = pinned->nearest_member(probe);
            if (pinned->epoch() != pinned_epoch ||
                after.covered != before.covered ||
                (after.covered && (after.member != before.member ||
                                   after.distance != before.distance))) {
              fail("epoch-pinned query handle changed across a commit");
              schedule_failed = true;
              return;
            }
          }
        };

        // Seeded interleaving: pick any unfinished producer, advance it one
        // push attempt, pump on backpressure and periodically. Different
        // schedules (and the mix stream) visit different interleavings; the
        // alignment check above proves the service never sees them.
        std::uint64_t rng = mix(h ^ 0xC0FFEEull);
        std::uint64_t steps = 0;
        while (!schedule_failed) {
          std::vector<std::uint32_t> active;
          for (std::uint32_t p = 0; p < options.producers; ++p) {
            if (!states[p].done) active.push_back(p);
          }
          if (active.empty()) break;
          rng = mix(rng);
          const std::uint32_t p = active[rng % active.size()];
          const serve::PushStatus status =
              producer_step(ingest, p, scripts[p], states[p]);
          ++steps;
          if (status == serve::PushStatus::kWouldBlock || steps % 7 == 0) {
            pump();
          }
        }
        if (!schedule_failed) {
          ingest.close_all();
          pump();  // once all streams closed, every queued batch is takeable
        }

        const serve::IngestMetrics im = ingest.metrics();
        report.generations += im.generations;
        report.backpressure += im.backpressure;
        report.producer_strikes += im.strikes;
        report.producer_ejections += im.ejections;

        if (!schedule_failed && !ingest.drained()) {
          fail("ingest front not drained after close_all");
          schedule_failed = true;
        }
        if (!schedule_failed && applied.size() != expected.size()) {
          fail("applied " + std::to_string(applied.size()) +
               " generations, canonical alignment has " +
               std::to_string(expected.size()));
          schedule_failed = true;
        }
        if (!schedule_failed && eject_flavor) {
          if (!ingest.ejected(poisoned) || im.ejections != 1) {
            fail("poisoned producer was not ejected");
            schedule_failed = true;
          } else {
            bool journaled = false;
            for (const serve::ProducerTombstone& t : service.tombstones()) {
              journaled = journaled || t.producer == poisoned;
            }
            if (!journaled) {
              fail("ejection tombstone was not journaled");
              schedule_failed = true;
            }
          }
        }
        if (!schedule_failed && heal_flavor &&
            (im.ejections != 0 || im.strikes == 0)) {
          fail("healing producer should strike and recover, saw " +
               std::to_string(im.strikes) + " strikes / " +
               std::to_string(im.ejections) + " ejections");
          schedule_failed = true;
        }

        // The uncrashed single-producer twin fed the merged sequence from
        // scratch: final bits must match, and on crash-free schedules so
        // must the whole twin-comparable metrics ledger.
        if (!schedule_failed) {
          serve::ServiceConfig twin_cfg = cfg;
          twin_cfg.options.mpc.trace_hook = nullptr;
          if (!twin_cfg.journal_path.empty()) twin_cfg.journal_path += ".twin";
          serve::RulingSetService twin(g, twin_cfg);
          for (const serve::UpdateBatch& gen : applied) {
            twin.apply(gen);
            while (twin.pending() > 0) twin.drain();
          }
          if (twin.ruling_set() != service.ruling_set()) {
            fail("final set diverged from the single-producer twin");
            schedule_failed = true;
          } else if (twin.graph().fingerprint() !=
                     service.graph().fingerprint()) {
            fail("final graph fingerprint diverged from the twin");
            schedule_failed = true;
          } else if (twin.epoch() != service.epoch()) {
            fail("final epoch diverged from the twin");
            schedule_failed = true;
          } else if (twin.metrics().heartbeats !=
                     service.metrics().heartbeats) {
            fail("heartbeat position diverged from the twin (" +
                 std::to_string(service.metrics().heartbeats) + " vs " +
                 std::to_string(twin.metrics().heartbeats) + ")");
            schedule_failed = true;
          } else if (!crashed_any && !service_ledgers_equal(
                                         twin.metrics(), service.metrics())) {
            fail("service metrics ledger diverged from the twin");
            schedule_failed = true;
          }
        }

        ++report.runs;
        if (!schedule_failed && options.certify) {
          const Graph final_graph = service.snapshot();
          const RulingSetCertificate cert = mpc::certify_ruling_set(
              final_graph, service.ruling_set(), run.beta, cfg.options.mpc);
          if (!cert.valid()) {
            fail("final certification failed: " + cert.to_string());
          } else if (!cross_validate_certificate(final_graph,
                                                 service.ruling_set(), cert)) {
            fail("final certificate failed sequential cross-validation");
          } else {
            ++report.certified;
          }
        }
        accumulate(report, service.metrics());
        report.heartbeats += service.metrics().heartbeats;
      } catch (const serve::ServiceError& e) {
        fail(std::string("service error: ") + e.what());
        ++report.runs;
      }
    }
    ++report.schedules_run;
    if (options.progress) options.progress(s + 1, report.runs);
  }
  return report;
}

}  // namespace

ChurnReport run_churn_soak(const ChurnOptions& options) {
  if (options.producers > 1) return run_concurrent_churn_soak(options);
  ChurnReport report;
  // The MPC registry plus the sequential greedy backend (the exact
  // β-hop-cascade repair path).
  std::vector<const AlgorithmInfo*> algorithms;
  algorithms.push_back(&algorithm_info(Algorithm::kGreedySequential));
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model == Model::kMpc) algorithms.push_back(&info);
  }

  for (std::uint64_t s = 0; s < options.schedules; ++s) {
    RunSpec base;
    base.gen = kGenerators[s % 4];
    base.n = options.n;
    base.avg_deg = options.avg_deg;
    base.seed = options.base_seed + s;
    base.machines = options.machines;
    const std::string fault_spec = chaos_fault_spec(options.base_seed, s);
    const Graph g = build_graph(base);

    // Service-shape knobs rotate independently of the fault spec so the
    // admission/deferral/escalation paths all see every fault mix.
    const std::uint64_t h = mix(options.base_seed ^ mix(s ^ 0x5ca1ab1eull));
    const bool crash_schedule = !options.journal_dir.empty() && s % 3 == 0;

    for (const AlgorithmInfo* info : algorithms) {
      RunSpec run = base;
      run.algorithm = std::string(info->name);
      run.beta = info->max_beta == 0 ? std::max(info->min_beta, 2u)
                                     : info->min_beta;
      static constexpr std::uint32_t kSoakThreadWidths[] = {1, 2, 4};
      run.threads = kSoakThreadWidths[s % 3];

      // Fault-free from-scratch options: the parity oracle. The service
      // itself runs under the fault schedule — faults may only move the
      // cost ledger, so the maintained bits must still match this oracle.
      const RulingSetOptions truth_options = options_from_spec(run);
      run.faults = fault_spec;

      serve::ServiceConfig cfg;
      cfg.options = options_from_spec(run);
      cfg.admit_budget = pick_u64(h, 0, {0, 4, 8, 16});
      cfg.max_epochs_per_apply = pick_u64(h, 1, {0, 0, 2, 3});
      cfg.full_certify_every = pick_u64(h, 2, {1, 4, 8, 16});
      cfg.full_threshold =
          pick(h, 3, {0.02, 0.05, 0.1, 0.3});
      if (!options.journal_dir.empty()) {
        cfg.journal_path = options.journal_dir + "/churn_s" +
                           std::to_string(s) + "_" + run.algorithm + ".rsj";
      }

      auto fail = [&](const std::string& what) {
        ChaosFailure f;
        f.schedule = s;
        f.algorithm = run.algorithm;
        f.fault_spec = fault_spec;
        f.what = what;
        report.failures.push_back(std::move(f));
      };

      try {
        serve::RulingSetService service(g, cfg);
        const std::uint64_t crash_batch = options.batches / 2;
        bool schedule_failed = false;
        for (std::uint64_t b = 0; b < options.batches; ++b) {
          const serve::UpdateBatch batch = chaos_churn_batch(
              options.base_seed, s, b, options.n, options.batch_updates);
          const bool crash_here = crash_schedule && b == crash_batch;
          bool crashed = false;
          const std::uint64_t epoch_before = service.epoch();
          if (crash_here) {
            service.crash_hook = [](std::string_view stage) {
              if (stage == "pre-commit") throw SimulatedCrash{};
            };
          }
          serve::BatchReport breport;
          try {
            breport = service.apply(batch);
          } catch (const SimulatedCrash&) {
            crashed = true;
          }
          if (crashed) {
            ++report.crashes_injected;
            accumulate(report, service.metrics());
            service = serve::RulingSetService::recover(cfg);
            // A batch is durably admitted at its first epoch commit; a
            // crash before that means the client must resubmit it.
            breport = service.epoch() == epoch_before ? service.apply(batch)
                                                      : service.drain();
          }
          // Drain deferrals so the parity check sees the whole batch.
          while (service.pending() > 0) {
            const serve::BatchReport more = service.drain();
            breport.epochs += more.epochs;
          }
          ++report.batches_applied;
          report.updates_deferred += breport.deferred;

          const RulingSetResult oracle =
              compute_ruling_set(service.snapshot(), truth_options);
          if (service.ruling_set() != oracle.ruling_set) {
            fail("incremental set diverged from from-scratch recompute at "
                 "batch " +
                 std::to_string(b) + " (size " +
                 std::to_string(service.ruling_set().size()) + " vs " +
                 std::to_string(oracle.ruling_set.size()) + ")");
            schedule_failed = true;
            break;
          }
        }
        ++report.runs;
        if (!schedule_failed && options.certify) {
          const Graph final_graph = service.snapshot();
          const RulingSetCertificate cert = mpc::certify_ruling_set(
              final_graph, service.ruling_set(), run.beta, cfg.options.mpc);
          if (!cert.valid()) {
            fail("final certification failed: " + cert.to_string());
          } else if (!cross_validate_certificate(
                         final_graph, service.ruling_set(), cert)) {
            fail("final certificate failed sequential cross-validation");
          } else {
            ++report.certified;
          }
        }
        accumulate(report, service.metrics());
      } catch (const serve::ServiceError& e) {
        fail(std::string("service error: ") + e.what());
        ++report.runs;
      }
    }
    ++report.schedules_run;
    if (options.progress) options.progress(s + 1, report.runs);
  }
  return report;
}

}  // namespace rsets
