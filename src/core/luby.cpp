#include "core/luby.hpp"

#include <algorithm>

#include "mpc/dist_graph.hpp"
#include "mpc/primitives.hpp"
#include "util/logging.hpp"

namespace rsets {
namespace {

using mpc::MachineId;
using mpc::Word;

}  // namespace

RulingSetResult luby_mis_mpc(const Graph& g, const mpc::MpcConfig& cfg) {
  mpc::Simulator sim(cfg);
  mpc::DistGraph dg(sim, g);
  return luby_mis_mpc(sim, dg);
}

RulingSetResult luby_mis_mpc(mpc::Simulator& sim, mpc::DistGraph& dg) {
  const VertexId n = dg.num_vertices();
  const MachineId m_count = sim.num_machines();

  RulingSetResult result;
  result.beta = 1;
  std::vector<VertexId>& mis = result.ruling_set;

  std::vector<std::uint64_t> priority(n, 0);

  // Checkpointable driver state: everything that survives across rounds.
  sim.register_snapshotable("dist_graph", &dg);
  auto driver_state =
      mpc::snapshot_of(result.ruling_set, result.phases, priority);
  sim.register_snapshotable("luby", &driver_state);

  while (dg.active_count() > 0) {
    ++result.phases;
    // Round A: owners draw priorities and route each owned active vertex's
    // priority to the owners of its active neighbors.
    std::vector<std::vector<std::vector<Word>>> out(
        m_count, std::vector<std::vector<Word>>(m_count));
    sim.round([&](mpc::Machine& machine, const mpc::Inbox&) {
      const MachineId m = machine.id();
      for (VertexId v : dg.owned(m)) {
        if (!dg.active(v)) continue;
        priority[v] = machine.rng().next();
      }
      for (VertexId v : dg.owned(m)) {
        if (!dg.active(v)) continue;
        for (VertexId u : dg.neighbors(v)) {
          if (!dg.active(u)) continue;
          const MachineId dst = dg.owner(u);
          out[m][dst].push_back(u);
          out[m][dst].push_back(priority[v]);
          out[m][dst].push_back(v);
        }
      }
      // Ship this machine's buckets.
      for (MachineId dst = 0; dst < m_count; ++dst) {
        if (dst != m && !out[m][dst].empty()) {
          machine.send(dst, 0x70, out[m][dst]);
        }
      }
    });
    // Boundary: owners fold received neighbor priorities into join
    // decisions (smallest (priority, id) in closed neighborhood wins).
    std::vector<bool> joined(n, false);
    {
      // Byte-per-vertex: written from inside the drain callback (each owner
      // writes only vertices it owns, but bit-packed elements share bytes
      // across owners).
      std::vector<std::uint8_t> blocked(n, 0);
      auto consider = [&](VertexId target, std::uint64_t prio,
                          VertexId from) {
        if (prio < priority[target] ||
            (prio == priority[target] && from < target)) {
          blocked[target] = 1;
        }
      };
      sim.drain([&](mpc::Machine& machine, const mpc::Inbox& inbox) {
        const MachineId m = machine.id();
        // Local (same-owner) neighbor pairs never left the machine.
        const auto& local = out[m][m];
        for (std::size_t i = 0; i + 3 <= local.size(); i += 3) {
          consider(static_cast<VertexId>(local[i]), local[i + 1],
                   static_cast<VertexId>(local[i + 2]));
        }
        for (const mpc::MessageView& msg : inbox.with_tag(0x70)) {
          for (std::size_t i = 0; i + 3 <= msg.payload.size(); i += 3) {
            consider(static_cast<VertexId>(msg.payload[i]),
                     msg.payload[i + 1],
                     static_cast<VertexId>(msg.payload[i + 2]));
          }
        }
      });
      for (MachineId m = 0; m < m_count; ++m) {
        for (VertexId v : dg.owned(m)) {
          if (dg.active(v) && !blocked[v]) joined[v] = true;
        }
      }
    }
    // Round B: announce joiners cluster-wide (replicated knowledge), then
    // owners retire joiners and their neighbors in one deactivation round.
    std::vector<std::vector<Word>> join_lists(m_count);
    for (MachineId m = 0; m < m_count; ++m) {
      for (VertexId v : dg.owned(m)) {
        if (joined[v]) join_lists[m].push_back(v);
      }
    }
    sim.round([&](mpc::Machine& machine, const mpc::Inbox&) {
      const MachineId src = machine.id();
      if (join_lists[src].empty()) return;
      for (MachineId dst = 0; dst < m_count; ++dst) {
        if (dst != src) machine.send(dst, 0x71, join_lists[src]);
      }
    });
    sim.drain([](mpc::Machine&, const mpc::Inbox&) {});

    std::vector<std::vector<VertexId>> removals(m_count);
    for (MachineId m = 0; m < m_count; ++m) {
      for (VertexId v : dg.owned(m)) {
        if (!dg.active(v)) continue;
        bool leave = joined[v];
        if (!leave) {
          for (VertexId u : dg.neighbors(v)) {
            if (dg.active(u) && joined[u]) {
              leave = true;
              break;
            }
          }
        }
        if (leave) removals[m].push_back(v);
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (joined[v]) mis.push_back(v);
    }
    dg.deactivate(sim, removals);
  }

  std::sort(mis.begin(), mis.end());
  sim.sync_metrics();
  result.metrics = sim.metrics();
  RSETS_INFO << "luby_mpc: n=" << n << " |MIS|=" << mis.size()
             << " iterations=" << result.phases
             << " rounds=" << result.metrics.rounds;
  return result;
}

}  // namespace rsets
