// Internal helpers shared by the phase-based MPC ruling-set algorithms
// (deterministic and randomized): subgraph gather + local MIS, ball removal,
// and active-edge counting. Not part of the public API.
//
// Membership masks are byte-per-vertex (std::vector<std::uint8_t>), not
// std::vector<bool>: drivers fill them from inside round callbacks, and the
// round-parallel simulator requires concurrent writers to touch distinct
// bytes (bit-packed elements share them).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/dist_graph.hpp"
#include "mpc/simulator.hpp"

namespace rsets::detail {

// Total edges of the active subgraph (one u64 allreduce, 2 rounds).
std::uint64_t count_active_edges(mpc::Simulator& sim,
                                 const mpc::DistGraph& dg);

// Gathers the `members`-induced active subgraph onto machine 0 (1 round,
// transient storage charged there), computes a greedy MIS by id order, and
// broadcasts it (1 round). `in_members` must be the indicator of `members`.
std::vector<VertexId> gather_and_mis(mpc::Simulator& sim,
                                     const mpc::DistGraph& dg,
                                     const std::vector<VertexId>& members,
                                     const std::vector<std::uint8_t>& in_members);

// Deactivates every active vertex within `radius` hops of the set indicated
// by `in_marked`. Hop 1 is evaluated locally by owners (marked membership is
// cluster-replicated knowledge in both algorithms: seed-evaluable for the
// deterministic one, announced for the randomized one); hops 2..radius cost
// one all-to-all each; plus one deactivation round. Returns removals.
std::uint64_t remove_ball(mpc::Simulator& sim, mpc::DistGraph& dg,
                          const std::vector<std::uint8_t>& in_marked,
                          std::uint32_t radius);

}  // namespace rsets::detail
