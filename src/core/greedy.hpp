// Sequential greedy baselines: ground truth for tests and quality yardstick
// for benches. Not distributed; shares no machinery with the MPC algorithms.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace rsets {

// Lexicographic greedy MIS: scan vertices in id order, add if no smaller-id
// neighbor was added. O(n + m).
std::vector<VertexId> greedy_mis(const Graph& g);

// Greedy beta-ruling set: scan in id order; add v if no already-chosen
// member lies within beta hops of v (checked by truncated BFS). The result
// is independent (beta >= 1) and beta-dominating. O(n * ball_size) worst
// case — fine as an oracle.
std::vector<VertexId> greedy_ruling_set(const Graph& g, std::uint32_t beta);

// Greedy (alpha, beta)-ruling set: scan in id order; add v if every
// already-chosen member is at distance >= alpha. Requires alpha <= beta + 1
// (otherwise a vertex can be neither addable nor dominated).
std::vector<VertexId> greedy_alpha_beta_ruling_set(const Graph& g,
                                                   std::uint32_t alpha,
                                                   std::uint32_t beta);

}  // namespace rsets
