// Randomized sample-and-gather 2-ruling sets in MPC
// (Kothapalli–Pai–Pemmaraju-style) — the randomized counterpart of the
// paper's deterministic algorithm.
//
// Phase: sample each active vertex with probability p = c*ln(n)/d, where d
// is chosen so the sampled subgraph fits the gather budget w.h.p.; gather
// G[sample] on one machine, add a local MIS of it to the output, and remove
// N[sample]. All vertices of active degree >= d are covered w.h.p., so the
// max degree drops below d and O(log log Delta) phases suffice — the same
// phase structure as the deterministic algorithm, but bought with random
// bits instead of seed fixing.
#pragma once

#include "core/ruling_set.hpp"

namespace rsets {

struct SampleGatherOptions {
  std::uint64_t gather_budget_words = 0;  // 0 -> 32 * n
  double sample_scale = 2.0;              // c in p = c*ln(n)/d
  int max_retries_per_phase = 16;         // re-sample if budget is exceeded
};

RulingSetResult sample_gather_2ruling(const Graph& g,
                                      const mpc::MpcConfig& cfg,
                                      const SampleGatherOptions& options = {});

}  // namespace rsets
