// The deterministic sampling step: distributed method of conditional
// expectations over a pairwise-independent marking family.
//
// Given an active graph, a candidate set C (potential marks) and a target
// set T (vertices that must end up with a marked closed neighbor), this step
// deterministically fixes a seed such that the marked set M = {v in C :
// mark(v)} satisfies, unconditionally:
//
//   (1) at least |T|/8 targets have a marked vertex in their (truncated)
//       closed neighborhood, and
//   (2) the number of edges inside M is below the gather budget.
//
// Pessimistic estimator (all terms exact conditional expectations, see
// hash_family.hpp):
//
//   Phi = sum_{v in T} Z_v  -  lambda * X / budget
//   Z_v = sum_{u in T_v} P(mark u)  -  sum_{u<w in T_v} P(mark u AND mark w)
//   X   = sum_{(u,w) in E, u,w in C} P(mark u AND mark w)
//
// where T_v is a truncation of N[v] ∩ C to 2^k vertices (so that
// p*|T_v| <= 1, keeping the Bonferroni bound Z_v <= 1[some T_v member
// marked] tight), p = 2^-k is the marking probability, and lambda = 8|T|.
// With p*|T_v| in (1/2, 1] and E[X] <= budget/32 these give E[Phi] >= |T|/8,
// and the conditional-expectations engine turns that expectation into a
// certainty. See DESIGN.md §3.1 for the derivation.
//
// Distribution: every machine holds estimator shards for the targets and
// candidate edges it owns; one chunk of seed bits costs one width-2^c
// allreduce (2 MPC rounds) in which all 2^c candidate assignments are
// evaluated at once. The chosen seed is known everywhere, so marks are
// locally evaluable with zero further communication — the property the
// whole deterministic algorithm leans on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/dist_graph.hpp"
#include "util/cond_expect.hpp"
#include "util/hash_family.hpp"

namespace rsets {

struct DerandMarkOptions {
  int chunk_bits = 4;
  // Levels k of the marking family, i.e. marking probability 2^-k.
  int levels = 1;
  // Cap on E[edges within M] enforcement; see header comment.
  std::uint64_t edge_budget = 1;
};

struct DerandMarkResult {
  std::vector<VertexId> marked;  // M, sorted
  double initial_estimate = 0.0;
  double final_estimate = 0.0;
  std::uint64_t covered_targets = 0;  // targets with a marked T_v member
  std::uint64_t marked_edges = 0;     // edges inside M (exact)
  int seed_bits = 0;
  int chunks = 0;          // allreduce super-steps spent
  std::uint64_t rounds = 0;  // MPC rounds consumed (2 per chunk)
};

// Runs the derandomized marking over `dg`'s active subgraph inside `sim`.
// `candidates_mask[v]` marks candidate vertices, `targets` lists the
// vertices that need coverage (must be active candidates' neighbors or
// candidates themselves). Charges 2 MPC rounds per chunk via real
// allreduce traffic.
DerandMarkResult derand_mark(mpc::Simulator& sim, const mpc::DistGraph& dg,
                             const std::vector<bool>& candidates_mask,
                             const std::vector<VertexId>& targets,
                             const DerandMarkOptions& options);

}  // namespace rsets
