// Deterministic MPC beta-ruling sets — the paper's headline algorithm.
//
// Phase loop (near-linear memory regime; budget B words for gathers):
//   1. If the active subgraph fits in B, gather it and finish with a local
//      greedy MIS (distance <= 1 for all remaining vertices).
//   2. Otherwise pick the degree threshold d = ceil(sqrt(32 m / B)) — the
//      largest threshold whose derandomized marking provably fits the
//      budget — and repeat the derandomized marking step (derand.hpp) on the
//      targets {v : active degree >= d} until none remain. After each
//      marking: gather G[M], add a local MIS I of it to the output, and
//      deactivate every vertex within beta-1 hops of M (such vertices are
//      within beta hops of I).
// Each phase drives the max active degree below d ~ sqrt(Delta), so the
// number of phases is O(log log Delta) — claim C1.
//
// The algorithm consumes zero random bits (claim C2, checkable via
// MpcMetrics::random_words) and never exceeds machine memory or per-round
// bandwidth (claim C3, enforced by the simulator).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ruling_set.hpp"
#include "graph/graph.hpp"
#include "mpc/message.hpp"

namespace rsets::mpc {
class DistGraph;
class Simulator;
}  // namespace rsets::mpc

namespace rsets {

struct DetRulingOptions {
  std::uint32_t beta = 2;
  std::uint64_t gather_budget_words = 0;  // 0 -> 32 * n
  int chunk_bits = 4;
  int max_mark_steps_per_phase = 200;
};

RulingSetResult det_ruling_set_mpc(const Graph& g, const mpc::MpcConfig& cfg,
                                   const DetRulingOptions& options = {});

// Runs the phase loop on an already-loaded distributed graph. This is how
// sharded inputs execute the algorithm: the caller ingests a ShardedSource
// into `dg` (never materializing a global Graph) and hands it over. The
// materialized overload above is a thin wrapper around this one, so both
// paths execute byte-identically given the same CSR.
RulingSetResult det_ruling_set_mpc(mpc::Simulator& sim, mpc::DistGraph& dg,
                                   const DetRulingOptions& options = {});

}  // namespace rsets
