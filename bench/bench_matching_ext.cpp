// A1 — extension: deterministic maximal matching via the same
// derandomization engine (see docs/DERANDOMIZATION.md and DESIGN.md §3).
//
// Sweeps n on a sparse family; reported: iterations (expected to track
// O(log n), like the Luby-style step it derandomizes), rounds including the
// seed-fixing chunks, matching size vs the m/2 perfect-matching ceiling,
// zero random words, and independently verified maximality.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/det_matching.hpp"
#include "graph/generators.hpp"

namespace rsets::bench {
namespace {

void BM_DetMatching(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = gen::gnp(n, 8.0 / n, 47);
  mpc::MpcConfig cfg;
  cfg.num_machines = 8;
  cfg.memory_words = std::size_t{1} << 24;
  DetMatchingResult result;
  for (auto _ : state) {
    result = det_matching_mpc(g, cfg);
  }
  state.counters["iterations"] = static_cast<double>(result.iterations);
  state.counters["rounds"] = static_cast<double>(result.metrics.rounds);
  state.counters["chunks"] = static_cast<double>(result.derand_chunks);
  state.counters["matched"] = static_cast<double>(result.matching.size());
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["rand_words"] =
      static_cast<double>(result.metrics.random_words);
  const bool maximal = is_maximal_matching(g, result.matching);
  state.counters["valid"] = maximal ? 1.0 : 0.0;
  if (!maximal || result.metrics.random_words != 0) {
    state.SkipWithError("matching extension invariant violated");
  }
}

BENCHMARK(BM_DetMatching)
    ->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(matching_ext);
