// E7 — Derandomization ablation (claim C5).
//
// (a) chunk width: chunk_bits in {1, 2, 4, 8} trades aggregation rounds
//     (fewer, wider chunks) against per-chunk candidate-evaluation work
//     (2^c full estimator passes). The chosen seed — and hence the output —
//     may differ per width, but validity and the coverage guarantee hold
//     at every width, and `rounds` falls as chunks widen while
//     `model_rounds` stays put.
// (b) within-phase repetitions: the pairwise-independent coverage guarantee
//     is >= 1/8 of targets per marking; `steps_per_phase` reports how many
//     markings a phase actually needed (empirically ~1-3, far below the
//     worst case) — this is the theory/engineering gap DESIGN.md §3.1
//     commits to measuring rather than asserting away.
// (c) estimator integrity: `estimate_gain_min` is the minimum over all
//     marking steps of (realized Phi - initial E[Phi]); the method of
//     conditional expectations guarantees it is >= 0.
#include "bench_common.hpp"

#include "core/derand.hpp"
#include "core/det_ruling.hpp"
#include "mpc/dist_graph.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 6000;

Graph workload() { return gen::gnp(kN, 24.0 / kN, 31); }

void BM_ChunkWidth(benchmark::State& state) {
  const int chunk_bits = static_cast<int>(state.range(0));
  const Graph g = workload();
  RulingSetResult result;
  for (auto _ : state) {
    DetRulingOptions opt;
    opt.chunk_bits = chunk_bits;
    opt.gather_budget_words = 8ull * kN;
    result = det_ruling_set_mpc(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc(), chunk_bits);
  state.counters["chunk_bits"] = chunk_bits;
  state.counters["chunks"] = static_cast<double>(result.derand_chunks);
  state.counters["steps_per_phase"] =
      result.phases == 0
          ? 0.0
          : static_cast<double>(result.mark_steps) /
                static_cast<double>(result.phases);
}

void BM_EstimatorIntegrity(benchmark::State& state) {
  // Direct derand_mark probes across degree regimes: report the minimum
  // estimator gain and the minimum coverage fraction over all probes.
  double min_gain = 1e300;
  double min_cover = 1.0;
  for (auto _ : state) {
    for (const std::uint32_t d : {8u, 16u, 32u, 64u}) {
      const Graph g = gen::random_regular(3000, 2 * d, 40 + d);
      mpc::Simulator sim(default_mpc());
      mpc::DistGraph dg(sim, g);
      std::vector<VertexId> targets;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (g.degree(v) >= d) targets.push_back(v);
      }
      DerandMarkOptions opt;
      opt.levels = std::max(ceil_log2(d + 1), 1);
      opt.edge_budget = 1 << 22;
      const std::vector<bool> all(g.num_vertices(), true);
      const auto res = derand_mark(sim, dg, all, targets, opt);
      min_gain = std::min(min_gain,
                          res.final_estimate - res.initial_estimate);
      min_cover = std::min(
          min_cover, static_cast<double>(res.covered_targets) /
                         static_cast<double>(targets.size()));
    }
  }
  state.counters["estimate_gain_min"] = min_gain;
  state.counters["cover_fraction_min"] = min_cover;
  state.counters["guarantee"] = 0.125;  // the 1/8 floor from the analysis
  if (min_gain < -1e-9 || min_cover < 0.125) {
    state.SkipWithError("derandomization guarantee violated");
  }
}

BENCHMARK(BM_ChunkWidth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EstimatorIntegrity)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(derand_ablation);
