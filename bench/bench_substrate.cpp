// A0 — Substrate micro-benchmarks (appendix).
//
// Classic timing benchmarks (many iterations) for the primitives everything
// else stands on: conditional-probability queries of the marking family,
// seed fixing throughput, simulator round overhead, collective costs, and
// generator throughput. These are the numbers a user sizing a simulation
// actually needs; they complement the round-accounting experiments E1-E8.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mpc/dist_graph.hpp"
#include "mpc/primitives.hpp"
#include "util/cond_expect.hpp"
#include "util/hash_family.hpp"

namespace rsets {
namespace {

void BM_HashFamily_ProbOne(benchmark::State& state) {
  PairwiseBitLevel level(20);
  level.fix_bit(3, 1);
  level.fix_bit(17, 0);
  std::uint64_t v = 0;
  double sum = 0.0;
  for (auto _ : state) {
    sum += level.prob_one(v);
    v = (v + 0x9e37) & 0xFFFFF;
  }
  benchmark::DoNotOptimize(sum);
}

void BM_HashFamily_ProbBothOne(benchmark::State& state) {
  PairwiseBitLevel level(20);
  for (int i = 0; i < 10; ++i) level.fix_bit(i * 2, i % 2);
  std::uint64_t v = 1;
  double sum = 0.0;
  for (auto _ : state) {
    sum += level.prob_both_one(v, v + 7);
    v = (v + 0x9e37) & 0xFFFFF;
  }
  benchmark::DoNotOptimize(sum);
}

void BM_HashFamily_MarkEval(benchmark::State& state) {
  MarkingFamily family(1 << 20, 8);
  for (int b = 0; b < family.total_seed_bits(); ++b) {
    family.fix_global_bit(b, (b * 5 + 1) % 2);
  }
  std::uint64_t v = 0;
  std::uint64_t marks = 0;
  for (auto _ : state) {
    marks += family.mark(v) ? 1 : 0;
    v = (v + 0x9e37) & 0xFFFFF;
  }
  benchmark::DoNotOptimize(marks);
}

// Full seed fix over a target-count estimator of the given size.
class TargetCountEstimator : public SeedEstimator {
 public:
  TargetCountEstimator(const MarkingFamily& family, std::size_t targets)
      : family_(family) {
    for (std::size_t i = 0; i < targets; ++i) {
      ids_.push_back((i * 2654435761u) & 0xFFFF);
    }
  }
  double value() const override {
    double total = 0.0;
    for (std::uint64_t v : ids_) {
      total += family_.prob_mark(v, family_.levels());
    }
    return total;
  }

 private:
  const MarkingFamily& family_;
  std::vector<std::uint64_t> ids_;
};

void BM_FixSeed(benchmark::State& state) {
  const auto targets = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    MarkingFamily family(1 << 16, 4);
    TargetCountEstimator est(family, targets);
    const auto report = fix_seed(family, est, {.chunk_bits = 4});
    benchmark::DoNotOptimize(report.final_value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(targets));
}

void BM_SimulatorRoundOverhead(benchmark::State& state) {
  mpc::MpcConfig cfg;
  cfg.num_machines = static_cast<mpc::MachineId>(state.range(0));
  cfg.memory_words = 1 << 20;
  mpc::Simulator sim(cfg);
  for (auto _ : state) {
    sim.round([](mpc::Machine&, const mpc::Inbox&) {});
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_AllReduceSum(benchmark::State& state) {
  mpc::MpcConfig cfg;
  cfg.num_machines = 8;
  cfg.memory_words = 1 << 22;
  mpc::Simulator sim(cfg);
  const auto width = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> contributions(
      8, std::vector<double>(width, 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(allreduce_sum(sim, contributions));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(width) * 8);
}

void BM_GnpGeneration(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Graph g = gen::gnp(n, 8.0 / n, seed++);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_DistGraphLoad(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = gen::gnp(n, 8.0 / n, 3);
  mpc::MpcConfig cfg;
  cfg.num_machines = 8;
  cfg.memory_words = 1 << 24;
  for (auto _ : state) {
    mpc::Simulator sim(cfg);
    mpc::DistGraph dg(sim, g);
    benchmark::DoNotOptimize(dg.active_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_HashFamily_ProbOne);
BENCHMARK(BM_HashFamily_ProbBothOne);
BENCHMARK(BM_HashFamily_MarkEval);
BENCHMARK(BM_FixSeed)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_SimulatorRoundOverhead)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_AllReduceSum)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_GnpGeneration)->Arg(10000)->Arg(100000);
BENCHMARK(BM_DistGraphLoad)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace rsets

RSETS_BENCH_MAIN(substrate);
