// E11 — Integrity overhead: checksummed transport vs. plain, and the cost
// of healing under live corruption.
//
// Three configurations at fixed n, sweeping the corruption rate:
//   arg 0            — integrity off, fault-free (the plain baseline)
//   arg 1            — integrity on, fault-free (pure verification cost)
//   args 2..         — corrupt~p for p in {0.01, 0.05, 0.3}; healing active
// The checksum rides in the already-charged two-word header, so the word
// ledger of arg 1 must equal arg 0 exactly (overhead_words == 0); only wall
// time may move, and only by the FNV pass. Under corruption, overhead_words
// tracks the retransmissions and overhead_rounds the quarantine
// re-executions — the price of a bit-identical result on a noisy network,
// which the validity counter asserts every run.
#include "bench_common.hpp"

#include "core/det_ruling.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 6000;
constexpr double kCorruptProbs[] = {0.01, 0.05, 0.3};

Graph family_graph() { return gen::gnp(kN, 16.0 / kN, 13); }

RulingSetResult run_once(const Graph& g, const mpc::MpcConfig& cfg) {
  DetRulingOptions opt;
  opt.gather_budget_words = 8ull * kN;
  return det_ruling_set_mpc(g, cfg, opt);
}

void BM_IntegrityOverhead(benchmark::State& state) {
  const auto mode = static_cast<int>(state.range(0));
  const Graph g = family_graph();

  const RulingSetResult baseline = run_once(g, default_mpc());

  mpc::MpcConfig cfg = default_mpc();
  if (mode == 1) {
    cfg.integrity = true;
  } else if (mode >= 2) {
    cfg.faults.enabled = true;
    cfg.faults.seed = 99;
    cfg.faults.corrupt_prob = kCorruptProbs[mode - 2];
  }
  RulingSetResult result;
  for (auto _ : state) {
    result = run_once(g, cfg);
  }
  report(state, g, result, cfg);
  state.counters["corrupt_prob"] =
      mode >= 2 ? kCorruptProbs[mode - 2] : 0.0;
  state.counters["integrity_on"] =
      (mode >= 1) ? 1.0 : 0.0;  // mode >= 2 activates via corrupt faults
  state.counters["overhead_words"] = static_cast<double>(
      result.metrics.total_words - baseline.metrics.total_words);
  state.counters["overhead_rounds"] = static_cast<double>(
      result.metrics.rounds - baseline.metrics.rounds);
  state.counters["corrupt_detected"] =
      static_cast<double>(result.metrics.corrupt_detected);
  state.counters["integrity_retries"] =
      static_cast<double>(result.metrics.integrity_retries);
  state.counters["quarantined_rounds"] =
      static_cast<double>(result.metrics.quarantined_rounds);
}

BENCHMARK(BM_IntegrityOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(integrity);
