// E6 — The beta trade-off (claim C4).
//
// beta in {2..6} on two families. Prediction: larger beta lets each phase
// clear a radius-(beta-1) ball around the marked set, so mark steps and
// rounds fall (or stay flat) while the output shrinks toward one member per
// far-apart region; the verified radius never exceeds beta.
#include "bench_common.hpp"

#include "core/det_ruling.hpp"
#include "core/greedy.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 6000;

Graph family_graph(int family) {
  return family == 0 ? gen::gnp(kN, 16.0 / kN, 13)
                     : gen::power_law(kN, 2.5, 12.0, 13);
}

void BM_DetRuling_Beta(benchmark::State& state) {
  const auto beta = static_cast<std::uint32_t>(state.range(0));
  const int family = static_cast<int>(state.range(1));
  const Graph g = family_graph(family);
  RulingSetResult result;
  for (auto _ : state) {
    DetRulingOptions opt;
    opt.beta = beta;
    opt.gather_budget_words = 8ull * kN;
    result = det_ruling_set_mpc(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
  state.counters["beta"] = beta;
  state.counters["mark_steps"] = static_cast<double>(result.mark_steps);
  state.counters["greedy_size"] =
      static_cast<double>(greedy_ruling_set(g, beta).size());
  state.counters["radius"] = static_cast<double>(
      domination_radius(g, result.ruling_set));
  state.SetLabel(family == 0 ? "gnp16" : "powerlaw");
}

void BetaByFamily(benchmark::internal::Benchmark* b) {
  for (int family : {0, 1}) {
    for (int beta = 2; beta <= 6; ++beta) {
      b->Args({beta, family});
    }
  }
}

BENCHMARK(BM_DetRuling_Beta)->Apply(BetaByFamily)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(beta_sweep);
