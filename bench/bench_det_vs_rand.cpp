// E5 — Determinism vs randomness (claims C1 + C2).
//
// The randomized sample-and-gather algorithm is run under 8 different RNG
// seeds; the deterministic algorithm under 8 different *machine counts and
// simulator seeds* (which must not matter). Reported per variant:
//   rounds_mean / rounds_stddev   across the 8 runs
//   size_stddev                   output-size variability
//   output_varies                 1 if any two runs disagreed on the set
// The deterministic rows must show stddev = 0 and output_varies = 0 —
// bit-identical behavior is claim C2, not an aspiration.
#include "bench_common.hpp"

#include "core/det_ruling.hpp"
#include "core/sample_gather.hpp"
#include "util/stats.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 6000;

Graph workload() { return gen::power_law(kN, 2.5, 10.0, 21); }

void BM_Randomized_AcrossSeeds(benchmark::State& state) {
  const Graph g = workload();
  Summary rounds;
  Summary sizes;
  bool varies = false;
  std::vector<VertexId> first;
  bool all_valid = true;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      auto cfg = default_mpc();
      cfg.seed = seed;
      SampleGatherOptions opt;
      opt.gather_budget_words = 8ull * kN;
      const auto result = sample_gather_2ruling(g, cfg, opt);
      rounds.add(static_cast<double>(result.metrics.rounds));
      sizes.add(static_cast<double>(result.ruling_set.size()));
      all_valid =
          all_valid && is_beta_ruling_set(g, result.ruling_set, 2);
      if (first.empty()) {
        first = result.ruling_set;
      } else if (result.ruling_set != first) {
        varies = true;
      }
    }
  }
  state.counters["rounds_mean"] = rounds.mean();
  state.counters["rounds_stddev"] = rounds.stddev();
  state.counters["size_mean"] = sizes.mean();
  state.counters["size_stddev"] = sizes.stddev();
  state.counters["output_varies"] = varies ? 1.0 : 0.0;
  state.counters["valid"] = all_valid ? 1.0 : 0.0;
}

void BM_Deterministic_AcrossSeedsAndMachines(benchmark::State& state) {
  const Graph g = workload();
  Summary rounds;
  Summary sizes;
  bool varies = false;
  std::vector<VertexId> first;
  bool all_valid = true;
  std::uint64_t random_words = 0;
  for (auto _ : state) {
    for (int run = 0; run < 8; ++run) {
      auto cfg = default_mpc(
          static_cast<mpc::MachineId>(2 + (run % 4) * 2));  // 2,4,6,8
      cfg.seed = 1000 + static_cast<std::uint64_t>(run);
      DetRulingOptions opt;
      opt.gather_budget_words = 8ull * kN;
      const auto result = det_ruling_set_mpc(g, cfg, opt);
      rounds.add(static_cast<double>(result.metrics.rounds));
      sizes.add(static_cast<double>(result.ruling_set.size()));
      random_words += result.metrics.random_words;
      all_valid =
          all_valid && is_beta_ruling_set(g, result.ruling_set, 2);
      if (first.empty()) {
        first = result.ruling_set;
      } else if (result.ruling_set != first) {
        varies = true;
      }
    }
  }
  state.counters["rounds_mean"] = rounds.mean();
  state.counters["rounds_stddev"] = rounds.stddev();
  state.counters["size_mean"] = sizes.mean();
  state.counters["size_stddev"] = sizes.stddev();
  state.counters["output_varies"] = varies ? 1.0 : 0.0;
  state.counters["rand_words"] = static_cast<double>(random_words);
  state.counters["valid"] = all_valid ? 1.0 : 0.0;
  if (varies || random_words != 0) {
    state.SkipWithError("determinism claim violated");
  }
}

BENCHMARK(BM_Randomized_AcrossSeeds)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deterministic_AcrossSeedsAndMachines)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(det_vs_rand);
