// E3 — Memory and communication conformance vs gather budget (claim C3).
//
// Fixed graph; the gather budget B sweeps from generous to starved. The
// ledger to check per row: violations must be 0 everywhere (the simulator
// hard-enforces the caps); peak storage and per-round bandwidth must track
// B downward while rounds/phases rise — the memory/round trade-off the MPC
// model is about.
#include "bench_common.hpp"

#include "core/det_ruling.hpp"
#include "core/sample_gather.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 8000;

Graph workload() { return gen::gnp(kN, 24.0 / kN, 5); }

void BM_DetRuling_Budget(benchmark::State& state) {
  const auto budget = static_cast<std::uint64_t>(state.range(0));
  const Graph g = workload();
  RulingSetResult result;
  for (auto _ : state) {
    DetRulingOptions opt;
    opt.gather_budget_words = budget;
    result = det_ruling_set_mpc(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["peak_storage"] =
      static_cast<double>(result.metrics.max_storage_words);
  state.counters["peak_send"] =
      static_cast<double>(result.metrics.max_send_words);
  state.counters["peak_recv"] =
      static_cast<double>(result.metrics.max_recv_words);
}

void BM_SampleGather_Budget(benchmark::State& state) {
  const auto budget = static_cast<std::uint64_t>(state.range(0));
  const Graph g = workload();
  RulingSetResult result;
  for (auto _ : state) {
    SampleGatherOptions opt;
    opt.gather_budget_words = budget;
    result = sample_gather_2ruling(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["peak_storage"] =
      static_cast<double>(result.metrics.max_storage_words);
  state.counters["peak_send"] =
      static_cast<double>(result.metrics.max_send_words);
  state.counters["peak_recv"] =
      static_cast<double>(result.metrics.max_recv_words);
}

void Budgets(benchmark::internal::Benchmark* b) {
  for (std::uint64_t budget :
       {64ull * kN, 16ull * kN, 4ull * kN, 1ull * kN, kN / 4ull}) {
    b->Arg(static_cast<long>(budget));
  }
}

BENCHMARK(BM_DetRuling_Budget)->Apply(Budgets)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampleGather_Budget)->Apply(Budgets)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(comm_volume);
