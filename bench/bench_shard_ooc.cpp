// E12 — Out-of-core sharded ingestion: edges/sec and peak RSS.
//
// The claim under test: a sharded, spill-backed run never holds the global
// edge list, so its peak RSS is bounded by the CSR offsets plus the mmap
// eviction window — far below the materialized generator's footprint — at a
// streaming rate fast enough for multi-hundred-million-edge inputs.
//
// Ordering matters: VmHWM is a process-lifetime high-water mark, so the
// sharded configurations are registered (and therefore run) BEFORE the
// materialized comparison point inflates it. peak_rss_mb for a case is only
// meaningful if nothing bigger ran earlier in the process.
#include "bench_common.hpp"

#include "graph/shard/shard_csr.hpp"
#include "graph/shard/sharded_source.hpp"
#include "mpc/certify.hpp"

namespace rsets::bench {
namespace {

// scale=19, edgefactor=16: 2^19 vertices, 2^23 ~ 8.4M raw edges — the
// ten-million-edge smoke regime EXPERIMENTS.md E12 records; the acceptance
// run at scale=23 uses the same code path via the CLI.
shard::ShardSpec bench_spec() {
  shard::ShardSpec spec;
  spec.family = shard::ShardFamily::kGraph500;
  spec.scale = 19;
  spec.edgefactor = 16;
  spec.seed = 1;
  return spec;
}

double peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  for (std::string line; std::getline(status, line);) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

// Sharded streaming ingest straight into the spill-backed CSR: the full
// out-of-core path (two streaming passes + in-place dedup, pages evicted on
// a cadence). machines = state.range(0) proves the shard count does not
// change the cost profile.
void BM_ShardedIngestSpill(benchmark::State& state) {
  add_host_context_once();
  const shard::ShardSpec spec = bench_spec();
  const auto src = make_sharded_source(
      spec, static_cast<std::uint32_t>(state.range(0)));
  shard::IngestOptions ingest;
  ingest.spill_dir = "/tmp";
  std::uint64_t csr_words = 0;
  for (auto _ : state) {
    const shard::ShardCsr csr = build_shard_csr(*src, ingest);
    csr_words = src->num_vertices() + 1 + 2 * csr.num_edges();
    benchmark::DoNotOptimize(csr_words);
  }
  state.counters["machines"] = static_cast<double>(state.range(0));
  state.counters["raw_edges"] = static_cast<double>(src->raw_edges());
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(src->raw_edges()), benchmark::Counter::kIsRate);
  state.counters["csr_words"] = static_cast<double>(csr_words);
  state.counters["peak_rss_mb"] = peak_rss_mb();
}

// End-to-end sharded det_ruling with in-model certification — what the
// acceptance run does, at smoke scale. valid reports the certificate.
void BM_ShardedDetRuling(benchmark::State& state) {
  add_host_context_once();
  const shard::ShardSpec spec = bench_spec();
  RulingSetOptions options;
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = 2;
  options.mpc = default_mpc(static_cast<mpc::MachineId>(state.range(0)));
  const auto src = make_sharded_source(spec, options.mpc.num_machines);
  shard::IngestOptions ingest;
  ingest.spill_dir = "/tmp";
  RulingSetResult result;
  for (auto _ : state) {
    result = compute_ruling_set_sharded(*src, ingest, options);
  }
  const RulingSetCertificate cert = mpc::certify_ruling_set(
      *src, ingest, result.ruling_set, options.beta, options.mpc);
  state.counters["machines"] = static_cast<double>(options.mpc.num_machines);
  state.counters["raw_edges"] = static_cast<double>(src->raw_edges());
  state.counters["rounds"] = static_cast<double>(result.metrics.rounds);
  state.counters["words"] = static_cast<double>(result.metrics.total_words);
  state.counters["set_size"] = static_cast<double>(result.ruling_set.size());
  state.counters["peak_rss_mb"] = peak_rss_mb();
  state.counters["valid"] = cert.valid() ? 1.0 : 0.0;
  if (!cert.valid()) {
    state.SkipWithError("sharded certificate failed");
  }
}

// The comparison point: materializing the same input as a global Graph.
// Runs LAST (registration order) so its allocation spike cannot pollute the
// sharded cases' high-water marks; its own peak_rss_mb is the "cost of not
// streaming" number EXPERIMENTS.md quotes.
void BM_MaterializedIngest(benchmark::State& state) {
  add_host_context_once();
  const shard::ShardSpec spec = bench_spec();
  std::uint64_t edges = 0;
  for (auto _ : state) {
    const Graph g = shard::materialize(spec);
    edges = g.num_edges();
    benchmark::DoNotOptimize(edges);
  }
  const auto src = make_sharded_source(spec, 1);
  state.counters["raw_edges"] = static_cast<double>(src->raw_edges());
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(src->raw_edges()), benchmark::Counter::kIsRate);
  state.counters["peak_rss_mb"] = peak_rss_mb();
}

BENCHMARK(BM_ShardedIngestSpill)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedDetRuling)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaterializedIngest)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(shard_ooc);
