// E9 — Recovery overhead vs. checkpoint cadence.
//
// Crashes are injected at a fixed per-machine, per-round probability while
// the checkpoint interval sweeps {1, 2, 4, 8, 16}. A crash at round r
// restores the barrier snapshot and charges r - c recovery rounds, where c
// is the last durable checkpoint — so frequent checkpoints bound recovery
// at the price of one snapshot per interval, and sparse checkpoints make
// each crash expensive. Prediction: overhead_rounds grows roughly linearly
// with the interval at fixed crash rate; the result set never changes
// (asserted by the validity counter every bench reports).
#include "bench_common.hpp"

#include "core/det_ruling.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 6000;
constexpr double kCrashProb = 0.02;

Graph family_graph() { return gen::gnp(kN, 16.0 / kN, 13); }

RulingSetResult run_once(const Graph& g, const mpc::MpcConfig& cfg) {
  DetRulingOptions opt;
  opt.gather_budget_words = 8ull * kN;
  return det_ruling_set_mpc(g, cfg, opt);
}

void BM_RecoveryOverhead(benchmark::State& state) {
  const auto checkpoint_every = static_cast<std::uint64_t>(state.range(0));
  const Graph g = family_graph();

  // Fault-free baseline: what the run costs with the subsystem off.
  const std::uint64_t baseline_rounds =
      run_once(g, default_mpc()).metrics.rounds;

  mpc::MpcConfig cfg = default_mpc();
  cfg.faults.enabled = true;
  cfg.faults.seed = 99;
  cfg.faults.crash_prob = kCrashProb;
  cfg.checkpoint_every = checkpoint_every;
  RulingSetResult result;
  for (auto _ : state) {
    result = run_once(g, cfg);
  }
  report(state, g, result, cfg);
  state.counters["checkpoint_every"] =
      static_cast<double>(checkpoint_every);
  state.counters["baseline_rounds"] = static_cast<double>(baseline_rounds);
  state.counters["overhead_rounds"] =
      static_cast<double>(result.metrics.rounds - baseline_rounds);
  state.counters["recovery_rounds"] =
      static_cast<double>(result.metrics.recovery_rounds);
  state.counters["checkpoints"] =
      static_cast<double>(result.metrics.checkpoints);
  state.counters["faults_injected"] =
      static_cast<double>(result.metrics.faults_injected);
}

BENCHMARK(BM_RecoveryOverhead)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(recovery);
