// E14 — Multi-producer ingest-to-service throughput vs producer count.
//
// The full concurrent serving pipeline, end to end: N producer threads
// render the deterministic churn generator's batches to protocol lines and
// push them through MultiProducerIngest's blocking bounded queues
// (queue_cap=2, so real backpressure fires), while the owner thread drains
// aligned generations into a resident RulingSetService (det_ruling_mpc, the
// paper's algorithm) and certifies every committed epoch. The total update
// volume per generation is fixed while N varies, so the rows isolate the
// coordination cost of the front — alignment waits, condvar backpressure,
// merge copies — from the (constant) repair+certification work. Reported
// per N: end-to-end wall time, sustained update throughput, generations,
// backpressure events, and the certified validity bit. Prediction: the
// repair dominates, so throughput is nearly flat in N and the front's
// overhead shows up only in the backpressure counter, not the wall clock.
#include "bench_common.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/chaos.hpp"
#include "serve/ingest.hpp"
#include "serve/service.hpp"
#include "serve/updates.hpp"
#include "util/stats.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 20000;
constexpr double kAvgDeg = 8.0;
constexpr std::uint64_t kGenerations = 4;
// Raw updates per generation, split evenly across producers (~1% of m).
constexpr std::uint64_t kUpdatesPerGeneration = 1600;

void BM_ServeConcurrent(benchmark::State& state) {
  const auto producers = static_cast<std::uint32_t>(state.range(0));
  const Graph g = gen::gnp(kN, kAvgDeg / kN, 31);
  const std::uint64_t per_batch =
      std::max<std::uint64_t>(1, kUpdatesPerGeneration / producers);

  // Pre-render every producer's line stream so the measured region holds
  // only pipeline work, not formatting.
  std::vector<std::vector<std::string>> scripts(producers);
  std::uint64_t raw_updates = 0;
  for (std::uint32_t p = 0; p < producers; ++p) {
    for (std::uint64_t b = 0; b < kGenerations; ++b) {
      const serve::UpdateBatch batch =
          chaos_churn_batch(31, p, b, kN, per_batch);
      for (const serve::EdgeUpdate& u : batch.updates) {
        scripts[p].push_back(serve::to_line(u));
      }
      scripts[p].push_back("commit");
      raw_updates += batch.size();
    }
  }

  serve::ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kDetRulingMpc;
  cfg.options.beta = 2;
  cfg.options.mpc = default_mpc();

  bool certified = true;
  double wall_seconds = 0.0;
  std::uint64_t generations = 0;
  std::uint64_t backpressure = 0;
  std::uint64_t epochs = 0;
  std::uint64_t set_size = 0;
  for (auto _ : state) {
    serve::RulingSetService service(g, cfg);
    serve::IngestConfig icfg;
    icfg.num_producers = producers;
    icfg.queue_cap = 2;
    icfg.num_vertices = kN;
    serve::MultiProducerIngest ingest(icfg);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::uint32_t p = 0; p < producers; ++p) {
      threads.emplace_back([&ingest, &scripts, p] {
        for (const std::string& line : scripts[p]) {
          while (ingest.push_line(p, line) == serve::PushStatus::kBackoff) {
          }
        }
        ingest.close(p);
      });
    }
    certified = true;
    while (!ingest.drained()) {
      if (std::optional<serve::UpdateBatch> gen = ingest.take_generation()) {
        certified = certified && service.apply(*gen).certified;
      } else {
        std::this_thread::yield();
      }
    }
    for (std::thread& t : threads) t.join();
    while (std::optional<serve::UpdateBatch> gen = ingest.take_generation()) {
      certified = certified && service.apply(*gen).certified;
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    wall_seconds = dt.count();
    generations = ingest.metrics().generations;
    backpressure = ingest.metrics().backpressure;
    epochs = service.metrics().epochs;
    set_size = service.ruling_set().size();
  }
  add_host_context_once();
  state.counters["producers"] = static_cast<double>(producers);
  state.counters["generations"] = static_cast<double>(generations);
  state.counters["backpressure"] = static_cast<double>(backpressure);
  state.counters["epochs"] = static_cast<double>(epochs);
  state.counters["set_size"] = static_cast<double>(set_size);
  state.counters["updates_per_s"] =
      wall_seconds > 0.0 ? static_cast<double>(raw_updates) / wall_seconds
                         : 0.0;
  state.counters["peak_rss_kb"] = static_cast<double>(peak_rss_kb());
  // Every committed epoch certifies or apply() throws; the counter is the
  // bench's validity bit and the baseline gate rejects certified=0 rows.
  state.counters["certified"] = certified ? 1.0 : 0.0;
  if (!certified) {
    state.SkipWithError("service failed to certify a committed epoch");
  }
}

BENCHMARK(BM_ServeConcurrent)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(serve_concurrent);
