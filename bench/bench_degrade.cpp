// E10 — Degrade-mode round overhead vs. memory budget.
//
// The per-machine budget sweeps S = alpha * S0, where S0 is the smallest
// power of two that the unconstrained run fits (no spill waves). Under
// BudgetPolicy::kDegrade a round that overflows S is split into sub-rounds
// (spill-and-resend), so the output never changes while the round count
// grows as the budget shrinks. Prediction: overhead_rounds scales like
// ceil(1/alpha) - 1 per overflowing phase — halving the budget roughly
// doubles the spill waves on the heaviest rounds — and degrade parity
// (identical set, zero violations) holds at every alpha, asserted below.
#include "bench_common.hpp"

#include "core/ruling_set.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 4000;

// The gather budget is clamped to memory_words, so it is pinned to the
// sweep's floor: the algorithm trajectory is identical at all alphas and
// only the accounting differs.
constexpr std::uint64_t kGatherPin = 512;

Graph family_graph() { return gen::gnp(kN, 12.0 / kN, 17); }

RulingSetResult run_once(const Graph& g, const mpc::MpcConfig& cfg) {
  RulingSetOptions options;
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = 2;
  options.mpc = cfg;
  options.gather_budget_words = kGatherPin;
  return compute_ruling_set(g, options);
}

void BM_DegradeOverhead(benchmark::State& state) {
  // state.range(0) halves the budget: memory_words = S0 >> range.
  const auto shrink = static_cast<std::uint64_t>(state.range(0));
  const Graph g = family_graph();

  // S0: the peak storage of the unconstrained run, rounded up to a power
  // of two; at this budget degrade mode charges nothing.
  mpc::MpcConfig base = default_mpc();
  base.budget_policy = mpc::BudgetPolicy::kTrace;
  const RulingSetResult unconstrained = run_once(g, base);
  std::uint64_t s0 = 1;
  while (s0 < unconstrained.metrics.max_storage_words) s0 <<= 1;

  mpc::MpcConfig cfg = default_mpc();
  cfg.budget_policy = mpc::BudgetPolicy::kDegrade;
  cfg.memory_words = std::max<std::uint64_t>(s0 >> shrink, kGatherPin);
  RulingSetResult result;
  for (auto _ : state) {
    result = run_once(g, cfg);
  }
  report(state, g, result, cfg);
  if (result.ruling_set != unconstrained.ruling_set) {
    state.SkipWithError("degrade parity violated: output changed");
  }
  state.counters["memory_words"] = static_cast<double>(cfg.memory_words);
  state.counters["alpha_inverse"] = static_cast<double>(1ull << shrink);
  state.counters["baseline_rounds"] =
      static_cast<double>(unconstrained.metrics.rounds);
  state.counters["overhead_rounds"] = static_cast<double>(
      result.metrics.rounds - unconstrained.metrics.rounds);
  state.counters["degraded_subrounds"] =
      static_cast<double>(result.metrics.degraded_subrounds);
}

BENCHMARK(BM_DegradeOverhead)
    ->DenseRange(0, 4)  // below s0/16 the kGatherPin floor clips the sweep
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(degrade);
