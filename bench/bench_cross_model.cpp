// E8 — Cross-model comparison: CONGEST vs MPC on the same workloads.
//
// The paper's line of work moves ruling sets from message-passing models
// (LOCAL/CONGEST) into MPC. This bench quantifies what the move buys: on a
// bounded-degree and a heavy-tailed family, compare
//   congest_luby          Luby MIS in CONGEST            O(log n) rounds
//   congest_coloring      deterministic Linial MIS       O(palette) rounds
//   congest_beta2         distance-2 Luby ruling set     O(2 log n) rounds
//   mpc_det_ruling        the paper's algorithm          O(log log Delta)
//                                                        phases
// CONGEST rounds and MPC rounds are not the same currency — the point is
// the *growth shape* on each side, plus the bits/words ledger.
#include "bench_common.hpp"

#include "congest/aglp_ruling.hpp"
#include "congest/beta_ruling_congest.hpp"
#include "congest/coloring_mis.hpp"
#include "congest/det_ruling_congest.hpp"
#include "congest/luby_congest.hpp"
#include "core/det_ruling.hpp"

namespace rsets::bench {
namespace {

Graph workload(int family, VertexId n) {
  return family == 0 ? gen::random_regular(n, 8, 3)
                     : gen::power_law(n, 2.5, 8.0, 3);
}

void set_congest_counters(benchmark::State& state, const Graph& g,
                          const std::vector<VertexId>& set,
                          std::uint32_t beta,
                          const congest::CongestMetrics& metrics) {
  state.counters["rounds"] = static_cast<double>(metrics.rounds);
  state.counters["kbits"] = static_cast<double>(metrics.total_bits) / 1000.0;
  state.counters["set_size"] = static_cast<double>(set.size());
  state.counters["rand_words"] = static_cast<double>(metrics.random_words);
  const bool valid = is_beta_ruling_set(g, set, beta);
  state.counters["valid"] = valid ? 1.0 : 0.0;
  if (!valid) state.SkipWithError("invalid output");
}

void BM_CongestLuby(benchmark::State& state) {
  const Graph g = workload(static_cast<int>(state.range(1)),
                           static_cast<VertexId>(state.range(0)));
  RulingSetResult result;
  for (auto _ : state) result = congest::luby_mis_congest(g);
  set_congest_counters(state, g, result.ruling_set, 1,
                       result.congest_metrics);
}

void BM_CongestColoring(benchmark::State& state) {
  const Graph g = workload(static_cast<int>(state.range(1)),
                           static_cast<VertexId>(state.range(0)));
  RulingSetResult result;
  for (auto _ : state) result = congest::coloring_mis_congest(g);
  set_congest_counters(state, g, result.ruling_set, 1,
                       result.congest_metrics);
  state.counters["palette"] = static_cast<double>(result.palette_size);
}

void BM_CongestBeta2(benchmark::State& state) {
  const Graph g = workload(static_cast<int>(state.range(1)),
                           static_cast<VertexId>(state.range(0)));
  RulingSetResult result;
  for (auto _ : state) result = congest::beta_ruling_set_congest(g, 2);
  set_congest_counters(state, g, result.ruling_set, 2,
                       result.congest_metrics);
}

void BM_CongestAglp(benchmark::State& state) {
  const Graph g = workload(static_cast<int>(state.range(1)),
                           static_cast<VertexId>(state.range(0)));
  RulingSetResult result;
  for (auto _ : state) result = congest::aglp_ruling_set_congest(g);
  set_congest_counters(state, g, result.ruling_set, result.beta,
                       result.congest_metrics);
  state.counters["radius_bound"] = static_cast<double>(result.beta);
}

void BM_CongestDetRuling2(benchmark::State& state) {
  const Graph g = workload(static_cast<int>(state.range(1)),
                           static_cast<VertexId>(state.range(0)));
  RulingSetResult result;
  for (auto _ : state) result = congest::det_2ruling_set_congest(g);
  set_congest_counters(state, g, result.ruling_set, 2,
                       result.congest_metrics);
  state.counters["palette"] = static_cast<double>(result.palette_size);
}

void BM_MpcDetRuling(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = workload(static_cast<int>(state.range(1)), n);
  RulingSetResult result;
  for (auto _ : state) {
    DetRulingOptions opt;
    opt.gather_budget_words = 8ull * n;
    result = det_ruling_set_mpc(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (int family : {0, 1}) {
    for (VertexId n : {1000, 4000, 16000}) {
      b->Args({static_cast<long>(n), family});
    }
  }
}

// The coloring baseline's greedy stage is palette-bounded; power-law
// graphs have huge Delta, so restrict it to the bounded-degree family.
void BoundedDegreeSizes(benchmark::internal::Benchmark* b) {
  for (VertexId n : {1000, 4000, 16000}) {
    b->Args({static_cast<long>(n), 0});
  }
}

BENCHMARK(BM_CongestLuby)->Apply(Sizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CongestColoring)->Apply(BoundedDegreeSizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CongestBeta2)->Apply(Sizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CongestAglp)->Apply(Sizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CongestDetRuling2)->Apply(BoundedDegreeSizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MpcDetRuling)->Apply(Sizes)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(cross_model);
