// Shared helpers for the experiment benches (E1-E7, see EXPERIMENTS.md).
//
// Conventions: every bench runs each configuration exactly once (these are
// round-complexity experiments, not microbenchmarks — the simulator is
// deterministic given the seed, so repetition buys nothing) and reports the
// model quantities as google-benchmark counters:
//   rounds        total MPC rounds, including derandomization chunks
//   model_rounds  rounds under the theoretical Theta(log n)-bit-wide
//                 derandomization chunks (see note below)
//   phases        degree-reduction phases / Luby iterations
//   words         total words sent
//   set_size      |ruling set|
//   valid         1 if the independent checker accepted the output
//
// model_rounds: our simulator decides `chunk_bits` seed bits per 2-round
// aggregation because evaluating 2^c candidate assignments costs 2^c full
// estimator passes. The real algorithm can afford c = Theta(log n) bits per
// chunk (the 2^c partial sums still fit machine bandwidth and the candidate
// evaluations parallelize across machines), which is what the O(1)-rounds-
// per-phase accounting in the paper's model assumes. model_rounds rescales
// only the derandomization chunks accordingly; everything else is identical.
#pragma once

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"
#include "mpc/trace.hpp"
#include "util/bits.hpp"

namespace rsets::bench {

inline mpc::MpcConfig default_mpc(mpc::MachineId machines = 8) {
  mpc::MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.memory_words = std::size_t{1} << 26;
  cfg.seed = 1;
  return cfg;
}

// Where to dump per-round JSONL traces, or "" to skip. Benches that support
// tracing (the threaded-scaling sweeps) write one file per configuration
// into $RSETS_TRACE_DIR when it is set; with it unset they stay quiet so a
// plain bench run leaves no files behind.
inline std::string trace_path(const std::string& file_name) {
  const char* dir = std::getenv("RSETS_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  return std::string(dir) + "/" + file_name;
}

// Owns a JSONL trace file and hands out a hook that appends one JSON object
// per executed round. Constructed from an empty path it produces an empty
// hook, so callers can unconditionally assign `trace.hook()`.
class JsonlTrace {
 public:
  explicit JsonlTrace(const std::string& path) {
    if (!path.empty()) out_ = std::make_shared<std::ofstream>(path);
  }

  mpc::TraceHook hook() const {
    if (!out_ || !out_->is_open()) return {};
    std::shared_ptr<std::ofstream> out = out_;
    return [out](const mpc::RoundTrace& trace) {
      *out << mpc::to_json(trace) << "\n";
    };
  }

 private:
  std::shared_ptr<std::ofstream> out_;
};

inline double model_rounds(const RulingSetResult& result, VertexId n,
                           int chunk_bits) {
  if (result.derand_chunks == 0) {
    return static_cast<double>(result.metrics.rounds);
  }
  const double bits =
      static_cast<double>(result.derand_chunks) * chunk_bits;
  const double wide = std::max(1, ceil_log2(std::max<VertexId>(n, 2)));
  const double wide_chunks = std::ceil(bits / wide);
  return static_cast<double>(result.metrics.rounds) -
         2.0 * static_cast<double>(result.derand_chunks) + 2.0 * wide_chunks;
}

// Stamps the host into the benchmark context exactly once per process, so
// every JSON record a bench emits carries where it ran.
inline void add_host_context_once() {
  static const bool added = [] {
    char host[256] = {};
    if (gethostname(host, sizeof(host) - 1) != 0) {
      std::snprintf(host, sizeof(host), "unknown");
    }
    benchmark::AddCustomContext("hostname", host);
    return true;
  }();
  (void)added;
}

// Fills the standard counter set from a run. `cfg` is the MPC configuration
// the run used — its machine and thread counts go into every record so a
// result row is interpretable without the invoking script.
inline void report(benchmark::State& state, const Graph& g,
                   const RulingSetResult& result, const mpc::MpcConfig& cfg,
                   int chunk_bits = 4) {
  add_host_context_once();
  state.counters["num_machines"] = static_cast<double>(cfg.num_machines);
  state.counters["num_threads"] = static_cast<double>(cfg.num_threads);
  state.counters["rounds"] =
      static_cast<double>(result.metrics.rounds);
  state.counters["model_rounds"] =
      model_rounds(result, g.num_vertices(), chunk_bits);
  state.counters["phases"] = static_cast<double>(result.phases);
  state.counters["words"] =
      static_cast<double>(result.metrics.total_words);
  state.counters["set_size"] =
      static_cast<double>(result.ruling_set.size());
  state.counters["rand_words"] =
      static_cast<double>(result.metrics.random_words);
  state.counters["violations"] =
      static_cast<double>(result.metrics.violations);
  const bool valid =
      is_beta_ruling_set(g, result.ruling_set, result.beta);
  state.counters["valid"] = valid ? 1.0 : 0.0;
  if (!valid) {
    state.SkipWithError("ruling set failed independent verification");
  }
}

// Entry point shared by every bench binary. Unless the caller already picked
// an output file, results additionally land in BENCH_<name>.json (google-
// benchmark's JSON schema) in the working directory, so a plain
// `./bench_rounds_vs_n` run leaves a machine-readable record behind and the
// plotting scripts never need to re-wire flags.
// How this translation unit — and therefore the bench loop and the
// simulator code inlined into it — was compiled. google-benchmark's own
// `library_build_type` context field describes the *benchmark library*
// binary (a debug system package here), which made historical baselines
// claim "debug" for what were genuine Release runs of our code.
inline const char* bench_code_build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

// Rewrites the `library_build_type` context field of an emitted JSON record
// to bench_code_build_type(), so the stamp describes the code under
// measurement instead of the system benchmark library.
// tools/check_bench_baseline.sh rejects baselines whose stamp (either
// field) is not a release build.
inline void restamp_build_type(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::string key = "\"library_build_type\": \"";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) return;
  const std::size_t begin = at + key.size();
  const std::size_t end = text.find('"', begin);
  if (end == std::string::npos) return;
  text.replace(begin, end - begin, bench_code_build_type());
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

inline int run_bench_main(int argc, char** argv, const char* bench_name) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--benchmark_out=", 0) == 0) {
      out_path = arg.substr(std::string("--benchmark_out=").size());
    }
  }
  if (out_path.empty()) {
    out_path = std::string("BENCH_") + bench_name + ".json";
    out_flag = "--benchmark_out=" + out_path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
#ifndef RSETS_BENCH_BUILD_TYPE
#define RSETS_BENCH_BUILD_TYPE ""
#endif
  benchmark::AddCustomContext("rsets_build_type", RSETS_BENCH_BUILD_TYPE);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  restamp_build_type(out_path);
  return 0;
}

}  // namespace rsets::bench

#define RSETS_BENCH_MAIN(name)                              \
  int main(int argc, char** argv) {                         \
    return rsets::bench::run_bench_main(argc, argv, #name); \
  }
