// E13 — Long-lived service throughput and repair latency under churn.
//
// One resident RulingSetService (det_ruling_mpc, the paper's algorithm) per
// churn rate: each batch carries rate * m raw edge updates drawn from the
// deterministic churn generator, and every committed epoch re-certifies the
// maintained set (region-restricted on the frontier tier, full in-model on
// escalation). Reported per rate: sustained update throughput, p50/p99
// apply() latency, the repair-scope mix the churn estimator chose, and the
// resident peak RSS — the cost of *maintaining* a ruling set, to put against
// the from-scratch cost of E1 at the same n. Prediction: p50 latency is
// dominated by the recompute (MPC outputs are global functions of the
// graph), so throughput scales near-linearly with batch size until the
// escalation threshold flips epochs to the full tier and adds the full
// certification pass on top.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "core/chaos.hpp"
#include "serve/service.hpp"
#include "util/stats.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 20000;
constexpr double kAvgDeg = 8.0;
constexpr std::uint64_t kBatches = 4;
// Churn rates (fraction of edges updated per batch), permille to keep the
// benchmark argument integral: 0.1%, 1%, 10%.
constexpr std::uint64_t kRatesPermille[] = {1, 10, 100};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(p * (xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

void BM_ServeChurn(benchmark::State& state) {
  const auto permille = static_cast<std::uint64_t>(state.range(0));
  const Graph g = gen::gnp(kN, kAvgDeg / kN, 29);
  const std::uint64_t batch_updates =
      std::max<std::uint64_t>(1, g.num_edges() * permille / 1000);

  serve::ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kDetRulingMpc;
  cfg.options.beta = 2;
  cfg.options.mpc = default_mpc();
  serve::BatchReport last;
  std::vector<double> latency_ms;
  std::uint64_t raw_updates = 0;
  double apply_seconds = 0.0;
  for (auto _ : state) {
    serve::RulingSetService service(g, cfg);
    latency_ms.clear();
    raw_updates = 0;
    apply_seconds = 0.0;
    for (std::uint64_t b = 0; b < kBatches; ++b) {
      const serve::UpdateBatch batch =
          chaos_churn_batch(29, permille, b, kN, batch_updates);
      const auto t0 = std::chrono::steady_clock::now();
      last = service.apply(batch);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      latency_ms.push_back(dt.count() * 1e3);
      apply_seconds += dt.count();
      raw_updates += batch.size();
    }
    const serve::ServiceMetrics& m = service.metrics();
    state.counters["epochs"] = static_cast<double>(m.epochs);
    state.counters["frontier_repairs"] =
        static_cast<double>(m.repairs_frontier);
    state.counters["full_recomputes"] = static_cast<double>(m.repairs_full);
    state.counters["certifications_region"] =
        static_cast<double>(m.certifications_region);
    state.counters["certifications_full"] =
        static_cast<double>(m.certifications_full);
    state.counters["set_size"] =
        static_cast<double>(service.ruling_set().size());
  }
  add_host_context_once();
  state.counters["churn_permille"] = static_cast<double>(permille);
  state.counters["batch_updates"] = static_cast<double>(batch_updates);
  state.counters["updates_per_s"] =
      apply_seconds > 0.0 ? static_cast<double>(raw_updates) / apply_seconds
                          : 0.0;
  state.counters["p50_ms"] = percentile(latency_ms, 0.50);
  state.counters["p99_ms"] = percentile(latency_ms, 0.99);
  state.counters["peak_rss_kb"] = static_cast<double>(peak_rss_kb());
  // apply() certifies every committed epoch or throws; reaching this line
  // with every batch reporting certified IS the validity assertion.
  state.counters["certified"] = last.certified ? 1.0 : 0.0;
  if (!last.certified) {
    state.SkipWithError("service failed to certify a committed epoch");
  }
}

BENCHMARK(BM_ServeChurn)
    ->Arg(static_cast<long>(kRatesPermille[0]))
    ->Arg(static_cast<long>(kRatesPermille[1]))
    ->Arg(static_cast<long>(kRatesPermille[2]))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(serve_churn);
