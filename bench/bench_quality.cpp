// E4 — Ruling-set quality across graph families (claim C4).
//
// For each family at n = 4000: |det 2-ruling| and |sample-gather 2-ruling|
// against the sequential greedy MIS as the yardstick (counter
// `ratio_to_greedy`). Ruling sets are not size-minimizing objects, but a
// 2-ruling set from the phase machinery should stay within a small constant
// of a greedy MIS on these families — a sanity check that the algorithm
// does not degenerate into near-singleton or near-everything outputs.
#include "bench_common.hpp"

#include "core/det_ruling.hpp"
#include "core/greedy.hpp"
#include "core/sample_gather.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 4000;

Graph family_graph(int family) {
  switch (family) {
    case 0: return gen::gnp(kN, 8.0 / kN, 9);
    case 1: return gen::gnp(kN, 2.0 * std::log(kN) / kN, 9);
    case 2: return gen::random_regular(kN, 16, 9);
    case 3: return gen::power_law(kN, 2.5, 8.0, 9);
    case 4: return gen::barabasi_albert(kN, 4, 9);
    case 5: {
      const auto side = static_cast<std::uint32_t>(std::sqrt(kN));
      return gen::grid(side, side);
    }
    case 6: return gen::random_tree(kN, 9);
    case 7: return gen::clique_blowup(kN / 8, 8);
    default: throw std::invalid_argument("bad family");
  }
}

const char* family_name(int family) {
  static const char* names[] = {"gnp8",      "gnp_logn", "regular16",
                                "powerlaw",  "ba4",      "grid",
                                "tree",      "cliques8"};
  return names[family];
}

void BM_Quality_Det(benchmark::State& state) {
  const int family = static_cast<int>(state.range(0));
  const Graph g = family_graph(family);
  const double greedy = static_cast<double>(greedy_mis(g).size());
  RulingSetResult result;
  for (auto _ : state) {
    DetRulingOptions opt;
    opt.gather_budget_words = 8ull * kN;
    result = det_ruling_set_mpc(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
  state.counters["greedy_mis"] = greedy;
  state.counters["ratio_to_greedy"] =
      static_cast<double>(result.ruling_set.size()) / greedy;
  state.SetLabel(family_name(family));
}

void BM_Quality_SampleGather(benchmark::State& state) {
  const int family = static_cast<int>(state.range(0));
  const Graph g = family_graph(family);
  const double greedy = static_cast<double>(greedy_mis(g).size());
  RulingSetResult result;
  for (auto _ : state) {
    SampleGatherOptions opt;
    opt.gather_budget_words = 8ull * kN;
    result = sample_gather_2ruling(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
  state.counters["greedy_mis"] = greedy;
  state.counters["ratio_to_greedy"] =
      static_cast<double>(result.ruling_set.size()) / greedy;
  state.SetLabel(family_name(family));
}

BENCHMARK(BM_Quality_Det)->DenseRange(0, 7)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Quality_SampleGather)->DenseRange(0, 7)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(quality);
