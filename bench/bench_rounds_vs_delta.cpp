// E2 — Round complexity vs maximum degree Delta at fixed n (claim C1).
//
// Fixed n = 8000; Delta swept via random regular graphs (d = 4..512) and a
// power-law family (heavy-tailed Delta). The prediction: the deterministic
// algorithm's phase count grows like log log Delta (roughly +1 phase per
// squaring of Delta), while Luby iterations grow like log n independent of
// Delta and stay flat-but-high.
#include "bench_common.hpp"

#include "core/det_ruling.hpp"
#include "core/luby.hpp"
#include "core/sample_gather.hpp"

namespace rsets::bench {
namespace {

constexpr VertexId kN = 8000;

Graph regular_graph(std::uint32_t d) {
  return gen::random_regular(kN, d, 99);
}

void BM_DetRuling_Regular(benchmark::State& state) {
  const auto d = static_cast<std::uint32_t>(state.range(0));
  const Graph g = regular_graph(d);
  RulingSetResult result;
  for (auto _ : state) {
    DetRulingOptions opt;
    opt.gather_budget_words = 8ull * kN;
    result = det_ruling_set_mpc(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
  state.counters["delta"] = g.max_degree();
  state.counters["mark_steps"] = static_cast<double>(result.mark_steps);
}

void BM_SampleGather_Regular(benchmark::State& state) {
  const auto d = static_cast<std::uint32_t>(state.range(0));
  const Graph g = regular_graph(d);
  RulingSetResult result;
  for (auto _ : state) {
    SampleGatherOptions opt;
    opt.gather_budget_words = 8ull * kN;
    result = sample_gather_2ruling(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
  state.counters["delta"] = g.max_degree();
}

void BM_Luby_Regular(benchmark::State& state) {
  const auto d = static_cast<std::uint32_t>(state.range(0));
  const Graph g = regular_graph(d);
  RulingSetResult result;
  for (auto _ : state) {
    result = luby_mis_mpc(g, default_mpc());
  }
  report(state, g, result, default_mpc());
  state.counters["delta"] = g.max_degree();
}

void BM_DetRuling_PowerLaw(benchmark::State& state) {
  // Heavier tails => larger Delta at the same average degree.
  const double beta_exp = static_cast<double>(state.range(0)) / 10.0;
  const Graph g = gen::power_law(kN, beta_exp, 8.0, 99);
  RulingSetResult result;
  for (auto _ : state) {
    DetRulingOptions opt;
    opt.gather_budget_words = 8ull * kN;
    result = det_ruling_set_mpc(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
  state.counters["delta"] = g.max_degree();
  state.counters["mark_steps"] = static_cast<double>(result.mark_steps);
}

BENCHMARK(BM_DetRuling_Regular)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampleGather_Regular)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Luby_Regular)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetRuling_PowerLaw)
    ->Arg(21)->Arg(25)->Arg(30)  // power-law exponents 2.1, 2.5, 3.0
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(rounds_vs_delta);
