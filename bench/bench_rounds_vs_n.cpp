// E1 — Round complexity vs n (claim C1).
//
// Two graph families:
//   sparse:  G(n, p) with expected degree 12 (fixed as n grows)
//   dense:   G(n, p) with expected degree ~ sqrt(n) (degree grows with n)
// and four algorithms. The paper's prediction: the deterministic ruling-set
// algorithm's *phases* stay O(log log Delta) (near-constant across this
// sweep) while Luby-style MIS baselines grow their iteration counts like
// log n. Compare the `phases` counters across rows; `rounds` additionally
// carries the derandomization-chunk cost and `model_rounds` rescales that
// cost to the theoretical chunk width (see bench_common.hpp).
#include "bench_common.hpp"

#include "core/det_luby.hpp"
#include "core/det_ruling.hpp"
#include "core/luby.hpp"
#include "core/sample_gather.hpp"

namespace rsets::bench {
namespace {

Graph sparse_graph(VertexId n) { return gen::gnp(n, 12.0 / n, 77); }
Graph dense_graph(VertexId n) {
  return gen::gnp(n, std::sqrt(static_cast<double>(n)) / n, 77);
}

Graph graph_for(int family, VertexId n) {
  return family == 0 ? sparse_graph(n) : dense_graph(n);
}

constexpr std::uint64_t kBudgetPerVertex = 8;  // force real phase work

void BM_DetRuling(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = graph_for(static_cast<int>(state.range(1)), n);
  RulingSetResult result;
  for (auto _ : state) {
    DetRulingOptions opt;
    opt.gather_budget_words = kBudgetPerVertex * n;
    result = det_ruling_set_mpc(g, default_mpc(), opt);
  }
  report(state, g, result);
  state.counters["mark_steps"] = static_cast<double>(result.mark_steps);
}

void BM_SampleGather(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = graph_for(static_cast<int>(state.range(1)), n);
  RulingSetResult result;
  for (auto _ : state) {
    SampleGatherOptions opt;
    opt.gather_budget_words = kBudgetPerVertex * n;
    result = sample_gather_2ruling(g, default_mpc(), opt);
  }
  report(state, g, result);
}

void BM_Luby(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = graph_for(static_cast<int>(state.range(1)), n);
  RulingSetResult result;
  for (auto _ : state) {
    result = luby_mis_mpc(g, default_mpc());
  }
  report(state, g, result);
}

void BM_DetLuby(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = graph_for(static_cast<int>(state.range(1)), n);
  RulingSetResult result;
  for (auto _ : state) {
    result = det_luby_mis_mpc(g, default_mpc());
  }
  report(state, g, result);
}

void SparseAndDenseSizes(benchmark::internal::Benchmark* b) {
  for (int family : {0, 1}) {
    for (VertexId n : {1000, 2000, 4000, 8000, 16000, 32000}) {
      b->Args({static_cast<long>(n), family});
    }
  }
}

void SmallSizes(benchmark::internal::Benchmark* b) {
  // The derandomized-Luby baseline is computationally dense; cap its sweep.
  for (int family : {0, 1}) {
    for (VertexId n : {500, 1000, 2000, 4000}) {
      b->Args({static_cast<long>(n), family});
    }
  }
}

BENCHMARK(BM_DetRuling)->Apply(SparseAndDenseSizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampleGather)->Apply(SparseAndDenseSizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Luby)->Apply(SparseAndDenseSizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetLuby)->Apply(SmallSizes)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

BENCHMARK_MAIN();
