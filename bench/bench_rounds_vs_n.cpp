// E1 — Round complexity vs n (claim C1).
//
// Two graph families:
//   sparse:  G(n, p) with expected degree 12 (fixed as n grows)
//   dense:   G(n, p) with expected degree ~ sqrt(n) (degree grows with n)
// and four algorithms. The paper's prediction: the deterministic ruling-set
// algorithm's *phases* stay O(log log Delta) (near-constant across this
// sweep) while Luby-style MIS baselines grow their iteration counts like
// log n. Compare the `phases` counters across rows; `rounds` additionally
// carries the derandomization-chunk cost and `model_rounds` rescales that
// cost to the theoretical chunk width (see bench_common.hpp).
//
// E1b (BM_DetRulingThreads) additionally sweeps the simulator's worker
// thread count at fixed n to measure wall-clock scaling of the threaded
// round executor; model counters are thread-invariant by construction.
// E1c (BM_BarrierScaling) sweeps the same thread widths over a pure
// communication storm, isolating the parallel barrier pipeline itself.
#include "bench_common.hpp"

#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "core/det_luby.hpp"
#include "core/det_ruling.hpp"
#include "core/luby.hpp"
#include "core/sample_gather.hpp"
#include "mpc/simulator.hpp"

namespace rsets::bench {
namespace {

Graph sparse_graph(VertexId n) { return gen::gnp(n, 12.0 / n, 77); }
Graph dense_graph(VertexId n) {
  return gen::gnp(n, std::sqrt(static_cast<double>(n)) / n, 77);
}

Graph graph_for(int family, VertexId n) {
  return family == 0 ? sparse_graph(n) : dense_graph(n);
}

constexpr std::uint64_t kBudgetPerVertex = 8;  // force real phase work

void BM_DetRuling(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = graph_for(static_cast<int>(state.range(1)), n);
  RulingSetResult result;
  for (auto _ : state) {
    DetRulingOptions opt;
    opt.gather_budget_words = kBudgetPerVertex * n;
    result = det_ruling_set_mpc(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
  state.counters["mark_steps"] = static_cast<double>(result.mark_steps);
}

void BM_SampleGather(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = graph_for(static_cast<int>(state.range(1)), n);
  RulingSetResult result;
  for (auto _ : state) {
    SampleGatherOptions opt;
    opt.gather_budget_words = kBudgetPerVertex * n;
    result = sample_gather_2ruling(g, default_mpc(), opt);
  }
  report(state, g, result, default_mpc());
}

void BM_Luby(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = graph_for(static_cast<int>(state.range(1)), n);
  RulingSetResult result;
  for (auto _ : state) {
    result = luby_mis_mpc(g, default_mpc());
  }
  report(state, g, result, default_mpc());
}

void BM_DetLuby(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = graph_for(static_cast<int>(state.range(1)), n);
  RulingSetResult result;
  for (auto _ : state) {
    result = det_luby_mis_mpc(g, default_mpc());
  }
  report(state, g, result, default_mpc());
}

// E1b — wall-clock scaling of the threaded simulator. Same deterministic
// ruling-set run as BM_DetRuling, swept over worker-thread counts. The
// round/word/set counters must be identical across rows of the same n (the
// simulator is bit-deterministic regardless of num_threads; the `identical`
// counter asserts it against the threads=1 row) — only wall_ms may move.
// `speedup` is wall-clock of the threads=1 row over this row, so the
// threads=1 rows read 1.0 and parallel rows should exceed it on multi-core
// hosts. Set RSETS_TRACE_DIR=/some/dir to also dump a per-round JSONL trace
// for every row.
void BM_DetRulingThreads(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const Graph g = dense_graph(n);
  RulingSetResult result;
  double wall_ms = 0.0;
  for (auto _ : state) {
    mpc::MpcConfig cfg = default_mpc();
    cfg.num_threads = threads;
    const JsonlTrace trace(
        trace_path("det_ruling_n" + std::to_string(n) + "_t" +
                   std::to_string(threads) + ".jsonl"));
    cfg.trace_hook = trace.hook();
    DetRulingOptions opt;
    opt.gather_budget_words = kBudgetPerVertex * n;
    const auto start = std::chrono::steady_clock::now();
    result = det_ruling_set_mpc(g, cfg, opt);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  }
  mpc::MpcConfig reported = default_mpc();
  reported.num_threads = threads;
  report(state, g, result, reported);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wall_ms"] = wall_ms;
  // google-benchmark runs args in registration order, so the threads=1 row
  // of each n executes first and seeds the baselines below.
  static std::map<VertexId, std::pair<double, std::vector<VertexId>>> baseline;
  if (threads == 1) baseline[n] = {wall_ms, result.ruling_set};
  const auto it = baseline.find(n);
  if (it != baseline.end()) {
    state.counters["speedup"] = it->second.first / std::max(wall_ms, 1e-9);
    state.counters["identical"] =
        it->second.second == result.ruling_set ? 1.0 : 0.0;
  }
}

// Shared storm workload for the substrate microbenches: every machine sends
// kMsgsPerPeer tiny messages to every other machine each round — an
// all-to-all barrage with trivial per-machine compute, so wall clock is
// dominated by the barrier pipeline (merge, verify, index), not by callback
// work. Returns an order-insensitive digest of everything delivered.
struct StormRun {
  std::uint64_t digest = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  double wall_ms = 0.0;
};

StormRun run_storm(mpc::MpcConfig cfg, mpc::MachineId machines) {
  constexpr int kRounds = 48;  // long enough to amortize cold-start noise
  constexpr int kMsgsPerPeer = 64;
  StormRun out;
  // Callbacks run concurrently at num_threads > 1, so each accumulates
  // into its own machine's slot; the commutative sum below is
  // order-insensitive, making the digest comparable across thread widths.
  std::vector<std::uint64_t> digests(machines, 0);
  mpc::Simulator sim(cfg);
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < kRounds; ++r) {
    sim.round([&](mpc::Machine& m, const mpc::Inbox& inbox) {
      for (const mpc::MessageView& msg : inbox.all()) {
        digests[m.id()] += msg.payload[0] * (msg.src + 1);
      }
      for (mpc::MachineId dst = 0; dst < machines; ++dst) {
        if (dst == m.id()) continue;
        for (int k = 0; k < kMsgsPerPeer; ++k) {
          m.sender(dst, 1).push(m.id() * kMsgsPerPeer + k);
        }
      }
    });
  }
  sim.drain([&](mpc::Machine& m, const mpc::Inbox& inbox) {
    for (const mpc::MessageView& msg : inbox.all()) {
      digests[m.id()] += msg.payload[0] * (msg.src + 1);
    }
  });
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const std::uint64_t d : digests) out.digest += d;
  out.messages = sim.metrics().messages;
  out.words = sim.metrics().total_words;
  return out;
}

// E1b storm rows — the aggregated-transport microbench, kept as the absolute
// cost record for the all-to-all barrage. (The original legacy-vs-aggregated
// comparison rows are retired with the legacy transport itself; the recorded
// speedups live on as a historical note in EXPERIMENTS.md E1b.)
void BM_TransportStorm(benchmark::State& state) {
  const auto machines = static_cast<mpc::MachineId>(state.range(0));
  StormRun run;
  for (auto _ : state) {
    mpc::MpcConfig cfg;
    cfg.num_machines = machines;
    cfg.memory_words = std::size_t{1} << 26;
    cfg.seed = 7;
    run = run_storm(cfg, machines);
  }
  state.counters["machines"] = static_cast<double>(machines);
  state.counters["messages"] = static_cast<double>(run.messages);
  state.counters["words"] = static_cast<double>(run.words);
  state.counters["wall_ms"] = run.wall_ms;
}

// E1c — wall-clock scaling of the parallel barrier (DESIGN.md §4.6). The
// same storm as BM_TransportStorm, with integrity checksums on (so the
// verify pass is real work), swept over worker-thread widths at fixed
// machine counts. threads=1 rows run first (registration order) and seed
// the per-machine-count baseline; `speedup` is the threads=1 wall clock
// over this row's, and `identical` asserts the delivered-word digest is
// bit-identical to the threads=1 row — the parallelism contract.
void BM_BarrierScaling(benchmark::State& state) {
  const auto machines = static_cast<mpc::MachineId>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  StormRun run;
  for (auto _ : state) {
    mpc::MpcConfig cfg;
    cfg.num_machines = machines;
    cfg.memory_words = std::size_t{1} << 26;
    cfg.seed = 7;
    cfg.num_threads = threads;
    cfg.integrity = true;
    run = run_storm(cfg, machines);
  }
  state.counters["machines"] = static_cast<double>(machines);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["messages"] = static_cast<double>(run.messages);
  state.counters["words"] = static_cast<double>(run.words);
  state.counters["wall_ms"] = run.wall_ms;
  // threads=1 rows run first (registration order) and seed the baseline.
  static std::map<mpc::MachineId, std::pair<double, std::uint64_t>> baseline;
  if (threads == 1) baseline[machines] = {run.wall_ms, run.digest};
  const auto it = baseline.find(machines);
  if (it != baseline.end()) {
    state.counters["speedup"] = it->second.first / std::max(run.wall_ms, 1e-9);
    state.counters["identical"] = it->second.second == run.digest ? 1.0 : 0.0;
  }
}

void StormSweep(benchmark::internal::Benchmark* b) {
  for (long machines : {16, 32}) b->Args({machines});
}

void BarrierSweep(benchmark::internal::Benchmark* b) {
  for (long machines : {16, 32}) {
    // threads=1 first: it is the baseline the speedup counter divides by.
    for (long threads : {1, 2, 4, 8}) {
      b->Args({machines, threads});
    }
  }
}

void ThreadSweep(benchmark::internal::Benchmark* b) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (VertexId n : {8000, 32000}) {
    // threads=1 first: it is the baseline the speedup counter divides by.
    for (unsigned t : {1u, 2u, 4u, 8u}) {
      if (t != 1 && t > 2 * hw) continue;  // pointless oversubscription
      b->Args({static_cast<long>(n), static_cast<long>(t)});
    }
  }
}

void SparseAndDenseSizes(benchmark::internal::Benchmark* b) {
  for (int family : {0, 1}) {
    for (VertexId n : {1000, 2000, 4000, 8000, 16000, 32000}) {
      b->Args({static_cast<long>(n), family});
    }
  }
}

void SmallSizes(benchmark::internal::Benchmark* b) {
  // The derandomized-Luby baseline is computationally dense; cap its sweep.
  for (int family : {0, 1}) {
    for (VertexId n : {500, 1000, 2000, 4000}) {
      b->Args({static_cast<long>(n), family});
    }
  }
}

BENCHMARK(BM_DetRuling)->Apply(SparseAndDenseSizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampleGather)->Apply(SparseAndDenseSizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Luby)->Apply(SparseAndDenseSizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetLuby)->Apply(SmallSizes)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetRulingThreads)->Apply(ThreadSweep)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TransportStorm)->Apply(StormSweep)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BarrierScaling)->Apply(BarrierSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rsets::bench

RSETS_BENCH_MAIN(rounds_vs_n);
