// Fuzz harness for the service's update-stream surfaces.
//
// Two modes, selected by the input's first byte so both stay covered:
//
//   * Parser mode: parse_update_stream either returns well-formed batches
//     (every update in range, no self-loops) or throws rsets::Error with a
//     specific code and a 1-based line diagnostic. Any other exception (or
//     a crash) escaping the parser is a bug, so only rsets::Error is caught.
//     The vertex bound alternates between tiny (range rejections fire
//     constantly) and unbounded (the numeric paths run to completion).
//
//   * Ingest mode: the same bytes drive a producer-tagged MultiProducerIngest
//     stream line by line (offer_tagged_line). The front must never throw at
//     all — malformed lines become per-producer strikes, bad tags are
//     diagnosed statuses, repeated strikes eject with a tombstone — and its
//     postconditions are trapped directly: every taken generation holds only
//     in-range, non-self-loop updates, ejected producers never accept
//     another line, and after close_all + a full drain the front reports
//     drained().
#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "serve/ingest.hpp"
#include "serve/updates.hpp"
#include "util/error.hpp"

namespace {

void fuzz_parser(const std::uint8_t* data, std::size_t size) {
  const rsets::VertexId bound =
      (size > 0 && (data[0] & 2)) ? 97 : rsets::serve::kNoVertexBound;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const auto batches = rsets::serve::parse_update_stream(in, bound);
    // Touch every parsed update so malformed output cannot hide behind
    // laziness; verify the parser's own postconditions while at it.
    volatile std::size_t sink = 0;
    for (const auto& batch : batches) {
      for (const auto& update : batch.updates) {
        if (update.u == update.v || update.u >= bound || update.v >= bound) {
          __builtin_trap();  // postcondition violation IS the crash
        }
        sink += update.u + update.v;
      }
    }
    (void)sink;
  } catch (const rsets::Error&) {
    // Structured rejection is the expected path for malformed input.
  }
}

void fuzz_ingest(const std::uint8_t* data, std::size_t size) {
  using rsets::serve::PushStatus;
  rsets::serve::IngestConfig cfg;
  cfg.num_producers = 1 + (size > 0 ? data[0] % 4 : 0);
  cfg.queue_cap = (size > 0 && (data[0] & 8)) ? 1 : 0;
  cfg.max_strikes = (size > 0 && (data[0] & 16)) ? 0 : 2;
  cfg.num_vertices =
      (size > 0 && (data[0] & 2)) ? 97 : rsets::serve::kNoVertexBound;
  rsets::serve::MultiProducerIngest ingest(cfg);

  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  std::uint64_t tombstoned = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::uint32_t producer = 0;
    const PushStatus status = ingest.offer_tagged_line(line, &producer);
    if (status == PushStatus::kWouldBlock) {
      // The non-blocking front under a cap: drain, then the resubmitted
      // line must land (a committed batch always frees alignment progress
      // eventually; if nothing is ready the line is simply dropped here —
      // the fuzz contract is no-throw/no-crash, not lossless replay).
      while (ingest.take_generation().has_value()) {
      }
      (void)ingest.offer_tagged_line(line, &producer);
    } else if (status == PushStatus::kEjected) {
      // Ejection is sticky: the same producer must never accept again.
      if (ingest.offer_line(producer, "+ 1 2") == PushStatus::kAccepted) {
        __builtin_trap();
      }
    }
    tombstoned += ingest.take_tombstones().size();
  }
  ingest.close_all();

  volatile std::size_t sink = 0;
  while (std::optional<rsets::serve::UpdateBatch> gen =
             ingest.take_generation()) {
    for (const auto& update : gen->updates) {
      if (update.u == update.v || update.u >= cfg.num_vertices ||
          update.v >= cfg.num_vertices) {
        __builtin_trap();  // only validated batches may merge
      }
      sink += update.u + update.v;
    }
  }
  (void)sink;
  tombstoned += ingest.take_tombstones().size();
  if (tombstoned != ingest.metrics().ejections) __builtin_trap();
  if (!ingest.drained()) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 0 && (data[0] & 1)) {
    fuzz_ingest(data + 1, size - 1);
  } else {
    fuzz_parser(data, size);
  }
  return 0;
}
