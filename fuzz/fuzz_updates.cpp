// Fuzz harness for the service's update-stream parser.
//
// Contract under test: parse_update_stream either returns well-formed
// batches (every update in range, no self-loops) or throws rsets::Error
// with a specific code and a 1-based line diagnostic. Any other exception
// (or a crash) escaping the parser is a bug, so only rsets::Error is caught
// here. The vertex bound alternates between tiny (range rejections fire
// constantly) and unbounded (the numeric paths run to completion) based on
// the input's first byte, so both regimes stay covered.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "serve/updates.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const rsets::VertexId bound =
      (size > 0 && (data[0] & 1)) ? 97 : rsets::serve::kNoVertexBound;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const auto batches = rsets::serve::parse_update_stream(in, bound);
    // Touch every parsed update so malformed output cannot hide behind
    // laziness; verify the parser's own postconditions while at it.
    volatile std::size_t sink = 0;
    for (const auto& batch : batches) {
      for (const auto& update : batch.updates) {
        if (update.u == update.v || update.u >= bound || update.v >= bound) {
          __builtin_trap();  // postcondition violation IS the crash
        }
        sink += update.u + update.v;
      }
    }
    (void)sink;
  } catch (const rsets::Error&) {
    // Structured rejection is the expected path for malformed input.
  }
  return 0;
}
