// Standalone driver for fuzz harnesses when libFuzzer is unavailable (GCC
// builds). Replays corpus files passed as arguments, and with --seconds=N
// runs a deterministic xorshift-driven generator for N seconds. The byte
// palette is biased toward the characters the parsers actually branch on so
// random inputs reach deep paths instead of dying at the first token.
//
// Exit code 0 means every executed input was handled without an escaping
// exception; any crash/uncaught throw aborts the process (that is the bug).
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// Digits dominate so numeric fields form; the rest covers separators,
// comments, signs, CRLF, and a couple of genuinely hostile bytes.
constexpr char kPalette[] =
    "00112233445566778899  \t\n\n\r#%-+=.eExa_\xff\x00";

std::string generate(std::uint64_t& state) {
  const std::size_t len = xorshift(state) % 256;
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kPalette[xorshift(state) % (sizeof(kPalette) - 1)]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seconds = 0;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::uint64_t files = 0;
  std::uint64_t execs = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      if (seed == 0) seed = 1;  // xorshift fixed point
    } else {
      std::ifstream in(arg, std::ios::binary);
      if (!in) {
        std::cerr << "error: cannot read corpus file " << arg << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string blob = buf.str();
      LLVMFuzzerTestOneInput(
          reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size());
      ++files;
      ++execs;
    }
  }

  if (seconds > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
    std::uint64_t state = seed;
    while (std::chrono::steady_clock::now() < deadline) {
      // A batch per clock check keeps the loop out of the syscall.
      for (int i = 0; i < 512; ++i) {
        const std::string input = generate(state);
        LLVMFuzzerTestOneInput(
            reinterpret_cast<const std::uint8_t*>(input.data()),
            input.size());
        ++execs;
      }
    }
  }

  std::cout << "fuzz: " << execs << " execs (" << files
            << " corpus files), 0 crashes\n";
  return 0;
}
