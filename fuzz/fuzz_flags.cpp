// Fuzz harness for the --key=value flag parser.
//
// The input bytes are split on '\n' into an argv vector, parsed, and every
// discovered key is pulled back out through each typed getter. The getters
// are allowed to throw rsets::Error (kBadFlag) on a non-numeric value;
// anything else escaping is a bug.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/flags.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string blob(reinterpret_cast<const char*>(data), size);
  std::vector<std::string> args;
  args.emplace_back("fuzz_flags");  // argv[0]
  std::size_t start = 0;
  while (start <= blob.size()) {
    const std::size_t nl = blob.find('\n', start);
    const std::size_t end = nl == std::string::npos ? blob.size() : nl;
    if (end > start) args.push_back(blob.substr(start, end - start));
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& a : args) argv.push_back(a.c_str());

  const rsets::Flags flags(static_cast<int>(argv.size()), argv.data());
  for (const std::string& key : flags.keys()) {
    (void)flags.has(key);
    (void)flags.get(key, "");
    (void)flags.get_bool(key, false);
    try {
      (void)flags.get_int(key, 0);
    } catch (const rsets::Error&) {
    }
    try {
      (void)flags.get_double(key, 0.0);
    } catch (const rsets::Error&) {
    }
  }
  (void)flags.positional();
  return 0;
}
