// Fuzz harness for the edge-list parser.
//
// Contract under test: read_edge_list either returns a well-formed Graph or
// throws rsets::Error with a specific code. Any other exception (or a crash)
// escaping the parser is a bug, so only rsets::Error is caught here.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "graph/io.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const rsets::Graph g = rsets::read_edge_list(in);
    // Touch the result so a malformed Graph cannot hide behind laziness.
    volatile std::size_t sink = g.num_vertices() + g.num_edges();
    (void)sink;
  } catch (const rsets::Error&) {
    // Structured rejection is the expected path for malformed input.
  }
  return 0;
}
