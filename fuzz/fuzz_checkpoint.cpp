// Fuzz harness for the checkpoint decoder.
//
// Contract under test: restore_checkpoint (and the whole-image checksum
// verifier in front of it) either restores a well-formed simulator state or
// throws mpc::CheckpointError. Any other exception, crash, over-read, or
// unbounded allocation escaping the decoder is a bug — the decoder is what
// stands between a bit-rotted file on disk and silently wrong recovery.
//
// Two passes per input: the raw bytes (exercising the envelope checks —
// checksum, magic, version), and the same bytes wrapped in a valid sealed
// envelope (checksum recomputed over a magic/version header + the input),
// which lets the fuzzer reach the interior section decoding that a random
// input would never get past the digest check to see.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "mpc/fault/checkpoint.hpp"
#include "mpc/simulator.hpp"

namespace {

using namespace rsets;

void try_restore(const std::vector<std::uint8_t>& bytes) {
  mpc::MpcConfig config;
  config.num_machines = 2;
  config.memory_words = 1 << 16;
  mpc::Simulator sim(config);
  // Registered driver state so the named-section decoding runs too.
  std::uint64_t counter = 7;
  std::vector<std::uint64_t> values = {1, 2, 3};
  auto snap = mpc::snapshot_of(counter, values);
  sim.register_snapshotable("fuzz", &snap);

  mpc::Checkpoint checkpoint;
  checkpoint.bytes = bytes;
  try {
    sim.restore_checkpoint(checkpoint);
    // A successful restore must leave a usable simulator; touch it.
    volatile std::uint64_t sink =
        sim.metrics().rounds + sim.metrics().messages + counter;
    (void)sink;
  } catch (const mpc::CheckpointError&) {
    // Structured rejection is the expected path for malformed images.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::uint8_t> raw(data, data + size);
  try_restore(raw);

  // Sealed-envelope pass: valid magic/version + the fuzz bytes as interior,
  // digest appended — the decoder must survive arbitrary section contents.
  std::vector<std::uint8_t> wrapped;
  mpc::SnapshotWriter w(wrapped);
  w.u64(mpc::kCheckpointMagic);
  w.u64(mpc::kCheckpointVersion);
  w.bytes(data, size);
  mpc::seal_checkpoint(wrapped);
  try_restore(wrapped);
  return 0;
}
