// Placing infection-surveillance monitors in a hospital contact network.
//
// Scenario (a nod to the authors' applied epidemiology work): patients
// within a ward are in mutual contact, and healthcare staff visit patients
// across wards. We want monitoring stations such that no two monitored
// individuals are in direct contact (a monitor covers its whole contact
// neighborhood, so adjacent monitors waste coverage) and everyone is within
// beta contacts of a monitor. That is a beta-ruling set; beta trades
// monitor count against detection latency. This example sweeps beta.
//
//   ./hospital_contacts [--wards=40] [--ward_size=20] [--staff=120]
//                       [--visits=25] [--max_beta=5]
#include <iomanip>
#include <iostream>

#include "core/det_ruling.hpp"
#include "core/greedy.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/verify.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rsets;
  const Flags flags(argc, argv);
  const auto wards = static_cast<std::uint32_t>(flags.get_int("wards", 40));
  const auto ward_size =
      static_cast<std::uint32_t>(flags.get_int("ward_size", 20));
  const auto staff = static_cast<std::uint32_t>(flags.get_int("staff", 120));
  const auto visits = static_cast<std::uint32_t>(flags.get_int("visits", 25));
  const auto max_beta =
      static_cast<std::uint32_t>(flags.get_int("max_beta", 5));

  const Graph g =
      gen::hospital_contacts(wards, ward_size, staff, visits, /*seed=*/11);
  std::cout << "hospital contact network: " << wards << " wards x "
            << ward_size << " patients + " << staff << " staff\n"
            << "n=" << g.num_vertices() << " m=" << g.num_edges()
            << " max_degree=" << g.max_degree() << "\n\n";

  std::cout << std::left << std::setw(6) << "beta" << std::right
            << std::setw(12) << "monitors" << std::setw(12) << "greedy"
            << std::setw(10) << "rounds" << std::setw(10) << "radius"
            << std::setw(9) << "valid" << "\n";

  mpc::MpcConfig cfg;
  cfg.num_machines = 8;
  cfg.memory_words = std::size_t{1} << 24;

  bool all_valid = true;
  for (std::uint32_t beta = 2; beta <= max_beta; ++beta) {
    DetRulingOptions options;
    options.beta = beta;
    options.gather_budget_words = 4ull * g.num_vertices();
    const auto result = det_ruling_set_mpc(g, cfg, options);
    const auto report = check_ruling_set(g, result.ruling_set, beta);
    const auto greedy = greedy_ruling_set(g, beta);
    all_valid = all_valid && report.valid;
    std::cout << std::left << std::setw(6) << beta << std::right
              << std::setw(12) << result.ruling_set.size() << std::setw(12)
              << greedy.size() << std::setw(10) << result.metrics.rounds
              << std::setw(10) << report.radius << std::setw(9)
              << (report.valid ? "yes" : "NO") << "\n";
  }

  std::cout << "\nLarger beta => fewer monitors but slower detection; the "
               "deterministic\nMPC algorithm tracks the sequential greedy "
               "size while running in a\nconstant number of degree-reduction "
               "phases.\n";
  return all_valid ? 0 : 1;
}
