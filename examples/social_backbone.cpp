// Selecting a moderation backbone in a social network.
//
// Scenario: a power-law "follower" graph; we want a set of moderator
// accounts such that (a) no two moderators are directly connected (avoiding
// redundant coverage) and (b) every account is within two hops of a
// moderator. That is exactly a 2-ruling set. This example runs all four MPC
// algorithms on the same graph and compares rounds, communication, and
// backbone size.
//
//   ./social_backbone [--n=20000] [--avg_deg=10] [--seed=7]
#include <iomanip>
#include <iostream>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/verify.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rsets;
  const Flags flags(argc, argv);
  const auto n = static_cast<VertexId>(flags.get_int("n", 20000));
  const double avg_deg = flags.get_double("avg_deg", 10.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  const Graph g = gen::power_law(n, 2.3, avg_deg, seed);
  const auto stats = degree_stats(g);
  std::cout << "social graph: n=" << g.num_vertices()
            << " m=" << g.num_edges() << " max_deg=" << stats.max
            << " mean_deg=" << std::fixed << std::setprecision(1)
            << stats.mean << "\n\n";

  std::cout << std::left << std::setw(20) << "algorithm" << std::right
            << std::setw(7) << "beta" << std::setw(10) << "size"
            << std::setw(10) << "rounds" << std::setw(14) << "words"
            << std::setw(12) << "rand bits" << std::setw(9) << "valid"
            << "\n";

  struct Run {
    Algorithm algorithm;
    std::uint32_t beta;
  };
  const Run runs[] = {
      {Algorithm::kLubyMpc, 1},
      {Algorithm::kDetLubyMpc, 1},
      {Algorithm::kSampleGatherMpc, 2},
      {Algorithm::kDetRulingMpc, 2},
  };

  bool all_valid = true;
  for (const Run& run : runs) {
    RulingSetOptions options;
    options.algorithm = run.algorithm;
    options.beta = run.beta;
    options.mpc.num_machines = 8;
    options.mpc.memory_words = std::size_t{1} << 24;
    options.gather_budget_words = 8ull * n;
    // The dense derandomized-Luby estimator is the slow baseline; shrink
    // its instance so the example stays interactive.
    const Graph* input = &g;
    Graph small;
    if (run.algorithm == Algorithm::kDetLubyMpc && n > 2000) {
      small = gen::power_law(2000, 2.3, avg_deg, seed);
      input = &small;
    }
    const RulingSetResult result = compute_ruling_set(*input, options);
    const auto report =
        check_ruling_set(*input, result.ruling_set, run.beta);
    all_valid = all_valid && report.valid;
    std::cout << std::left << std::setw(20)
              << algorithm_name(run.algorithm) << std::right << std::setw(7)
              << run.beta << std::setw(10) << result.ruling_set.size()
              << std::setw(10) << result.metrics.rounds << std::setw(14)
              << result.metrics.total_words << std::setw(12)
              << 64 * result.metrics.random_words << std::setw(9)
              << (report.valid ? "yes" : "NO") << "\n";
  }

  std::cout << "\nNote: det_luby ran on a 2000-vertex instance of the same "
               "family (its\ndense estimator is the baseline the paper "
               "leaves behind).\n";
  return all_valid ? 0 : 1;
}
