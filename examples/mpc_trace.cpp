// A look inside the MPC simulator: runs the deterministic ruling-set
// algorithm under three memory regimes and prints the model-conformance
// ledger — rounds, per-round bandwidth highs, peak storage, violations.
// This is the "is the substrate honest?" demo: shrink the memory budget and
// watch the algorithm spend more phases instead of cheating. With
// --trace=FILE the last run also dumps the per-round JSONL trace (one
// object per executed communication phase), and --threads=T widens the
// simulator's worker pool — the ledger is bit-identical at any width.
//
//   ./mpc_trace [--n=8000] [--avg_deg=16] [--machines=8] [--threads=4]
//               [--trace=rounds.jsonl]
#include <fstream>
#include <iomanip>
#include <iostream>

#include "core/det_ruling.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"
#include "mpc/trace.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rsets;
  const Flags flags(argc, argv);
  const auto n = static_cast<VertexId>(flags.get_int("n", 8000));
  const double avg_deg = flags.get_double("avg_deg", 16.0);

  const Graph g = gen::gnp(n, avg_deg / n, /*seed=*/3);
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << "\n\n";
  std::cout << std::left << std::setw(16) << "gather budget" << std::right
            << std::setw(8) << "phases" << std::setw(8) << "steps"
            << std::setw(9) << "rounds" << std::setw(13) << "peak mem"
            << std::setw(13) << "peak send" << std::setw(11) << "violations"
            << std::setw(8) << "valid" << "\n";

  mpc::MpcConfig cfg;
  cfg.num_machines =
      static_cast<mpc::MachineId>(flags.get_int("machines", 8));
  cfg.memory_words = std::size_t{1} << 24;
  cfg.num_threads = static_cast<unsigned>(flags.get_int("threads", 1));

  std::ofstream trace_out;
  if (flags.has("trace")) trace_out.open(flags.get("trace", ""));

  const std::uint64_t budgets[] = {64ull * n, 8ull * n, 2ull * n, n / 2ull};
  bool all_valid = true;
  for (const std::uint64_t budget : budgets) {
    DetRulingOptions options;
    options.beta = 2;
    options.gather_budget_words = budget;
    // Trace only the tightest-budget run (the most phases, the most to see).
    if (trace_out.is_open() && budget == budgets[3]) {
      cfg.trace_hook = [&trace_out](const mpc::RoundTrace& trace) {
        trace_out << mpc::to_json(trace) << "\n";
      };
    }
    const auto result = det_ruling_set_mpc(g, cfg, options);
    const bool valid = is_beta_ruling_set(g, result.ruling_set, 2);
    all_valid = all_valid && valid;
    std::cout << std::left << std::setw(16)
              << (std::to_string(budget) + " w") << std::right
              << std::setw(8) << result.phases << std::setw(8)
              << result.mark_steps << std::setw(9) << result.metrics.rounds
              << std::setw(13) << result.metrics.max_storage_words
              << std::setw(13) << result.metrics.max_send_words
              << std::setw(11) << result.metrics.violations << std::setw(8)
              << (valid ? "yes" : "NO") << "\n";
  }

  std::cout << "\nEvery row must report 0 violations: the simulator hard-"
               "enforces the\nmemory and bandwidth caps, so conformance is "
               "structural, not sampled.\n";
  if (trace_out.is_open()) {
    std::cout << "per-round JSONL trace of the last row written to "
              << flags.get("trace", "") << "\n";
  }
  return all_valid ? 0 : 1;
}
