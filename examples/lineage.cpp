// Forty years of ruling sets on one graph — the algorithmic lineage the
// paper sits at the end of:
//
//   1986  bitwise elimination (AGLP-style):  det., O(log n) CONGEST rounds,
//                                            radius O(log n)
//   1986  Luby's MIS:                        rand., O(log n) CONGEST rounds,
//                                            radius 1
//   1992  Linial coloring -> MIS:            det., O(log* n + Delta^2-ish
//                                            palette) CONGEST rounds
//   2020  sample-and-gather (MPC):           rand., O(log log Delta) phases,
//                                            radius 2
//   2022  THIS PAPER (deterministic MPC):    det., O(log log Delta) phases,
//                                            radius 2, zero random bits
//
// Also demonstrates the single-include umbrella header.
//
//   ./lineage [--n=4000] [--deg=8]
#include <iomanip>
#include <iostream>

#include "rsets.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rsets;
  const Flags flags(argc, argv);
  const auto n = static_cast<VertexId>(flags.get_int("n", 4000));
  const auto deg = static_cast<std::uint32_t>(flags.get_int("deg", 8));

  const Graph g = gen::random_regular(n, deg, /*seed=*/29);
  std::cout << "graph: " << deg << "-regular, n=" << g.num_vertices()
            << " m=" << g.num_edges()
            << " approx_diameter=" << approx_diameter(g) << "\n\n";
  std::cout << std::left << std::setw(26) << "algorithm (model)"
            << std::right << std::setw(8) << "radius" << std::setw(9)
            << "size" << std::setw(9) << "rounds" << std::setw(8) << "det?"
            << std::setw(8) << "valid" << "\n";

  const auto row = [&](const std::string& name,
                       const std::vector<VertexId>& set,
                       std::uint64_t rounds, bool deterministic,
                       std::uint32_t beta) {
    const auto report = check_ruling_set(g, set, beta);
    std::cout << std::left << std::setw(26) << name << std::right
              << std::setw(8) << report.radius << std::setw(9) << set.size()
              << std::setw(9) << rounds << std::setw(8)
              << (deterministic ? "yes" : "no") << std::setw(8)
              << (report.valid ? "yes" : "NO") << "\n";
    return report.valid;
  };

  bool ok = true;
  {
    const auto r = congest::aglp_ruling_set_congest(g);
    ok &= row("1986 bitwise (CONGEST)", r.ruling_set,
              r.congest_metrics.rounds, true, r.beta);
  }
  {
    const auto r = congest::luby_mis_congest(g);
    ok &= row("1986 Luby MIS (CONGEST)", r.ruling_set,
              r.congest_metrics.rounds, false, 1);
  }
  {
    const auto r = congest::coloring_mis_congest(g);
    ok &= row("1992 Linial MIS (CONGEST)", r.ruling_set,
              r.congest_metrics.rounds, true, 1);
  }
  {
    mpc::MpcConfig cfg;
    cfg.num_machines = 8;
    cfg.memory_words = std::size_t{1} << 24;
    SampleGatherOptions opt;
    opt.gather_budget_words = 8ull * n;
    const auto r = sample_gather_2ruling(g, cfg, opt);
    ok &= row("2020 sample+gather (MPC)", r.ruling_set, r.metrics.rounds,
              false, 2);
  }
  {
    mpc::MpcConfig cfg;
    cfg.num_machines = 8;
    cfg.memory_words = std::size_t{1} << 24;
    DetRulingOptions opt;
    opt.gather_budget_words = 8ull * n;
    const auto r = det_ruling_set_mpc(g, cfg, opt);
    ok &= row("2022 deterministic (MPC)", r.ruling_set, r.metrics.rounds,
              true, 2);
  }

  std::cout << "\nThe 2022 row is this reproduction's subject: deterministic "
               "like the 1986/1992\nbaselines, with the phase structure (and "
               "radius 2) of the randomized 2020\nalgorithm — randomness "
               "traded for conditional-expectation seed fixing.\n";
  return ok ? 0 : 1;
}
