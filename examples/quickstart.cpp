// Quickstart: compute a deterministic 2-ruling set of a random graph in the
// simulated MPC model, verify it independently, and inspect the metrics.
//
//   ./quickstart [--n=5000] [--avg_deg=12] [--beta=2] [--machines=8]
#include <cstdlib>
#include <iostream>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rsets;
  const Flags flags(argc, argv);
  const auto n = static_cast<VertexId>(flags.get_int("n", 5000));
  const double avg_deg = flags.get_double("avg_deg", 12.0);
  const auto beta = static_cast<std::uint32_t>(flags.get_int("beta", 2));

  // 1. A workload graph.
  const Graph g = gen::gnp(n, avg_deg / n, /*seed=*/42);
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " max_degree=" << g.max_degree() << "\n";

  // 2. The paper's deterministic MPC ruling-set algorithm.
  RulingSetOptions options;
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = beta;
  options.mpc.num_machines =
      static_cast<mpc::MachineId>(flags.get_int("machines", 8));
  options.mpc.memory_words = std::size_t{1} << 22;
  options.gather_budget_words = 8ull * n;  // keep the phase machinery honest
  const RulingSetResult result = compute_ruling_set(g, options);

  // 3. Independent verification — never trust the algorithm's own claim.
  const auto report = check_ruling_set(g, result.ruling_set, beta);
  std::cout << "result: " << report.to_string() << "\n";

  // 4. The quantities the paper is about.
  std::cout << "phases:            " << result.phases << "\n"
            << "mark steps:        " << result.mark_steps << "\n"
            << "MPC rounds:        " << result.metrics.rounds << "\n"
            << "total words sent:  " << result.metrics.total_words << "\n"
            << "peak machine mem:  " << result.metrics.max_storage_words
            << " words\n"
            << "random bits used:  " << 64 * result.metrics.random_words
            << "  (deterministic => 0)\n";

  return report.valid ? EXIT_SUCCESS : EXIT_FAILURE;
}
