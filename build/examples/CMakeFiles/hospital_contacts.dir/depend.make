# Empty dependencies file for hospital_contacts.
# This may be replaced when dependencies are built.
