file(REMOVE_RECURSE
  "CMakeFiles/hospital_contacts.dir/hospital_contacts.cpp.o"
  "CMakeFiles/hospital_contacts.dir/hospital_contacts.cpp.o.d"
  "hospital_contacts"
  "hospital_contacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_contacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
