# Empty compiler generated dependencies file for lineage.
# This may be replaced when dependencies are built.
