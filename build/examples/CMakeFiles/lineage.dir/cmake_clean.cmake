file(REMOVE_RECURSE
  "CMakeFiles/lineage.dir/lineage.cpp.o"
  "CMakeFiles/lineage.dir/lineage.cpp.o.d"
  "lineage"
  "lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
