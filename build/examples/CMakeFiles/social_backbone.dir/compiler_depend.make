# Empty compiler generated dependencies file for social_backbone.
# This may be replaced when dependencies are built.
