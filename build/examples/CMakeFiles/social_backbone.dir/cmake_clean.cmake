file(REMOVE_RECURSE
  "CMakeFiles/social_backbone.dir/social_backbone.cpp.o"
  "CMakeFiles/social_backbone.dir/social_backbone.cpp.o.d"
  "social_backbone"
  "social_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
