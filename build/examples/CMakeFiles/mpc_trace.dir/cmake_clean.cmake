file(REMOVE_RECURSE
  "CMakeFiles/mpc_trace.dir/mpc_trace.cpp.o"
  "CMakeFiles/mpc_trace.dir/mpc_trace.cpp.o.d"
  "mpc_trace"
  "mpc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
