# Empty compiler generated dependencies file for mpc_trace.
# This may be replaced when dependencies are built.
