# Empty dependencies file for rsets_util.
# This may be replaced when dependencies are built.
