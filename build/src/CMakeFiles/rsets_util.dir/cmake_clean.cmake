file(REMOVE_RECURSE
  "CMakeFiles/rsets_util.dir/util/cond_expect.cpp.o"
  "CMakeFiles/rsets_util.dir/util/cond_expect.cpp.o.d"
  "CMakeFiles/rsets_util.dir/util/flags.cpp.o"
  "CMakeFiles/rsets_util.dir/util/flags.cpp.o.d"
  "CMakeFiles/rsets_util.dir/util/hash_family.cpp.o"
  "CMakeFiles/rsets_util.dir/util/hash_family.cpp.o.d"
  "CMakeFiles/rsets_util.dir/util/logging.cpp.o"
  "CMakeFiles/rsets_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/rsets_util.dir/util/rng.cpp.o"
  "CMakeFiles/rsets_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/rsets_util.dir/util/stats.cpp.o"
  "CMakeFiles/rsets_util.dir/util/stats.cpp.o.d"
  "librsets_util.a"
  "librsets_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsets_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
