file(REMOVE_RECURSE
  "librsets_util.a"
)
