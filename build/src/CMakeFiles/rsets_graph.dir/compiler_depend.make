# Empty compiler generated dependencies file for rsets_graph.
# This may be replaced when dependencies are built.
