file(REMOVE_RECURSE
  "CMakeFiles/rsets_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/rsets_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/rsets_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/rsets_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/rsets_graph.dir/graph/io.cpp.o"
  "CMakeFiles/rsets_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/rsets_graph.dir/graph/ops.cpp.o"
  "CMakeFiles/rsets_graph.dir/graph/ops.cpp.o.d"
  "CMakeFiles/rsets_graph.dir/graph/verify.cpp.o"
  "CMakeFiles/rsets_graph.dir/graph/verify.cpp.o.d"
  "librsets_graph.a"
  "librsets_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsets_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
