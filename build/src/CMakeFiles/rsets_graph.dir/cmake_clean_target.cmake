file(REMOVE_RECURSE
  "librsets_graph.a"
)
