
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/congest/aglp_ruling.cpp" "src/CMakeFiles/rsets_congest.dir/congest/aglp_ruling.cpp.o" "gcc" "src/CMakeFiles/rsets_congest.dir/congest/aglp_ruling.cpp.o.d"
  "/root/repo/src/congest/beta_ruling_congest.cpp" "src/CMakeFiles/rsets_congest.dir/congest/beta_ruling_congest.cpp.o" "gcc" "src/CMakeFiles/rsets_congest.dir/congest/beta_ruling_congest.cpp.o.d"
  "/root/repo/src/congest/coloring_mis.cpp" "src/CMakeFiles/rsets_congest.dir/congest/coloring_mis.cpp.o" "gcc" "src/CMakeFiles/rsets_congest.dir/congest/coloring_mis.cpp.o.d"
  "/root/repo/src/congest/congest.cpp" "src/CMakeFiles/rsets_congest.dir/congest/congest.cpp.o" "gcc" "src/CMakeFiles/rsets_congest.dir/congest/congest.cpp.o.d"
  "/root/repo/src/congest/det_ruling_congest.cpp" "src/CMakeFiles/rsets_congest.dir/congest/det_ruling_congest.cpp.o" "gcc" "src/CMakeFiles/rsets_congest.dir/congest/det_ruling_congest.cpp.o.d"
  "/root/repo/src/congest/luby_congest.cpp" "src/CMakeFiles/rsets_congest.dir/congest/luby_congest.cpp.o" "gcc" "src/CMakeFiles/rsets_congest.dir/congest/luby_congest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rsets_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsets_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
