file(REMOVE_RECURSE
  "librsets_congest.a"
)
