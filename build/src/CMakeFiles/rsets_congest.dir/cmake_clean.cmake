file(REMOVE_RECURSE
  "CMakeFiles/rsets_congest.dir/congest/aglp_ruling.cpp.o"
  "CMakeFiles/rsets_congest.dir/congest/aglp_ruling.cpp.o.d"
  "CMakeFiles/rsets_congest.dir/congest/beta_ruling_congest.cpp.o"
  "CMakeFiles/rsets_congest.dir/congest/beta_ruling_congest.cpp.o.d"
  "CMakeFiles/rsets_congest.dir/congest/coloring_mis.cpp.o"
  "CMakeFiles/rsets_congest.dir/congest/coloring_mis.cpp.o.d"
  "CMakeFiles/rsets_congest.dir/congest/congest.cpp.o"
  "CMakeFiles/rsets_congest.dir/congest/congest.cpp.o.d"
  "CMakeFiles/rsets_congest.dir/congest/det_ruling_congest.cpp.o"
  "CMakeFiles/rsets_congest.dir/congest/det_ruling_congest.cpp.o.d"
  "CMakeFiles/rsets_congest.dir/congest/luby_congest.cpp.o"
  "CMakeFiles/rsets_congest.dir/congest/luby_congest.cpp.o.d"
  "librsets_congest.a"
  "librsets_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsets_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
