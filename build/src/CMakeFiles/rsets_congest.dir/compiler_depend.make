# Empty compiler generated dependencies file for rsets_congest.
# This may be replaced when dependencies are built.
