
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpc/dist_graph.cpp" "src/CMakeFiles/rsets_mpc.dir/mpc/dist_graph.cpp.o" "gcc" "src/CMakeFiles/rsets_mpc.dir/mpc/dist_graph.cpp.o.d"
  "/root/repo/src/mpc/machine.cpp" "src/CMakeFiles/rsets_mpc.dir/mpc/machine.cpp.o" "gcc" "src/CMakeFiles/rsets_mpc.dir/mpc/machine.cpp.o.d"
  "/root/repo/src/mpc/primitives.cpp" "src/CMakeFiles/rsets_mpc.dir/mpc/primitives.cpp.o" "gcc" "src/CMakeFiles/rsets_mpc.dir/mpc/primitives.cpp.o.d"
  "/root/repo/src/mpc/simulator.cpp" "src/CMakeFiles/rsets_mpc.dir/mpc/simulator.cpp.o" "gcc" "src/CMakeFiles/rsets_mpc.dir/mpc/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rsets_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsets_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
