file(REMOVE_RECURSE
  "librsets_mpc.a"
)
