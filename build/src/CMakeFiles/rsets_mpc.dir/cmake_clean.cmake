file(REMOVE_RECURSE
  "CMakeFiles/rsets_mpc.dir/mpc/dist_graph.cpp.o"
  "CMakeFiles/rsets_mpc.dir/mpc/dist_graph.cpp.o.d"
  "CMakeFiles/rsets_mpc.dir/mpc/machine.cpp.o"
  "CMakeFiles/rsets_mpc.dir/mpc/machine.cpp.o.d"
  "CMakeFiles/rsets_mpc.dir/mpc/primitives.cpp.o"
  "CMakeFiles/rsets_mpc.dir/mpc/primitives.cpp.o.d"
  "CMakeFiles/rsets_mpc.dir/mpc/simulator.cpp.o"
  "CMakeFiles/rsets_mpc.dir/mpc/simulator.cpp.o.d"
  "librsets_mpc.a"
  "librsets_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsets_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
