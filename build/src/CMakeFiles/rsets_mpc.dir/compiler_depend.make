# Empty compiler generated dependencies file for rsets_mpc.
# This may be replaced when dependencies are built.
