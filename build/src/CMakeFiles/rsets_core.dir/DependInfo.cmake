
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/derand.cpp" "src/CMakeFiles/rsets_core.dir/core/derand.cpp.o" "gcc" "src/CMakeFiles/rsets_core.dir/core/derand.cpp.o.d"
  "/root/repo/src/core/det_luby.cpp" "src/CMakeFiles/rsets_core.dir/core/det_luby.cpp.o" "gcc" "src/CMakeFiles/rsets_core.dir/core/det_luby.cpp.o.d"
  "/root/repo/src/core/det_matching.cpp" "src/CMakeFiles/rsets_core.dir/core/det_matching.cpp.o" "gcc" "src/CMakeFiles/rsets_core.dir/core/det_matching.cpp.o.d"
  "/root/repo/src/core/det_ruling.cpp" "src/CMakeFiles/rsets_core.dir/core/det_ruling.cpp.o" "gcc" "src/CMakeFiles/rsets_core.dir/core/det_ruling.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/CMakeFiles/rsets_core.dir/core/greedy.cpp.o" "gcc" "src/CMakeFiles/rsets_core.dir/core/greedy.cpp.o.d"
  "/root/repo/src/core/luby.cpp" "src/CMakeFiles/rsets_core.dir/core/luby.cpp.o" "gcc" "src/CMakeFiles/rsets_core.dir/core/luby.cpp.o.d"
  "/root/repo/src/core/phase_common.cpp" "src/CMakeFiles/rsets_core.dir/core/phase_common.cpp.o" "gcc" "src/CMakeFiles/rsets_core.dir/core/phase_common.cpp.o.d"
  "/root/repo/src/core/ruling_set.cpp" "src/CMakeFiles/rsets_core.dir/core/ruling_set.cpp.o" "gcc" "src/CMakeFiles/rsets_core.dir/core/ruling_set.cpp.o.d"
  "/root/repo/src/core/sample_gather.cpp" "src/CMakeFiles/rsets_core.dir/core/sample_gather.cpp.o" "gcc" "src/CMakeFiles/rsets_core.dir/core/sample_gather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rsets_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsets_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsets_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsets_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
