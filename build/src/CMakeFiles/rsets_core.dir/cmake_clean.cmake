file(REMOVE_RECURSE
  "CMakeFiles/rsets_core.dir/core/derand.cpp.o"
  "CMakeFiles/rsets_core.dir/core/derand.cpp.o.d"
  "CMakeFiles/rsets_core.dir/core/det_luby.cpp.o"
  "CMakeFiles/rsets_core.dir/core/det_luby.cpp.o.d"
  "CMakeFiles/rsets_core.dir/core/det_matching.cpp.o"
  "CMakeFiles/rsets_core.dir/core/det_matching.cpp.o.d"
  "CMakeFiles/rsets_core.dir/core/det_ruling.cpp.o"
  "CMakeFiles/rsets_core.dir/core/det_ruling.cpp.o.d"
  "CMakeFiles/rsets_core.dir/core/greedy.cpp.o"
  "CMakeFiles/rsets_core.dir/core/greedy.cpp.o.d"
  "CMakeFiles/rsets_core.dir/core/luby.cpp.o"
  "CMakeFiles/rsets_core.dir/core/luby.cpp.o.d"
  "CMakeFiles/rsets_core.dir/core/phase_common.cpp.o"
  "CMakeFiles/rsets_core.dir/core/phase_common.cpp.o.d"
  "CMakeFiles/rsets_core.dir/core/ruling_set.cpp.o"
  "CMakeFiles/rsets_core.dir/core/ruling_set.cpp.o.d"
  "CMakeFiles/rsets_core.dir/core/sample_gather.cpp.o"
  "CMakeFiles/rsets_core.dir/core/sample_gather.cpp.o.d"
  "librsets_core.a"
  "librsets_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsets_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
