file(REMOVE_RECURSE
  "librsets_core.a"
)
