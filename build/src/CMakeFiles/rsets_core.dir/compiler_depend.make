# Empty compiler generated dependencies file for rsets_core.
# This may be replaced when dependencies are built.
