# Empty dependencies file for rsets_cli.
# This may be replaced when dependencies are built.
