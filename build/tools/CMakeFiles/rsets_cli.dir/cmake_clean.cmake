file(REMOVE_RECURSE
  "CMakeFiles/rsets_cli.dir/rsets_cli.cpp.o"
  "CMakeFiles/rsets_cli.dir/rsets_cli.cpp.o.d"
  "rsets_cli"
  "rsets_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsets_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
