# Empty compiler generated dependencies file for bench_derand_ablation.
# This may be replaced when dependencies are built.
