file(REMOVE_RECURSE
  "CMakeFiles/bench_derand_ablation.dir/bench_derand_ablation.cpp.o"
  "CMakeFiles/bench_derand_ablation.dir/bench_derand_ablation.cpp.o.d"
  "bench_derand_ablation"
  "bench_derand_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_derand_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
