# Empty compiler generated dependencies file for bench_matching_ext.
# This may be replaced when dependencies are built.
