file(REMOVE_RECURSE
  "CMakeFiles/bench_matching_ext.dir/bench_matching_ext.cpp.o"
  "CMakeFiles/bench_matching_ext.dir/bench_matching_ext.cpp.o.d"
  "bench_matching_ext"
  "bench_matching_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
