# Empty compiler generated dependencies file for bench_cross_model.
# This may be replaced when dependencies are built.
