file(REMOVE_RECURSE
  "CMakeFiles/bench_rounds_vs_delta.dir/bench_rounds_vs_delta.cpp.o"
  "CMakeFiles/bench_rounds_vs_delta.dir/bench_rounds_vs_delta.cpp.o.d"
  "bench_rounds_vs_delta"
  "bench_rounds_vs_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rounds_vs_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
