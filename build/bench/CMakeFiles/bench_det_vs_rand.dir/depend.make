# Empty dependencies file for bench_det_vs_rand.
# This may be replaced when dependencies are built.
