# Empty compiler generated dependencies file for rsets_tests.
# This may be replaced when dependencies are built.
