
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aglp_ruling.cpp" "tests/CMakeFiles/rsets_tests.dir/test_aglp_ruling.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_aglp_ruling.cpp.o.d"
  "/root/repo/tests/test_alpha_beta.cpp" "tests/CMakeFiles/rsets_tests.dir/test_alpha_beta.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_alpha_beta.cpp.o.d"
  "/root/repo/tests/test_api.cpp" "tests/CMakeFiles/rsets_tests.dir/test_api.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_api.cpp.o.d"
  "/root/repo/tests/test_beta_ruling_congest.cpp" "tests/CMakeFiles/rsets_tests.dir/test_beta_ruling_congest.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_beta_ruling_congest.cpp.o.d"
  "/root/repo/tests/test_bits.cpp" "tests/CMakeFiles/rsets_tests.dir/test_bits.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_bits.cpp.o.d"
  "/root/repo/tests/test_cond_expect.cpp" "tests/CMakeFiles/rsets_tests.dir/test_cond_expect.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_cond_expect.cpp.o.d"
  "/root/repo/tests/test_congest.cpp" "tests/CMakeFiles/rsets_tests.dir/test_congest.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_congest.cpp.o.d"
  "/root/repo/tests/test_derand.cpp" "tests/CMakeFiles/rsets_tests.dir/test_derand.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_derand.cpp.o.d"
  "/root/repo/tests/test_det_matching.cpp" "tests/CMakeFiles/rsets_tests.dir/test_det_matching.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_det_matching.cpp.o.d"
  "/root/repo/tests/test_det_ruling.cpp" "tests/CMakeFiles/rsets_tests.dir/test_det_ruling.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_det_ruling.cpp.o.d"
  "/root/repo/tests/test_det_ruling_congest.cpp" "tests/CMakeFiles/rsets_tests.dir/test_det_ruling_congest.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_det_ruling_congest.cpp.o.d"
  "/root/repo/tests/test_dist_graph.cpp" "tests/CMakeFiles/rsets_tests.dir/test_dist_graph.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_dist_graph.cpp.o.d"
  "/root/repo/tests/test_flags.cpp" "tests/CMakeFiles/rsets_tests.dir/test_flags.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_flags.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/rsets_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_generators_extra.cpp" "tests/CMakeFiles/rsets_tests.dir/test_generators_extra.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_generators_extra.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/rsets_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_greedy.cpp" "tests/CMakeFiles/rsets_tests.dir/test_greedy.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_greedy.cpp.o.d"
  "/root/repo/tests/test_hash_family.cpp" "tests/CMakeFiles/rsets_tests.dir/test_hash_family.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_hash_family.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/rsets_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_marking_family_exhaustive.cpp" "tests/CMakeFiles/rsets_tests.dir/test_marking_family_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_marking_family_exhaustive.cpp.o.d"
  "/root/repo/tests/test_metamorphic.cpp" "tests/CMakeFiles/rsets_tests.dir/test_metamorphic.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_metamorphic.cpp.o.d"
  "/root/repo/tests/test_mpc_algorithms.cpp" "tests/CMakeFiles/rsets_tests.dir/test_mpc_algorithms.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_mpc_algorithms.cpp.o.d"
  "/root/repo/tests/test_mpc_simulator.cpp" "tests/CMakeFiles/rsets_tests.dir/test_mpc_simulator.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_mpc_simulator.cpp.o.d"
  "/root/repo/tests/test_ops.cpp" "tests/CMakeFiles/rsets_tests.dir/test_ops.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_ops.cpp.o.d"
  "/root/repo/tests/test_property_sweep.cpp" "tests/CMakeFiles/rsets_tests.dir/test_property_sweep.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_property_sweep.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/rsets_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/rsets_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_umbrella_and_regimes.cpp" "tests/CMakeFiles/rsets_tests.dir/test_umbrella_and_regimes.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_umbrella_and_regimes.cpp.o.d"
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/rsets_tests.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/rsets_tests.dir/test_verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rsets_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsets_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsets_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsets_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsets_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
