#!/usr/bin/env sh
# Records the performance baseline that tools/check_bench_baseline.sh
# compares against.
#
# Builds the Release tree (bench numbers from unoptimized builds are
# meaningless — the gate rejects them), runs every bench binary under
# bench/, and installs the resulting BENCH_<name>.json files into
# bench/baselines/. Each file carries an rsets_build_type context stamp
# recording how the bench code was compiled; that stamp is how the gate
# tells a Release-recorded baseline from an unoptimized one.
#
# Usage: tools/bench_baseline.sh [build_dir]     (default: build-release)
#
# The full suite takes a few minutes; re-run it whenever a deliberate
# performance change lands, and check the refreshed JSONs in with it.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-release"}
jobs=$(nproc)

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$jobs"

out_dir="$repo_root/bench/baselines"
mkdir -p "$out_dir"

for bin in "$build_dir"/bench/bench_*; do
  [ -x "$bin" ] || continue
  [ -f "$bin" ] || continue
  echo "=== bench_baseline: $(basename "$bin") ==="
  # Each binary writes BENCH_<experiment>.json into the working directory
  # (see RSETS_BENCH_MAIN in bench/bench_common.hpp).
  (cd "$out_dir" && "$bin")
done

echo "bench_baseline: recorded $(ls "$out_dir"/BENCH_*.json | wc -l) baseline files in bench/baselines/"
