// Command-line front end: run any ruling-set algorithm on an edge-list file
// or a named synthetic generator, verify the output, and print metrics (and
// optionally the set itself) in a machine-friendly key=value format.
//
// Usage:
//   rsets_cli --input=graph.txt --algorithm=det_ruling_mpc --beta=2
//   rsets_cli --gen=gnp --n=10000 --avg_deg=8 --algorithm=luby_mpc --beta=1
//   rsets_cli --gen=power_law --n=5000 --algorithm=sample_gather_mpc \
//             --beta=2 --machines=16 --out=set.txt
//
// Exit code: 0 if the output verified, 1 otherwise, 2 on usage errors.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>

#include "congest/aglp_ruling.hpp"
#include "congest/beta_ruling_congest.hpp"
#include "congest/det_ruling_congest.hpp"
#include "congest/luby_congest.hpp"
#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/verify.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

namespace {

using namespace rsets;

int usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: rsets_cli (--input=FILE | --gen=NAME --n=N)\n"
            << "  --algorithm=greedy|luby_mpc|det_luby_mpc|"
               "sample_gather_mpc|det_ruling_mpc\n"
            << "             |congest_luby|congest_det2|congest_beta|"
               "congest_aglp   (default det_ruling_mpc)\n"
            << "  --beta=B           ruling parameter (default 2)\n"
            << "  --gen=NAME         gnp|gnm|power_law|regular|ba|tree|grid\n"
            << "  --n=N --avg_deg=D --seed=S   generator parameters\n"
            << "  --machines=M --memory_words=W --budget=B   MPC knobs\n"
            << "  --out=FILE         write the set, one vertex per line\n"
            << "  --print_set        print the set to stdout\n"
            << "  --verbose          debug logging\n";
  return 2;
}

Graph build_graph(const Flags& flags) {
  if (flags.has("input")) {
    return read_edge_list_file(flags.get("input", ""));
  }
  const std::string name = flags.get("gen", "");
  const auto n = static_cast<VertexId>(flags.get_int("n", 10000));
  const double avg_deg = flags.get_double("avg_deg", 8.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  if (name == "gnp") return gen::gnp(n, avg_deg / n, seed);
  if (name == "gnm") {
    return gen::gnm(n, static_cast<std::uint64_t>(avg_deg * n / 2), seed);
  }
  if (name == "power_law") return gen::power_law(n, 2.5, avg_deg, seed);
  if (name == "regular") {
    auto d = static_cast<std::uint32_t>(avg_deg);
    if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ++d;
    return gen::random_regular(n, d, seed);
  }
  if (name == "ba") {
    return gen::barabasi_albert(
        n, std::max<std::uint32_t>(1, static_cast<std::uint32_t>(avg_deg / 2)),
        seed);
  }
  if (name == "tree") return gen::random_tree(n, seed);
  if (name == "grid") {
    const auto side = static_cast<std::uint32_t>(std::sqrt(n));
    return gen::grid(side, side);
  }
  throw std::invalid_argument("unknown generator: " + name);
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "greedy") return Algorithm::kGreedySequential;
  if (name == "luby_mpc") return Algorithm::kLubyMpc;
  if (name == "det_luby_mpc") return Algorithm::kDetLubyMpc;
  if (name == "sample_gather_mpc") return Algorithm::kSampleGatherMpc;
  if (name == "det_ruling_mpc") return Algorithm::kDetRulingMpc;
  throw std::invalid_argument("unknown algorithm: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get_bool("verbose", false)) {
    Logger::instance().set_level(LogLevel::kDebug);
  }
  if (!flags.has("input") && !flags.has("gen")) {
    return usage("need --input=FILE or --gen=NAME");
  }

  try {
    const Graph g = build_graph(flags);
    const std::string algo_name = flags.get("algorithm", "det_ruling_mpc");
    const auto beta_flag =
        static_cast<std::uint32_t>(flags.get_int("beta", 2));

    // CONGEST algorithms report through the same key=value schema.
    if (algo_name.rfind("congest_", 0) == 0) {
      congest::CongestConfig ccfg;
      ccfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
      std::vector<VertexId> set;
      congest::CongestMetrics metrics;
      std::uint32_t beta = beta_flag;
      if (algo_name == "congest_luby") {
        auto r = congest::luby_mis(g, ccfg);
        set = std::move(r.mis);
        metrics = r.metrics;
        beta = 1;
      } else if (algo_name == "congest_det2") {
        auto r = congest::det_2ruling_congest(g, ccfg);
        set = std::move(r.ruling_set);
        metrics = r.metrics;
        beta = 2;
      } else if (algo_name == "congest_beta") {
        auto r = congest::beta_ruling_congest(g, beta_flag, ccfg);
        set = std::move(r.ruling_set);
        metrics = r.metrics;
      } else if (algo_name == "congest_aglp") {
        auto r = congest::aglp_ruling_congest(g, ccfg);
        set = std::move(r.ruling_set);
        metrics = r.metrics;
        beta = r.radius_bound;
      } else {
        return usage("unknown algorithm: " + algo_name);
      }
      const auto report = check_ruling_set(g, set, beta);
      std::cout << "algorithm=" << algo_name << "\n"
                << "model=congest\n"
                << "n=" << g.num_vertices() << "\n"
                << "m=" << g.num_edges() << "\n"
                << "beta=" << beta << "\n"
                << "size=" << set.size() << "\n"
                << "radius=" << report.radius << "\n"
                << "valid=" << (report.valid ? 1 : 0) << "\n"
                << "rounds=" << metrics.rounds << "\n"
                << "total_bits=" << metrics.total_bits << "\n"
                << "random_words=" << metrics.random_words << "\n";
      if (flags.get_bool("print_set", false)) {
        for (VertexId v : set) std::cout << v << "\n";
      }
      return report.valid ? 0 : 1;
    }

    RulingSetOptions options;
    options.algorithm = parse_algorithm(algo_name);
    options.beta = beta_flag;
    options.mpc.num_machines =
        static_cast<mpc::MachineId>(flags.get_int("machines", 8));
    options.mpc.memory_words = static_cast<std::size_t>(
        flags.get_int("memory_words", 1 << 24));
    options.mpc.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    options.gather_budget_words =
        static_cast<std::uint64_t>(flags.get_int("budget", 0));

    const RulingSetResult result = compute_ruling_set(g, options);
    const auto report = check_ruling_set(g, result.ruling_set, options.beta);

    std::cout << "algorithm=" << algorithm_name(options.algorithm) << "\n"
              << "n=" << g.num_vertices() << "\n"
              << "m=" << g.num_edges() << "\n"
              << "beta=" << options.beta << "\n"
              << "size=" << result.ruling_set.size() << "\n"
              << "radius=" << report.radius << "\n"
              << "valid=" << (report.valid ? 1 : 0) << "\n"
              << "rounds=" << result.metrics.rounds << "\n"
              << "phases=" << result.phases << "\n"
              << "words=" << result.metrics.total_words << "\n"
              << "peak_memory_words=" << result.metrics.max_storage_words
              << "\n"
              << "random_words=" << result.metrics.random_words << "\n"
              << "violations=" << result.metrics.violations << "\n";

    if (flags.has("out")) {
      std::ofstream out(flags.get("out", ""));
      if (!out) {
        std::cerr << "error: cannot write " << flags.get("out", "") << "\n";
        return 2;
      }
      for (VertexId v : result.ruling_set) out << v << "\n";
    }
    if (flags.get_bool("print_set", false)) {
      for (VertexId v : result.ruling_set) std::cout << v << "\n";
    }
    return report.valid ? 0 : 1;
  } catch (const std::exception& e) {
    return usage(e.what());
  }
}
