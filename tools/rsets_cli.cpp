// Command-line front end: run any ruling-set algorithm on an edge-list file
// or a named synthetic generator, verify the output, and print metrics (and
// optionally the set itself) in a machine-friendly key=value format.
//
// Usage:
//   rsets_cli --input=graph.txt --algorithm=det_ruling_mpc --beta=2
//   rsets_cli --gen=gnp --n=10000 --avg_deg=8 --algorithm=luby_mpc --beta=1
//   rsets_cli --gen=power_law --n=5000 --algorithm=sample_gather_mpc
//             --beta=2 --machines=16 --threads=4 --trace=rounds.jsonl
//   rsets_cli --gen=gnp --n=5000 --faults=crash@5:2,drop~0.01
//             --checkpoint-every=3 --record=run.jsonl
//   rsets_cli --replay=run.jsonl
//
// Every algorithm — sequential, MPC, and CONGEST — goes through the unified
// compute_ruling_set dispatcher; --algorithm accepts any name from
// rsets::algorithm_registry() (plus the legacy congest_* aliases).
//
// --record writes a replayable execution log: a meta line holding the full
// run specification, one line per simulator phase (wall_ms zeroed — it is
// the only nondeterministic field), and a summary line with final metrics
// and a hash of the output set. --replay re-runs the recorded specification
// and byte-compares every regenerated line against the log, so a recorded
// execution — faults, checkpoints, recoveries and all — is checkably
// reproducible.
//
// Exit-code contract (documented in README "Exit codes"):
//   0  the output verified (and, under --paranoid, was certified and
//      cross-validated; under --replay, every line matched)
//   1  the run completed but verification/certification/replay failed
//   2  usage or input errors: bad flags, malformed graph files, missing or
//      unreadable replay logs
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/verify.hpp"
#include "mpc/certify.hpp"
#include "mpc/trace.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

namespace {

using namespace rsets;

const char* model_name(Model m) {
  switch (m) {
    case Model::kSequential:
      return "sequential";
    case Model::kMpc:
      return "mpc";
    case Model::kCongest:
      return "congest";
  }
  return "?";
}

int usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: rsets_cli (--input=FILE | --gen=NAME --n=N | "
               "--replay=FILE)\n"
            << "  --algorithm=NAME   one of (default det_ruling_mpc):\n";
  for (const AlgorithmInfo& info : algorithm_registry()) {
    std::cerr << "      " << info.name;
    for (std::size_t pad = info.name.size(); pad < 22; ++pad) std::cerr << ' ';
    std::cerr << "[" << model_name(info.model) << "] " << info.summary
              << "\n";
  }
  std::cerr
      << "  --beta=B           ruling parameter (default: the algorithm's "
         "minimum)\n"
      << "  --gen=NAME         gnp|gnm|power_law|regular|ba|tree|grid\n"
      << "  --n=N --avg_deg=D --seed=S   generator parameters\n"
      << "  --machines=M --memory_words=W --budget=B   MPC knobs\n"
      << "  --threads=T        MPC simulator worker threads (1 sequential,\n"
      << "                     0 hardware concurrency; results identical)\n"
      << "  --budget-policy=P  strict (default: throw on violation) | trace\n"
      << "                     (count violations) | degrade (spill-and-resend\n"
      << "                     sub-rounds; same results, extra rounds)\n"
      << "  --deadline=W       per-round work budget; machines over it are\n"
      << "                     speculatively re-executed with backoff\n"
      << "  --paranoid         certify the output in-model (O(beta) extra\n"
      << "                     rounds) and cross-validate the certificate\n"
      << "  --faults=SPEC      inject faults: crash@R:M, straggler@R:M[:D],\n"
      << "                     crash~P, straggler~P, drop~P, dup~P, seed=X\n"
      << "                     (comma-separated; results never change)\n"
      << "  --checkpoint-every=K   durable checkpoint every K rounds\n"
      << "  --record=FILE      write a replayable execution log (JSONL)\n"
      << "  --replay=FILE      re-run a recorded log and verify it matches\n"
      << "  --trace=FILE       per-round JSONL trace (MPC algorithms)\n"
      << "  --out=FILE         write the set, one vertex per line\n"
      << "  --print_set        print the set to stdout\n"
      << "  --verbose          debug logging\n";
  return 2;
}

// Everything needed to reproduce a run — captured in the --record meta line
// and reconstructed by --replay.
struct RunSpec {
  std::string algorithm = "det_ruling_mpc";
  std::uint32_t beta = 2;  // resolved (never the "algorithm default" marker)
  std::string input;       // edge-list path; empty when generated
  std::string gen;         // generator name; empty when --input
  std::uint64_t n = 10000;
  double avg_deg = 8.0;
  std::uint64_t seed = 1;
  std::uint32_t machines = 8;
  std::uint64_t memory_words = 1 << 24;
  std::uint32_t threads = 1;
  std::uint64_t budget = 0;
  std::string faults;  // spec string, parsed by mpc::parse_fault_spec
  std::uint64_t checkpoint_every = 0;
  std::string budget_policy = "strict";
  std::uint64_t deadline = 0;
};

// v2: the meta line gains budget_policy/deadline and the summary line gains
// the degradation and deadline ledgers. v1 logs are rejected with a clear
// version diagnostic rather than replayed against mismatched semantics.
constexpr const char* kReplayFormat = "rsets-replay-v2";

RunSpec spec_from_flags(const Flags& flags) {
  RunSpec spec;
  spec.algorithm = flags.get("algorithm", "det_ruling_mpc");
  const auto algorithm = algorithm_from_name(spec.algorithm);
  if (!algorithm) {
    throw std::invalid_argument("unknown algorithm: " + spec.algorithm);
  }
  // Without an explicit --beta, run at the algorithm's minimum (an MIS
  // algorithm defaults to 1, the 2-ruling machinery to 2, ...).
  spec.beta = flags.has("beta")
                  ? static_cast<std::uint32_t>(flags.get_int("beta", 2))
                  : algorithm_info(*algorithm).min_beta;
  spec.input = flags.get("input", "");
  spec.gen = flags.get("gen", "");
  spec.n = static_cast<std::uint64_t>(flags.get_int("n", 10000));
  spec.avg_deg = flags.get_double("avg_deg", 8.0);
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.machines = static_cast<std::uint32_t>(flags.get_int("machines", 8));
  spec.memory_words =
      static_cast<std::uint64_t>(flags.get_int("memory_words", 1 << 24));
  spec.threads = static_cast<std::uint32_t>(flags.get_int("threads", 1));
  spec.budget = static_cast<std::uint64_t>(flags.get_int("budget", 0));
  spec.faults = flags.get("faults", "");
  spec.checkpoint_every =
      static_cast<std::uint64_t>(flags.get_int("checkpoint-every", 0));
  spec.budget_policy = flags.get("budget-policy", "strict");
  mpc::parse_budget_policy(spec.budget_policy);  // validate early
  spec.deadline = static_cast<std::uint64_t>(flags.get_int("deadline", 0));
  return spec;
}

void append_json_str(std::ostream& out, const char* key,
                     const std::string& value) {
  out << "\"" << key << "\":\"" << value << "\"";
}

std::string spec_to_json(const RunSpec& spec) {
  std::ostringstream out;
  out << "{";
  append_json_str(out, "format", kReplayFormat);
  out << ",";
  append_json_str(out, "algorithm", spec.algorithm);
  out << ",\"beta\":" << spec.beta << ",";
  append_json_str(out, "input", spec.input);
  out << ",";
  append_json_str(out, "gen", spec.gen);
  char avg_deg[64];
  std::snprintf(avg_deg, sizeof(avg_deg), "%.17g", spec.avg_deg);
  out << ",\"n\":" << spec.n << ",\"avg_deg\":" << avg_deg
      << ",\"seed\":" << spec.seed << ",\"machines\":" << spec.machines
      << ",\"memory_words\":" << spec.memory_words
      << ",\"threads\":" << spec.threads << ",\"budget\":" << spec.budget
      << ",";
  append_json_str(out, "faults", spec.faults);
  out << ",\"checkpoint_every\":" << spec.checkpoint_every << ",";
  append_json_str(out, "budget_policy", spec.budget_policy);
  out << ",\"deadline\":" << spec.deadline << "}";
  return out.str();
}

// Minimal extraction from the flat JSON the recorder writes: values are
// unescaped strings or plain numbers, keys are unique. Not a JSON parser.
std::string json_value(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) {
    throw std::invalid_argument("replay log: meta line lacks key '" + key +
                                "'");
  }
  std::size_t v = at + needle.size();
  if (v < line.size() && line[v] == '"') {
    const std::size_t end = line.find('"', v + 1);
    if (end == std::string::npos) {
      throw std::invalid_argument("replay log: unterminated string for '" +
                                  key + "'");
    }
    return line.substr(v + 1, end - v - 1);
  }
  std::size_t end = v;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(v, end - v);
}

std::uint64_t json_u64(const std::string& line, const std::string& key) {
  const std::string value = json_value(line, key);
  try {
    std::size_t consumed = 0;
    const std::uint64_t v = std::stoull(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("replay log: key '" + key +
                                "' has non-numeric value '" + value + "'");
  }
}

double json_double(const std::string& line, const std::string& key) {
  const std::string value = json_value(line, key);
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("replay log: key '" + key +
                                "' has non-numeric value '" + value + "'");
  }
}

RunSpec spec_from_json(const std::string& line) {
  if (const std::string format = json_value(line, "format");
      format != kReplayFormat) {
    throw std::invalid_argument("replay log: format is '" + format +
                                "', this build replays " + kReplayFormat +
                                " only");
  }
  RunSpec spec;
  spec.algorithm = json_value(line, "algorithm");
  spec.beta = static_cast<std::uint32_t>(json_u64(line, "beta"));
  spec.input = json_value(line, "input");
  spec.gen = json_value(line, "gen");
  spec.n = json_u64(line, "n");
  spec.avg_deg = json_double(line, "avg_deg");
  spec.seed = json_u64(line, "seed");
  spec.machines = static_cast<std::uint32_t>(json_u64(line, "machines"));
  spec.memory_words = json_u64(line, "memory_words");
  spec.threads = static_cast<std::uint32_t>(json_u64(line, "threads"));
  spec.budget = json_u64(line, "budget");
  spec.faults = json_value(line, "faults");
  spec.checkpoint_every = json_u64(line, "checkpoint_every");
  spec.budget_policy = json_value(line, "budget_policy");
  mpc::parse_budget_policy(spec.budget_policy);  // validate before running
  spec.deadline = json_u64(line, "deadline");
  return spec;
}

Graph build_graph(const RunSpec& spec) {
  if (!spec.input.empty()) {
    return read_edge_list_file(spec.input);
  }
  const auto n = static_cast<VertexId>(spec.n);
  if (spec.gen == "gnp") return gen::gnp(n, spec.avg_deg / n, spec.seed);
  if (spec.gen == "gnm") {
    return gen::gnm(n, static_cast<std::uint64_t>(spec.avg_deg * n / 2),
                    spec.seed);
  }
  if (spec.gen == "power_law") {
    return gen::power_law(n, 2.5, spec.avg_deg, spec.seed);
  }
  if (spec.gen == "regular") {
    auto d = static_cast<std::uint32_t>(spec.avg_deg);
    if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ++d;
    return gen::random_regular(n, d, spec.seed);
  }
  if (spec.gen == "ba") {
    return gen::barabasi_albert(
        n,
        std::max<std::uint32_t>(1,
                                static_cast<std::uint32_t>(spec.avg_deg / 2)),
        spec.seed);
  }
  if (spec.gen == "tree") return gen::random_tree(n, spec.seed);
  if (spec.gen == "grid") {
    const auto side = static_cast<std::uint32_t>(std::sqrt(n));
    return gen::grid(side, side);
  }
  throw std::invalid_argument("unknown generator: " + spec.gen);
}

RulingSetOptions options_from_spec(const RunSpec& spec) {
  const auto algorithm = algorithm_from_name(spec.algorithm);
  if (!algorithm) {
    throw std::invalid_argument("unknown algorithm: " + spec.algorithm);
  }
  RulingSetOptions options;
  options.algorithm = *algorithm;
  options.beta = spec.beta;
  options.mpc.num_machines = spec.machines;
  options.mpc.memory_words = static_cast<std::size_t>(spec.memory_words);
  options.mpc.seed = spec.seed;
  options.mpc.num_threads = spec.threads;
  options.mpc.faults = mpc::parse_fault_spec(spec.faults);
  options.mpc.checkpoint_every = spec.checkpoint_every;
  options.mpc.budget_policy = mpc::parse_budget_policy(spec.budget_policy);
  options.mpc.round_deadline = spec.deadline;
  options.congest.seed = spec.seed;
  options.gather_budget_words = spec.budget;
  return options;
}

// FNV-1a over the sorted vertex ids — a cheap, stable fingerprint of the
// output set for the replay summary line.
std::uint64_t set_hash(const std::vector<VertexId>& set) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (VertexId v : set) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string summary_json(const RulingSetResult& result) {
  const mpc::MpcMetrics& m = result.metrics;
  std::ostringstream out;
  out << "{\"summary\":1,\"size\":" << result.ruling_set.size()
      << ",\"phases\":" << result.phases << ",\"rounds\":" << m.rounds
      << ",\"messages\":" << m.messages << ",\"total_words\":" << m.total_words
      << ",\"max_send_words\":" << m.max_send_words
      << ",\"max_recv_words\":" << m.max_recv_words
      << ",\"max_storage_words\":" << m.max_storage_words
      << ",\"violations\":" << m.violations
      << ",\"random_words\":" << m.random_words
      << ",\"faults_injected\":" << m.faults_injected
      << ",\"checkpoints\":" << m.checkpoints
      << ",\"recovery_rounds\":" << m.recovery_rounds
      << ",\"degraded_subrounds\":" << m.degraded_subrounds
      << ",\"deadline_misses\":" << m.deadline_misses
      << ",\"speculative_rounds\":" << m.speculative_rounds
      << ",\"set_hash\":" << set_hash(result.ruling_set) << "}";
  return out.str();
}

std::string record_line(const mpc::RoundTrace& trace) {
  // Wall time is the only nondeterministic trace field; zero it so recorded
  // lines are byte-reproducible.
  mpc::RoundTrace stable = trace;
  stable.wall_ms = 0.0;
  return mpc::to_json(stable);
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 2;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  if (lines.size() < 2) {
    std::cerr << "error: " << path << " is not a replay log (need meta and "
              << "summary lines)\n";
    return 2;
  }
  const RunSpec spec = spec_from_json(lines.front());
  const Graph g = build_graph(spec);
  RulingSetOptions options = options_from_spec(spec);

  // Recorded phase lines sit between the meta line and the summary line.
  const std::size_t num_recorded = lines.size() - 2;
  std::size_t emitted = 0;
  std::uint64_t mismatches = 0;
  std::string first_mismatch;
  options.mpc.trace_hook = [&](const mpc::RoundTrace& trace) {
    const std::string got = record_line(trace);
    if (emitted >= num_recorded) {
      ++mismatches;
      if (first_mismatch.empty()) {
        first_mismatch = "extra phase beyond recorded log: " + got;
      }
    } else if (got != lines[1 + emitted]) {
      ++mismatches;
      if (first_mismatch.empty()) {
        first_mismatch = "line " + std::to_string(2 + emitted) +
                         "\n  recorded: " + lines[1 + emitted] +
                         "\n  replayed: " + got;
      }
    }
    ++emitted;
  };

  const RulingSetResult result = compute_ruling_set(g, options);
  if (emitted < num_recorded) {
    ++mismatches;
    if (first_mismatch.empty()) {
      first_mismatch = "replay produced " + std::to_string(emitted) +
                       " phases, log has " + std::to_string(num_recorded);
    }
  }
  const std::string summary = summary_json(result);
  if (summary != lines.back()) {
    ++mismatches;
    if (first_mismatch.empty()) {
      first_mismatch = "summary\n  recorded: " + lines.back() +
                       "\n  replayed: " + summary;
    }
  }

  std::cout << "replay=" << (mismatches == 0 ? "ok" : "mismatch") << "\n"
            << "replay_file=" << path << "\n"
            << "algorithm=" << spec.algorithm << "\n"
            << "phases_checked=" << emitted << "\n"
            << "rounds=" << result.metrics.rounds << "\n"
            << "faults_injected=" << result.metrics.faults_injected << "\n"
            << "checkpoints=" << result.metrics.checkpoints << "\n"
            << "recovery_rounds=" << result.metrics.recovery_rounds << "\n";
  if (mismatches != 0) {
    std::cerr << "replay mismatch (" << mismatches << " total), first at "
              << first_mismatch << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get_bool("verbose", false)) {
    Logger::instance().set_level(LogLevel::kDebug);
  }
  // A mistyped flag must not silently run with its default (exit-code
  // contract: usage errors are 2, never a plausible-looking result).
  static const std::set<std::string> kKnownFlags = {
      "algorithm", "avg_deg",  "beta",     "budget",   "budget-policy",
      "checkpoint-every",      "deadline", "faults",   "gen",
      "input",     "machines", "memory_words",         "n",
      "out",       "paranoid", "print_set",            "record",
      "replay",    "seed",     "threads",  "trace",    "verbose"};
  for (const std::string& key : flags.keys()) {
    if (kKnownFlags.count(key) == 0) {
      return usage("unknown flag: --" + key);
    }
  }

  try {
    if (flags.has("replay")) {
      return run_replay(flags.get("replay", ""));
    }
    if (!flags.has("input") && !flags.has("gen")) {
      return usage("need --input=FILE, --gen=NAME, or --replay=FILE");
    }

    const RunSpec spec = spec_from_flags(flags);
    const Graph g = build_graph(spec);
    RulingSetOptions options = options_from_spec(spec);
    const AlgorithmInfo& info = algorithm_info(options.algorithm);
    const bool faulty =
        options.mpc.faults.enabled || options.mpc.checkpoint_every != 0;

    std::ofstream trace_out;
    std::ofstream record_out;
    std::vector<mpc::TraceHook> hooks;
    if (flags.has("trace")) {
      trace_out.open(flags.get("trace", ""));
      if (!trace_out) {
        std::cerr << "error: cannot write " << flags.get("trace", "") << "\n";
        return 2;
      }
      hooks.push_back([&trace_out](const mpc::RoundTrace& trace) {
        trace_out << mpc::to_json(trace) << "\n";
      });
    }
    if (flags.has("record")) {
      record_out.open(flags.get("record", ""));
      if (!record_out) {
        std::cerr << "error: cannot write " << flags.get("record", "") << "\n";
        return 2;
      }
      record_out << spec_to_json(spec) << "\n";
      hooks.push_back([&record_out](const mpc::RoundTrace& trace) {
        record_out << record_line(trace) << "\n";
      });
    }
    if (hooks.size() == 1) {
      options.mpc.trace_hook = hooks.front();
    } else if (hooks.size() > 1) {
      options.mpc.trace_hook = [hooks](const mpc::RoundTrace& trace) {
        for (const auto& hook : hooks) hook(trace);
      };
    }

    const RulingSetResult result = compute_ruling_set(g, options);
    if (record_out.is_open()) {
      record_out << summary_json(result) << "\n";
    }
    // AGLP's guarantee is a function of n; everyone else delivers the
    // requested beta.
    const std::uint32_t beta =
        options.algorithm == Algorithm::kAglpCongest ? result.beta
                                                     : options.beta;
    const auto report = check_ruling_set(g, result.ruling_set, beta);

    std::cout << "algorithm=" << info.name << "\n"
              << "model=" << model_name(info.model) << "\n"
              << "n=" << g.num_vertices() << "\n"
              << "m=" << g.num_edges() << "\n"
              << "beta=" << beta << "\n"
              << "size=" << result.ruling_set.size() << "\n"
              << "radius=" << report.radius << "\n"
              << "valid=" << (report.valid ? 1 : 0) << "\n"
              << "phases=" << result.phases << "\n";
    if (info.model == Model::kCongest) {
      std::cout << "rounds=" << result.congest_metrics.rounds << "\n"
                << "total_bits=" << result.congest_metrics.total_bits << "\n"
                << "random_words=" << result.congest_metrics.random_words
                << "\n";
    } else {
      std::cout << "rounds=" << result.metrics.rounds << "\n"
                << "words=" << result.metrics.total_words << "\n"
                << "peak_memory_words=" << result.metrics.max_storage_words
                << "\n"
                << "random_words=" << result.metrics.random_words << "\n"
                << "violations=" << result.metrics.violations << "\n";
      // Fault-ledger keys appear only when the subsystem is on, so default
      // runs keep the historical output byte-for-byte.
      if (faulty) {
        std::cout << "faults_injected=" << result.metrics.faults_injected
                  << "\n"
                  << "checkpoints=" << result.metrics.checkpoints << "\n"
                  << "recovery_rounds=" << result.metrics.recovery_rounds
                  << "\n";
      }
      if (options.mpc.budget_policy == mpc::BudgetPolicy::kDegrade) {
        std::cout << "degraded_subrounds="
                  << result.metrics.degraded_subrounds << "\n";
      }
      if (options.mpc.round_deadline != 0) {
        std::cout << "deadline_misses=" << result.metrics.deadline_misses
                  << "\n"
                  << "speculative_rounds="
                  << result.metrics.speculative_rounds << "\n";
      }
    }

    // --paranoid: re-derive validity through the in-model certification
    // pass, then cross-validate the certificate against a sequential
    // recomputation. Both must agree for exit 0.
    bool certified = true;
    if (flags.get_bool("paranoid", false)) {
      const RulingSetCertificate cert =
          mpc::certify_ruling_set(g, result.ruling_set, beta, options.mpc);
      const bool cross_ok = cross_validate_certificate(
          g, result.ruling_set, cert);
      certified = cert.valid() && cross_ok;
      std::cout << "certificate=" << cert.to_string() << "\n"
                << "certify_rounds=" << cert.rounds << "\n"
                << "cross_validated=" << (cross_ok ? 1 : 0) << "\n"
                << "certified=" << (certified ? 1 : 0) << "\n";
    }

    if (flags.has("out")) {
      std::ofstream out(flags.get("out", ""));
      if (!out) {
        std::cerr << "error: cannot write " << flags.get("out", "") << "\n";
        return 2;
      }
      for (VertexId v : result.ruling_set) out << v << "\n";
    }
    if (flags.get_bool("print_set", false)) {
      for (VertexId v : result.ruling_set) std::cout << v << "\n";
    }
    return report.valid && certified ? 0 : 1;
  } catch (const std::exception& e) {
    return usage(e.what());
  }
}
