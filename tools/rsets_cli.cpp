// Command-line front end: run any ruling-set algorithm on an edge-list file
// or a named synthetic generator, verify the output, and print metrics (and
// optionally the set itself) in a machine-friendly key=value format.
//
// Usage:
//   rsets_cli --input=graph.txt --algorithm=det_ruling_mpc --beta=2
//   rsets_cli --gen=gnp --n=10000 --avg_deg=8 --algorithm=luby_mpc --beta=1
//   rsets_cli --gen=power_law --n=5000 --algorithm=sample_gather_mpc
//             --beta=2 --machines=16 --threads=4 --trace=rounds.jsonl
//
// Every algorithm — sequential, MPC, and CONGEST — goes through the unified
// compute_ruling_set dispatcher; --algorithm accepts any name from
// rsets::algorithm_registry() (plus the legacy congest_* aliases).
//
// Exit code: 0 if the output verified, 1 otherwise, 2 on usage errors.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/verify.hpp"
#include "mpc/trace.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

namespace {

using namespace rsets;

const char* model_name(Model m) {
  switch (m) {
    case Model::kSequential:
      return "sequential";
    case Model::kMpc:
      return "mpc";
    case Model::kCongest:
      return "congest";
  }
  return "?";
}

int usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: rsets_cli (--input=FILE | --gen=NAME --n=N)\n"
            << "  --algorithm=NAME   one of (default det_ruling_mpc):\n";
  for (const AlgorithmInfo& info : algorithm_registry()) {
    std::cerr << "      " << info.name;
    for (std::size_t pad = info.name.size(); pad < 22; ++pad) std::cerr << ' ';
    std::cerr << "[" << model_name(info.model) << "] " << info.summary
              << "\n";
  }
  std::cerr
      << "  --beta=B           ruling parameter (default: the algorithm's "
         "minimum)\n"
      << "  --gen=NAME         gnp|gnm|power_law|regular|ba|tree|grid\n"
      << "  --n=N --avg_deg=D --seed=S   generator parameters\n"
      << "  --machines=M --memory_words=W --budget=B   MPC knobs\n"
      << "  --threads=T        MPC simulator worker threads (1 sequential,\n"
      << "                     0 hardware concurrency; results identical)\n"
      << "  --trace=FILE       per-round JSONL trace (MPC algorithms)\n"
      << "  --out=FILE         write the set, one vertex per line\n"
      << "  --print_set        print the set to stdout\n"
      << "  --verbose          debug logging\n";
  return 2;
}

Graph build_graph(const Flags& flags) {
  if (flags.has("input")) {
    return read_edge_list_file(flags.get("input", ""));
  }
  const std::string name = flags.get("gen", "");
  const auto n = static_cast<VertexId>(flags.get_int("n", 10000));
  const double avg_deg = flags.get_double("avg_deg", 8.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  if (name == "gnp") return gen::gnp(n, avg_deg / n, seed);
  if (name == "gnm") {
    return gen::gnm(n, static_cast<std::uint64_t>(avg_deg * n / 2), seed);
  }
  if (name == "power_law") return gen::power_law(n, 2.5, avg_deg, seed);
  if (name == "regular") {
    auto d = static_cast<std::uint32_t>(avg_deg);
    if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ++d;
    return gen::random_regular(n, d, seed);
  }
  if (name == "ba") {
    return gen::barabasi_albert(
        n, std::max<std::uint32_t>(1, static_cast<std::uint32_t>(avg_deg / 2)),
        seed);
  }
  if (name == "tree") return gen::random_tree(n, seed);
  if (name == "grid") {
    const auto side = static_cast<std::uint32_t>(std::sqrt(n));
    return gen::grid(side, side);
  }
  throw std::invalid_argument("unknown generator: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get_bool("verbose", false)) {
    Logger::instance().set_level(LogLevel::kDebug);
  }
  if (!flags.has("input") && !flags.has("gen")) {
    return usage("need --input=FILE or --gen=NAME");
  }

  try {
    const Graph g = build_graph(flags);
    const std::string algo_name = flags.get("algorithm", "det_ruling_mpc");
    const auto algorithm = algorithm_from_name(algo_name);
    if (!algorithm) return usage("unknown algorithm: " + algo_name);
    const AlgorithmInfo& info = algorithm_info(*algorithm);

    RulingSetOptions options;
    options.algorithm = *algorithm;
    // Without an explicit --beta, run at the algorithm's minimum (an MIS
    // algorithm defaults to 1, the 2-ruling machinery to 2, ...).
    options.beta = flags.has("beta")
                       ? static_cast<std::uint32_t>(flags.get_int("beta", 2))
                       : info.min_beta;
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    options.mpc.num_machines =
        static_cast<mpc::MachineId>(flags.get_int("machines", 8));
    options.mpc.memory_words =
        static_cast<std::size_t>(flags.get_int("memory_words", 1 << 24));
    options.mpc.seed = seed;
    options.mpc.num_threads =
        static_cast<unsigned>(flags.get_int("threads", 1));
    options.congest.seed = seed;
    options.gather_budget_words =
        static_cast<std::uint64_t>(flags.get_int("budget", 0));

    std::ofstream trace_out;
    if (flags.has("trace")) {
      trace_out.open(flags.get("trace", ""));
      if (!trace_out) {
        std::cerr << "error: cannot write " << flags.get("trace", "") << "\n";
        return 2;
      }
      options.mpc.trace_hook = [&trace_out](const mpc::RoundTrace& trace) {
        trace_out << mpc::to_json(trace) << "\n";
      };
    }

    const RulingSetResult result = compute_ruling_set(g, options);
    // AGLP's guarantee is a function of n; everyone else delivers the
    // requested beta.
    const std::uint32_t beta =
        *algorithm == Algorithm::kAglpCongest ? result.beta : options.beta;
    const auto report = check_ruling_set(g, result.ruling_set, beta);

    std::cout << "algorithm=" << info.name << "\n"
              << "model=" << model_name(info.model) << "\n"
              << "n=" << g.num_vertices() << "\n"
              << "m=" << g.num_edges() << "\n"
              << "beta=" << beta << "\n"
              << "size=" << result.ruling_set.size() << "\n"
              << "radius=" << report.radius << "\n"
              << "valid=" << (report.valid ? 1 : 0) << "\n"
              << "phases=" << result.phases << "\n";
    if (info.model == Model::kCongest) {
      std::cout << "rounds=" << result.congest_metrics.rounds << "\n"
                << "total_bits=" << result.congest_metrics.total_bits << "\n"
                << "random_words=" << result.congest_metrics.random_words
                << "\n";
    } else {
      std::cout << "rounds=" << result.metrics.rounds << "\n"
                << "words=" << result.metrics.total_words << "\n"
                << "peak_memory_words=" << result.metrics.max_storage_words
                << "\n"
                << "random_words=" << result.metrics.random_words << "\n"
                << "violations=" << result.metrics.violations << "\n";
    }

    if (flags.has("out")) {
      std::ofstream out(flags.get("out", ""));
      if (!out) {
        std::cerr << "error: cannot write " << flags.get("out", "") << "\n";
        return 2;
      }
      for (VertexId v : result.ruling_set) out << v << "\n";
    }
    if (flags.get_bool("print_set", false)) {
      for (VertexId v : result.ruling_set) std::cout << v << "\n";
    }
    return report.valid ? 0 : 1;
  } catch (const std::exception& e) {
    return usage(e.what());
  }
}
