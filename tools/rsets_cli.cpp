// Command-line front end: run any ruling-set algorithm on an edge-list file
// or a named synthetic generator, verify the output, and print metrics (and
// optionally the set itself) in a machine-friendly key=value format.
//
// Usage:
//   rsets_cli --input=graph.txt --algorithm=det_ruling_mpc --beta=2
//   rsets_cli --gen=gnp --n=10000 --avg_deg=8 --algorithm=luby_mpc --beta=1
//   rsets_cli --gen=power_law --n=5000 --algorithm=sample_gather_mpc
//             --beta=2 --machines=16 --threads=4 --trace=rounds.jsonl
//   rsets_cli --gen=gnp --n=5000 --faults=crash@5:2,drop~0.01,corrupt~0.02
//             --checkpoint-every=3 --record=run.jsonl
//   rsets_cli --replay=run.jsonl
//   rsets_cli --soak=50 --n=400
//   rsets_cli --serve --gen=gnp --n=10000 --updates=stream.txt
//             --journal=state.rsj --admit-budget=64
//   rsets_cli --serve --recover --journal=state.rsj --updates=-
//
// Every algorithm — sequential, MPC, and CONGEST — goes through the unified
// compute_ruling_set dispatcher; --algorithm accepts any name from
// rsets::algorithm_registry() (plus the legacy congest_* aliases).
//
// --record writes a replayable execution log (see core/replay.hpp for the
// format); --replay re-runs the recorded specification and byte-compares
// every regenerated line against the log, so a recorded execution — faults,
// checkpoints, recoveries, corruption healing and all — is checkably
// reproducible. --soak=N runs the chaos-soak harness (core/chaos.hpp): N
// seeded mixed-fault schedules across every MPC algorithm, asserting
// bit-identical outputs and certified validity. --serve holds the graph
// resident and maintains its ruling set incrementally under an edge-update
// stream (see src/serve/), certifying every committed epoch.
//
// Exit-code contract (documented in README "Exit codes"):
//   0  the output verified (and, under --paranoid, was certified and
//      cross-validated; under --replay, every line matched; under --soak,
//      every schedule upheld the contract; under --serve, every committed
//      epoch certified)
//   1  the run completed but verification/certification/replay/soak failed,
//      or the service could not maintain its certified contract
//   2  usage or input errors: bad flags, malformed graph files or update
//      streams, missing or unreadable replay logs/journals
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "core/replay.hpp"
#include "core/ruling_set.hpp"
#include "serve/service.hpp"
#include "serve/updates.hpp"
#include "graph/shard/shard_csr.hpp"
#include "graph/shard/sharded_source.hpp"
#include "graph/shard/validator.hpp"
#include "graph/verify.hpp"
#include "mpc/certify.hpp"
#include "mpc/trace.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace {

using namespace rsets;

const char* model_name(Model m) {
  switch (m) {
    case Model::kSequential:
      return "sequential";
    case Model::kMpc:
      return "mpc";
    case Model::kCongest:
      return "congest";
  }
  return "?";
}

int usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: rsets_cli (--input=FILE | --gen=NAME --n=N | "
               "--replay=FILE | --soak=N)\n"
            << "  --algorithm=NAME   one of (default det_ruling_mpc):\n";
  for (const AlgorithmInfo& info : algorithm_registry()) {
    std::cerr << "      " << info.name;
    for (std::size_t pad = info.name.size(); pad < 22; ++pad) std::cerr << ' ';
    std::cerr << "[" << model_name(info.model) << "] " << info.summary
              << "\n";
  }
  std::cerr
      << "  --beta=B           ruling parameter (default: the algorithm's "
         "minimum)\n"
      << "  --gen=NAME         gnp|gnm|power_law|regular|ba|tree|grid\n"
      << "  --n=N --avg_deg=D --seed=S   generator parameters\n"
      << "  --machines=M --memory_words=W --budget=B   MPC knobs\n"
      << "  --threads=T        MPC simulator worker threads (1 sequential,\n"
      << "                     0 hardware concurrency; results identical)\n"
      << "  --budget-policy=P  strict (default: throw on violation) | trace\n"
      << "                     (count violations) | degrade (spill-and-resend\n"
      << "                     sub-rounds; same results, extra rounds)\n"
      << "  --deadline=W       per-round work budget; machines over it are\n"
      << "                     speculatively re-executed with backoff\n"
      << "  --integrity        checksum-verify every delivered message even\n"
      << "                     in fault-free runs (results byte-identical)\n"
      << "  --paranoid         certify the output in-model (O(beta) extra\n"
      << "                     rounds) and cross-validate the certificate\n"
      << "  --faults=SPEC      inject faults: crash@R:M, straggler@R:M[:D],\n"
      << "                     crash~P, straggler~P, drop~P, dup~P,\n"
      << "                     corrupt~P, reorder~P, seed=X\n"
      << "                     (comma-separated; results never change)\n"
      << "  --checkpoint-every=K   durable checkpoint every K rounds\n"
      << "  --record=FILE      write a replayable execution log (JSONL)\n"
      << "  --replay=FILE      re-run a recorded log and verify it matches\n"
      << "  --soak=N           chaos soak: N seeded mixed-fault schedules\n"
      << "                     across all MPC algorithms (--n/--avg_deg/\n"
      << "                     --machines/--seed shape the runs)\n"
      << "  --serve            long-lived service: hold the graph resident,\n"
      << "                     stream edge updates, repair incrementally on\n"
      << "                     the beta-hop frontier, certify every epoch\n"
      << "  --updates=FILE     update batches for --serve ('+ u v', '- u v',\n"
      << "                     'commit' lines; '-' reads stdin)\n"
      << "  --journal=FILE     sealed epoch journal for --serve (crash\n"
      << "                     recovery lands on the last committed epoch)\n"
      << "  --recover          restore --serve state from --journal instead\n"
      << "                     of recomputing from --input/--gen\n"
      << "  --admit-budget=N   max effective updates admitted per epoch\n"
      << "                     (0 unlimited; larger batches are split)\n"
      << "  --max-epochs=N     max epochs per batch; the excess is deferred\n"
      << "                     to later batches, never dropped\n"
      << "  --full-threshold=F churn fraction above which the service\n"
      << "                     escalates to full recompute + full certify\n"
      << "  --full-certify-every=K  full in-model certification every K\n"
      << "                     epochs (region-restricted otherwise)\n"
      << "  --repair-retries=N retry budget for repairs that trip the\n"
      << "                     degrade budget or the round deadline\n"
      << "  --producers=N      multi-producer ingest: --updates lines tagged\n"
      << "                     'p<ID> <payload>' route to producer ID\n"
      << "                     (untagged lines to p0); batches merge into\n"
      << "                     deterministic generations, one bad stream\n"
      << "                     quarantines/ejects only that producer\n"
      << "  --queue-cap=C      committed batches queued per producer before\n"
      << "                     backpressure (0 unbounded; a stream the cap\n"
      << "                     cannot admit single-threaded exits 2)\n"
      << "  --query=V[,V...]   after the stream drains, answer epoch-pinned\n"
      << "                     point queries (covered? nearest member?)\n"
      << "  --watchdog-deadline=W  per-epoch repair-work deadline: stuck\n"
      << "                     frontier repairs escalate to full, a stuck\n"
      << "                     full repair fail-stops (exit 1, journal\n"
      << "                     sealed); 0 disables\n"
      << "  --trace=FILE       per-round JSONL trace (MPC algorithms)\n"
      << "  --sharded=SPEC     stream the input as per-machine shards (no\n"
      << "                     global edge list): graph500:scale=S[,edgefactor=E]\n"
      << "                     | rmat:scale=S[,edgefactor=E,a=A,b=B,c=C]\n"
      << "                     | geometric3d:n=N,radius=R  (--seed applies)\n"
      << "  --spill-dir=DIR    back the sharded adjacency with an mmapped\n"
      << "                     spill file in DIR (out-of-core ingestion)\n"
      << "  --validate-shards  run the cross-shard validator before computing\n"
      << "  --out=FILE         write the set, one vertex per line\n"
      << "  --print_set        print the set to stdout\n"
      << "  --verbose          debug logging\n";
  return 2;
}

RunSpec spec_from_flags(const Flags& flags) {
  RunSpec spec;
  spec.algorithm = flags.get("algorithm", "det_ruling_mpc");
  const auto algorithm = algorithm_from_name(spec.algorithm);
  if (!algorithm) {
    throw std::invalid_argument("unknown algorithm: " + spec.algorithm);
  }
  // Without an explicit --beta, run at the algorithm's minimum (an MIS
  // algorithm defaults to 1, the 2-ruling machinery to 2, ...).
  spec.beta = flags.has("beta")
                  ? static_cast<std::uint32_t>(flags.get_int("beta", 2))
                  : algorithm_info(*algorithm).min_beta;
  spec.input = flags.get("input", "");
  spec.gen = flags.get("gen", "");
  spec.n = static_cast<std::uint64_t>(flags.get_int("n", 10000));
  spec.avg_deg = flags.get_double("avg_deg", 8.0);
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.machines = static_cast<std::uint32_t>(flags.get_int("machines", 8));
  spec.memory_words =
      static_cast<std::uint64_t>(flags.get_int("memory_words", 1 << 24));
  spec.threads = static_cast<std::uint32_t>(flags.get_int("threads", 1));
  spec.budget = static_cast<std::uint64_t>(flags.get_int("budget", 0));
  spec.faults = flags.get("faults", "");
  spec.checkpoint_every =
      static_cast<std::uint64_t>(flags.get_int("checkpoint-every", 0));
  spec.budget_policy = flags.get("budget-policy", "strict");
  mpc::parse_budget_policy(spec.budget_policy);  // validate early
  spec.deadline = static_cast<std::uint64_t>(flags.get_int("deadline", 0));
  spec.integrity = flags.get_bool("integrity", false);
  return spec;
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 2;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  if (lines.size() < 2) {
    std::cerr << "error: " << path << " is not a replay log (need meta and "
              << "summary lines)\n";
    return 2;
  }
  const ReplayReport report = replay_log(lines);
  std::cout << "replay=" << (report.ok() ? "ok" : "mismatch") << "\n"
            << "replay_file=" << path << "\n"
            << "algorithm=" << report.spec.algorithm << "\n"
            << "phases_checked=" << report.phases_checked << "\n"
            << "rounds=" << report.result.metrics.rounds << "\n"
            << "faults_injected=" << report.result.metrics.faults_injected
            << "\n"
            << "checkpoints=" << report.result.metrics.checkpoints << "\n"
            << "recovery_rounds=" << report.result.metrics.recovery_rounds
            << "\n"
            << "peak_rss_kb=" << peak_rss_kb() << "\n";
  if (!report.ok()) {
    std::cerr << "replay mismatch (" << report.mismatches
              << " total), first at " << report.first_mismatch << "\n";
    return 1;
  }
  return 0;
}

// The sharded front end: the input is described by --sharded=SPEC and never
// materialized — each simulated machine streams its own shard straight into
// the distributed store. Verification is the in-model certificate (the
// sequential checker would need the global graph we refuse to build), so
// exit 0 means the certificate validated.
int run_sharded(const Flags& flags) {
  const RunSpec spec = spec_from_flags(flags);
  RulingSetOptions options = options_from_spec(spec);
  const AlgorithmInfo& info = algorithm_info(options.algorithm);
  const bool faulty =
      options.mpc.faults.enabled || options.mpc.checkpoint_every != 0;

  const shard::ShardSpec shard_spec =
      shard::parse_shard_spec(flags.get("sharded", ""), spec.seed);
  shard::IngestOptions ingest;
  if (flags.has("spill-dir")) {
    ingest.spill_dir = flags.get("spill-dir", "");
    shard::validate_spill_dir(ingest.spill_dir);
  }
  const auto src = shard::make_sharded_source(shard_spec, spec.machines);

  if (flags.get_bool("validate-shards", false)) {
    const shard::ShardValidationReport report =
        shard::validate_sharded_source(*src);
    std::cout << "shards_valid=" << (report.ok() ? 1 : 0) << "\n";
    if (!report.ok()) {
      std::cerr << report.to_string() << "\n";
      return 1;
    }
  }

  std::ofstream trace_out;
  if (flags.has("trace")) {
    trace_out.open(flags.get("trace", ""));
    if (!trace_out) {
      std::cerr << "error: cannot write " << flags.get("trace", "") << "\n";
      return 2;
    }
    options.mpc.trace_hook = [&trace_out](const mpc::RoundTrace& trace) {
      trace_out << mpc::to_json(trace) << "\n";
    };
  }

  const RulingSetResult result =
      compute_ruling_set_sharded(*src, ingest, options);

  std::cout << "algorithm=" << info.name << "\n"
            << "model=mpc\n"
            << "sharded=" << shard_spec.to_string() << "\n"
            << "n=" << src->num_vertices() << "\n"
            << "raw_edges=" << src->raw_edges() << "\n"
            << "machines=" << spec.machines << "\n"
            << "beta=" << options.beta << "\n"
            << "size=" << result.ruling_set.size() << "\n"
            << "phases=" << result.phases << "\n"
            << "rounds=" << result.metrics.rounds << "\n"
            << "words=" << result.metrics.total_words << "\n"
            << "peak_memory_words=" << result.metrics.max_storage_words
            << "\n"
            << "random_words=" << result.metrics.random_words << "\n"
            << "violations=" << result.metrics.violations << "\n";
  if (faulty) {
    std::cout << "faults_injected=" << result.metrics.faults_injected << "\n"
              << "checkpoints=" << result.metrics.checkpoints << "\n"
              << "recovery_rounds=" << result.metrics.recovery_rounds << "\n";
  }

  // Certify through the same sharded ingestion: the clean-room simulator
  // regenerates its shards, never touching a global edge list.
  const RulingSetCertificate cert = mpc::certify_ruling_set(
      *src, ingest, result.ruling_set, options.beta, options.mpc);
  std::cout << "certificate=" << cert.to_string() << "\n"
            << "certify_rounds=" << cert.rounds << "\n"
            << "certified=" << (cert.valid() ? 1 : 0) << "\n"
            << "peak_rss_kb=" << peak_rss_kb() << "\n";

  if (flags.has("out")) {
    std::ofstream out(flags.get("out", ""));
    if (!out) {
      std::cerr << "error: cannot write " << flags.get("out", "") << "\n";
      return 2;
    }
    for (VertexId v : result.ruling_set) out << v << "\n";
  }
  if (flags.get_bool("print_set", false)) {
    for (VertexId v : result.ruling_set) std::cout << v << "\n";
  }
  return cert.valid() ? 0 : 1;
}

// The long-lived service front end: load (or --recover) the resident graph,
// stream update batches from --updates (a file, or stdin as "-"), maintain
// the ruling set incrementally, and certify every epoch. With --producers=N
// the stream is producer-tagged ("p<ID> <payload>") and routed through the
// multi-producer ingest front: batches merge into deterministic generations
// and a bad stream strikes/ejects only its own producer. One key=value
// stanza per applied batch (or generation/tombstone), then a summary; exit 0
// only when every epoch certified, 1 when the service could not maintain its
// certified contract (certification/repair failure, or a watchdog fail-stop
// sealing the journal), 2 for usage/input errors (including a bad producer
// tag or a stream the --queue-cap can never admit single-threaded).
int run_serve(const Flags& flags) {
  const RunSpec spec = spec_from_flags(flags);
  serve::ServiceConfig cfg;
  cfg.options = options_from_spec(spec);
  cfg.admit_budget =
      static_cast<std::uint64_t>(flags.get_int("admit-budget", 0));
  cfg.max_epochs_per_apply =
      static_cast<std::uint64_t>(flags.get_int("max-epochs", 0));
  cfg.full_certify_every =
      static_cast<std::uint64_t>(flags.get_int("full-certify-every", 16));
  cfg.max_repair_retries =
      static_cast<std::uint32_t>(flags.get_int("repair-retries", 3));
  cfg.full_threshold = flags.get_double("full-threshold", 0.10);
  cfg.journal_path = flags.get("journal", "");
  cfg.watchdog_deadline =
      static_cast<std::uint64_t>(flags.get_int("watchdog-deadline", 0));

  std::optional<serve::RulingSetService> recovered;
  if (flags.get_bool("recover", false)) {
    // A journal that cannot be read or decoded is an input error (exit 2),
    // distinct from a live service failing its certified contract (exit 1).
    try {
      recovered.emplace(serve::RulingSetService::recover(cfg));
    } catch (const serve::ServiceError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }
  try {
    serve::RulingSetService service =
        recovered ? std::move(*recovered)
                  : serve::RulingSetService(build_graph(spec), cfg);

    const auto producers =
        static_cast<std::uint32_t>(flags.get_int("producers", 1));
    std::vector<serve::UpdateBatch> batches;
    const std::string updates_path = flags.get("updates", "");
    std::ifstream updates_file;
    std::istream* updates_in = nullptr;
    if (updates_path == "-") {
      updates_in = &std::cin;
    } else if (!updates_path.empty()) {
      updates_file.open(updates_path);
      if (!updates_file) {
        std::cerr << "error: cannot read " << updates_path << "\n";
        return 2;
      }
      updates_in = &updates_file;
    }
    if (producers <= 1 && updates_in != nullptr) {
      batches = serve::parse_update_stream(*updates_in,
                                           service.graph().num_vertices());
    }

    std::cout << "serve=1\n"
              << "algorithm=" << algorithm_name(cfg.options.algorithm) << "\n"
              << "beta=" << cfg.options.beta << "\n"
              << "n=" << service.graph().num_vertices() << "\n"
              << "recovered=" << service.metrics().recoveries << "\n"
              << "start_epoch=" << service.epoch() << "\n"
              << "initial_size=" << service.ruling_set().size() << "\n";

    std::size_t index = 0;
    auto apply_one = [&](const serve::UpdateBatch& batch, const char* label) {
      serve::BatchReport report = service.apply(batch);
      while (service.pending() > 0) {
        const serve::BatchReport more = service.drain();
        report.epochs += more.epochs;
        report.effective_updates += more.effective_updates;
        if (static_cast<std::uint8_t>(more.scope) >
            static_cast<std::uint8_t>(report.scope)) {
          report.scope = more.scope;
        }
        report.set_size = more.set_size;
      }
      std::cout << label << "=" << index++ << "\n"
                << "  epoch=" << service.epoch() << "\n"
                << "  updates=" << report.updates << "\n"
                << "  effective_updates=" << report.effective_updates << "\n"
                << "  epochs=" << report.epochs << "\n"
                << "  scope=" << serve::repair_scope_name(report.scope)
                << "\n"
                << "  dirty_vertices=" << report.dirty_vertices << "\n"
                << "  repair_retries=" << report.repair_retries << "\n"
                << "  size=" << report.set_size << "\n";
    };

    if (producers > 1) {
      // Producer-tagged stream mode: route each line through the ingest
      // front; tombstones journal before any dependent generation applies.
      serve::IngestConfig icfg;
      icfg.num_producers = producers;
      icfg.queue_cap =
          static_cast<std::uint64_t>(flags.get_int("queue-cap", 4));
      icfg.num_vertices = service.graph().num_vertices();
      serve::MultiProducerIngest ingest(icfg);
      auto pump = [&]() -> std::uint64_t {
        std::uint64_t taken = 0;
        for (const serve::ProducerTombstone& t : ingest.take_tombstones()) {
          service.record_tombstone(t);
          std::cout << "tombstone=p" << t.producer << "\n"
                    << "  line=" << t.line << "\n"
                    << "  strikes=" << t.strikes << "\n"
                    << "  reason=" << t.reason << "\n";
        }
        while (std::optional<serve::UpdateBatch> gen =
                   ingest.take_generation()) {
          apply_one(*gen, "generation");
          ++taken;
        }
        return taken;
      };
      std::string line;
      std::uint64_t lineno = 0;
      while (updates_in != nullptr && std::getline(*updates_in, line)) {
        ++lineno;
        for (;;) {
          const serve::PushStatus status = ingest.offer_tagged_line(line);
          if (status == serve::PushStatus::kBadTag) {
            std::cerr << "error: line " << lineno
                      << ": bad producer tag (want p0..p" << (producers - 1)
                      << ")\n";
            return 2;
          }
          if (status == serve::PushStatus::kWouldBlock) {
            if (pump() == 0) {
              // Nothing could merge (another producer's generation slot is
              // still open), so the cap can never clear single-threaded.
              std::cerr << "error: line " << lineno
                        << ": producer queue over --queue-cap with no "
                           "generation ready (raise --queue-cap or reorder "
                           "the stream)\n";
              return 2;
            }
            continue;  // space freed; resubmit the same line
          }
          if (status == serve::PushStatus::kBackoff) continue;  // cooldown
          break;  // consumed (or dropped: ejected/closed streams stay dead)
        }
      }
      ingest.close_all();
      pump();
      const serve::IngestMetrics im = ingest.metrics();
      std::cout << "producers=" << producers << "\n"
                << "generations=" << im.generations << "\n"
                << "backpressure=" << im.backpressure << "\n"
                << "producer_strikes=" << im.strikes << "\n"
                << "producer_ejections=" << im.ejections << "\n";
    } else {
      for (const serve::UpdateBatch& batch : batches) {
        apply_one(batch, "batch");
      }
    }

    if (flags.has("query")) {
      // Epoch-pinned point queries from the last committed epoch's
      // immutable snapshot handle.
      const serve::QueryHandle snap = service.query();
      std::stringstream spec_in(flags.get("query", ""));
      std::string token;
      while (std::getline(spec_in, token, ',')) {
        std::uint64_t v = 0;
        try {
          v = std::stoull(token);
        } catch (const std::exception&) {
          std::cerr << "error: --query: bad vertex '" << token << "'\n";
          return 2;
        }
        if (v >= snap->graph().num_vertices()) {
          std::cerr << "error: --query: vertex " << v << " out of range\n";
          return 2;
        }
        const serve::PointQueryResult r =
            snap->nearest_member(static_cast<VertexId>(v));
        std::cout << "query=" << v << "\n"
                  << "  epoch=" << snap->epoch() << "\n"
                  << "  covered=" << (r.covered ? 1 : 0) << "\n";
        if (r.covered) {
          std::cout << "  member=" << r.member << "\n"
                    << "  distance=" << r.distance << "\n";
        }
      }
    }

    const serve::ServiceMetrics& m = service.metrics();
    std::cout << "batches=" << m.batches << "\n"
              << "epochs=" << service.epoch() << "\n"
              << "updates_applied=" << m.updates_applied << "\n"
              << "updates_noop=" << m.updates_noop << "\n"
              << "skips=" << m.skips << "\n"
              << "frontier_repairs=" << m.repairs_frontier << "\n"
              << "full_recomputes=" << m.repairs_full << "\n"
              << "cascade_repairs=" << m.cascade_repairs << "\n"
              << "repair_retries=" << m.repair_retries << "\n"
              << "region_certifications=" << m.certifications_region << "\n"
              << "full_certifications=" << m.certifications_full << "\n"
              << "journal_writes=" << m.journal_writes << "\n"
              << "tombstones=" << m.tombstones << "\n"
              << "heartbeats=" << m.heartbeats << "\n"
              << "watchdog_escalations=" << m.watchdog_escalations << "\n"
              << "watchdog_failstops=" << m.watchdog_failstops << "\n"
              << "sealed=" << (service.sealed() ? 1 : 0) << "\n"
              << "churn_ewma=" << service.churn_ewma() << "\n"
              << "size=" << service.ruling_set().size() << "\n"
              << "peak_rss_kb=" << peak_rss_kb() << "\n";

    if (flags.has("out")) {
      std::ofstream out(flags.get("out", ""));
      if (!out) {
        std::cerr << "error: cannot write " << flags.get("out", "") << "\n";
        return 2;
      }
      for (VertexId v : service.ruling_set()) out << v << "\n";
    }
    if (flags.get_bool("print_set", false)) {
      for (VertexId v : service.ruling_set()) std::cout << v << "\n";
    }
    return 0;
  } catch (const serve::ServiceError& e) {
    // The run started but the service could not maintain its certified
    // contract — that is the "completed but failed" exit, not a usage error.
    std::cerr << "service error: " << e.what() << "\n";
    return 1;
  }
}

int run_soak(const Flags& flags) {
  ChaosOptions options;
  options.schedules =
      static_cast<std::uint64_t>(flags.get_int("soak", 200));
  options.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  options.n = static_cast<std::uint64_t>(flags.get_int("n", 600));
  options.avg_deg = flags.get_double("avg_deg", 6.0);
  options.machines = static_cast<std::uint32_t>(flags.get_int("machines", 8));
  const ChaosReport report = run_chaos_soak(options);
  std::cout << "soak=" << (report.ok() ? "ok" : "failed") << "\n"
            << "schedules=" << report.schedules_run << "\n"
            << "runs=" << report.runs << "\n"
            << "faults_injected=" << report.faults_injected << "\n"
            << "corrupt_detected=" << report.corrupt_detected << "\n"
            << "integrity_retries=" << report.integrity_retries << "\n"
            << "quarantined_rounds=" << report.quarantined_rounds << "\n"
            << "recovery_rounds=" << report.recovery_rounds << "\n"
            << "certified=" << report.certified << "\n"
            << "failures=" << report.failures.size() << "\n"
            << "peak_rss_kb=" << peak_rss_kb() << "\n";
  for (const ChaosFailure& f : report.failures) {
    std::cerr << "soak failure: schedule " << f.schedule << " algorithm "
              << f.algorithm << " faults " << f.fault_spec << ": " << f.what
              << "\n";
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get_bool("verbose", false)) {
    Logger::instance().set_level(LogLevel::kDebug);
  }
  // A mistyped flag must not silently run with its default (exit-code
  // contract: usage errors are 2, never a plausible-looking result).
  static const std::set<std::string> kKnownFlags = {
      "admit-budget",          "algorithm", "avg_deg", "beta",
      "budget",    "budget-policy",
      "checkpoint-every",      "deadline",  "faults",  "full-certify-every",
      "full-threshold",        "gen",
      "input",     "integrity",             "journal", "machines",
      "max-epochs",            "memory_words",
      "n",         "out",      "paranoid",  "print_set",
      "producers", "query",    "queue-cap",
      "record",    "recover",  "repair-retries",
      "replay",    "seed",     "serve",     "sharded", "soak",
      "spill-dir", "threads",  "trace",     "updates",
      "validate-shards",       "verbose",   "watchdog-deadline"};
  for (const std::string& key : flags.keys()) {
    if (kKnownFlags.count(key) == 0) {
      return usage("unknown flag: --" + key);
    }
  }

  try {
    if (flags.has("sharded")) {
      // A sharded run has no global graph, so the modes that need one (or
      // that record a materialized RunSpec) are incompatible.
      if (flags.has("input") || flags.has("gen") || flags.has("record") ||
          flags.has("replay") || flags.has("soak") ||
          flags.get_bool("serve", false)) {
        return usage(
            "--sharded cannot be combined with --input, --gen, --record, "
            "--replay, --soak, or --serve");
      }
      return run_sharded(flags);
    }
    if (flags.get_bool("serve", false)) {
      if (flags.has("sharded") || flags.has("record") || flags.has("replay") ||
          flags.has("soak")) {
        return usage(
            "--serve cannot be combined with --sharded, --record, --replay, "
            "or --soak");
      }
      if (!flags.has("input") && !flags.has("gen") &&
          !flags.get_bool("recover", false)) {
        return usage("--serve needs --input=FILE, --gen=NAME, or --recover");
      }
      return run_serve(flags);
    }
    if (flags.has("replay")) {
      return run_replay(flags.get("replay", ""));
    }
    if (flags.has("soak")) {
      return run_soak(flags);
    }
    if (!flags.has("input") && !flags.has("gen")) {
      return usage(
          "need --input=FILE, --gen=NAME, --replay=FILE, --soak=N, or "
          "--sharded=SPEC");
    }

    const RunSpec spec = spec_from_flags(flags);
    const Graph g = build_graph(spec);
    RulingSetOptions options = options_from_spec(spec);
    const AlgorithmInfo& info = algorithm_info(options.algorithm);
    const bool faulty =
        options.mpc.faults.enabled || options.mpc.checkpoint_every != 0;

    std::ofstream trace_out;
    std::ofstream record_out;
    std::vector<mpc::TraceHook> hooks;
    if (flags.has("trace")) {
      trace_out.open(flags.get("trace", ""));
      if (!trace_out) {
        std::cerr << "error: cannot write " << flags.get("trace", "") << "\n";
        return 2;
      }
      hooks.push_back([&trace_out](const mpc::RoundTrace& trace) {
        trace_out << mpc::to_json(trace) << "\n";
      });
    }
    if (flags.has("record")) {
      record_out.open(flags.get("record", ""));
      if (!record_out) {
        std::cerr << "error: cannot write " << flags.get("record", "") << "\n";
        return 2;
      }
      record_out << spec_to_json(spec) << "\n";
      hooks.push_back([&record_out](const mpc::RoundTrace& trace) {
        record_out << record_line(trace) << "\n";
      });
    }
    if (hooks.size() == 1) {
      options.mpc.trace_hook = hooks.front();
    } else if (hooks.size() > 1) {
      options.mpc.trace_hook = [hooks](const mpc::RoundTrace& trace) {
        for (const auto& hook : hooks) hook(trace);
      };
    }

    const RulingSetResult result = compute_ruling_set(g, options);
    if (record_out.is_open()) {
      record_out << summary_json(result) << "\n";
    }
    // AGLP's guarantee is a function of n; everyone else delivers the
    // requested beta.
    const std::uint32_t beta =
        options.algorithm == Algorithm::kAglpCongest ? result.beta
                                                     : options.beta;
    const auto report = check_ruling_set(g, result.ruling_set, beta);

    std::cout << "algorithm=" << info.name << "\n"
              << "model=" << model_name(info.model) << "\n"
              << "n=" << g.num_vertices() << "\n"
              << "m=" << g.num_edges() << "\n"
              << "beta=" << beta << "\n"
              << "size=" << result.ruling_set.size() << "\n"
              << "radius=" << report.radius << "\n"
              << "valid=" << (report.valid ? 1 : 0) << "\n"
              << "phases=" << result.phases << "\n";
    if (info.model == Model::kCongest) {
      std::cout << "rounds=" << result.congest_metrics.rounds << "\n"
                << "total_bits=" << result.congest_metrics.total_bits << "\n"
                << "random_words=" << result.congest_metrics.random_words
                << "\n";
    } else {
      std::cout << "rounds=" << result.metrics.rounds << "\n"
                << "words=" << result.metrics.total_words << "\n"
                << "peak_memory_words=" << result.metrics.max_storage_words
                << "\n"
                << "random_words=" << result.metrics.random_words << "\n"
                << "violations=" << result.metrics.violations << "\n";
      // Fault-ledger keys appear only when the subsystem is on, so default
      // runs keep the historical output byte-for-byte.
      if (faulty) {
        std::cout << "faults_injected=" << result.metrics.faults_injected
                  << "\n"
                  << "checkpoints=" << result.metrics.checkpoints << "\n"
                  << "recovery_rounds=" << result.metrics.recovery_rounds
                  << "\n";
      }
      // Integrity-ledger keys appear whenever verification ran (forced by
      // corruption faults or opted into with --integrity).
      if (options.mpc.integrity || options.mpc.faults.corrupt_prob > 0.0) {
        std::cout << "corrupt_detected=" << result.metrics.corrupt_detected
                  << "\n"
                  << "integrity_retries=" << result.metrics.integrity_retries
                  << "\n"
                  << "quarantined_rounds="
                  << result.metrics.quarantined_rounds << "\n";
      }
      if (options.mpc.budget_policy == mpc::BudgetPolicy::kDegrade) {
        std::cout << "degraded_subrounds="
                  << result.metrics.degraded_subrounds << "\n";
      }
      if (options.mpc.round_deadline != 0) {
        std::cout << "deadline_misses=" << result.metrics.deadline_misses
                  << "\n"
                  << "speculative_rounds="
                  << result.metrics.speculative_rounds << "\n";
      }
    }

    // Reported uniformly from every run mode (standard, replay, soak,
    // sharded, serve), not just the out-of-core path.
    std::cout << "peak_rss_kb=" << peak_rss_kb() << "\n";

    // --paranoid: re-derive validity through the in-model certification
    // pass, then cross-validate the certificate against a sequential
    // recomputation. Both must agree for exit 0.
    bool certified = true;
    if (flags.get_bool("paranoid", false)) {
      const RulingSetCertificate cert =
          mpc::certify_ruling_set(g, result.ruling_set, beta, options.mpc);
      const bool cross_ok = cross_validate_certificate(
          g, result.ruling_set, cert);
      certified = cert.valid() && cross_ok;
      std::cout << "certificate=" << cert.to_string() << "\n"
                << "certify_rounds=" << cert.rounds << "\n"
                << "cross_validated=" << (cross_ok ? 1 : 0) << "\n"
                << "certified=" << (certified ? 1 : 0) << "\n";
    }

    if (flags.has("out")) {
      std::ofstream out(flags.get("out", ""));
      if (!out) {
        std::cerr << "error: cannot write " << flags.get("out", "") << "\n";
        return 2;
      }
      for (VertexId v : result.ruling_set) out << v << "\n";
    }
    if (flags.get_bool("print_set", false)) {
      for (VertexId v : result.ruling_set) std::cout << v << "\n";
    }
    return report.valid && certified ? 0 : 1;
  } catch (const std::exception& e) {
    return usage(e.what());
  }
}
