// Chaos-soak driver: N seeded mixed-fault schedules across every MPC
// algorithm, asserting the fault-tolerance contract (bit-identical outputs
// vs fault-free runs, plus certified validity) — see core/chaos.hpp.
//
// Usage:
//   chaos_soak                          # 200 schedules, the full contract
//   chaos_soak --schedules=40 --n=300   # the CI smoke configuration
//   chaos_soak --no-certify             # identity checks only (fastest)
//   chaos_soak --churn --journal_dir=D  # fault+churn soak over the
//                                       # long-lived service (crash-mid-batch
//                                       # recovery needs --journal_dir)
//   chaos_soak --churn --producers=4    # concurrent multi-producer front:
//                                       # seeded interleavings, backpressure,
//                                       # quarantine/ejection, pinned queries
//
// Prints an aggregate key=value report; exits 0 only when every schedule
// upheld the contract. A failure line carries the schedule index and the
// exact --faults spec, so any failure reproduces under rsets_cli.
#include <cstdint>
#include <iostream>
#include <set>
#include <string>

#include "core/chaos.hpp"
#include "util/flags.hpp"

namespace {

int run_churn(const rsets::Flags& flags) {
  using namespace rsets;
  ChurnOptions options;
  options.schedules =
      static_cast<std::uint64_t>(flags.get_int("schedules", 100));
  options.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  options.n = static_cast<std::uint64_t>(flags.get_int("n", 300));
  options.avg_deg = flags.get_double("avg_deg", 5.0);
  options.machines = static_cast<std::uint32_t>(flags.get_int("machines", 8));
  options.batches = static_cast<std::uint64_t>(flags.get_int("batches", 5));
  options.batch_updates =
      static_cast<std::uint64_t>(flags.get_int("batch_updates", 24));
  options.certify = !flags.get_bool("no-certify", false);
  options.journal_dir = flags.get("journal_dir", "");
  options.producers =
      static_cast<std::uint32_t>(flags.get_int("producers", 1));
  options.queue_cap =
      static_cast<std::uint64_t>(flags.get_int("queue_cap", 2));
  if (flags.get_bool("progress", false)) {
    options.progress = [](std::uint64_t schedules, std::uint64_t runs) {
      if (schedules % 10 == 0) {
        std::cerr << "chaos_soak(churn): " << schedules << " schedules, "
                  << runs << " services\n";
      }
    };
  }

  const ChurnReport report = run_churn_soak(options);
  std::cout << "soak=" << (report.ok() ? "ok" : "failed") << "\n"
            << "mode=churn\n"
            << "schedules=" << report.schedules_run << "\n"
            << "runs=" << report.runs << "\n"
            << "batches=" << report.batches_applied << "\n"
            << "epochs=" << report.epochs << "\n"
            << "updates_applied=" << report.updates_applied << "\n"
            << "updates_deferred=" << report.updates_deferred << "\n"
            << "skips=" << report.skips << "\n"
            << "frontier_repairs=" << report.frontier_repairs << "\n"
            << "full_recomputes=" << report.full_recomputes << "\n"
            << "cascade_repairs=" << report.cascade_repairs << "\n"
            << "repair_retries=" << report.repair_retries << "\n"
            << "region_certifications=" << report.region_certifications
            << "\n"
            << "full_certifications=" << report.full_certifications << "\n"
            << "faults_injected=" << report.faults_injected << "\n"
            << "crashes_injected=" << report.crashes_injected << "\n"
            << "recoveries=" << report.recoveries << "\n"
            << "certified=" << report.certified << "\n";
  if (options.producers > 1) {
    std::cout << "producers=" << options.producers << "\n"
              << "generations=" << report.generations << "\n"
              << "backpressure=" << report.backpressure << "\n"
              << "producer_strikes=" << report.producer_strikes << "\n"
              << "producer_ejections=" << report.producer_ejections << "\n"
              << "query_checks=" << report.query_checks << "\n"
              << "heartbeats=" << report.heartbeats << "\n";
  }
  std::cout << "failures=" << report.failures.size() << "\n";
  for (const ChaosFailure& f : report.failures) {
    std::cerr << "soak failure: schedule " << f.schedule << " algorithm "
              << f.algorithm << " faults " << f.fault_spec << ": " << f.what
              << "\n";
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsets;
  const Flags flags(argc, argv);
  static const std::set<std::string> kKnownFlags = {
      "schedules", "seed",     "n",        "avg_deg",       "machines",
      "no-certify", "progress", "churn",   "batches",       "batch_updates",
      "journal_dir", "producers", "queue_cap"};
  for (const std::string& key : flags.keys()) {
    if (kKnownFlags.count(key) == 0) {
      std::cerr << "error: unknown flag --" << key
                << " (want --schedules=N --seed=S --n=N --avg_deg=D "
                   "--machines=M --no-certify --progress --churn "
                   "--batches=B --batch_updates=U --journal_dir=DIR "
                   "--producers=P --queue_cap=C)\n";
      return 2;
    }
  }

  try {
    if (flags.get_bool("churn", false)) return run_churn(flags);

    ChaosOptions options;
    options.schedules =
        static_cast<std::uint64_t>(flags.get_int("schedules", 200));
    options.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    options.n = static_cast<std::uint64_t>(flags.get_int("n", 600));
    options.avg_deg = flags.get_double("avg_deg", 6.0);
    options.machines =
        static_cast<std::uint32_t>(flags.get_int("machines", 8));
    options.certify = !flags.get_bool("no-certify", false);
    if (flags.get_bool("progress", false)) {
      options.progress = [](std::uint64_t schedules, std::uint64_t runs) {
        if (schedules % 10 == 0) {
          std::cerr << "chaos_soak: " << schedules << " schedules, " << runs
                    << " runs\n";
        }
      };
    }

    const ChaosReport report = run_chaos_soak(options);
    std::cout << "soak=" << (report.ok() ? "ok" : "failed") << "\n"
              << "schedules=" << report.schedules_run << "\n"
              << "runs=" << report.runs << "\n"
              << "faults_injected=" << report.faults_injected << "\n"
              << "corrupt_detected=" << report.corrupt_detected << "\n"
              << "integrity_retries=" << report.integrity_retries << "\n"
              << "quarantined_rounds=" << report.quarantined_rounds << "\n"
              << "recovery_rounds=" << report.recovery_rounds << "\n"
              << "certified=" << report.certified << "\n"
              << "failures=" << report.failures.size() << "\n";
    for (const ChaosFailure& f : report.failures) {
      std::cerr << "soak failure: schedule " << f.schedule << " algorithm "
                << f.algorithm << " faults " << f.fault_spec << ": "
                << f.what << "\n";
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
