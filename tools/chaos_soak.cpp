// Chaos-soak driver: N seeded mixed-fault schedules across every MPC
// algorithm, asserting the fault-tolerance contract (bit-identical outputs
// vs fault-free runs, plus certified validity) — see core/chaos.hpp.
//
// Usage:
//   chaos_soak                          # 200 schedules, the full contract
//   chaos_soak --schedules=40 --n=300   # the CI smoke configuration
//   chaos_soak --no-certify             # identity checks only (fastest)
//
// Prints an aggregate key=value report; exits 0 only when every schedule
// upheld the contract. A failure line carries the schedule index and the
// exact --faults spec, so any failure reproduces under rsets_cli.
#include <cstdint>
#include <iostream>
#include <set>
#include <string>

#include "core/chaos.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rsets;
  const Flags flags(argc, argv);
  static const std::set<std::string> kKnownFlags = {
      "schedules", "seed", "n", "avg_deg", "machines", "no-certify",
      "progress"};
  for (const std::string& key : flags.keys()) {
    if (kKnownFlags.count(key) == 0) {
      std::cerr << "error: unknown flag --" << key
                << " (want --schedules=N --seed=S --n=N --avg_deg=D "
                   "--machines=M --no-certify --progress)\n";
      return 2;
    }
  }

  ChaosOptions options;
  options.schedules =
      static_cast<std::uint64_t>(flags.get_int("schedules", 200));
  options.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  options.n = static_cast<std::uint64_t>(flags.get_int("n", 600));
  options.avg_deg = flags.get_double("avg_deg", 6.0);
  options.machines = static_cast<std::uint32_t>(flags.get_int("machines", 8));
  options.certify = !flags.get_bool("no-certify", false);
  if (flags.get_bool("progress", false)) {
    options.progress = [](std::uint64_t schedules, std::uint64_t runs) {
      if (schedules % 10 == 0) {
        std::cerr << "chaos_soak: " << schedules << " schedules, " << runs
                  << " runs\n";
      }
    };
  }

  try {
    const ChaosReport report = run_chaos_soak(options);
    std::cout << "soak=" << (report.ok() ? "ok" : "failed") << "\n"
              << "schedules=" << report.schedules_run << "\n"
              << "runs=" << report.runs << "\n"
              << "faults_injected=" << report.faults_injected << "\n"
              << "corrupt_detected=" << report.corrupt_detected << "\n"
              << "integrity_retries=" << report.integrity_retries << "\n"
              << "quarantined_rounds=" << report.quarantined_rounds << "\n"
              << "recovery_rounds=" << report.recovery_rounds << "\n"
              << "certified=" << report.certified << "\n"
              << "failures=" << report.failures.size() << "\n";
    for (const ChaosFailure& f : report.failures) {
      std::cerr << "soak failure: schedule " << f.schedule << " algorithm "
                << f.algorithm << " faults " << f.fault_spec << ": "
                << f.what << "\n";
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
