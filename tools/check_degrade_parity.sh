#!/usr/bin/env sh
# Degrade-parity gate for BudgetPolicy::kDegrade (DESIGN.md "Degradation &
# certification").
#
# For every MPC algorithm in the registry, two runs on the E1 graph family:
#   1. An unconstrained reference (--budget-policy=strict, roomy memory).
#   2. A degraded run whose per-machine budget is far below what the rounds
#      need (--budget-policy=degrade).
# The gate requires byte-identical ruling sets, degraded_subrounds > 0 in
# the degraded run's summary, and a strict run at the tight budget to fail —
# proving the budget actually binds where degrade mode carried on.
#
# The gather budget is pinned (--budget) in both runs because it is clamped
# to memory_words: parity compares identical algorithm trajectories under
# different accounting, not different gather sizes.
#
# Usage: tools/check_degrade_parity.sh [build-dir]       (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" --target rsets_cli -j "$(nproc)"
cli="$build_dir/tools/rsets_cli"

work=$(mktemp -d "${TMPDIR:-/tmp}/rsets_degrade.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

common="--gen=gnp --n=800 --avg_deg=8 --seed=3 --machines=8 --budget=512"
tight=512

for algo in luby_mpc det_luby_mpc sample_gather_mpc det_ruling_mpc; do
  "$cli" $common --algorithm="$algo" --budget-policy=strict \
      --out="$work/roomy.set" > "$work/roomy.out"

  "$cli" $common --algorithm="$algo" --budget-policy=degrade \
      --memory_words="$tight" --out="$work/degrade.set" > "$work/degrade.out"

  if ! cmp -s "$work/roomy.set" "$work/degrade.set"; then
    echo "check_degrade_parity: FAIL ($algo: degraded set differs)"
    exit 1
  fi
  if ! grep -q '^degraded_subrounds=[1-9]' "$work/degrade.out"; then
    echo "check_degrade_parity: FAIL ($algo: budget never bound)"
    exit 1
  fi

  # The same budget must abort a strict run; otherwise this gate is vacuous.
  if "$cli" $common --algorithm="$algo" --budget-policy=strict \
      --memory_words="$tight" > /dev/null 2>&1; then
    echo "check_degrade_parity: FAIL ($algo: strict run fit the tight budget)"
    exit 1
  fi
done

echo "check_degrade_parity: PASS"
