#!/usr/bin/env sh
# Full local CI: the gates a change must pass before merging.
#
#   1. Regular build + complete test suite (ctest).
#   2. ThreadSanitizer pass over the round-parallel simulator and its
#      parallel barrier: unit tests, the barrier-parity suite, and a short
#      thread-width-rotating chaos soak (tools/check_tsan.sh).
#   3. AddressSanitizer + UBSan build of the complete test suite
#      (RSETS_SANITIZE=address,undefined), run under halt-on-error.
#   4. Record/recover/replay gate for the fault subsystem
#      (tools/check_replay.sh).
#   5. Fuzz smoke: 30 s each on the edge-list, flag parser, checkpoint
#      decoder, and service update-stream harnesses (fuzz/); the updates
#      harness alternates between the plain stream parser and producer-
#      tagged multi-producer ingest (strikes/ejection/backpressure paths).
#      Any escaping exception or crash fails the gate.
#   6. Degrade parity: strict vs. degrade runs of every MPC algorithm on
#      the E1 graph family must produce byte-identical ruling sets while
#      the degrade run reports degraded_subrounds > 0.
#   7. Integrity parity: fault-free runs with --integrity must be
#      byte-identical to plain runs (set and ledger), and corrupted runs
#      must heal to the same set (tools/check_integrity_parity.sh).
#   8. Chaos soak smoke: 200 seeded mixed-fault schedules across every MPC
#      algorithm; each faulty run must match its fault-free twin
#      bit-for-bit and certify (60 s budget; the soak runs in ~5 s).
#  8b. Churn soak: 100 seeded mixed fault+churn schedules drive a live
#      RulingSetService (greedy + every MPC algorithm) through update
#      batches; after every drained batch the maintained set must be
#      bit-identical to a fault-free from-scratch recompute, every third
#      schedule crashes mid-batch and recovers from its sealed journal, and
#      every final state certifies in-model + cross-validates.
#  8c. Concurrent churn soak: 100 seeded interleaving schedules route the
#      same churn through a 4-producer ingest front (bounded queues,
#      backpressure, poisoned-stream quarantine/ejection flavors); taken
#      generations must equal the canonical per-producer alignment, every
#      drained state must match both the from-scratch oracle and a
#      single-producer twin bit-for-bit (set + metrics + record-log
#      bodies, crash-mid-epoch recovery included), and epoch-pinned point
#      queries must answer from exactly the last committed epoch.
#   9. Sharded-generation gate: the cross-shard validator plus a
#      10^7-edge out-of-core smoke run (sharded graph500, spill-backed,
#      certified in-model) through rsets_cli --sharded.
#  10. Bench baseline gate: checked-in bench/baselines/*.json must carry
#      release stamps on both build-type fields (the E12 shard_ooc, E13
#      serve_churn, and E14 serve_concurrent baselines must exist, the
#      serving rows with certified=1), a Release re-run of the E1b
#      transport-storm and E1c
#      barrier-scaling rows must stay within a generous real_time tolerance
#      of them, and every E1c row must report identical=1
#      (tools/check_bench_baseline.sh).
#
# Usage: tools/ci.sh
#
# Build trees: build/ (regular), build-tsan/, build-asan/, build-release/ —
# each gate keeps its own tree so reruns are incremental.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=$(nproc)

echo "=== ci: build + ctest ==="
cmake -B "$repo_root/build" -S "$repo_root"
cmake --build "$repo_root/build" -j "$jobs"
ctest --test-dir "$repo_root/build" -j "$jobs" --output-on-failure

echo "=== ci: thread sanitizer (simulator contract) ==="
"$repo_root/tools/check_tsan.sh" "$repo_root/build-tsan"

echo "=== ci: address+undefined sanitizers (full suite) ==="
cmake -B "$repo_root/build-asan" -S "$repo_root" \
      -DRSETS_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$repo_root/build-asan" --target rsets_tests -j "$jobs"
ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}" \
    ctest --test-dir "$repo_root/build-asan" -j "$jobs" --output-on-failure

echo "=== ci: record/recover/replay gate ==="
"$repo_root/tools/check_replay.sh" "$repo_root/build"

echo "=== ci: fuzz smoke (io + flags + checkpoint + updates harnesses) ==="
"$repo_root/build/fuzz/fuzz_io" --seconds=30
"$repo_root/build/fuzz/fuzz_flags" --seconds=30
"$repo_root/build/fuzz/fuzz_checkpoint" --seconds=30
"$repo_root/build/fuzz/fuzz_updates" --seconds=30

echo "=== ci: degrade parity (strict vs degrade on the E1 family) ==="
"$repo_root/tools/check_degrade_parity.sh" "$repo_root/build"

echo "=== ci: integrity parity (plain vs --integrity vs corrupted) ==="
"$repo_root/tools/check_integrity_parity.sh" "$repo_root/build"

echo "=== ci: chaos soak (200 seeded mixed-fault schedules) ==="
timeout 60 "$repo_root/build/tools/chaos_soak" --schedules=200 --seed=1

echo "=== ci: churn soak (100 mixed fault+churn schedules, journaled) ==="
# Every schedule drives greedy plus all MPC algorithms through a live
# service under edge churn and injected faults; every drained batch must be
# bit-identical to a fault-free from-scratch recompute, every third schedule
# crashes mid-batch and recovers from its sealed journal, and every final
# state is certified in-model + cross-validated.
churn_tmp=$(mktemp -d)
timeout 600 "$repo_root/build/tools/chaos_soak" --churn --schedules=100 \
    --seed=1 --journal_dir="$churn_tmp"
rm -rf "$churn_tmp"

echo "=== ci: concurrent churn soak (100 schedules, 4-producer ingest) ==="
# Seeded line-interleavings through the multi-producer front: generation
# alignment, backpressure, per-producer quarantine/ejection + tombstone
# journaling, epoch-pinned queries, and final bit-identity against a
# single-producer twin — including crash-mid-epoch recovery schedules.
cchurn_tmp=$(mktemp -d)
timeout 900 "$repo_root/build/tools/chaos_soak" --churn --producers=4 \
    --schedules=100 --seed=1 --journal_dir="$cchurn_tmp"
rm -rf "$cchurn_tmp"

echo "=== ci: sharded generation (validator + 10^7-edge out-of-core smoke) ==="
# graph500 scale=20, edgefactor=16: 2^24 ~ 1.7e7 raw edges, streamed and
# spilled — never materialized. The run must validate its shards, complete
# det_ruling, and certify in-model (exit 0 is the whole contract).
shard_tmp=$(mktemp -d)
"$repo_root/build/tools/rsets_cli" \
    --sharded=graph500:scale=20,edgefactor=16 --machines=8 \
    --memory_words=67108864 --validate-shards --spill-dir="$shard_tmp" \
    --algorithm=det_ruling_mpc --beta=2 > "$shard_tmp/out.txt"
grep -q '^shards_valid=1$' "$shard_tmp/out.txt"
grep -q '^certified=1$' "$shard_tmp/out.txt"
rm -rf "$shard_tmp"

echo "=== ci: bench baseline (release-recorded, within tolerance) ==="
"$repo_root/tools/check_bench_baseline.sh" "$repo_root/build-release"

echo "ci: PASS"
