#!/usr/bin/env sh
# Record -> crash -> recover -> replay gate for the fault subsystem
# (src/mpc/fault/, DESIGN.md "Fault model and recovery").
#
# Three properties are checked end to end with the real CLI binary:
#   1. A run with an injected mid-run crash (recovering from a periodic
#      checkpoint) produces the exact same ruling set as the fault-free run.
#   2. Its recorded trace replays bit-identically (`rsets_cli --replay`
#      regenerates every phase line and the summary and byte-compares).
#   3. A fault-free recording also replays bit-identically.
#
# Usage: tools/check_replay.sh [build-dir]       (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" --target rsets_cli -j "$(nproc)"
cli="$build_dir/tools/rsets_cli"

work=$(mktemp -d "${TMPDIR:-/tmp}/rsets_replay.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

common="--gen=gnp --n=800 --avg_deg=8 --seed=3 --machines=8"
faults='crash@6:2,straggler@9:0:3,drop~0.02,dup~0.02,seed=5'

for algo in luby_mpc det_ruling_mpc; do
  # Fault-free baseline set.
  "$cli" $common --algorithm="$algo" --out="$work/clean.set" \
      > "$work/clean.out"

  # Crash mid-run, recover from a periodic checkpoint, record the trace.
  "$cli" $common --algorithm="$algo" --faults="$faults" \
      --checkpoint-every=4 --record="$work/faulty.jsonl" \
      --out="$work/faulty.set" > "$work/faulty.out"

  if ! cmp -s "$work/clean.set" "$work/faulty.set"; then
    echo "check_replay: FAIL ($algo: recovered set differs from fault-free)"
    exit 1
  fi
  if ! grep -q '^recovery_rounds=[1-9]' "$work/faulty.out"; then
    echo "check_replay: FAIL ($algo: crash did not charge recovery rounds)"
    exit 1
  fi

  # The faulty recording must replay bit-identically.
  "$cli" --replay="$work/faulty.jsonl"

  # So must a fault-free recording.
  "$cli" $common --algorithm="$algo" --record="$work/clean.jsonl" \
      > /dev/null
  "$cli" --replay="$work/clean.jsonl"
done

echo "check_replay: PASS"
