#!/usr/bin/env sh
# Builds the test suite under ThreadSanitizer and runs the tests that
# exercise the round-parallel MPC simulator. Guards the threading contract
# in DESIGN.md ("Threading model"): round callbacks own their machine, read
# shared state, and never write across machines.
#
# Usage: tools/check_tsan.sh [build-dir]       (default: build-tsan)
#
# Notes:
#   * Uses a dedicated build tree so the regular build stays sanitizer-free.
#   * The filter covers the simulator unit tests, the cross-thread
#     determinism sweep (which runs every MPC algorithm at 1/2/8 workers),
#     and the dispatcher integration tests. Run the full binary under TSan
#     with: ./build-tsan/tests/rsets_tests
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" -DRSETS_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" --target rsets_tests -j "$(nproc)"

TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$build_dir/tests/rsets_tests" \
    --gtest_filter='Simulator*:Primitives*:DistGraph*:ThreadedDeterminism*:*/ThreadedDeterminism*:Api.*'

echo "check_tsan: PASS"
