#!/usr/bin/env sh
# Builds the test suite under ThreadSanitizer and runs the tests that
# exercise the round-parallel MPC simulator and its parallel barrier
# pipeline. Guards the threading contract in DESIGN.md ("Threading model"
# and §4.6): round callbacks own their machine, read shared state, never
# write across machines — and the destination-sharded barrier workers own
# disjoint per-destination delivery/inbox/arena state.
#
# Usage: tools/check_tsan.sh [build-dir]       (default: build-tsan)
#
# Notes:
#   * Uses a dedicated build tree so the regular build stays sanitizer-free.
#   * Stage 1 (unit tests): the simulator unit tests, the cross-thread
#     determinism sweep (every MPC algorithm at 1/2/8 workers, including
#     the record-log byte comparison), the barrier-parity suite (thread
#     widths x fault cocktails), and the dispatcher integration tests.
#   * Stage 2 (chaos soak): a short tools/chaos_soak run. The soak rotates
#     the simulator thread width across schedules, so the parallel barrier
#     runs under crash/corrupt/reorder/quarantine fault pressure with TSan
#     watching the merge, verify/index, and recycle passes.
#   * Stage 3 (churn soak): a short fault+churn soak through the live
#     ruling-set service (incremental repair + region certification +
#     journal crash/recovery), with the same thread-width rotation, so the
#     parallel simulator also runs under TSan from the serving path.
#   * Stage 4 (concurrent ingest): the ServeConcurrent* unit tests (real
#     producer threads pushing through the ingest front's mutex/condvar
#     backpressure while a consumer drains) plus a short multi-producer
#     churn soak, so the lock discipline of MultiProducerIngest and the
#     query-handle publish path run under TSan.
#   * Run the full binary under TSan with: ./build-tsan/tests/rsets_tests
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" -DRSETS_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" --target rsets_tests chaos_soak -j "$(nproc)"

TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$build_dir/tests/rsets_tests" \
    --gtest_filter='Simulator*:Primitives*:DistGraph*:ThreadedDeterminism*:*/ThreadedDeterminism*:BarrierParity*:*/BarrierParityFaults*:FnvBatch*:Api.*:ServeMpc*:ServeConcurrent*'

TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$build_dir/tools/chaos_soak" --schedules=6 --n=400 --machines=8

churn_tmp=$(mktemp -d)
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$build_dir/tools/chaos_soak" --churn --schedules=3 --n=200 \
    --machines=8 --journal_dir="$churn_tmp"
rm -rf "$churn_tmp"

cchurn_tmp=$(mktemp -d)
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$build_dir/tools/chaos_soak" --churn --producers=4 --schedules=3 \
    --n=200 --machines=8 --journal_dir="$cchurn_tmp"
rm -rf "$cchurn_tmp"

echo "check_tsan: PASS"
