#!/usr/bin/env sh
# Integrity-parity gate for the checksummed transport (DESIGN.md
# "Integrity & quarantine").
#
# For every MPC algorithm in the registry, runs on the E1 graph family:
#   1. A plain run (integrity verification off).
#   2. The same run with --integrity: checksums stamped and verified on
#      every delivery.
#   3. The same run under corrupt~0.1,reorder~0.5 faults (verification and
#      healing active).
# The gate requires:
#   - byte-identical ruling sets across all three runs;
#   - byte-identical execution logs (phases + summary) between 1 and 2 —
#     the checksum rides in the already-charged message header, so turning
#     verification on in a fault-free run must not move a single ledger
#     entry (only the meta lines differ, by the integrity flag itself);
#   - a zero integrity ledger in run 2 (nothing corrupted, nothing
#     detected) and a non-zero corrupt_detected in run 3 (the faults
#     actually exercised the healing path).
#
# Usage: tools/check_integrity_parity.sh [build-dir]     (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" --target rsets_cli -j "$(nproc)"
cli="$build_dir/tools/rsets_cli"

work=$(mktemp -d "${TMPDIR:-/tmp}/rsets_integrity.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

common="--gen=gnp --n=800 --avg_deg=8 --seed=3 --machines=8"

for algo in luby_mpc det_luby_mpc sample_gather_mpc det_ruling_mpc; do
  "$cli" $common --algorithm="$algo" \
      --out="$work/plain.set" --record="$work/plain.jsonl" \
      > "$work/plain.out"

  "$cli" $common --algorithm="$algo" --integrity \
      --out="$work/checked.set" --record="$work/checked.jsonl" \
      > "$work/checked.out"

  "$cli" $common --algorithm="$algo" --faults="corrupt~0.1,reorder~0.5,seed=7" \
      --out="$work/noisy.set" > "$work/noisy.out"

  if ! cmp -s "$work/plain.set" "$work/checked.set"; then
    echo "check_integrity_parity: FAIL ($algo: --integrity changed the set)"
    exit 1
  fi
  if ! cmp -s "$work/plain.set" "$work/noisy.set"; then
    echo "check_integrity_parity: FAIL ($algo: corruption changed the set)"
    exit 1
  fi

  # Byte-identical phase and summary lines; only the meta line (which
  # records the integrity flag) may differ.
  tail -n +2 "$work/plain.jsonl" > "$work/plain.body"
  tail -n +2 "$work/checked.jsonl" > "$work/checked.body"
  if ! cmp -s "$work/plain.body" "$work/checked.body"; then
    echo "check_integrity_parity: FAIL ($algo: verification moved the ledger)"
    exit 1
  fi

  if ! grep -q '^corrupt_detected=0$' "$work/checked.out"; then
    echo "check_integrity_parity: FAIL ($algo: fault-free run detected corruption)"
    exit 1
  fi
  if ! grep -q '^corrupt_detected=[1-9]' "$work/noisy.out"; then
    echo "check_integrity_parity: FAIL ($algo: faults never exercised healing)"
    exit 1
  fi
done

echo "check_integrity_parity: PASS"
