#!/usr/bin/env sh
# Gate: the checked-in bench baselines must be Release-recorded and still
# representative of this machine.
#
#   1. Every bench/baselines/BENCH_*.json must carry
#      "rsets_build_type": "Release" AND "library_build_type": "release".
#      The first stamps how the bench code itself was compiled; the second
#      is google-benchmark's context field, rewritten by run_bench_main to
#      describe the code under measurement (the raw library value described
#      the benchmark *library* — a debug system package — which made
#      Release baselines read "debug"). A mismatched pair means the
#      baseline predates the restamp or was recorded unoptimized — reject
#      it outright either way, since an inflated baseline makes every later
#      comparison pass vacuously.
#   2. The E1b transport-storm and E1c barrier-scaling rows are re-run from
#      the Release tree and each row's real_time is compared against the
#      checked-in baseline within a generous factor (default 4x either
#      way). That catches order-of-magnitude regressions — an accidental
#      O(n^2), a debug-only code path — while tolerating machine-to-machine
#      and load noise.
#   3. Every re-run E1c row must report identical=1: the parallel barrier
#      delivered bit-identical words at every thread width. This is the
#      correctness half of the scaling bench and must hold on any host,
#      including single-core ones where speedup stays ~1.
#
# Usage: tools/check_bench_baseline.sh [build_dir] [tolerance]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-release"}
tolerance=${2:-4.0}
baselines="$repo_root/bench/baselines"

if [ ! -d "$baselines" ]; then
  echo "check_bench_baseline: bench/baselines/ missing — run tools/bench_baseline.sh first" >&2
  exit 1
fi

found=0
for f in "$baselines"/BENCH_*.json; do
  [ -e "$f" ] || break
  found=1
  if ! grep -q '"rsets_build_type": "Release"' "$f"; then
    echo "check_bench_baseline: $(basename "$f") was not recorded from a Release build (rsets_build_type != Release); re-record with tools/bench_baseline.sh" >&2
    exit 1
  fi
  if ! grep -q '"library_build_type": "release"' "$f"; then
    echo "check_bench_baseline: $(basename "$f") carries a non-release library_build_type stamp — it predates the run_bench_main restamp or was recorded unoptimized; re-record with tools/bench_baseline.sh" >&2
    exit 1
  fi
done
if [ "$found" -eq 0 ]; then
  echo "check_bench_baseline: no BENCH_*.json baselines found — run tools/bench_baseline.sh first" >&2
  exit 1
fi

# E12 must have a recorded baseline: the out-of-core path is gated on a
# checked-in peak-RSS/rate reference, not just on the smoke test passing.
if [ ! -f "$baselines/BENCH_shard_ooc.json" ]; then
  echo "check_bench_baseline: BENCH_shard_ooc.json (E12 out-of-core) missing — run tools/bench_baseline.sh" >&2
  exit 1
fi

# E13 must have a recorded baseline: the serving path is gated on a
# checked-in throughput/latency reference, and every recorded row must have
# certified its final epoch (certified=1 is the bench's validity counter).
if [ ! -f "$baselines/BENCH_serve_churn.json" ]; then
  echo "check_bench_baseline: BENCH_serve_churn.json (E13 service churn) missing — run tools/bench_baseline.sh" >&2
  exit 1
fi
if grep -q '"certified": 0' "$baselines/BENCH_serve_churn.json"; then
  echo "check_bench_baseline: BENCH_serve_churn.json carries an uncertified row — the recorded service run broke its contract" >&2
  exit 1
fi

# E14 must have a recorded baseline: the concurrent multi-producer front is
# gated on a checked-in end-to-end throughput reference, and every recorded
# row must have certified every committed epoch.
if [ ! -f "$baselines/BENCH_serve_concurrent.json" ]; then
  echo "check_bench_baseline: BENCH_serve_concurrent.json (E14 concurrent serve) missing — run tools/bench_baseline.sh" >&2
  exit 1
fi
if grep -q '"certified": 0' "$baselines/BENCH_serve_concurrent.json"; then
  echo "check_bench_baseline: BENCH_serve_concurrent.json carries an uncertified row — the recorded concurrent run broke its contract" >&2
  exit 1
fi

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$build_dir" -j "$(nproc)" --target bench_rounds_vs_n

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$build_dir/bench/bench_rounds_vs_n" \
    '--benchmark_filter=BM_TransportStorm|BM_BarrierScaling' \
    --benchmark_out="$tmp/current.json" --benchmark_out_format=json \
    > /dev/null

# google-benchmark JSON keeps one key per line, so field extraction is a
# plain awk pass: remember the row name, print "name value" on the keys we
# compare.
rows() {
  awk -F'"' -v key="$2" '
    $2 == "name" { name = $4 }
    $2 == key    { v = $3; gsub(/[:, ]/, "", v); print name, v }
  ' "$1"
}

rows "$baselines/BENCH_rounds_vs_n.json" real_time \
    | grep -E '^BM_(TransportStorm|BarrierScaling)' | sort > "$tmp/base.txt"
rows "$tmp/current.json" real_time \
    | grep -E '^BM_(TransportStorm|BarrierScaling)' | sort > "$tmp/cur.txt"

if ! [ -s "$tmp/base.txt" ]; then
  echo "check_bench_baseline: baseline BENCH_rounds_vs_n.json has no storm/barrier rows; re-record with tools/bench_baseline.sh" >&2
  exit 1
fi

awk -v tol="$tolerance" '
  NR == FNR { base[$1] = $2; next }
  {
    if (!($1 in base)) {
      printf "check_bench_baseline: no baseline row for %s\n", $1
      bad = 1
      next
    }
    ratio = $2 / base[$1]
    if (ratio > tol || ratio * tol < 1) {
      printf "check_bench_baseline: %s real_time drifted %.2fx vs baseline (%.3f vs %.3f ms, tolerance %.1fx)\n", \
             $1, ratio, $2, base[$1], tol
      bad = 1
    }
  }
  END { exit bad }
' "$tmp/base.txt" "$tmp/cur.txt"

rows "$tmp/current.json" identical | awk '
  $1 ~ /^BM_BarrierScaling/ {
    seen = 1
    if ($2 + 0 != 1.0) {
      printf "check_bench_baseline: %s identical=%s — the parallel barrier diverged from the threads=1 digest\n", $1, $2
      bad = 1
    }
  }
  END {
    if (!seen) {
      print "check_bench_baseline: re-run produced no BM_BarrierScaling rows"
      bad = 1
    }
    exit bad
  }
'

echo "check_bench_baseline: PASS"
