#!/usr/bin/env sh
# Gate: the checked-in bench baselines must be Release-recorded and still
# representative of this machine.
#
#   1. Every bench/baselines/BENCH_*.json must carry
#      "rsets_build_type": "Release" — the context stamp recording how the
#      bench code itself was compiled (google-benchmark's own
#      library_build_type only describes the benchmark *library*, a debug
#      system package here). A baseline recorded from an unoptimized build
#      is inflated, so every later comparison would pass vacuously —
#      reject it outright.
#   2. The E1b transport-storm rows are re-run from the Release tree and
#      each row's real_time is compared against the checked-in baseline
#      within a generous factor (default 4x either way). That catches
#      order-of-magnitude regressions — an accidental O(n^2), a debug-only
#      code path — while tolerating machine-to-machine and load noise.
#   3. The re-run's aggregated rows must keep speedup_vs_legacy >= 3 at
#      every machine count. The recorded baseline shows >= 5x; the looser
#      live floor keeps the gate meaningful without being flaky.
#
# Usage: tools/check_bench_baseline.sh [build_dir] [tolerance]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-release"}
tolerance=${2:-4.0}
baselines="$repo_root/bench/baselines"

if [ ! -d "$baselines" ]; then
  echo "check_bench_baseline: bench/baselines/ missing — run tools/bench_baseline.sh first" >&2
  exit 1
fi

found=0
for f in "$baselines"/BENCH_*.json; do
  [ -e "$f" ] || break
  found=1
  if ! grep -q '"rsets_build_type": "Release"' "$f"; then
    echo "check_bench_baseline: $(basename "$f") was not recorded from a Release build (rsets_build_type != Release); re-record with tools/bench_baseline.sh" >&2
    exit 1
  fi
done
if [ "$found" -eq 0 ]; then
  echo "check_bench_baseline: no BENCH_*.json baselines found — run tools/bench_baseline.sh first" >&2
  exit 1
fi

# E12 must have a recorded baseline: the out-of-core path is gated on a
# checked-in peak-RSS/rate reference, not just on the smoke test passing.
if [ ! -f "$baselines/BENCH_shard_ooc.json" ]; then
  echo "check_bench_baseline: BENCH_shard_ooc.json (E12 out-of-core) missing — run tools/bench_baseline.sh" >&2
  exit 1
fi

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$build_dir" -j "$(nproc)" --target bench_rounds_vs_n

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$build_dir/bench/bench_rounds_vs_n" \
    --benchmark_filter=BM_TransportStorm \
    --benchmark_out="$tmp/current.json" --benchmark_out_format=json \
    > /dev/null

# google-benchmark JSON keeps one key per line, so field extraction is a
# plain awk pass: remember the row name, print "name value" on the keys we
# compare.
rows() {
  awk -F'"' -v key="$2" '
    $2 == "name" { name = $4 }
    $2 == key    { v = $3; gsub(/[:, ]/, "", v); print name, v }
  ' "$1"
}

rows "$baselines/BENCH_rounds_vs_n.json" real_time \
    | grep '^BM_TransportStorm' | sort > "$tmp/base.txt"
rows "$tmp/current.json" real_time \
    | grep '^BM_TransportStorm' | sort > "$tmp/cur.txt"

if ! [ -s "$tmp/base.txt" ]; then
  echo "check_bench_baseline: baseline BENCH_rounds_vs_n.json has no transport-storm rows; re-record with tools/bench_baseline.sh" >&2
  exit 1
fi

awk -v tol="$tolerance" '
  NR == FNR { base[$1] = $2; next }
  {
    if (!($1 in base)) {
      printf "check_bench_baseline: no baseline row for %s\n", $1
      bad = 1
      next
    }
    ratio = $2 / base[$1]
    if (ratio > tol || ratio * tol < 1) {
      printf "check_bench_baseline: %s real_time drifted %.2fx vs baseline (%.3f vs %.3f ms, tolerance %.1fx)\n", \
             $1, ratio, $2, base[$1], tol
      bad = 1
    }
  }
  END { exit bad }
' "$tmp/base.txt" "$tmp/cur.txt"

rows "$tmp/current.json" speedup_vs_legacy | awk '
  $1 ~ /\/1\/iterations/ {
    if ($2 + 0 < 3.0) {
      printf "check_bench_baseline: %s speedup_vs_legacy fell to %.2fx (< 3x floor)\n", $1, $2
      bad = 1
    }
  }
  END { exit bad }
'

echo "check_bench_baseline: PASS"
