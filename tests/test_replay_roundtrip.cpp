// Record/replay round trips under every fault kind. A recorded log must
// replay byte-for-byte — faults, checkpoints, recoveries, corruption
// healing and all — and tampered or version-mismatched logs must be
// rejected with a useful diagnostic, not silently replayed.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/replay.hpp"

namespace rsets {
namespace {

RunSpec small_spec(const std::string& algorithm, const std::string& faults) {
  RunSpec spec;
  spec.algorithm = algorithm;
  spec.beta = 2;
  spec.gen = "gnp";
  spec.n = 300;
  spec.avg_deg = 6.0;
  spec.seed = 9;
  spec.machines = 8;
  spec.faults = faults;
  return spec;
}

struct FaultCase {
  const char* name;
  const char* faults;
  std::uint64_t checkpoint_every = 0;
  const char* budget_policy = "strict";
  std::uint64_t deadline = 0;
};

class ReplayEveryFaultKind : public ::testing::TestWithParam<FaultCase> {};

INSTANTIATE_TEST_SUITE_P(
    Kinds, ReplayEveryFaultKind,
    ::testing::Values(
        FaultCase{"fault_free", ""},
        FaultCase{"crash", "crash~0.02,seed=3"},
        FaultCase{"straggler", "straggler~0.05,seed=3"},
        FaultCase{"drop", "drop~0.02,seed=3"},
        FaultCase{"duplicate", "dup~0.02,seed=3"},
        FaultCase{"corrupt", "corrupt~0.05,seed=3"},
        FaultCase{"reorder", "reorder~0.5,seed=3"},
        FaultCase{"quarantine", "corrupt~1.0,seed=3"},
        FaultCase{"checkpointed_crash", "crash~0.05,seed=3", 2},
        FaultCase{"degrade_mode", "drop~0.02,seed=3", 0, "degrade"},
        FaultCase{"deadline", "straggler~0.1,seed=3", 0, "strict", 4},
        FaultCase{"everything",
                  "crash~0.01,straggler~0.02,drop~0.01,dup~0.01,"
                  "corrupt~0.05,reorder~0.25,seed=3",
                  2}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(ReplayEveryFaultKind, RecordedLogReplaysByteForByte) {
  RunSpec spec = small_spec("det_ruling_mpc", GetParam().faults);
  spec.checkpoint_every = GetParam().checkpoint_every;
  spec.budget_policy = GetParam().budget_policy;
  spec.deadline = GetParam().deadline;

  RulingSetResult recorded;
  const std::vector<std::string> log = record_run(spec, &recorded);
  ASSERT_GE(log.size(), 2u);  // meta + summary at minimum

  const ReplayReport report = replay_log(log);
  EXPECT_TRUE(report.ok()) << report.first_mismatch;
  EXPECT_EQ(report.phases_checked, log.size() - 2);
  EXPECT_EQ(report.result.ruling_set, recorded.ruling_set);
}

TEST(ReplayRoundTrip, CoversEveryMpcAlgorithm) {
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model != Model::kMpc) continue;
    RunSpec spec = small_spec(std::string(info.name),
                              "corrupt~0.05,reorder~0.25,seed=4");
    spec.beta = info.min_beta;
    const std::vector<std::string> log = record_run(spec);
    const ReplayReport report = replay_log(log);
    EXPECT_TRUE(report.ok()) << info.name << ": " << report.first_mismatch;
  }
}

TEST(ReplayRoundTrip, TamperedPhaseLineIsCaught) {
  const std::vector<std::string> log =
      record_run(small_spec("det_ruling_mpc", "drop~0.02,seed=3"));
  ASSERT_GT(log.size(), 3u);

  std::vector<std::string> tampered = log;
  std::string& line = tampered[tampered.size() / 2];
  // Flip one digit somewhere in the middle of a phase line.
  for (char& c : line) {
    if (c >= '0' && c <= '8') {
      ++c;
      break;
    }
  }
  const ReplayReport report = replay_log(tampered);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.mismatches, 1u);
  EXPECT_FALSE(report.first_mismatch.empty());
}

TEST(ReplayRoundTrip, SpecJsonRoundTrips) {
  RunSpec spec = small_spec("luby_mpc", "corrupt~0.1,seed=5");
  spec.beta = 3;
  spec.memory_words = 1 << 20;
  spec.threads = 4;
  spec.budget = 123456;
  spec.checkpoint_every = 3;
  spec.budget_policy = "degrade";
  spec.deadline = 7;
  spec.integrity = true;

  const RunSpec back = spec_from_json(spec_to_json(spec));
  EXPECT_EQ(back.algorithm, spec.algorithm);
  EXPECT_EQ(back.beta, spec.beta);
  EXPECT_EQ(back.gen, spec.gen);
  EXPECT_EQ(back.n, spec.n);
  EXPECT_EQ(back.avg_deg, spec.avg_deg);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.machines, spec.machines);
  EXPECT_EQ(back.memory_words, spec.memory_words);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.budget, spec.budget);
  EXPECT_EQ(back.faults, spec.faults);
  EXPECT_EQ(back.checkpoint_every, spec.checkpoint_every);
  EXPECT_EQ(back.budget_policy, spec.budget_policy);
  EXPECT_EQ(back.deadline, spec.deadline);
  EXPECT_EQ(back.integrity, spec.integrity);
}

TEST(ReplayRoundTrip, IntegrityFlagSurvivesTheRoundTrip) {
  RunSpec spec = small_spec("det_ruling_mpc", "");
  spec.integrity = true;
  const std::vector<std::string> log = record_run(spec);
  const ReplayReport report = replay_log(log);
  EXPECT_TRUE(report.ok()) << report.first_mismatch;
  EXPECT_TRUE(report.spec.integrity);
}

TEST(ReplayRoundTrip, SummaryCarriesTheIntegrityLedger) {
  const std::vector<std::string> log =
      record_run(small_spec("det_ruling_mpc", "corrupt~0.1,seed=6"));
  const std::string& summary = log.back();
  EXPECT_NE(summary.find("\"corrupt_detected\":"), std::string::npos);
  EXPECT_NE(summary.find("\"integrity_retries\":"), std::string::npos);
  EXPECT_NE(summary.find("\"quarantined_rounds\":"), std::string::npos);
  EXPECT_NE(summary.find("\"set_hash\":"), std::string::npos);
}

TEST(ReplayRoundTrip, OlderFormatVersionsAreRejectedWithDiagnostic) {
  // A v4 log — which still named a transport mode in its meta line — must
  // be rejected by version, not replayed against v5 semantics (the legacy
  // transport is deleted, so a v4 log recorded on it could not reproduce).
  std::vector<std::string> log =
      record_run(small_spec("det_ruling_mpc", ""));
  std::string& meta = log.front();
  const std::size_t at = meta.find("rsets-replay-v5");
  ASSERT_NE(at, std::string::npos);
  meta.replace(at, 15, "rsets-replay-v4");

  try {
    replay_log(log);
    FAIL() << "v4 meta line was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // The diagnostic names the version found and the version required.
    EXPECT_NE(what.find("rsets-replay-v4"), std::string::npos) << what;
    EXPECT_NE(what.find("rsets-replay-v5"), std::string::npos) << what;
  }
}

TEST(ReplayRoundTrip, GarbageMetaLineIsRejected) {
  EXPECT_THROW(replay_log({"not json", "also not json"}),
               std::invalid_argument);
  EXPECT_THROW(replay_log({}), std::invalid_argument);
  EXPECT_THROW(spec_from_json("{\"format\":\"rsets-replay-v5\"}"),
               std::invalid_argument);
}

}  // namespace
}  // namespace rsets
