// Tests for the concurrent multi-producer serving front: deterministic
// generation merge under arbitrary interleavings, bounded-queue
// backpressure, per-producer quarantine/backoff/ejection with journaled
// tombstones, producer-tagged routing, epoch-pinned point queries, the
// liveness watchdog (escalation + fail-stop + operator recover), and the
// journal's tombstone durability across crashes and .prev fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/chaos.hpp"
#include "core/replay.hpp"
#include "serve/ingest.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "serve/updates.hpp"

namespace rsets::serve {
namespace {

struct SimulatedCrash {};

Graph make_graph(std::uint64_t n, double avg_deg, std::uint64_t seed,
                 const std::string& gen = "gnp") {
  RunSpec spec;
  spec.gen = gen;
  spec.n = n;
  spec.avg_deg = avg_deg;
  spec.seed = seed;
  return build_graph(spec);
}

// The protocol lines of one producer's stream: `batches` deterministic
// churn batches, each closed by a commit.
std::vector<std::string> script_lines(std::uint64_t seed, std::uint32_t p,
                                      std::uint64_t batches, std::uint64_t n,
                                      std::uint64_t per_batch) {
  std::vector<std::string> lines;
  for (std::uint64_t b = 0; b < batches; ++b) {
    const UpdateBatch batch = chaos_churn_batch(seed, p, b, n, per_batch);
    for (const EdgeUpdate& u : batch.updates) lines.push_back(to_line(u));
    lines.push_back("commit");
  }
  return lines;
}

// Drives every producer's line list through `ingest` in the interleaving
// chosen by `next` (a function of the step index), resubmitting lines that
// bounce (kWouldBlock / kBackoff) and draining generations whenever a
// producer is blocked. Returns the taken generations in order.
template <typename Next>
std::vector<UpdateBatch> drive(MultiProducerIngest& ingest,
                               const std::vector<std::vector<std::string>>& all,
                               Next next) {
  std::vector<std::size_t> cursor(all.size(), 0);
  std::vector<bool> blocked(all.size(), false);
  std::vector<UpdateBatch> taken;
  auto drain = [&] {
    bool any = false;
    while (std::optional<UpdateBatch> g = ingest.take_generation()) {
      taken.push_back(std::move(*g));
      any = true;
    }
    if (any) blocked.assign(all.size(), false);
    return any;
  };
  std::uint64_t step = 0;
  for (;;) {
    // Skip producers parked at the queue cap: if no generation freed them
    // last time, only the producers that can still make progress run (they
    // must exist — if every live producer had a queued batch, a generation
    // would be ready and drain() would have unparked everyone).
    std::vector<std::uint32_t> active;
    for (std::uint32_t p = 0; p < all.size(); ++p) {
      if (cursor[p] < all[p].size() && !blocked[p]) active.push_back(p);
    }
    if (active.empty()) {
      bool done = true;
      for (std::uint32_t p = 0; p < all.size(); ++p) {
        done = done && cursor[p] >= all[p].size();
      }
      if (done) break;
      if (!drain()) {
        ADD_FAILURE() << "all producers parked with nothing ready";
        return taken;
      }
      continue;
    }
    const std::uint32_t p = active[next(step++) % active.size()];
    const PushStatus status = ingest.offer_line(p, all[p][cursor[p]]);
    if (status == PushStatus::kWouldBlock) {
      if (!drain()) blocked[p] = true;
    } else if (status != PushStatus::kBackoff) {
      ++cursor[p];
    }
  }
  ingest.close_all();
  drain();
  return taken;
}

// ------------------------------------------------------------ merge order --

TEST(ServeConcurrentIngest, GenerationMergeIsScheduleIndependent) {
  constexpr std::uint32_t kProducers = 3;
  std::vector<std::vector<std::string>> all;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    all.push_back(script_lines(11, p, 4, 80, 6));
  }
  IngestConfig cfg;
  cfg.num_producers = kProducers;
  cfg.queue_cap = 2;

  // Three very different interleavings: round-robin, producer-0-greedy,
  // and a mixed stride. The taken generations must be byte-identical.
  std::vector<std::vector<UpdateBatch>> runs;
  const std::vector<std::uint64_t (*)(std::uint64_t)> schedules = {
      [](std::uint64_t s) { return s; },
      [](std::uint64_t) { return std::uint64_t{0}; },
      [](std::uint64_t s) { return s * 7 + s / 3; }};
  for (const auto& schedule : schedules) {
    MultiProducerIngest ingest(cfg);
    runs.push_back(drive(ingest, all, schedule));
    EXPECT_TRUE(ingest.drained());
  }
  ASSERT_EQ(runs[0].size(), 4u);  // one generation per aligned batch row
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t g = 0; g < runs[0].size(); ++g) {
      EXPECT_EQ(runs[r][g].updates, runs[0][g].updates)
          << "schedule " << r << " generation " << g;
    }
  }

  // Each generation is each producer's g-th batch concatenated in
  // producer-id order.
  for (std::size_t g = 0; g < runs[0].size(); ++g) {
    UpdateBatch want;
    for (std::uint32_t p = 0; p < kProducers; ++p) {
      const UpdateBatch batch = chaos_churn_batch(11, p, g, 80, 6);
      want.updates.insert(want.updates.end(), batch.updates.begin(),
                          batch.updates.end());
    }
    EXPECT_EQ(runs[0][g].updates, want.updates) << "generation " << g;
  }
}

TEST(ServeConcurrentIngest, GenerationWaitsForEveryLiveProducer) {
  IngestConfig cfg;
  cfg.num_producers = 2;
  MultiProducerIngest ingest(cfg);
  EXPECT_EQ(ingest.offer_line(0, "+ 0 1"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kCommitted);
  // Producer 1 is live but has nothing queued: generation 0 is not aligned.
  EXPECT_FALSE(ingest.generation_ready());
  EXPECT_FALSE(ingest.take_generation().has_value());
  // Closing producer 1 removes it from the alignment requirement.
  ingest.close(1);
  ASSERT_TRUE(ingest.generation_ready());
  const std::optional<UpdateBatch> gen = ingest.take_generation();
  ASSERT_TRUE(gen.has_value());
  EXPECT_EQ(gen->updates.size(), 1u);
  EXPECT_TRUE(ingest.take_tombstones().empty());
}

// ----------------------------------------------------------- backpressure --

TEST(ServeConcurrentIngest, OfferBouncesAtQueueCapWithoutConsuming) {
  IngestConfig cfg;
  cfg.num_producers = 1;
  cfg.queue_cap = 1;
  MultiProducerIngest ingest(cfg);
  EXPECT_EQ(ingest.offer_line(0, "+ 0 1"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kCommitted);
  EXPECT_EQ(ingest.offer_line(0, "+ 2 3"), PushStatus::kAccepted);
  // The queue holds one committed batch: this commit must bounce, and the
  // bounced line is NOT consumed (resubmitting after a drain succeeds and
  // the stream loses nothing).
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kWouldBlock);
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kWouldBlock);
  EXPECT_GE(ingest.metrics().backpressure, 2u);
  ASSERT_TRUE(ingest.take_generation().has_value());
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kCommitted);
  ingest.close_all();
  const std::optional<UpdateBatch> gen = ingest.take_generation();
  ASSERT_TRUE(gen.has_value());
  EXPECT_EQ(gen->updates[0], (EdgeUpdate{EdgeUpdate::Op::kInsert, 2, 3}));
}

TEST(ServeConcurrentIngest, OversizedBatchAlwaysCommitsAndCloseWaivesCap) {
  IngestConfig cfg;
  cfg.num_producers = 1;
  cfg.queue_cap = 1;
  MultiProducerIngest ingest(cfg);
  // The cap bounds batches, not updates: a batch larger than any queue
  // bound still commits (no self-deadlock).
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ingest.offer_line(0, "+ " + std::to_string(i) + " " +
                                       std::to_string(i + 1)),
              PushStatus::kAccepted);
  }
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kCommitted);
  // close() commits a trailing open batch even though the queue is full.
  EXPECT_EQ(ingest.offer_line(0, "+ 90 91"), PushStatus::kAccepted);
  ingest.close(0);
  EXPECT_TRUE(ingest.closed(0));
  EXPECT_EQ(ingest.offer_line(0, "+ 1 2"), PushStatus::kClosed);
  ASSERT_TRUE(ingest.take_generation().has_value());
  const std::optional<UpdateBatch> tail = ingest.take_generation();
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->updates.size(), 1u);
  EXPECT_TRUE(ingest.drained());
}

// --------------------------------------------- quarantine, backoff, eject --

TEST(ServeConcurrentIngest, StrikeDiscardsOpenBatchAndBacksOffExponentially) {
  IngestConfig cfg;
  cfg.num_producers = 2;
  MultiProducerIngest ingest(cfg);
  EXPECT_EQ(ingest.offer_line(0, "+ 0 1"), PushStatus::kAccepted);
  // Self-loop: malformed, one strike, the open batch (including the good
  // line above) is discarded back to the last commit.
  EXPECT_EQ(ingest.offer_line(0, "+ 5 5"), PushStatus::kRejected);
  EXPECT_TRUE(ingest.quarantined(0));
  // Cooldown is 2^1 = 2 bounced attempts, deterministic in attempts.
  EXPECT_EQ(ingest.offer_line(0, "+ 2 3"), PushStatus::kBackoff);
  EXPECT_EQ(ingest.offer_line(0, "+ 2 3"), PushStatus::kBackoff);
  EXPECT_FALSE(ingest.quarantined(0));
  EXPECT_EQ(ingest.offer_line(0, "+ 2 3"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kCommitted);
  // The other producer never noticed.
  EXPECT_EQ(ingest.offer_line(1, "+ 7 8"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(1, "commit"), PushStatus::kCommitted);
  const std::optional<UpdateBatch> gen = ingest.take_generation();
  ASSERT_TRUE(gen.has_value());
  // The discarded "+ 0 1" is gone; the healed batch and p1's batch merge.
  ASSERT_EQ(gen->updates.size(), 2u);
  EXPECT_EQ(gen->updates[0], (EdgeUpdate{EdgeUpdate::Op::kInsert, 2, 3}));
  EXPECT_EQ(gen->updates[1], (EdgeUpdate{EdgeUpdate::Op::kInsert, 7, 8}));
  EXPECT_EQ(ingest.metrics().strikes, 1u);
  EXPECT_EQ(ingest.metrics().backoff_rejections, 2u);
}

TEST(ServeConcurrentIngest, ChecksumMismatchIsAStrikeVerifiedPasses) {
  IngestConfig cfg;
  cfg.num_producers = 1;
  MultiProducerIngest ingest(cfg);
  EXPECT_EQ(ingest.offer_line(0, "+ 0 1"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(0, "checksum deadbeef"), PushStatus::kRejected);
  EXPECT_EQ(ingest.metrics().strikes, 1u);
  // Burn the cooldown, then push the batch again with the true digest.
  while (ingest.quarantined(0)) (void)ingest.offer_line(0, "");
  UpdateBatch good;
  good.updates.push_back({EdgeUpdate::Op::kInsert, 0, 1});
  char digest[32];
  std::snprintf(digest, sizeof(digest), "checksum %llx",
                static_cast<unsigned long long>(
                    batch_checksum(good.updates)));
  EXPECT_EQ(ingest.offer_line(0, "+ 0 1"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(0, digest), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kCommitted);
}

TEST(ServeConcurrentIngest, RepeatedStrikesEjectWithTombstone) {
  IngestConfig cfg;
  cfg.num_producers = 2;
  cfg.max_strikes = 2;
  MultiProducerIngest ingest(cfg);
  // Commit one good batch first: validated batches survive the ejection.
  EXPECT_EQ(ingest.offer_line(1, "+ 3 4"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(1, "commit"), PushStatus::kCommitted);

  auto strike = [&] {
    while (ingest.quarantined(1)) (void)ingest.offer_line(1, "");
    return ingest.offer_line(1, "+ 9 9");
  };
  EXPECT_EQ(strike(), PushStatus::kRejected);  // strike 1
  EXPECT_EQ(strike(), PushStatus::kRejected);  // strike 2 == max_strikes
  EXPECT_EQ(strike(), PushStatus::kEjected);   // strike 3 ejects
  EXPECT_TRUE(ingest.ejected(1));
  EXPECT_EQ(ingest.offer_line(1, "+ 1 2"), PushStatus::kEjected);
  const std::vector<ProducerTombstone> tombstones = ingest.take_tombstones();
  ASSERT_EQ(tombstones.size(), 1u);
  EXPECT_EQ(tombstones[0].producer, 1u);
  EXPECT_EQ(tombstones[0].strikes, 3u);
  EXPECT_NE(tombstones[0].reason.find("self-loop"), std::string::npos);
  EXPECT_TRUE(ingest.take_tombstones().empty());  // drained exactly once

  // The dead producer no longer gates generations, and its pre-ejection
  // commit still merges.
  EXPECT_EQ(ingest.offer_line(0, "+ 0 1"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kCommitted);
  const std::optional<UpdateBatch> gen = ingest.take_generation();
  ASSERT_TRUE(gen.has_value());
  ASSERT_EQ(gen->updates.size(), 2u);
  EXPECT_EQ(gen->updates[1], (EdgeUpdate{EdgeUpdate::Op::kInsert, 3, 4}));
}

TEST(ServeConcurrentIngest, DuplicateCommitIsAStrikeNotAnEmptyBatch) {
  IngestConfig cfg;
  cfg.num_producers = 1;
  MultiProducerIngest ingest(cfg);
  EXPECT_EQ(ingest.offer_line(0, "+ 0 1"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kCommitted);
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kRejected);
  EXPECT_EQ(ingest.metrics().strikes, 1u);
  EXPECT_EQ(ingest.metrics().batches_committed, 1u);
}

// ----------------------------------------------------------- tagged lines --

TEST(ServeConcurrentIngest, TaggedLinesRouteAndBadTagsAreDiagnosed) {
  IngestConfig cfg;
  cfg.num_producers = 3;
  MultiProducerIngest ingest(cfg);
  std::uint32_t who = 99;
  EXPECT_EQ(ingest.offer_tagged_line("p2 + 0 1", &who),
            PushStatus::kAccepted);
  EXPECT_EQ(who, 2u);
  EXPECT_EQ(ingest.offer_tagged_line("+ 4 5", &who), PushStatus::kAccepted);
  EXPECT_EQ(who, 0u);  // untagged lines belong to producer 0
  EXPECT_EQ(ingest.offer_tagged_line("p1 commit", &who),
            PushStatus::kRejected);  // p1's batch is empty: duplicate commit
  EXPECT_EQ(who, 1u);
  // Out-of-range and unparseable tags are kBadTag, not a strike.
  EXPECT_EQ(ingest.offer_tagged_line("p7 + 0 1"), PushStatus::kBadTag);
  EXPECT_EQ(ingest.offer_tagged_line("p1234567890123 + 0 1"),
            PushStatus::kBadTag);
  EXPECT_EQ(ingest.metrics().bad_tags, 2u);
  // A line that merely starts with 'p' but has no digit tag is payload for
  // producer 0 (and malformed payload strikes producer 0, not the tag).
  EXPECT_EQ(ingest.offer_tagged_line("ping", &who), PushStatus::kRejected);
  EXPECT_EQ(who, 0u);
}

// -------------------------------------------------------------- threading --

TEST(ServeConcurrentThreads, ProducerThreadsBlockOnCapAndMergeCanonically) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kBatches = 6;
  IngestConfig cfg;
  cfg.num_producers = kProducers;
  cfg.queue_cap = 1;  // every producer feels real blocking backpressure
  MultiProducerIngest ingest(cfg);

  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ingest, p] {
      for (const std::string& line :
           script_lines(23, p, kBatches, 60, 5)) {
        while (ingest.push_line(p, line) == PushStatus::kBackoff) {
        }
      }
      ingest.close(p);
    });
  }

  // Refuse to drain until someone actually blocked: with queue_cap=1 and
  // no consumer progress, every producer must eventually stall trying to
  // queue its second batch, so this wait terminates and the backpressure
  // assertion below is deterministic.
  while (ingest.metrics().backpressure == 0) std::this_thread::yield();

  std::vector<UpdateBatch> taken;
  while (!ingest.drained()) {
    if (std::optional<UpdateBatch> gen = ingest.take_generation()) {
      taken.push_back(std::move(*gen));
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : threads) t.join();
  while (std::optional<UpdateBatch> gen = ingest.take_generation()) {
    taken.push_back(std::move(*gen));
  }

  ASSERT_EQ(taken.size(), kBatches);
  for (std::uint64_t g = 0; g < kBatches; ++g) {
    UpdateBatch want;
    for (std::uint32_t p = 0; p < kProducers; ++p) {
      const UpdateBatch batch = chaos_churn_batch(23, p, g, 60, 5);
      want.updates.insert(want.updates.end(), batch.updates.begin(),
                          batch.updates.end());
    }
    EXPECT_EQ(taken[g].updates, want.updates) << "generation " << g;
  }
  EXPECT_GT(ingest.metrics().backpressure, 0u);
}

TEST(ServeConcurrentThreads, QueriesAreSafeWhileTheOwnerCommits) {
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  RulingSetService service(make_graph(80, 4.0, 31), cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::thread reader([&] {
    while (!stop.load()) {
      const QueryHandle snap = service.query();
      // Within one handle every answer is from one epoch: members stay
      // members, and coverage never regresses mid-read.
      for (VertexId v = 0; v < 80; ++v) {
        const PointQueryResult r = snap->nearest_member(v);
        ASSERT_TRUE(r.covered);
        ASSERT_TRUE(snap->is_member(r.member));
        ASSERT_LE(r.distance, snap->beta());
      }
      answered.fetch_add(1);
    }
  });
  for (std::uint64_t b = 0; b < 8; ++b) {
    service.apply(chaos_churn_batch(37, 0, b, 80, 12));
  }
  // Don't stop the reader until it has finished at least one full sweep —
  // the assertion below must not race the thread's startup.
  while (answered.load() == 0) std::this_thread::yield();
  stop.store(true);
  reader.join();
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(service.query()->epoch(), service.epoch());
}

// ---------------------------------------------------------------- queries --

TEST(ServeQuery, NearestMemberMatchesBruteForceAndValidates) {
  // Path 0-1-2-3-4: set {0, 4}, beta 2.
  std::vector<std::vector<VertexId>> adj = {{1}, {0, 2}, {1, 3}, {2, 4}, {3}};
  const Graph g = Graph::from_sorted_adjacency(adj);
  const QuerySnapshot snap(7, 2, g, {0, 4});
  EXPECT_EQ(snap.epoch(), 7u);
  EXPECT_TRUE(snap.is_member(0));
  EXPECT_FALSE(snap.is_member(1));
  EXPECT_THROW(snap.is_member(5), std::invalid_argument);
  EXPECT_THROW(snap.nearest_member(99), std::invalid_argument);
  EXPECT_THROW(QuerySnapshot(0, 2, g, {9}), std::invalid_argument);

  const PointQueryResult r0 = snap.nearest_member(0);
  EXPECT_TRUE(r0.covered);
  EXPECT_EQ(r0.member, 0u);
  EXPECT_EQ(r0.distance, 0u);
  const PointQueryResult r1 = snap.nearest_member(1);
  EXPECT_EQ(r1.member, 0u);
  EXPECT_EQ(r1.distance, 1u);
  // Vertex 2 is 2 hops from both members: ties break to the smaller id.
  const PointQueryResult r2 = snap.nearest_member(2);
  EXPECT_TRUE(r2.covered);
  EXPECT_EQ(r2.member, 0u);
  EXPECT_EQ(r2.distance, 2u);

  // A beta-1 snapshot of the same set leaves vertex 2 uncovered — the
  // truncation really stops at beta hops.
  const QuerySnapshot tight(7, 1, g, {0, 4});
  EXPECT_FALSE(tight.nearest_member(2).covered);
  EXPECT_FALSE(tight.covered(2));
  EXPECT_TRUE(tight.covered(1));
}

TEST(ServeQuery, HandlesPinTheirEpochAcrossCommits) {
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  RulingSetService service(make_graph(60, 4.0, 41), cfg);

  const QueryHandle pinned = service.query();
  ASSERT_EQ(pinned->epoch(), 0u);
  std::vector<PointQueryResult> before;
  for (VertexId v = 0; v < 60; ++v) before.push_back(pinned->nearest_member(v));

  std::uint64_t mutated_epoch = 0;
  for (std::uint64_t b = 0; b < 6 && mutated_epoch == 0; ++b) {
    service.apply(chaos_churn_batch(43, 1, b, 60, 16));
    if (service.ruling_set() != pinned->ruling_set()) {
      mutated_epoch = service.epoch();
    }
  }
  ASSERT_GT(mutated_epoch, 0u) << "churn never changed the set; test is vacuous";

  // The pinned handle still answers from epoch 0, bit-for-bit.
  EXPECT_EQ(pinned->epoch(), 0u);
  for (VertexId v = 0; v < 60; ++v) {
    const PointQueryResult now = pinned->nearest_member(v);
    EXPECT_EQ(now.covered, before[v].covered);
    EXPECT_EQ(now.member, before[v].member);
    EXPECT_EQ(now.distance, before[v].distance);
  }
  // A fresh handle reflects the last committed epoch exactly.
  const QueryHandle fresh = service.query();
  EXPECT_EQ(fresh->epoch(), service.epoch());
  EXPECT_EQ(fresh->ruling_set(), service.ruling_set());
}

// --------------------------------------------------------------- watchdog --

TEST(ServeWatchdog, StuckCascadeEscalatesToFullAndKeepsParity) {
  // Low churn fraction (20 updates vs ~1000 edges) keeps the epoch on the
  // frontier tier, so the cascade runs — and any real cascade blows a
  // 1-pop deadline, forcing the tier-1 escalation.
  const Graph g = make_graph(400, 5.0, 47);
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  cfg.watchdog_deadline = 1;
  RulingSetService service(g, cfg);

  ServiceConfig free_cfg = cfg;
  free_cfg.watchdog_deadline = 0;
  RulingSetService twin(g, free_cfg);

  const UpdateBatch batch = chaos_churn_batch(51, 0, 0, 400, 20);
  const BatchReport report = service.apply(batch);
  twin.apply(batch);
  EXPECT_TRUE(report.certified);
  EXPECT_GT(service.metrics().watchdog_escalations, 0u);
  // The greedy full-tier rerun reports zero simulator rounds, so tier 2
  // (fail-stop) can never trip on the cascade backend.
  EXPECT_EQ(service.metrics().watchdog_failstops, 0u);
  EXPECT_GT(service.metrics().repairs_full, twin.metrics().repairs_full);
  // Escalation is a certification/ledger decision, never an output change.
  EXPECT_EQ(service.ruling_set(), twin.ruling_set());
  EXPECT_EQ(service.epoch(), twin.epoch());
}

TEST(ServeWatchdog, FullTierBudgetExhaustionFailStopsSealedAndRecovers) {
  const std::string journal = ::testing::TempDir() + "serve_watchdog.rsj";
  const Graph g = make_graph(64, 4.0, 53);
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kDetRulingMpc;
  cfg.options.beta = 2;
  cfg.options.mpc.num_machines = 4;
  cfg.journal_path = journal;
  RulingSetService service(g, cfg);
  // Learn the deterministic work measure of one epoch, then re-arm a twin
  // whose full-tier budget (4 * deadline) the same repair must exhaust.
  // 8 updates on ~128 edges keeps the epoch on the frontier tier, so the
  // run exercises escalation AND fail-stop in one epoch.
  const UpdateBatch batch = chaos_churn_batch(57, 0, 0, 64, 8);
  service.apply(batch);
  const std::uint64_t rounds = service.last_repair_result().metrics.rounds;
  ASSERT_GT(rounds, kWatchdogFullFactor);

  ServiceConfig armed = cfg;
  armed.watchdog_deadline = 1;
  armed.journal_path = ::testing::TempDir() + "serve_failstop.rsj";
  RulingSetService sentinel(g, armed);
  const std::uint64_t epoch_before = sentinel.epoch();
  try {
    sentinel.apply(batch);
    FAIL() << "expected a watchdog fail-stop";
  } catch (const ServiceError& e) {
    EXPECT_NE(std::string(e.what()).find("fail-stop"), std::string::npos);
  }
  // The epoch still committed (it was already certified) and the journal
  // sealed; the service refuses further work until an operator recovers.
  EXPECT_TRUE(sentinel.sealed());
  EXPECT_EQ(sentinel.epoch(), epoch_before + 1);
  EXPECT_EQ(sentinel.metrics().watchdog_escalations, 1u);
  EXPECT_EQ(sentinel.metrics().watchdog_failstops, 1u);
  EXPECT_THROW(sentinel.apply(batch), ServiceError);
  EXPECT_THROW(sentinel.drain(), ServiceError);

  // recover() is the operator un-seal: the restored service surfaces the
  // fail-stop, resumes at the committed epoch, and (with the deadline
  // relaxed) serves again — on the same bits as the unarmed service.
  ServiceConfig relaxed = armed;
  relaxed.watchdog_deadline = 0;
  RulingSetService recovered = RulingSetService::recover(relaxed);
  EXPECT_FALSE(recovered.sealed());
  EXPECT_EQ(recovered.metrics().watchdog_failstops, 1u);
  EXPECT_EQ(recovered.epoch(), epoch_before + 1);
  EXPECT_EQ(recovered.ruling_set(), service.ruling_set());
  EXPECT_EQ(recovered.metrics().heartbeats, service.metrics().heartbeats);
  const UpdateBatch next = chaos_churn_batch(57, 0, 1, 64, 8);
  recovered.apply(next);
  service.apply(next);
  EXPECT_EQ(recovered.ruling_set(), service.ruling_set());
}

// ---------------------------------------------------- tombstone durability --

TEST(ServeJournalTombstones, PumpJournalsTombstonesBeforeGenerations) {
  const std::string journal = ::testing::TempDir() + "serve_pump.rsj";
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  cfg.journal_path = journal;
  RulingSetService service(make_graph(40, 3.0, 59), cfg);

  IngestConfig icfg;
  icfg.num_producers = 2;
  icfg.max_strikes = 0;  // first strike ejects
  MultiProducerIngest ingest(icfg);
  EXPECT_EQ(ingest.offer_line(0, "+ 0 1"), PushStatus::kAccepted);
  EXPECT_EQ(ingest.offer_line(0, "commit"), PushStatus::kCommitted);
  EXPECT_EQ(ingest.offer_line(1, "+ 9 9"), PushStatus::kEjected);

  const PumpReport report = pump_ready(ingest, service);
  EXPECT_EQ(report.tombstones, 1u);
  EXPECT_EQ(report.generations, 1u);
  EXPECT_TRUE(report.certified);
  ASSERT_EQ(service.tombstones().size(), 1u);
  EXPECT_EQ(service.tombstones()[0].producer, 1u);
  EXPECT_EQ(service.metrics().tombstones, 1u);

  // The tombstone is durable: a recovered service still names the dead
  // stream (so it can mark_ejected it instead of resurrecting it).
  RulingSetService recovered = RulingSetService::recover(cfg);
  ASSERT_EQ(recovered.tombstones().size(), 1u);
  EXPECT_EQ(recovered.tombstones()[0], service.tombstones()[0]);
  IngestConfig fresh_cfg;
  fresh_cfg.num_producers = 2;
  MultiProducerIngest fresh(fresh_cfg);
  fresh.mark_ejected(recovered.tombstones()[0].producer, "journal tombstone");
  EXPECT_TRUE(fresh.ejected(1));
}

TEST(ServeJournalTombstones, CrashBetweenTombstoneWriteAndSealRecovers) {
  const std::string journal = ::testing::TempDir() + "serve_ts_crash.rsj";
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  cfg.journal_path = journal;
  RulingSetService service(make_graph(40, 3.0, 61), cfg);
  service.apply(chaos_churn_batch(63, 0, 0, 40, 8));
  const std::uint64_t committed = service.epoch();

  // Crash AFTER the tombstone's journal write but before control returns
  // (between the tombstone write and the next epoch seal): the tombstone
  // must already be durable.
  service.crash_hook = [](std::string_view stage) {
    if (stage == "tombstone-recorded") throw SimulatedCrash{};
  };
  const ProducerTombstone tombstone{3, 17, 4, "checksum_mismatch: line 17"};
  EXPECT_THROW(service.record_tombstone(tombstone), SimulatedCrash);

  RulingSetService recovered = RulingSetService::recover(cfg);
  EXPECT_EQ(recovered.epoch(), committed);
  ASSERT_EQ(recovered.tombstones().size(), 1u);
  EXPECT_EQ(recovered.tombstones()[0], tombstone);

  // A crash BEFORE the write leaves the previous durable state: no
  // tombstone, same epoch.
  recovered.crash_hook = [](std::string_view stage) {
    if (stage == "pre-tombstone") throw SimulatedCrash{};
  };
  EXPECT_THROW(recovered.record_tombstone({1, 2, 3, "x"}), SimulatedCrash);
  RulingSetService again = RulingSetService::recover(cfg);
  EXPECT_EQ(again.epoch(), committed);
  ASSERT_EQ(again.tombstones().size(), 1u);  // only the first tombstone
  EXPECT_EQ(again.tombstones()[0], tombstone);
}

TEST(ServeJournalTombstones, PrevFallbackWhenTombstoneWriteIsTornApart) {
  const std::string journal = ::testing::TempDir() + "serve_ts_prev.rsj";
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  cfg.journal_path = journal;
  RulingSetService service(make_graph(40, 3.0, 67), cfg);
  service.apply(chaos_churn_batch(69, 0, 0, 40, 8));
  const std::uint64_t committed = service.epoch();
  service.record_tombstone({2, 5, 4, "self_loop: line 5"});

  // Tear the primary journal (the generation holding the tombstone): the
  // .prev rotation is the epoch-commit image, so recovery lands on the
  // same committed epoch minus the torn tombstone write.
  {
    std::ofstream out(journal, std::ios::binary | std::ios::trunc);
    out << "torn tombstone write";
  }
  RulingSetService recovered = RulingSetService::recover(cfg);
  EXPECT_EQ(recovered.epoch(), committed);
  EXPECT_EQ(recovered.ruling_set(), service.ruling_set());
  EXPECT_TRUE(recovered.tombstones().empty());
  // The lost tombstone re-records cleanly on the recovered lineage.
  recovered.record_tombstone({2, 5, 4, "self_loop: line 5"});
  EXPECT_EQ(recovered.tombstones().size(), 1u);
}

// ------------------------------------------------------------- soak smoke --

TEST(ServeConcurrentSoak, MultiProducerSmokeWithCrashEjectAndHealFlavors) {
  ChurnOptions options;
  options.schedules = 4;  // covers crash (s=0,3), eject (s=1), heal (s=3)
  options.base_seed = 7;
  options.n = 60;
  options.avg_deg = 4.0;
  options.machines = 4;
  options.batches = 4;
  options.batch_updates = 12;
  options.certify = true;
  options.journal_dir = ::testing::TempDir();
  options.producers = 3;
  options.queue_cap = 2;
  const ChurnReport report = run_churn_soak(options);
  for (const auto& f : report.failures) {
    ADD_FAILURE() << "schedule " << f.schedule << " [" << f.algorithm
                  << "]: " << f.what;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.schedules_run, 4u);
  EXPECT_GT(report.generations, 0u);
  EXPECT_GT(report.query_checks, 0u);
  EXPECT_GT(report.heartbeats, 0u);
  // Schedule 1 poisons one producer to ejection; schedule 3 heals after a
  // strike (strikes in both, tombstones only in the eject flavor).
  EXPECT_GT(report.producer_ejections, 0u);
  EXPECT_GT(report.producer_strikes, report.producer_ejections);
  EXPECT_GT(report.crashes_injected, 0u);
  EXPECT_EQ(report.recoveries, report.crashes_injected);
  EXPECT_EQ(report.certified, report.runs);
}

}  // namespace
}  // namespace rsets::serve
