#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rsets {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, IsolatedVertices) {
  const Graph g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, TriangleBasics) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, DeduplicatesAndSymmetrizes) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 1}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, DropsSelfLoops) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, NeighborsAreSorted) {
  const std::vector<Edge> edges = {{2, 5}, {2, 1}, {2, 9}, {2, 0}};
  const Graph g = Graph::from_edges(10, edges);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 5u);
  EXPECT_EQ(nbrs[3], 9u);
}

TEST(Graph, EdgesReturnsCanonicalList) {
  const std::vector<Edge> input = {{3, 1}, {0, 2}};
  const Graph g = Graph::from_edges(4, input);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 2}));
  EXPECT_EQ(edges[1], (Edge{1, 3}));
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  const std::vector<Edge> edges = {{0, 5}};
  EXPECT_THROW(Graph::from_edges(3, edges), std::out_of_range);
}

TEST(Graph, DegreeSquareSum) {
  // Star on 4 vertices: center degree 3, leaves 1. Sum = 9 + 3 = 12.
  const std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.degree_square_sum(), 12u);
}

TEST(GraphBuilder, IgnoresSelfLoopsAndBuilds) {
  GraphBuilder b(3);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  EXPECT_EQ(b.pending_edges(), 2u);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, RoundTripThroughEdges) {
  const std::vector<Edge> input = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const Graph g = Graph::from_edges(4, input);
  const Graph h = Graph::from_edges(4, g.edges());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(h.degree(v), g.degree(v));
}

}  // namespace
}  // namespace rsets
