// Budget-policy parity (satellite of the fault subsystem): under
// BudgetPolicy::kTrace the simulator completes the run and counts cap
// violations; this must mirror kStrict exactly — the per-phase violation
// deltas in the trace sum to the metrics total, and the strict run throws
// MpcViolation during precisely the first phase whose lenient trace line
// shows a nonzero delta (so the strict run emits exactly the trace prefix
// before that line).
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/det_matching.hpp"
#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "mpc/simulator.hpp"

namespace rsets {
namespace {

using RunFn = std::function<mpc::MpcMetrics(const mpc::MpcConfig&)>;

mpc::MpcConfig probe_config(std::uint64_t memory_words,
                            mpc::BudgetPolicy policy) {
  mpc::MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.memory_words = memory_words;
  cfg.seed = 7;
  cfg.budget_policy = policy;
  return cfg;
}

struct LenientRun {
  std::uint64_t metric_violations = 0;
  std::vector<std::uint64_t> per_phase;  // trace.violations, in hook order
};

LenientRun run_lenient(const RunFn& run, std::uint64_t memory_words) {
  mpc::MpcConfig cfg = probe_config(memory_words, mpc::BudgetPolicy::kTrace);
  LenientRun out;
  cfg.trace_hook = [&out](const mpc::RoundTrace& t) {
    out.per_phase.push_back(t.violations);
  };
  out.metric_violations = run(cfg).violations;
  return out;
}

struct StrictRun {
  bool threw = false;
  std::size_t phases_before_throw = 0;
};

StrictRun run_strict(const RunFn& run, std::uint64_t memory_words) {
  mpc::MpcConfig cfg = probe_config(memory_words, mpc::BudgetPolicy::kStrict);
  StrictRun out;
  cfg.trace_hook = [&out](const mpc::RoundTrace&) {
    ++out.phases_before_throw;
  };
  try {
    run(cfg);
  } catch (const mpc::MpcViolation&) {
    out.threw = true;
  }
  return out;
}

struct Case {
  const char* name;
  Algorithm algorithm;      // ignored when matching
  std::uint32_t beta;       // ignored when matching
  bool matching = false;
};

class EnforceParity : public ::testing::TestWithParam<Case> {
 protected:
  const Graph g_ = gen::gnp(200, 0.04, 11);

  RunFn make_run() const {
    const Case c = GetParam();
    if (c.matching) {
      return [this](const mpc::MpcConfig& cfg) {
        return det_matching_mpc(g_, cfg).metrics;
      };
    }
    return [this, c](const mpc::MpcConfig& cfg) {
      RulingSetOptions options;
      options.algorithm = c.algorithm;
      options.beta = c.beta;
      options.mpc = cfg;
      return compute_ruling_set(g_, options).metrics;
    };
  }
};

TEST_P(EnforceParity, ViolationCounterMatchesWhereEnforceWouldThrow) {
  const RunFn run = make_run();

  // Shrink machine memory until the lenient run observes cap violations
  // with at least one landing on a trace line (a violation after the final
  // trace line — e.g. a storage charge in the result gather — has no line
  // to attach to, so such sizes are skipped).
  LenientRun lenient;
  bool found = false;
  for (std::uint64_t memory : {4096u, 2048u, 1024u, 512u, 256u, 128u, 96u,
                               64u}) {
    lenient = run_lenient(run, memory);
    std::uint64_t traced = 0;
    for (const std::uint64_t v : lenient.per_phase) traced += v;
    EXPECT_LE(traced, lenient.metric_violations);
    if (lenient.metric_violations > 0 && traced > 0) {
      found = true;
      SCOPED_TRACE("memory_words=" + std::to_string(memory));

      // First phase whose lenient trace line carries a violation delta.
      std::size_t first = 0;
      while (lenient.per_phase[first] == 0) ++first;

      // The strict run must throw during exactly that phase: every phase
      // before it completes (its hook fires, and its lenient line shows a
      // zero delta), while the violating phase never reaches its hook.
      const StrictRun strict = run_strict(run, memory);
      EXPECT_TRUE(strict.threw);
      EXPECT_EQ(strict.phases_before_throw, first);
      break;
    }
  }
  ASSERT_TRUE(found) << "no probed memory size produced traced violations";

  // Sanity: with ample memory neither mode observes anything.
  const LenientRun clean = run_lenient(run, 1u << 20);
  EXPECT_EQ(clean.metric_violations, 0u);
  const StrictRun clean_strict = run_strict(run, 1u << 20);
  EXPECT_FALSE(clean_strict.threw);
}

INSTANTIATE_TEST_SUITE_P(
    AllMpcAlgorithms, EnforceParity,
    ::testing::Values(
        Case{"luby_mpc", Algorithm::kLubyMpc, 1},
        Case{"det_luby_mpc", Algorithm::kDetLubyMpc, 1},
        Case{"sample_gather_mpc", Algorithm::kSampleGatherMpc, 2},
        Case{"det_ruling_mpc", Algorithm::kDetRulingMpc, 2},
        Case{"det_matching_mpc", Algorithm::kDetRulingMpc, 2,
             /*matching=*/true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace rsets
