#include "congest/congest.hpp"

#include <gtest/gtest.h>

#include "congest/coloring_mis.hpp"
#include "congest/luby_congest.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"

namespace rsets::congest {
namespace {

TEST(CongestSim, MessagesDeliverNextRound) {
  const Graph g = gen::path(3);
  CongestSim sim(g, {});
  sim.round([](CongestSim::NodeApi& node, std::span<const NodeMessage>) {
    if (node.id() == 0) node.send(1, 99);
  });
  bool got = false;
  sim.round([&](CongestSim::NodeApi& node,
                std::span<const NodeMessage> inbox) {
    if (node.id() == 1) {
      ASSERT_EQ(inbox.size(), 1u);
      EXPECT_EQ(inbox[0].value, 99u);
      EXPECT_EQ(inbox[0].from, 0u);
      got = true;
    }
  });
  EXPECT_TRUE(got);
  EXPECT_EQ(sim.metrics().rounds, 2u);
  EXPECT_EQ(sim.metrics().messages, 1u);
}

TEST(CongestSim, RejectsNonNeighborSend) {
  const Graph g = gen::path(4);  // 0-1-2-3
  CongestSim sim(g, {});
  EXPECT_THROW(sim.round([](CongestSim::NodeApi& node,
                            std::span<const NodeMessage>) {
    if (node.id() == 0) node.send(3, 1);
  }),
               std::invalid_argument);
}

TEST(CongestSim, EnforcesBitBudget) {
  const Graph g = gen::path(2);
  CongestConfig cfg;
  cfg.bits_per_message = 8;
  CongestSim sim(g, cfg);
  EXPECT_THROW(sim.round([](CongestSim::NodeApi& node,
                            std::span<const NodeMessage>) {
    if (node.id() == 0) node.send(1, 5, 16);
  }),
               CongestViolation);
}

TEST(CongestSim, EnforcesOneMessagePerEdge) {
  const Graph g = gen::path(2);
  CongestSim sim(g, {});
  EXPECT_THROW(sim.round([](CongestSim::NodeApi& node,
                            std::span<const NodeMessage>) {
    if (node.id() == 0) {
      node.send(1, 1);
      node.send(1, 2);
    }
  }),
               CongestViolation);
}

TEST(CongestSim, EnforcesDeclaredWidth) {
  const Graph g = gen::path(2);
  CongestSim sim(g, {});
  EXPECT_THROW(sim.round([](CongestSim::NodeApi& node,
                            std::span<const NodeMessage>) {
    if (node.id() == 0) node.send(1, 0xFF, 4);  // 255 needs 8 bits
  }),
               CongestViolation);
}

TEST(CongestSim, CountsBits) {
  const Graph g = gen::path(2);
  CongestSim sim(g, {});
  sim.round([](CongestSim::NodeApi& node, std::span<const NodeMessage>) {
    if (node.id() == 0) node.send(1, 3, 2);
  });
  EXPECT_EQ(sim.metrics().total_bits, 2u);
}

TEST(LubyCongest, ProducesMisOnSuite) {
  for (const auto& entry : gen::standard_suite(300, 5)) {
    const auto result = luby_mis_congest(entry.graph);
    EXPECT_TRUE(is_maximal_independent_set(entry.graph, result.ruling_set))
        << entry.name;
  }
}

TEST(LubyCongest, IterationsLogarithmic) {
  const Graph g = gen::gnp(2000, 0.005, 3);
  const auto result = luby_mis_congest(g);
  EXPECT_TRUE(is_maximal_independent_set(g, result.ruling_set));
  EXPECT_LE(result.phases, 40u);  // ~ c log n, generous cap
  EXPECT_GT(result.congest_metrics.random_words, 0u);
}

TEST(LubyCongest, DifferentSeedsBothValid) {
  const Graph g = gen::power_law(500, 2.5, 6.0, 2);
  CongestConfig a;
  a.seed = 1;
  CongestConfig b;
  b.seed = 2;
  EXPECT_TRUE(is_maximal_independent_set(g, luby_mis_congest(g, a).ruling_set));
  EXPECT_TRUE(is_maximal_independent_set(g, luby_mis_congest(g, b).ruling_set));
}

TEST(LubyCongest, EdgeCases) {
  EXPECT_TRUE(luby_mis_congest(Graph::from_edges(0, {})).ruling_set.empty());
  const auto single = luby_mis_congest(Graph::from_edges(1, {}));
  EXPECT_EQ(single.ruling_set.size(), 1u);
  // Complete graph: exactly one vertex.
  const auto kn = luby_mis_congest(gen::complete(20));
  EXPECT_EQ(kn.ruling_set.size(), 1u);
}

TEST(ColoringMis, ProperColoringOnBoundedDegree) {
  for (const Graph& g :
       {gen::cycle(200), gen::grid(15, 15), gen::random_tree(300, 1)}) {
    const auto result = coloring_mis_congest(g);
    // Proper coloring check.
    for (const Edge& e : g.edges()) {
      EXPECT_NE(result.colors[e.u], result.colors[e.v]);
    }
    EXPECT_TRUE(is_maximal_independent_set(g, result.ruling_set));
    EXPECT_EQ(result.congest_metrics.random_words, 0u);  // deterministic
  }
}

TEST(ColoringMis, PaletteShrinksWellBelowN) {
  const Graph g = gen::grid(30, 30);  // n = 900, Delta = 4
  const auto result = coloring_mis_congest(g);
  EXPECT_LT(result.palette_size, 200u);
  EXPECT_GE(result.phases, 1u);
}

TEST(ColoringMis, DeterministicAcrossRuns) {
  const Graph g = gen::torus(10, 10);
  const auto a = coloring_mis_congest(g);
  const auto b = coloring_mis_congest(g);
  EXPECT_EQ(a.ruling_set, b.ruling_set);
  EXPECT_EQ(a.colors, b.colors);
}

TEST(ColoringMis, EdgeCases) {
  EXPECT_TRUE(coloring_mis_congest(Graph::from_edges(0, {})).ruling_set.empty());
  EXPECT_EQ(coloring_mis_congest(Graph::from_edges(1, {})).ruling_set.size(), 1u);
  EXPECT_EQ(coloring_mis_congest(gen::complete(8)).ruling_set.size(), 1u);
}

}  // namespace
}  // namespace rsets::congest
