#include "core/ruling_set.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/verify.hpp"

namespace rsets {
namespace {

TEST(Api, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(Algorithm::kGreedySequential), "greedy");
  EXPECT_EQ(algorithm_name(Algorithm::kLubyMpc), "luby_mpc");
  EXPECT_EQ(algorithm_name(Algorithm::kDetLubyMpc), "det_luby_mpc");
  EXPECT_EQ(algorithm_name(Algorithm::kSampleGatherMpc), "sample_gather_mpc");
  EXPECT_EQ(algorithm_name(Algorithm::kDetRulingMpc), "det_ruling_mpc");
}

TEST(Api, DefaultOptionsComputeDeterministicTwoRuling) {
  const Graph g = gen::gnp(200, 0.04, 5);
  const auto result = compute_ruling_set(g, {});
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
  EXPECT_EQ(result.beta, 2u);
  EXPECT_EQ(result.metrics.random_words, 0u);
}

TEST(Api, RejectsBadBetaCombinations) {
  const Graph g = gen::path(10);
  RulingSetOptions options;
  options.algorithm = Algorithm::kLubyMpc;
  options.beta = 2;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kDetLubyMpc;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kSampleGatherMpc;
  options.beta = 3;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = 1;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
}

TEST(Api, GreedyIgnoresMpcConfig) {
  const Graph g = gen::cycle(30);
  RulingSetOptions options;
  options.algorithm = Algorithm::kGreedySequential;
  options.beta = 2;
  options.mpc.memory_words = 1;  // would be fatal for an MPC algorithm
  const auto result = compute_ruling_set(g, options);
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
  EXPECT_EQ(result.metrics.rounds, 0u);
}

TEST(Api, OptionsArePlumbedThrough) {
  const Graph g = gen::gnp(300, 0.05, 7);
  RulingSetOptions options;
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = 2;
  options.chunk_bits = 2;
  options.gather_budget_words = 2048;  // force derandomized phases to run
  options.mpc.memory_words = 1 << 22;
  const auto narrow = compute_ruling_set(g, options);
  options.chunk_bits = 8;
  const auto wide = compute_ruling_set(g, options);
  // Narrower chunks => more chunks for the same seed bits.
  EXPECT_GT(narrow.derand_chunks, wide.derand_chunks);
  EXPECT_TRUE(is_beta_ruling_set(g, narrow.ruling_set, 2));
  EXPECT_TRUE(is_beta_ruling_set(g, wide.ruling_set, 2));
}

}  // namespace
}  // namespace rsets
