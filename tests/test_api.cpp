#include "core/ruling_set.hpp"

#include <gtest/gtest.h>

#include "congest/aglp_ruling.hpp"
#include "congest/beta_ruling_congest.hpp"
#include "congest/coloring_mis.hpp"
#include "congest/det_ruling_congest.hpp"
#include "congest/luby_congest.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"

namespace rsets {
namespace {

TEST(Api, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(Algorithm::kGreedySequential), "greedy");
  EXPECT_EQ(algorithm_name(Algorithm::kLubyMpc), "luby_mpc");
  EXPECT_EQ(algorithm_name(Algorithm::kDetLubyMpc), "det_luby_mpc");
  EXPECT_EQ(algorithm_name(Algorithm::kSampleGatherMpc), "sample_gather_mpc");
  EXPECT_EQ(algorithm_name(Algorithm::kDetRulingMpc), "det_ruling_mpc");
  EXPECT_EQ(algorithm_name(Algorithm::kLubyCongest), "luby_congest");
  EXPECT_EQ(algorithm_name(Algorithm::kAglpCongest), "aglp_congest");
  EXPECT_EQ(algorithm_name(Algorithm::kDetRulingCongest),
            "det_ruling_congest");
  EXPECT_EQ(algorithm_name(Algorithm::kColoringMisCongest),
            "coloring_mis_congest");
  EXPECT_EQ(algorithm_name(Algorithm::kBetaRulingCongest),
            "beta_ruling_congest");
}

TEST(Api, RegistryCoversEveryAlgorithmExactlyOnce) {
  const auto& registry = algorithm_registry();
  EXPECT_EQ(registry.size(), 10u);
  for (const AlgorithmInfo& info : registry) {
    // Round trips: enum -> info -> name -> enum.
    EXPECT_EQ(algorithm_info(info.algorithm).name, info.name);
    const auto parsed = algorithm_from_name(info.name);
    ASSERT_TRUE(parsed.has_value()) << info.name;
    EXPECT_EQ(*parsed, info.algorithm);
    EXPECT_FALSE(info.summary.empty());
    EXPECT_GE(info.min_beta, 1u);
  }
  EXPECT_EQ(algorithm_names().size(), registry.size());
}

TEST(Api, AlgorithmFromNameAcceptsLegacyAliases) {
  EXPECT_EQ(algorithm_from_name("congest_luby"), Algorithm::kLubyCongest);
  EXPECT_EQ(algorithm_from_name("congest_det2"),
            Algorithm::kDetRulingCongest);
  EXPECT_EQ(algorithm_from_name("congest_beta"),
            Algorithm::kBetaRulingCongest);
  EXPECT_EQ(algorithm_from_name("congest_aglp"), Algorithm::kAglpCongest);
  EXPECT_EQ(algorithm_from_name("no_such_algorithm"), std::nullopt);
  EXPECT_EQ(algorithm_from_name(""), std::nullopt);
}

TEST(Api, DispatcherRunsEveryAlgorithm) {
  const Graph g = gen::gnp(120, 0.05, 9);
  for (const AlgorithmInfo& info : algorithm_registry()) {
    RulingSetOptions options;
    options.algorithm = info.algorithm;
    options.beta = info.min_beta;
    const auto result = compute_ruling_set(g, options);
    // AGLP promises its own radius (ceil(log2 n)); everyone else must
    // deliver the requested beta.
    const std::uint32_t beta =
        info.algorithm == Algorithm::kAglpCongest ? result.beta
                                                  : info.min_beta;
    EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, beta)) << info.name;
    EXPECT_EQ(result.beta, beta) << info.name;
    if (info.deterministic) {
      EXPECT_EQ(result.metrics.random_words, 0u) << info.name;
      EXPECT_EQ(result.congest_metrics.random_words, 0u) << info.name;
    }
    if (info.model == Model::kCongest) {
      EXPECT_GT(result.congest_metrics.rounds, 0u) << info.name;
      EXPECT_EQ(result.metrics.rounds, 0u) << info.name;
    } else if (info.model == Model::kMpc) {
      EXPECT_GT(result.metrics.rounds, 0u) << info.name;
      EXPECT_EQ(result.congest_metrics.rounds, 0u) << info.name;
    }
  }
}

TEST(Api, CongestAlgorithmsRejectBadBeta) {
  const Graph g = gen::path(10);
  RulingSetOptions options;
  options.algorithm = Algorithm::kLubyCongest;
  options.beta = 2;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kColoringMisCongest;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kDetRulingCongest;
  options.beta = 1;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kDetRulingCongest;
  options.beta = 3;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kBetaRulingCongest;
  options.beta = 0;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  // Any beta >= 1 is fine for beta_ruling_congest.
  options.beta = 3;
  EXPECT_NO_THROW(compute_ruling_set(g, options));
}

TEST(Api, ColoringAlgorithmsExposeTheColoring) {
  const Graph g = gen::grid(12, 12);
  RulingSetOptions options;
  options.algorithm = Algorithm::kColoringMisCongest;
  options.beta = 1;
  const auto result = compute_ruling_set(g, options);
  ASSERT_EQ(result.colors.size(), g.num_vertices());
  for (const Edge& e : g.edges()) {
    EXPECT_NE(result.colors[e.u], result.colors[e.v]);
  }
  EXPECT_GT(result.palette_size, 0u);
  EXPECT_GT(result.phases, 0u);  // Linial steps
}

// The CONGEST algorithms are reachable both through their canonical entry
// points and the unified dispatcher, and the two agree. (The deprecated
// pre-unification wrappers completed their one-release window and are gone.)
TEST(Api, CongestEntryPointsMatchDispatcher) {
  const Graph g = gen::cycle(60);

  RulingSetOptions options;
  options.algorithm = Algorithm::kLubyCongest;
  options.beta = 1;
  EXPECT_EQ(congest::luby_mis_congest(g).congest_metrics.rounds,
            compute_ruling_set(g, options).congest_metrics.rounds);

  options.algorithm = Algorithm::kDetRulingCongest;
  options.beta = 2;
  EXPECT_EQ(congest::det_2ruling_set_congest(g).ruling_set,
            compute_ruling_set(g, options).ruling_set);

  options.algorithm = Algorithm::kColoringMisCongest;
  options.beta = 1;
  EXPECT_EQ(congest::coloring_mis_congest(g).palette_size,
            compute_ruling_set(g, options).palette_size);

  options.algorithm = Algorithm::kBetaRulingCongest;
  options.beta = 2;
  EXPECT_EQ(congest::beta_ruling_set_congest(g, 2).ruling_set,
            compute_ruling_set(g, options).ruling_set);

  options.algorithm = Algorithm::kAglpCongest;
  options.beta = 1;
  EXPECT_EQ(congest::aglp_ruling_set_congest(g).beta,
            compute_ruling_set(g, options).beta);
}

TEST(Api, DefaultOptionsComputeDeterministicTwoRuling) {
  const Graph g = gen::gnp(200, 0.04, 5);
  const auto result = compute_ruling_set(g, {});
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
  EXPECT_EQ(result.beta, 2u);
  EXPECT_EQ(result.metrics.random_words, 0u);
}

TEST(Api, RejectsBadBetaCombinations) {
  const Graph g = gen::path(10);
  RulingSetOptions options;
  options.algorithm = Algorithm::kLubyMpc;
  options.beta = 2;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kDetLubyMpc;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kSampleGatherMpc;
  options.beta = 3;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = 1;
  EXPECT_THROW(compute_ruling_set(g, options), std::invalid_argument);
}

TEST(Api, GreedyIgnoresMpcConfig) {
  const Graph g = gen::cycle(30);
  RulingSetOptions options;
  options.algorithm = Algorithm::kGreedySequential;
  options.beta = 2;
  options.mpc.memory_words = 1;  // would be fatal for an MPC algorithm
  const auto result = compute_ruling_set(g, options);
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
  EXPECT_EQ(result.metrics.rounds, 0u);
}

TEST(Api, OptionsArePlumbedThrough) {
  const Graph g = gen::gnp(300, 0.05, 7);
  RulingSetOptions options;
  options.algorithm = Algorithm::kDetRulingMpc;
  options.beta = 2;
  options.chunk_bits = 2;
  options.gather_budget_words = 2048;  // force derandomized phases to run
  options.mpc.memory_words = 1 << 22;
  const auto narrow = compute_ruling_set(g, options);
  options.chunk_bits = 8;
  const auto wide = compute_ruling_set(g, options);
  // Narrower chunks => more chunks for the same seed bits.
  EXPECT_GT(narrow.derand_chunks, wide.derand_chunks);
  EXPECT_TRUE(is_beta_ruling_set(g, narrow.ruling_set, 2));
  EXPECT_TRUE(is_beta_ruling_set(g, wide.ruling_set, 2));
}

}  // namespace
}  // namespace rsets
