// Tests for the long-lived ruling-set service: update-stream parsing,
// the dynamic adjacency store, region-restricted certification, the three
// repair tiers, admission control, retry relaxation, journal crash
// recovery, and the fault+churn soak's bit-for-bit parity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/chaos.hpp"
#include "core/replay.hpp"
#include "serve/dynamic_graph.hpp"
#include "serve/service.hpp"
#include "serve/updates.hpp"
#include "util/error.hpp"

namespace rsets::serve {
namespace {

Graph make_graph(std::uint64_t n, double avg_deg, std::uint64_t seed,
                 const std::string& gen = "gnp") {
  RunSpec spec;
  spec.gen = gen;
  spec.n = n;
  spec.avg_deg = avg_deg;
  spec.seed = seed;
  return build_graph(spec);
}

void expect_metrics_eq(const mpc::MpcMetrics& a, const mpc::MpcMetrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_words, b.total_words);
  EXPECT_EQ(a.max_send_words, b.max_send_words);
  EXPECT_EQ(a.max_recv_words, b.max_recv_words);
  EXPECT_EQ(a.max_storage_words, b.max_storage_words);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.random_words, b.random_words);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  EXPECT_EQ(a.recovery_rounds, b.recovery_rounds);
  EXPECT_EQ(a.degraded_subrounds, b.degraded_subrounds);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.speculative_rounds, b.speculative_rounds);
  EXPECT_EQ(a.corrupt_detected, b.corrupt_detected);
  EXPECT_EQ(a.integrity_retries, b.integrity_retries);
  EXPECT_EQ(a.quarantined_rounds, b.quarantined_rounds);
}

// ---------------------------------------------------------------- parser --

TEST(ServeUpdatesParser, ParsesBatchesCommentsAndCrlf) {
  std::istringstream in(
      "# producer A\r\n"
      "+ 0 1\r\n"
      "  % inline comment style two\n"
      "- 2 3\n"
      "commit\n"
      "\n"
      "+ 4 5\n");  // trailing batch closed by end-of-stream
  const auto batches = parse_update_stream(in, kNoVertexBound);
  ASSERT_EQ(batches.size(), 2u);
  ASSERT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[0].updates[0],
            (EdgeUpdate{EdgeUpdate::Op::kInsert, 0, 1}));
  EXPECT_EQ(batches[0].updates[1],
            (EdgeUpdate{EdgeUpdate::Op::kDelete, 2, 3}));
  ASSERT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batches[1].updates[0],
            (EdgeUpdate{EdgeUpdate::Op::kInsert, 4, 5}));
}

TEST(ServeUpdatesParser, EmptyStreamParsesToZeroBatches) {
  std::istringstream in("# only comments\n\n");
  EXPECT_TRUE(parse_update_stream(in, kNoVertexBound).empty());
}

TEST(ServeUpdatesParser, RejectsMalformedWithOneBasedLineNumbers) {
  const auto expect_error = [](const std::string& text, ErrorCode code,
                               const std::string& line_tag) {
    std::istringstream in(text);
    try {
      parse_update_stream(in, 10);
      FAIL() << "expected rsets::Error for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), code) << text;
      EXPECT_NE(std::string(e.what()).find(line_tag), std::string::npos)
          << "missing '" << line_tag << "' in: " << e.what();
    }
  };
  expect_error("x 1 2\n", ErrorCode::kMalformedLine, "line 1");
  expect_error("+ 1\n", ErrorCode::kMalformedLine, "line 1");
  expect_error("+ 1 2 3\n", ErrorCode::kMalformedLine, "line 1");
  expect_error("+ a 2\n", ErrorCode::kMalformedLine, "line 1");
  expect_error("+ -1 2\n", ErrorCode::kMalformedLine, "line 1");
  expect_error("commit now\n", ErrorCode::kMalformedLine, "line 1");
  // The diagnostic names the failing source line, not the failing update.
  expect_error("+ 0 1\n# pad\n+ 3 3\n", ErrorCode::kSelfLoop, "line 3");
  expect_error("+ 0 1\n+ 0 10\n", ErrorCode::kVertexIdOverflow, "line 2");
  expect_error("+ 0 99999999999999999999\n", ErrorCode::kVertexIdOverflow,
               "line 1");
}

TEST(ServeUpdatesParser, RejectsDuplicateCommitWithOneBasedLineNumber) {
  const auto expect_dup = [](const std::string& text,
                             const std::string& line_tag) {
    std::istringstream in(text);
    try {
      parse_update_stream(in, kNoVertexBound);
      FAIL() << "expected duplicate-commit rejection for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformedLine) << text;
      EXPECT_NE(std::string(e.what()).find("duplicate commit"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(line_tag), std::string::npos)
          << "missing '" << line_tag << "' in: " << e.what();
    }
  };
  expect_dup("commit\n", "line 1");                     // nothing ever queued
  expect_dup("+ 0 1\ncommit\ncommit\n", "line 3");      // back-to-back
  expect_dup("+ 0 1\ncommit\n# pad\n\ncommit\n", "line 5");
}

TEST(ServeUpdatesParser, ChecksumLineVerifiesTheOpenBatch) {
  const std::vector<EdgeUpdate> updates = {
      {EdgeUpdate::Op::kInsert, 0, 1}, {EdgeUpdate::Op::kDelete, 2, 3}};
  std::ostringstream text;
  for (const auto& u : updates) text << to_line(u) << "\n";
  text << "checksum " << std::hex << batch_checksum(updates) << "\ncommit\n";
  std::istringstream good(text.str());
  const auto batches = parse_update_stream(good, kNoVertexBound);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].updates, updates);

  std::istringstream bad("+ 0 1\nchecksum deadbeef\ncommit\n");
  try {
    parse_update_stream(bad, kNoVertexBound);
    FAIL() << "expected checksum mismatch";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kChecksumMismatch);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(ServeUpdatesParser, ToLineRoundTrips) {
  const std::vector<EdgeUpdate> updates = {
      {EdgeUpdate::Op::kInsert, 7, 42}, {EdgeUpdate::Op::kDelete, 0, 9}};
  std::string text;
  for (const auto& u : updates) text += to_line(u) + "\n";
  std::istringstream in(text);
  const auto batches = parse_update_stream(in, kNoVertexBound);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].updates, updates);
}

// --------------------------------------------------------- dynamic graph --

TEST(ServeDynamicGraph, TracksEdgeSetAndSnapshotsExactly) {
  const Graph g = make_graph(40, 4.0, 7);
  DynamicGraph dg(g);
  EXPECT_EQ(dg.num_vertices(), g.num_vertices());
  EXPECT_EQ(dg.num_edges(), g.num_edges());

  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      if (v < w) edges.insert({v, w});
    }
  }
  // Mixed churn with explicit no-op probes; the mutators report exactly
  // whether the graph changed.
  EXPECT_TRUE(dg.insert(0, 39));
  EXPECT_FALSE(dg.insert(39, 0));  // duplicate, either orientation
  edges.insert({0, 39});
  EXPECT_TRUE(dg.erase(0, 39));
  EXPECT_FALSE(dg.erase(0, 39));
  edges.erase({0, 39});
  const auto some = *edges.begin();
  EXPECT_TRUE(dg.erase(some.first, some.second));
  edges.erase(some);
  EXPECT_THROW(dg.insert(3, 3), std::invalid_argument);
  EXPECT_THROW(dg.insert(0, 40), std::invalid_argument);

  const Graph snap = dg.snapshot();
  std::vector<Edge> list;
  for (const auto& [u, w] : edges) list.push_back({u, w});
  const Graph expect = Graph::from_edges(g.num_vertices(), list);
  ASSERT_EQ(snap.num_vertices(), expect.num_vertices());
  ASSERT_EQ(snap.num_edges(), expect.num_edges());
  for (VertexId v = 0; v < snap.num_vertices(); ++v) {
    const auto a = snap.neighbors(v);
    const auto b = expect.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "adjacency mismatch at vertex " << v;
  }
}

TEST(ServeDynamicGraph, BallAndFingerprint) {
  // Path 0-1-2-3-4-5.
  std::vector<Edge> path = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  DynamicGraph dg(Graph::from_edges(6, path));
  const VertexId seed[1] = {0};
  EXPECT_EQ(dg.ball(seed, 0), (std::vector<VertexId>{0}));
  EXPECT_EQ(dg.ball(seed, 2), (std::vector<VertexId>{0, 1, 2}));
  const VertexId two[2] = {0, 5};
  EXPECT_EQ(dg.ball(two, 1), (std::vector<VertexId>{0, 1, 4, 5}));

  const std::uint64_t before = dg.fingerprint();
  ASSERT_TRUE(dg.insert(0, 5));
  EXPECT_NE(dg.fingerprint(), before);
  ASSERT_TRUE(dg.erase(0, 5));
  EXPECT_EQ(dg.fingerprint(), before);  // identity, not history
}

TEST(ServeDynamicGraph, FromSortedAdjacencyValidation) {
  EXPECT_THROW(Graph::from_sorted_adjacency({{1, 0}, {0}, {0}}),
               std::invalid_argument);  // unsorted list
  EXPECT_THROW(Graph::from_sorted_adjacency({{0}, {}}),
               std::invalid_argument);  // self-loop
  EXPECT_THROW(Graph::from_sorted_adjacency({{5}, {0}}),
               std::invalid_argument);  // out of range
  const Graph g = make_graph(30, 3.0, 11);
  DynamicGraph dg(g);
  const Graph rebuilt = Graph::from_sorted_adjacency(dg.adjacency());
  EXPECT_EQ(rebuilt.num_edges(), g.num_edges());
}

// --------------------------------------------------- region certification --

TEST(ServeRegionValid, AcceptsValidSetAndIsLocalToTheRegion) {
  std::vector<Edge> path = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  DynamicGraph dg(Graph::from_edges(6, path));
  const std::vector<VertexId> set = {0, 3};
  const std::vector<VertexId> all = {0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(region_valid(dg, set, 2, all));

  // Vertex 5 is 3 hops from the lone member: dirty iff the region says so.
  const std::vector<VertexId> lone = {0};
  const std::vector<VertexId> far = {5};
  const std::vector<VertexId> near = {1, 2};
  EXPECT_FALSE(region_valid(dg, lone, 2, far));
  EXPECT_TRUE(region_valid(dg, lone, 2, near));
}

TEST(ServeRegionValid, RejectsIndependenceAndDominationViolations) {
  std::vector<Edge> path = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  DynamicGraph dg(Graph::from_edges(6, path));
  const std::vector<VertexId> adjacent = {0, 1};
  const std::vector<VertexId> all = {0, 1, 2, 3, 4, 5};
  EXPECT_FALSE(region_valid(dg, adjacent, 2, all));
  const std::vector<VertexId> oob = {0, 99};
  EXPECT_FALSE(region_valid(dg, oob, 2, all));
}

// ------------------------------------------------------------ greedy tier --

TEST(ServeGreedy, CascadeRepairMatchesFromScratchAcrossBetas) {
  for (std::uint32_t beta : {1u, 2u, 3u}) {
    ServiceConfig cfg;
    cfg.options.algorithm = Algorithm::kGreedySequential;
    cfg.options.beta = beta;
    cfg.full_threshold = 0.95;  // keep every epoch on the frontier tier
    const Graph g = make_graph(120, 4.0, 100 + beta);
    RulingSetService service(g, cfg);
    for (std::uint64_t b = 0; b < 4; ++b) {
      const UpdateBatch batch = chaos_churn_batch(5, beta, b, 120, 18);
      service.apply(batch);
      const RulingSetResult truth =
          compute_ruling_set(service.snapshot(), cfg.options);
      ASSERT_EQ(service.ruling_set(), truth.ruling_set)
          << "beta=" << beta << " batch=" << b;
    }
    EXPECT_GT(service.metrics().cascade_repairs, 0u) << "beta=" << beta;
    EXPECT_GT(service.metrics().certifications_region, 0u) << "beta=" << beta;
  }
}

// --------------------------------------------------------------- MPC tier --

// The churn-parity contract of DESIGN.md §4.7, pinned byte-for-byte: after
// every drained batch, a from-scratch compute_ruling_set on the current
// snapshot with last_repair_options() reproduces the maintained set, the
// full metrics ledger, and the record-log body (trace lines with wall time
// zeroed) — for every MPC algorithm, at every simulator thread width.
TEST(ServeMpc, ChurnParityAllAlgorithmsAcrossThreadWidths) {
  constexpr std::uint64_t kN = 64;
  constexpr std::uint64_t kBatches = 3;
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model != Model::kMpc) continue;
    std::vector<std::vector<VertexId>> width_sets;  // per width, final set
    for (unsigned threads : {1u, 4u, 0u}) {  // 0 = hardware concurrency
      std::vector<std::string> service_lines;
      ServiceConfig cfg;
      cfg.options.algorithm = info.algorithm;
      cfg.options.beta =
          info.max_beta == 0 ? std::max(info.min_beta, 2u) : info.min_beta;
      cfg.options.mpc.num_machines = 4;
      cfg.options.mpc.num_threads = threads;
      cfg.options.mpc.trace_hook = [&service_lines](
                                       const mpc::RoundTrace& trace) {
        service_lines.push_back(record_line(trace));
      };
      cfg.full_certify_every = 2;  // alternate region and full certification
      RulingSetService service(make_graph(kN, 4.0, 42), cfg);
      std::vector<VertexId> final_set;
      for (std::uint64_t b = 0; b < kBatches; ++b) {
        service_lines.clear();
        const UpdateBatch batch = chaos_churn_batch(9, 1, b, kN, 12);
        const BatchReport report = service.apply(batch);
        ASSERT_TRUE(report.certified);

        std::vector<std::string> oracle_lines;
        RulingSetOptions oracle = service.last_repair_options();
        oracle.mpc.trace_hook = [&oracle_lines](const mpc::RoundTrace& trace) {
          oracle_lines.push_back(record_line(trace));
        };
        const RulingSetResult truth =
            compute_ruling_set(service.snapshot(), oracle);
        ASSERT_EQ(service.ruling_set(), truth.ruling_set)
            << info.name << " threads=" << threads << " batch=" << b;
        if (report.scope != RepairScope::kSkip) {
          // A rerun happened this batch: its ledger and trace body must be
          // byte-identical to the oracle's.
          expect_metrics_eq(service.last_repair_result().metrics,
                            truth.metrics);
          EXPECT_EQ(service_lines, oracle_lines)
              << info.name << " threads=" << threads << " batch=" << b;
          EXPECT_FALSE(service_lines.empty());
        }
        final_set = service.ruling_set();
      }
      width_sets.push_back(std::move(final_set));
    }
    // The maintained set is also invariant across simulator thread widths.
    ASSERT_EQ(width_sets.size(), 3u);
    EXPECT_EQ(width_sets[0], width_sets[1]) << info.name;
    EXPECT_EQ(width_sets[0], width_sets[2]) << info.name;
  }
}

// ------------------------------------------------------ admission control --

TEST(ServeAdmission, OverBudgetBatchesSplitDeferAndDrainWithoutLoss) {
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  cfg.admit_budget = 2;
  cfg.max_epochs_per_apply = 1;
  const Graph g = make_graph(80, 3.0, 21);
  RulingSetService service(g, cfg);

  UpdateBatch batch;
  for (VertexId i = 0; i + 1 < 20; i += 2) {
    batch.updates.push_back({EdgeUpdate::Op::kInsert, i, i + 1});
  }
  ServiceConfig uncapped;
  uncapped.options = cfg.options;
  RulingSetService twin(g, uncapped);  // no admission caps
  twin.apply(batch);

  BatchReport report = service.apply(batch);
  EXPECT_EQ(report.epochs, 1u);
  EXPECT_GT(report.deferred, 0u);
  std::uint64_t drains = 0;
  while (service.pending() > 0) {
    report = service.drain();
    EXPECT_LE(report.epochs, 1u);
    ++drains;
    ASSERT_LT(drains, 100u) << "drain loop did not converge";
  }
  EXPECT_GT(drains, 1u);  // the batch really was split across epochs
  // Deferred-not-dropped: once drained, state matches the uncapped twin.
  EXPECT_EQ(service.graph().fingerprint(), twin.graph().fingerprint());
  EXPECT_EQ(service.ruling_set(), twin.ruling_set());
  const ServiceMetrics& m = service.metrics();
  EXPECT_EQ(m.updates_applied + m.updates_noop, m.updates_seen);
}

TEST(ServeAdmission, CancelledBatchCommitsNoEpoch) {
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  const Graph g = make_graph(40, 3.0, 33);
  RulingSetService service(g, cfg);
  const std::uint64_t epoch_before = service.epoch();

  // Insert a present edge and delete an absent one: zero effective updates.
  const VertexId u = 0;
  const VertexId v = g.neighbors(0).front();
  VertexId absent_v = 1;
  while (service.graph().has_edge(39, absent_v)) ++absent_v;
  UpdateBatch noop;
  noop.updates.push_back({EdgeUpdate::Op::kInsert, u, v});
  noop.updates.push_back({EdgeUpdate::Op::kDelete, 39, absent_v});
  const BatchReport report = service.apply(noop);
  EXPECT_EQ(report.scope, RepairScope::kSkip);
  EXPECT_EQ(report.epochs, 0u);
  EXPECT_EQ(report.effective_updates, 0u);
  EXPECT_EQ(service.epoch(), epoch_before);
  EXPECT_EQ(service.metrics().skips, 1u);
  EXPECT_EQ(service.metrics().updates_noop, 2u);
}

// ------------------------------------------------------- retry relaxation --

TEST(ServeRetry, DeadlineMissesRelaxExponentiallyAndConverge) {
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kDetRulingMpc;
  cfg.options.beta = 2;
  cfg.options.mpc.num_machines = 4;
  cfg.options.mpc.round_deadline = 1;  // every phase is a straggler
  cfg.max_repair_retries = 2;
  const Graph g = make_graph(64, 4.0, 55);
  RulingSetService service(g, cfg);
  // The initial repair trips the SLO, retries with the deadline doubled,
  // and the final attempt drops it entirely.
  EXPECT_GT(service.metrics().repair_retries, 0u);
  EXPECT_EQ(service.last_repair_options().mpc.round_deadline, 0u);
  // Deadlines never change outputs: parity with an unconstrained run.
  RulingSetOptions free_opts = cfg.options;
  free_opts.mpc.round_deadline = 0;
  EXPECT_EQ(service.ruling_set(),
            compute_ruling_set(g, free_opts).ruling_set);
}

// ------------------------------------------------------------- escalation --

TEST(ServeEscalation, ChurnAboveThresholdForcesFullRecompute) {
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  cfg.full_threshold = 0.0;  // any effective update escalates
  const Graph g = make_graph(60, 3.0, 77);
  RulingSetService service(g, cfg);
  UpdateBatch batch;
  batch.updates.push_back({EdgeUpdate::Op::kInsert, 0, 59});
  const BatchReport report = service.apply(batch);
  EXPECT_EQ(report.scope, RepairScope::kFull);
  EXPECT_GT(service.metrics().repairs_full, 1u);  // init + escalated epoch
  EXPECT_GT(service.metrics().certifications_full, 1u);
  EXPECT_EQ(service.metrics().cascade_repairs, 0u);
  EXPECT_EQ(service.ruling_set(),
            compute_ruling_set(service.snapshot(), cfg.options).ruling_set);
}

// ---------------------------------------------------------------- journal --

struct SimulatedCrash {};

TEST(ServeJournal, CrashMidBatchRecoversToLastCommittedEpoch) {
  const std::string journal = ::testing::TempDir() + "serve_crash.rsj";
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  cfg.journal_path = journal;
  const Graph g = make_graph(60, 4.0, 13);

  ServiceConfig twin_cfg = cfg;
  twin_cfg.journal_path.clear();
  RulingSetService twin(g, twin_cfg);

  RulingSetService service(g, cfg);
  const UpdateBatch batch0 = chaos_churn_batch(3, 0, 0, 60, 16);
  const UpdateBatch batch1 = chaos_churn_batch(3, 0, 1, 60, 16);
  twin.apply(batch0);
  service.apply(batch0);
  const std::uint64_t committed = service.epoch();
  ASSERT_GT(committed, 0u);

  service.crash_hook = [](std::string_view stage) {
    if (stage == "pre-commit") throw SimulatedCrash{};
  };
  EXPECT_THROW(service.apply(batch1), SimulatedCrash);

  RulingSetService recovered = RulingSetService::recover(cfg);
  EXPECT_EQ(recovered.epoch(), committed);
  EXPECT_EQ(recovered.metrics().recoveries, 1u);
  EXPECT_EQ(recovered.ruling_set(), twin.ruling_set());
  EXPECT_EQ(recovered.graph().fingerprint(), twin.graph().fingerprint());

  // The crashed batch was never durably admitted; the client resubmits it
  // and both histories converge to the same bits.
  recovered.apply(batch1);
  twin.apply(batch1);
  EXPECT_EQ(recovered.epoch(), twin.epoch());
  EXPECT_EQ(recovered.ruling_set(), twin.ruling_set());
  EXPECT_EQ(recovered.graph().fingerprint(), twin.graph().fingerprint());
}

TEST(ServeJournal, PrevGenerationSurvivesCorruptPrimary) {
  const std::string journal = ::testing::TempDir() + "serve_prev.rsj";
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  cfg.journal_path = journal;
  RulingSetService service(make_graph(50, 3.0, 17), cfg);
  UpdateBatch batch;
  batch.updates.push_back({EdgeUpdate::Op::kInsert, 0, 49});
  service.apply(batch);  // rotates the epoch-0 journal to .prev
  ASSERT_EQ(service.epoch(), 1u);

  {
    std::ofstream out(journal, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  RulingSetService recovered = RulingSetService::recover(cfg);
  EXPECT_EQ(recovered.epoch(), 0u);  // one corrupt generation costs one epoch
  recovered.apply(batch);
  EXPECT_EQ(recovered.epoch(), 1u);
  EXPECT_EQ(recovered.ruling_set(), service.ruling_set());
}

TEST(ServeJournal, RecoverRejectsMismatchedConfigAndMissingJournal) {
  const std::string journal = ::testing::TempDir() + "serve_mismatch.rsj";
  ServiceConfig cfg;
  cfg.options.algorithm = Algorithm::kGreedySequential;
  cfg.options.beta = 2;
  cfg.journal_path = journal;
  RulingSetService service(make_graph(30, 3.0, 19), cfg);
  (void)service;

  ServiceConfig wrong_beta = cfg;
  wrong_beta.options.beta = 3;
  EXPECT_THROW(RulingSetService::recover(wrong_beta), ServiceError);
  ServiceConfig wrong_alg = cfg;
  wrong_alg.options.algorithm = Algorithm::kDetRulingMpc;
  EXPECT_THROW(RulingSetService::recover(wrong_alg), ServiceError);
  ServiceConfig no_path = cfg;
  no_path.journal_path.clear();
  EXPECT_THROW(RulingSetService::recover(no_path), ServiceError);
  ServiceConfig missing = cfg;
  missing.journal_path = ::testing::TempDir() + "serve_no_such.rsj";
  EXPECT_THROW(RulingSetService::recover(missing), ServiceError);
}

// -------------------------------------------------------------- churn soak --

TEST(ServeChurnSoak, DeterministicBatchGeneration) {
  const serve::UpdateBatch a = chaos_churn_batch(1, 2, 3, 100, 24);
  const serve::UpdateBatch b = chaos_churn_batch(1, 2, 3, 100, 24);
  EXPECT_EQ(a.updates, b.updates);
  const serve::UpdateBatch c = chaos_churn_batch(1, 2, 4, 100, 24);
  EXPECT_NE(a.updates, c.updates);
  for (const EdgeUpdate& u : a.updates) {
    EXPECT_NE(u.u, u.v);
    EXPECT_LT(u.u, 100u);
    EXPECT_LT(u.v, 100u);
  }
}

TEST(ServeChurnSoak, MixedFaultChurnSmokePassesWithCrashRecovery) {
  ChurnOptions options;
  options.schedules = 2;
  options.base_seed = 5;
  options.n = 60;
  options.avg_deg = 4.0;
  options.machines = 4;
  options.batches = 3;
  options.batch_updates = 12;
  options.certify = true;
  options.journal_dir = ::testing::TempDir();
  const ChurnReport report = run_churn_soak(options);
  for (const auto& f : report.failures) {
    ADD_FAILURE() << "schedule " << f.schedule << " [" << f.algorithm
                  << "]: " << f.what;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.schedules_run, 2u);
  EXPECT_GT(report.runs, 0u);
  EXPECT_GT(report.epochs, 0u);
  // Schedule 0 is a crash schedule: every algorithm's service dies at the
  // pre-commit hook of the middle batch and must recover from its journal.
  EXPECT_GT(report.crashes_injected, 0u);
  EXPECT_EQ(report.recoveries, report.crashes_injected);
  EXPECT_EQ(report.certified, report.runs);
}

}  // namespace
}  // namespace rsets::serve
