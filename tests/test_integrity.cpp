// The end-to-end integrity layer (DESIGN.md §4.4): corruption and reorder
// faults must be detected and healed without ever changing an algorithm's
// output — only the cost ledger — verification must be free when nothing
// corrupts, and the quarantine path must fire under sustained corruption.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "mpc/fault/injector.hpp"
#include "mpc/simulator.hpp"
#include "mpc/trace.hpp"

namespace rsets {
namespace {

struct Trial {
  RulingSetResult result;
  std::vector<mpc::RoundTrace> traces;
};

Trial run(const Graph& g, Algorithm algorithm, std::uint32_t beta,
          const std::string& fault_spec, bool integrity = false,
          unsigned num_threads = 1, std::uint64_t checkpoint_every = 0) {
  Trial trial;
  RulingSetOptions options;
  options.algorithm = algorithm;
  options.beta = beta;
  options.mpc.num_machines = 8;
  options.mpc.num_threads = num_threads;
  options.mpc.faults = mpc::parse_fault_spec(fault_spec);
  options.mpc.integrity = integrity;
  options.mpc.checkpoint_every = checkpoint_every;
  options.mpc.trace_hook = [&trial](const mpc::RoundTrace& trace) {
    trial.traces.push_back(trace);
  };
  trial.result = compute_ruling_set(g, options);
  return trial;
}

std::uint64_t count_kind(const Trial& trial, mpc::FaultKind kind) {
  std::uint64_t n = 0;
  for (const mpc::RoundTrace& t : trial.traces) {
    for (const mpc::FaultEvent& e : t.faults) {
      if (e.kind == kind) ++n;
    }
  }
  return n;
}

class IntegrityAllMpc : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(
    Algorithms, IntegrityAllMpc,
    ::testing::Values(Algorithm::kLubyMpc, Algorithm::kDetLubyMpc,
                      Algorithm::kSampleGatherMpc, Algorithm::kDetRulingMpc),
    [](const auto& info) { return algorithm_name(info.param); });

TEST_P(IntegrityAllMpc, CorruptionHealsWithoutChangingTheResult) {
  const Graph g = gen::gnp(400, 8.0 / 400, 3);
  const std::uint32_t beta = algorithm_info(GetParam()).min_beta;
  const Trial clean = run(g, GetParam(), beta, "");
  const Trial noisy = run(g, GetParam(), beta, "corrupt~0.05,seed=11");

  EXPECT_EQ(noisy.result.ruling_set, clean.result.ruling_set);
  EXPECT_GT(noisy.result.metrics.corrupt_detected, 0u);
  // Every detected corruption triggered exactly one retransmission.
  EXPECT_EQ(noisy.result.metrics.integrity_retries,
            noisy.result.metrics.corrupt_detected);
  EXPECT_EQ(count_kind(noisy, mpc::FaultKind::kCorrupt),
            noisy.result.metrics.corrupt_detected);
  // Retransmissions are charged: the noisy run moved more words for the
  // same messages-as-delivered, like drops do.
  EXPECT_GT(noisy.result.metrics.total_words, clean.result.metrics.total_words);
  // Trace-sum == metrics identity holds with the integrity ledger active.
  std::uint64_t traced_words = 0;
  for (const mpc::RoundTrace& t : noisy.traces) traced_words += t.words_sent;
  EXPECT_EQ(traced_words, noisy.result.metrics.total_words);
}

TEST_P(IntegrityAllMpc, ReorderHealsForFree) {
  const Graph g = gen::gnp(400, 8.0 / 400, 3);
  const std::uint32_t beta = algorithm_info(GetParam()).min_beta;
  const Trial clean = run(g, GetParam(), beta, "");
  const Trial shuffled = run(g, GetParam(), beta, "reorder~1.0,seed=5");

  EXPECT_EQ(shuffled.result.ruling_set, clean.result.ruling_set);
  EXPECT_GT(count_kind(shuffled, mpc::FaultKind::kReorder), 0u);
  // Sequence numbers ride in the charged header: healing reorder moves no
  // extra words and costs no extra rounds.
  EXPECT_EQ(shuffled.result.metrics.total_words,
            clean.result.metrics.total_words);
  EXPECT_EQ(shuffled.result.metrics.rounds, clean.result.metrics.rounds);
}

TEST_P(IntegrityAllMpc, SustainedCorruptionQuarantines) {
  const Graph g = gen::gnp(300, 8.0 / 300, 3);
  const std::uint32_t beta = algorithm_info(GetParam()).min_beta;
  const Trial clean = run(g, GetParam(), beta, "");
  // Every delivery attempt corrupts: the bounded retry exhausts and sources
  // are quarantined — yet the pristine payloads still come through and the
  // output is unchanged.
  const Trial hostile = run(g, GetParam(), beta, "corrupt~1.0,seed=2");

  EXPECT_EQ(hostile.result.ruling_set, clean.result.ruling_set);
  EXPECT_GT(hostile.result.metrics.quarantined_rounds, 0u);
  EXPECT_EQ(count_kind(hostile, mpc::FaultKind::kQuarantine),
            hostile.result.metrics.quarantined_rounds);
  // Quarantine re-execution is charged into the round total.
  EXPECT_GT(hostile.result.metrics.rounds, clean.result.metrics.rounds);
  // The retry bound holds per delivery attempt chain: a message is never
  // retransmitted more than kMaxIntegrityRetries times, so the retry count
  // can't exceed bound x detected chains (equality when every retry also
  // corrupted, as corrupt~1.0 forces).
  EXPECT_EQ(hostile.result.metrics.corrupt_detected,
            hostile.result.metrics.integrity_retries);
}

TEST_P(IntegrityAllMpc, VerificationAloneIsFree) {
  const Graph g = gen::gnp(400, 8.0 / 400, 3);
  const std::uint32_t beta = algorithm_info(GetParam()).min_beta;
  const Trial off = run(g, GetParam(), beta, "", /*integrity=*/false);
  const Trial on = run(g, GetParam(), beta, "", /*integrity=*/true);

  // The checksum rides in the already-charged header and verification is
  // CPU-only: a fault-free run with integrity on is identical in every
  // observable — result, full metrics ledger, and each trace line.
  EXPECT_EQ(on.result.ruling_set, off.result.ruling_set);
  EXPECT_EQ(on.result.metrics.rounds, off.result.metrics.rounds);
  EXPECT_EQ(on.result.metrics.messages, off.result.metrics.messages);
  EXPECT_EQ(on.result.metrics.total_words, off.result.metrics.total_words);
  EXPECT_EQ(on.result.metrics.random_words, off.result.metrics.random_words);
  EXPECT_EQ(on.result.metrics.corrupt_detected, 0u);
  EXPECT_EQ(on.result.metrics.integrity_retries, 0u);
  EXPECT_EQ(on.result.metrics.quarantined_rounds, 0u);
  ASSERT_EQ(on.traces.size(), off.traces.size());
  for (std::size_t i = 0; i < on.traces.size(); ++i) {
    mpc::RoundTrace a = on.traces[i];
    mpc::RoundTrace b = off.traces[i];
    a.wall_ms = b.wall_ms = 0.0;  // the only nondeterministic field
    EXPECT_EQ(mpc::to_json(a), mpc::to_json(b)) << "trace line " << i;
  }
}

TEST_P(IntegrityAllMpc, CorruptionHealingIsThreadCountInvariant) {
  const Graph g = gen::gnp(300, 8.0 / 300, 3);
  const std::uint32_t beta = algorithm_info(GetParam()).min_beta;
  const std::string spec = "corrupt~0.1,reorder~0.5,seed=7";
  const Trial seq = run(g, GetParam(), beta, spec, false, 1);
  const Trial par = run(g, GetParam(), beta, spec, false, 4);

  EXPECT_EQ(par.result.ruling_set, seq.result.ruling_set);
  EXPECT_EQ(par.result.metrics.corrupt_detected,
            seq.result.metrics.corrupt_detected);
  EXPECT_EQ(par.result.metrics.integrity_retries,
            seq.result.metrics.integrity_retries);
  EXPECT_EQ(par.result.metrics.quarantined_rounds,
            seq.result.metrics.quarantined_rounds);
  EXPECT_EQ(par.result.metrics.total_words, seq.result.metrics.total_words);
}

TEST(IntegrityTrace, NewFaultKindsSerialize) {
  mpc::RoundTrace trace;
  trace.round = 4;
  mpc::FaultEvent corrupt;
  corrupt.kind = mpc::FaultKind::kCorrupt;
  corrupt.machine = 2;
  corrupt.words = 17;
  mpc::FaultEvent reorder;
  reorder.kind = mpc::FaultKind::kReorder;
  reorder.words = 9;
  mpc::FaultEvent quarantine;
  quarantine.kind = mpc::FaultKind::kQuarantine;
  quarantine.machine = 5;
  quarantine.words = 3;
  quarantine.delay_rounds = 1;
  trace.faults = {corrupt, reorder, quarantine};

  const std::string json = mpc::to_json(trace);
  EXPECT_NE(json.find("{\"kind\":\"corrupt\",\"machine\":2,\"words\":17}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"kind\":\"reorder\",\"machine\":0,\"messages\":9}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"kind\":\"quarantine\",\"machine\":5,\"streak\":3,"
                      "\"retry_rounds\":1}"),
            std::string::npos);
}

TEST(IntegrityInjector, ScheduledTransportKindsAreRejected) {
  mpc::FaultConfig bad;
  bad.enabled = true;
  bad.schedule.push_back({mpc::FaultKind::kCorrupt, 3, 0});
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);

  bad = {};
  bad.enabled = true;
  bad.schedule.push_back({mpc::FaultKind::kReorder, 3, 0});
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);

  bad = {};
  bad.enabled = true;
  bad.schedule.push_back({mpc::FaultKind::kQuarantine, 3, 0});
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);

  bad = {};
  bad.enabled = true;
  bad.corrupt_prob = 1.5;
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);

  bad = {};
  bad.enabled = true;
  bad.reorder_prob = -0.1;
  EXPECT_THROW(mpc::FaultInjector(bad, 4), std::invalid_argument);
}

TEST(IntegrityCheckpoint, FaultyRunSurvivesCheckpointRestore) {
  // Corruption + checkpointing together: the v3 image carries the integrity
  // ledger and corrupt streaks, and a crash mid-corruption recovers to the
  // same output.
  const Graph g = gen::gnp(300, 8.0 / 300, 3);
  const Trial clean = run(g, Algorithm::kDetRulingMpc, 2, "");
  const Trial brutal =
      run(g, Algorithm::kDetRulingMpc, 2, "corrupt~0.3,crash~0.02,seed=13",
          false, 1, /*checkpoint_every=*/2);
  EXPECT_EQ(brutal.result.ruling_set, clean.result.ruling_set);
  EXPECT_GT(brutal.result.metrics.corrupt_detected, 0u);
  EXPECT_GT(brutal.result.metrics.checkpoints, 0u);
}

}  // namespace
}  // namespace rsets
