#include "mpc/simulator.hpp"

#include <gtest/gtest.h>

#include "mpc/primitives.hpp"

namespace rsets::mpc {
namespace {

MpcConfig small_config(MachineId machines = 4,
                       std::size_t memory = 1 << 16) {
  MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.memory_words = memory;
  cfg.seed = 7;
  return cfg;
}

TEST(Simulator, RoundsAreCounted) {
  Simulator sim(small_config());
  EXPECT_EQ(sim.metrics().rounds, 0u);
  sim.round([](Machine&, const Inbox&) {});
  sim.round([](Machine&, const Inbox&) {});
  EXPECT_EQ(sim.metrics().rounds, 2u);
}

TEST(Simulator, MessagesDeliverNextRound) {
  Simulator sim(small_config(2));
  bool got = false;
  sim.round([](Machine& m, const Inbox&) {
    if (m.id() == 0) m.sender(1, 5).push(42);
  });
  sim.round([&](Machine& m, const Inbox& inbox) {
    if (m.id() == 1) {
      const auto msgs = inbox.with_tag(5);
      ASSERT_EQ(msgs.size(), 1u);
      EXPECT_EQ(msgs[0].payload[0], 42u);
      EXPECT_EQ(msgs[0].src, 0u);
      got = true;
    }
  });
  EXPECT_TRUE(got);
}

TEST(Simulator, DrainDeliversWithoutSpendingARound) {
  Simulator sim(small_config(2));
  sim.round([](Machine& m, const Inbox&) {
    if (m.id() == 0) m.sender(1, 1).push(9);
  });
  const auto before = sim.metrics().rounds;
  bool got = false;
  sim.drain([&](Machine& m, const Inbox& inbox) {
    if (m.id() == 1 && !inbox.empty()) got = true;
  });
  EXPECT_TRUE(got);
  EXPECT_EQ(sim.metrics().rounds, before);
}

TEST(Simulator, InboxSortedByTagThenSource) {
  Simulator sim(small_config(3));
  sim.round([](Machine& m, const Inbox&) {
    if (m.id() == 2) m.sender(0, 7).push(1);
    if (m.id() == 1) m.sender(0, 3).push(2);
  });
  sim.round([](Machine& m, const Inbox& inbox) {
    if (m.id() != 0) return;
    ASSERT_EQ(inbox.size(), 2u);
    EXPECT_EQ(inbox.all()[0].tag, 3u);
    EXPECT_EQ(inbox.all()[1].tag, 7u);
  });
}

TEST(Simulator, SendBandwidthEnforced) {
  MpcConfig cfg = small_config(2, /*memory=*/16);
  Simulator sim(cfg);
  EXPECT_THROW(sim.round([](Machine& m, const Inbox&) {
    if (m.id() == 0) {
      const std::vector<Word> big(32, 0);
      m.send(1, 1, big);  // 32 + header > 16
    }
  }),
               MpcViolation);
}

TEST(Simulator, ReceiveBandwidthEnforced) {
  // 4 senders * (6 payload + 2 header) = 32 > 24 budget on receive,
  // while each sender individually stays under its send cap.
  MpcConfig cfg = small_config(5, /*memory=*/24);
  Simulator sim(cfg);
  sim.round([](Machine& m, const Inbox&) {
    if (m.id() != 0) {
      const std::vector<Word> chunk(6, 1);
      m.send(0, 1, chunk);
    }
  });
  EXPECT_THROW(sim.round([](Machine&, const Inbox&) {}), MpcViolation);
}

TEST(Simulator, StorageEnforced) {
  MpcConfig cfg = small_config(1, /*memory=*/100);
  Simulator sim(cfg);
  sim.machine(0).charge_storage(60);
  EXPECT_THROW(sim.machine(0).charge_storage(50), MpcViolation);
}

TEST(Simulator, ViolationsCountedWhenNotEnforcing) {
  MpcConfig cfg = small_config(1, /*memory=*/10);
  cfg.budget_policy = BudgetPolicy::kTrace;
  Simulator sim(cfg);
  sim.machine(0).charge_storage(100);
  sim.sync_metrics();
  EXPECT_EQ(sim.metrics().violations, 1u);
  EXPECT_EQ(sim.metrics().max_storage_words, 100u);
}

TEST(Simulator, StorageReleaseUnderflowThrows) {
  Simulator sim(small_config());
  sim.machine(0).charge_storage(5);
  EXPECT_THROW(sim.machine(0).release_storage(6), std::logic_error);
  sim.machine(0).release_storage(5);
  EXPECT_EQ(sim.machine(0).storage_words(), 0u);
}

TEST(Simulator, RandomDrawsTracked) {
  Simulator sim(small_config(2));
  sim.round([](Machine& m, const Inbox&) {
    if (m.id() == 0) m.rng().next();
  });
  EXPECT_EQ(sim.metrics().random_words, 1u);
  sim.round([](Machine& m, const Inbox&) { m.rng().next(); });
  EXPECT_EQ(sim.metrics().random_words, 3u);
}

TEST(Simulator, PerMachineRngStreamsDiffer) {
  Simulator sim(small_config(2));
  std::uint64_t draws[2];
  sim.round([&](Machine& m, const Inbox&) { draws[m.id()] = m.rng().next(); });
  EXPECT_NE(draws[0], draws[1]);
}

TEST(Simulator, BadDestinationThrows) {
  Simulator sim(small_config(2));
  EXPECT_THROW(
      sim.round([](Machine& m, const Inbox&) { m.sender(9, 0).push(0); }),
      std::out_of_range);
}

TEST(Simulator, ZeroMachinesRejected) {
  MpcConfig cfg;
  cfg.num_machines = 0;
  EXPECT_THROW(Simulator sim(cfg), std::invalid_argument);
}

TEST(Simulator, WordAccountingIncludesHeaders) {
  Simulator sim(small_config(2));
  sim.round([](Machine& m, const Inbox&) {
    if (m.id() == 0) {
      const std::vector<Word> payload(3, 0);
      m.send(1, 1, payload);
    }
  });
  EXPECT_EQ(sim.metrics().total_words, 3 + kHeaderWords);
  EXPECT_EQ(sim.metrics().messages, 1u);
  EXPECT_EQ(sim.metrics().max_send_words, 3 + kHeaderWords);
}

TEST(Primitives, Broadcast) {
  Simulator sim(small_config(4));
  const std::vector<Word> payload = {1, 2, 3};
  const auto received = broadcast(sim, 2, payload);
  for (MachineId m = 0; m < 4; ++m) EXPECT_EQ(received[m], payload);
  EXPECT_EQ(sim.metrics().rounds, 1u);
}

TEST(Primitives, GatherTo) {
  Simulator sim(small_config(3));
  std::vector<std::vector<Word>> contributions = {{10}, {20, 21}, {30}};
  const auto received = gather_to(sim, 0, contributions);
  EXPECT_EQ(received[0], (std::vector<Word>{10}));
  EXPECT_EQ(received[1], (std::vector<Word>{20, 21}));
  EXPECT_EQ(received[2], (std::vector<Word>{30}));
  EXPECT_EQ(sim.metrics().rounds, 1u);
}

TEST(Primitives, AllReduceSum) {
  Simulator sim(small_config(3));
  std::vector<std::vector<double>> contributions = {
      {1.0, 2.0}, {0.5, -1.0}, {2.5, 4.0}};
  const auto total = allreduce_sum(sim, contributions);
  ASSERT_EQ(total.size(), 2u);
  EXPECT_DOUBLE_EQ(total[0], 4.0);
  EXPECT_DOUBLE_EQ(total[1], 5.0);
  EXPECT_EQ(sim.metrics().rounds, 2u);
}

TEST(Primitives, AllReduceMaxAndSumU64) {
  Simulator sim(small_config(4));
  EXPECT_EQ(allreduce_max(sim, {3, 9, 1, 4}), 9u);
  EXPECT_EQ(allreduce_sum_u64(sim, {3, 9, 1, 4}), 17u);
  EXPECT_EQ(sim.metrics().rounds, 4u);
}

TEST(Primitives, AllToAll) {
  Simulator sim(small_config(2));
  std::vector<std::vector<std::vector<Word>>> out(2);
  out[0] = {{1}, {2}};  // 0->0: {1}, 0->1: {2}
  out[1] = {{3}, {4}};  // 1->0: {3}, 1->1: {4}
  const auto in = all_to_all(sim, out);
  EXPECT_EQ(in[0][0], (std::vector<Word>{1}));
  EXPECT_EQ(in[0][1], (std::vector<Word>{3}));
  EXPECT_EQ(in[1][0], (std::vector<Word>{2}));
  EXPECT_EQ(in[1][1], (std::vector<Word>{4}));
  EXPECT_EQ(sim.metrics().rounds, 1u);
}

TEST(Primitives, DoublePackingIsBitExact) {
  for (double x : {0.0, -0.0, 1.5, -3.25e100, 1e-300}) {
    EXPECT_EQ(unpack_double(pack_double(x)), x);
  }
}

}  // namespace
}  // namespace rsets::mpc
