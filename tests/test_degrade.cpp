// Degrade-mode parity and straggler-deadline speculation.
//
// The contract under BudgetPolicy::kDegrade: a run whose rounds exceed the
// per-machine memory/bandwidth budget produces a ruling set bit-identical
// to the unconstrained run, pays for the overflow in extra (sub-)rounds,
// attributes them in both MpcMetrics::degraded_subrounds and the per-round
// trace, and records zero violations. Deadlines are orthogonal: a missed
// round deadline triggers a checkpointed speculative re-execution that must
// also leave the output untouched.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/ruling_set.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"
#include "mpc/trace.hpp"
#include "util/error.hpp"

namespace rsets {
namespace {

std::vector<Algorithm> mpc_algorithms() {
  std::vector<Algorithm> out;
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.model == Model::kMpc) out.push_back(info.algorithm);
  }
  return out;
}

constexpr std::uint64_t kTightBudget = 1u << 9;   // forces spill waves
constexpr std::uint64_t kRoomyBudget = 1u << 22;  // never binds

RulingSetOptions options_for(Algorithm a) {
  RulingSetOptions options;
  options.algorithm = a;
  options.beta = algorithm_info(a).min_beta;
  options.mpc.num_machines = 4;
  options.mpc.seed = 21;
  // The gather budget is clamped to memory_words, so pin it to the tight
  // budget in BOTH runs: degrade parity compares identical algorithm
  // trajectories under different accounting, not different gather sizes.
  options.gather_budget_words = kTightBudget;
  return options;
}

TEST(Degrade, BitIdenticalToUnconstrainedRunOnEveryMpcAlgorithm) {
  const Graph g = gen::gnp(300, 0.03, 5);
  for (const Algorithm a : mpc_algorithms()) {
    RulingSetOptions reference = options_for(a);
    reference.mpc.budget_policy = mpc::BudgetPolicy::kTrace;
    reference.mpc.memory_words = kRoomyBudget;
    const RulingSetResult want = compute_ruling_set(g, reference);

    RulingSetOptions constrained = options_for(a);
    constrained.mpc.budget_policy = mpc::BudgetPolicy::kDegrade;
    constrained.mpc.memory_words = kTightBudget;
    std::uint64_t traced_subrounds = 0;
    constrained.mpc.trace_hook = [&](const mpc::RoundTrace& trace) {
      traced_subrounds += trace.degraded_subrounds;
    };
    const RulingSetResult got = compute_ruling_set(g, constrained);

    const std::string name = algorithm_name(a);
    EXPECT_EQ(got.ruling_set, want.ruling_set) << name;
    EXPECT_GT(got.metrics.degraded_subrounds, 0u) << name;
    EXPECT_EQ(got.metrics.degraded_subrounds, traced_subrounds) << name;
    EXPECT_EQ(got.metrics.violations, 0u) << name;
    // The spill waves are charged as real rounds.
    EXPECT_EQ(got.metrics.rounds,
              want.metrics.rounds + got.metrics.degraded_subrounds)
        << name;
  }
}

TEST(Degrade, StrictAbortsWhereDegradeCompletes) {
  const Graph g = gen::gnp(300, 0.03, 5);
  RulingSetOptions strict = options_for(Algorithm::kLubyMpc);
  strict.mpc.budget_policy = mpc::BudgetPolicy::kStrict;
  strict.mpc.memory_words = kTightBudget;
  EXPECT_THROW(compute_ruling_set(g, strict), mpc::MpcViolation);

  RulingSetOptions degrade = options_for(Algorithm::kLubyMpc);
  degrade.mpc.budget_policy = mpc::BudgetPolicy::kDegrade;
  degrade.mpc.memory_words = kTightBudget;
  EXPECT_NO_THROW(compute_ruling_set(g, degrade));
}

TEST(Degrade, RoomyBudgetAddsNothing) {
  const Graph g = gen::gnp(200, 0.03, 9);
  RulingSetOptions options = options_for(Algorithm::kDetRulingMpc);
  options.mpc.budget_policy = mpc::BudgetPolicy::kDegrade;
  options.mpc.memory_words = kRoomyBudget;
  const RulingSetResult result = compute_ruling_set(g, options);
  EXPECT_EQ(result.metrics.degraded_subrounds, 0u);
}

TEST(Deadline, MissesTriggerSpeculationWithoutChangingOutput) {
  const Graph g = gen::gnp(300, 0.03, 5);
  RulingSetOptions reference = options_for(Algorithm::kLubyMpc);
  reference.mpc.memory_words = kRoomyBudget;
  reference.mpc.budget_policy = mpc::BudgetPolicy::kTrace;
  const RulingSetResult want = compute_ruling_set(g, reference);

  RulingSetOptions tight = options_for(Algorithm::kLubyMpc);
  tight.mpc.memory_words = kRoomyBudget;
  tight.mpc.budget_policy = mpc::BudgetPolicy::kTrace;
  tight.mpc.round_deadline = 200;  // well under the heavy rounds' work
  const RulingSetResult got = compute_ruling_set(g, tight);

  EXPECT_EQ(got.ruling_set, want.ruling_set);
  EXPECT_GT(got.metrics.deadline_misses, 0u);
  EXPECT_GT(got.metrics.speculative_rounds, 0u);
  // Backoff can only retry at least once per miss.
  EXPECT_GE(got.metrics.speculative_rounds, got.metrics.deadline_misses);
  EXPECT_EQ(got.metrics.rounds,
            want.metrics.rounds + got.metrics.speculative_rounds);
}

TEST(Deadline, GenerousDeadlineNeverMisses) {
  const Graph g = gen::gnp(200, 0.03, 9);
  RulingSetOptions options = options_for(Algorithm::kLubyMpc);
  options.mpc.memory_words = kRoomyBudget;
  options.mpc.round_deadline = kRoomyBudget;
  const RulingSetResult result = compute_ruling_set(g, options);
  EXPECT_EQ(result.metrics.deadline_misses, 0u);
  EXPECT_EQ(result.metrics.speculative_rounds, 0u);
}

TEST(Deadline, ComposesWithDegradeMode) {
  const Graph g = gen::gnp(300, 0.03, 5);
  RulingSetOptions reference = options_for(Algorithm::kDetLubyMpc);
  reference.mpc.memory_words = kRoomyBudget;
  reference.mpc.budget_policy = mpc::BudgetPolicy::kTrace;
  const RulingSetResult want = compute_ruling_set(g, reference);

  RulingSetOptions both = options_for(Algorithm::kDetLubyMpc);
  both.mpc.memory_words = kTightBudget;
  both.mpc.budget_policy = mpc::BudgetPolicy::kDegrade;
  both.mpc.round_deadline = 200;
  const RulingSetResult got = compute_ruling_set(g, both);

  EXPECT_EQ(got.ruling_set, want.ruling_set);
  EXPECT_GT(got.metrics.degraded_subrounds, 0u);
  EXPECT_GT(got.metrics.deadline_misses, 0u);
}

TEST(Degrade, PolicyNamesRoundTrip) {
  using mpc::BudgetPolicy;
  for (const BudgetPolicy p :
       {BudgetPolicy::kTrace, BudgetPolicy::kStrict, BudgetPolicy::kDegrade}) {
    EXPECT_EQ(mpc::parse_budget_policy(mpc::budget_policy_name(p)), p);
  }
  EXPECT_THROW(mpc::parse_budget_policy("lenient"), Error);
  try {
    mpc::parse_budget_policy("lenient");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadFlag);
  }
}

}  // namespace
}  // namespace rsets
