#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace rsets {
namespace {

TEST(Bits, Parity) {
  EXPECT_EQ(parity64(0), 0);
  EXPECT_EQ(parity64(1), 1);
  EXPECT_EQ(parity64(0b11), 0);
  EXPECT_EQ(parity64(0b111), 1);
  EXPECT_EQ(parity64(~0ULL), 0);
  EXPECT_EQ(parity64(1ULL << 63), 1);
}

TEST(Bits, BitWidthFor) {
  EXPECT_EQ(bit_width_for(0), 1);
  EXPECT_EQ(bit_width_for(1), 1);
  EXPECT_EQ(bit_width_for(2), 1);
  EXPECT_EQ(bit_width_for(3), 2);
  EXPECT_EQ(bit_width_for(4), 2);
  EXPECT_EQ(bit_width_for(5), 3);
  EXPECT_EQ(bit_width_for(1ULL << 32), 32);
  EXPECT_EQ(bit_width_for((1ULL << 32) + 1), 33);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 50));
  EXPECT_FALSE(is_pow2((1ULL << 50) + 1));
}

}  // namespace
}  // namespace rsets
