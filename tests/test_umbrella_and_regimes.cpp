// (a) Compilation/integration check of the umbrella header: every public
// symbol should be reachable from one include.
// (b) Memory-regime boundary tests: the near-linear-memory algorithms must
// fail *loudly* outside their regime, not degrade silently — the replicated
// activity bitset needs Theta(n) words per machine, so strongly sublinear
// memory must trip the enforcer.
#include "rsets.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rsets {
namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  const Graph g = gen::gnp(200, 0.05, 3);
  // Graph ops.
  EXPECT_GT(approx_diameter(g), 0u);
  EXPECT_GT(degeneracy(g), 0u);
  // Derandomization toolkit.
  MarkingFamily family(256, 2);
  EXPECT_EQ(family.total_seed_bits(), 2 * (8 + 1));
  // CONGEST side.
  const auto congest_result = congest::luby_mis_congest(g);
  EXPECT_TRUE(is_maximal_independent_set(g, congest_result.ruling_set));
  // MPC side through the dispatcher.
  RulingSetOptions options;
  options.mpc.memory_words = 1 << 20;
  const auto mpc_result = compute_ruling_set(g, options);
  EXPECT_TRUE(is_beta_ruling_set(g, mpc_result.ruling_set, 2));
  // Sequential oracle.
  EXPECT_TRUE(is_alpha_beta_ruling_set(
      g, greedy_alpha_beta_ruling_set(g, 3, 2), 3, 2));
}

TEST(MemoryRegimes, NearLinearRegimeSucceeds) {
  const VertexId n = 4000;
  const Graph g = gen::gnp(n, 8.0 / n, 5);
  mpc::MpcConfig cfg;
  cfg.num_machines = 8;
  // S = 8n words: comfortably fits the n/64-word bitset + a 1/8 slice of
  // the edges per machine.
  cfg.memory_words = 8ull * n;
  const auto result = det_ruling_set_mpc(g, cfg);
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
  EXPECT_EQ(result.metrics.violations, 0u);
}

TEST(MemoryRegimes, StronglySublinearMemoryFailsLoudly) {
  // S = n^0.5 words cannot hold the replicated bitset; the load must throw
  // rather than let the algorithm silently overrun.
  const VertexId n = 1 << 16;
  const Graph g = gen::cycle(n);
  mpc::MpcConfig cfg;
  cfg.num_machines = 256;
  cfg.memory_words =
      static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  EXPECT_THROW(det_ruling_set_mpc(g, cfg), mpc::MpcViolation);
}

TEST(MemoryRegimes, BudgetIsClampedToMachineMemory) {
  // gather_budget_words above S is meaningless; the driver clamps it so a
  // gather can never be *planned* beyond what machine 0 could hold.
  const Graph g = gen::gnp(500, 0.05, 7);
  mpc::MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.memory_words = 1 << 16;
  DetRulingOptions opt;
  opt.gather_budget_words = 1ull << 40;  // absurd; must clamp to S
  const auto result = det_ruling_set_mpc(g, cfg, opt);
  EXPECT_TRUE(is_beta_ruling_set(g, result.ruling_set, 2));
  EXPECT_LE(result.metrics.max_storage_words, cfg.memory_words);
}

}  // namespace
}  // namespace rsets
