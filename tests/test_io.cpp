#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace rsets {
namespace {

TEST(Io, RoundTrip) {
  const Graph g = gen::gnp(200, 0.05, 9);
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph h = read_edge_list(buffer);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.edges(), g.edges());
}

TEST(Io, ReadsHeaderlessList) {
  std::istringstream in("0 1\n1 2\n2 3\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Io, SkipsComments) {
  std::istringstream in("# comment\n% other comment\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Io, HeaderPreservesIsolatedTailVertices) {
  // 10 vertices but edges touch only 0..2; header keeps n = 10.
  std::istringstream in("10 2\n0 1\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, MalformedLineThrows) {
  std::istringstream in("0 1\nbogus\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(Io, EmptyInput) {
  std::istringstream in("");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(Io, FileRoundTrip) {
  const Graph g = gen::cycle(50);
  const std::string path = testing::TempDir() + "/rsets_io_test.txt";
  ASSERT_TRUE(write_edge_list_file(g, path));
  const Graph h = read_edge_list_file(path);
  EXPECT_EQ(h.edges(), g.edges());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace rsets
