#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "util/error.hpp"

namespace rsets {
namespace {

// Runs the parser on `text` and returns the structured error code it threw.
ErrorCode code_of(const std::string& text) {
  std::istringstream in(text);
  try {
    read_edge_list(in);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "no rsets::Error thrown for: " << text;
  return ErrorCode::kIoFailure;
}

TEST(Io, RoundTrip) {
  const Graph g = gen::gnp(200, 0.05, 9);
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph h = read_edge_list(buffer);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.edges(), g.edges());
}

TEST(Io, ReadsHeaderlessList) {
  std::istringstream in("0 1\n1 2\n2 3\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Io, SkipsComments) {
  std::istringstream in("# comment\n% other comment\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Io, HeaderPreservesIsolatedTailVertices) {
  // 10 vertices but edges touch only 0..2; header keeps n = 10.
  std::istringstream in("10 2\n0 1\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, MalformedLineThrows) {
  std::istringstream in("0 1\nbogus\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(Io, ErrorTaxonomy) {
  // One token, three tokens, non-numeric, or signed fields: malformed.
  EXPECT_EQ(code_of("0 1\nbogus\n"), ErrorCode::kMalformedLine);
  EXPECT_EQ(code_of("0 1 2\n"), ErrorCode::kMalformedLine);
  EXPECT_EQ(code_of("0 x\n"), ErrorCode::kMalformedLine);
  EXPECT_EQ(code_of("-1 2\n"), ErrorCode::kMalformedLine);
  // Header declares more edges than the file contains.
  EXPECT_EQ(code_of("10 5\n0 1\n1 2\n"), ErrorCode::kTruncatedInput);
  // Vertex ids must fit uint32 and, under a header, stay below n.
  EXPECT_EQ(code_of("0 99999999999\n"), ErrorCode::kVertexIdOverflow);
  EXPECT_EQ(code_of("5 2\n0 1\n1 5\n"), ErrorCode::kVertexIdOverflow);
  EXPECT_EQ(code_of("3 3\n"), ErrorCode::kSelfLoop);
  EXPECT_EQ(code_of("0 1\n1 0\n"), ErrorCode::kDuplicateEdge);
}

TEST(Io, CrlfLineEndingsAreAccepted) {
  std::istringstream in("# dos file\r\n4 2\r\n0 1\r\n2 3\r\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, BlankLinesAreSkipped) {
  std::istringstream in("0 1\n\n \n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, SingleLineIsAnEdgeNotAHeader) {
  // "7 1" alone cannot be a header (it would declare one edge and none
  // follow); it is the edge {1, 7}.
  std::istringstream in("7 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Io, MissingFileErrorCode) {
  try {
    read_edge_list_file("/nonexistent/path/graph.txt");
    FAIL() << "expected rsets::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoFailure);
  }
}

TEST(Io, EmptyInput) {
  std::istringstream in("");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(Io, FileRoundTrip) {
  const Graph g = gen::cycle(50);
  const std::string path = testing::TempDir() + "/rsets_io_test.txt";
  ASSERT_TRUE(write_edge_list_file(g, path));
  const Graph h = read_edge_list_file(path);
  EXPECT_EQ(h.edges(), g.edges());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace rsets
