// Tests for the general (alpha, beta)-ruling-set notion: checker, oracle,
// and consistency with the algorithms' stronger guarantees.
#include <gtest/gtest.h>

#include "congest/beta_ruling_congest.hpp"
#include "core/greedy.hpp"
#include "graph/generators.hpp"
#include "graph/verify.hpp"

namespace rsets {
namespace {

TEST(MinPairwiseDistance, KnownValues) {
  const Graph g = gen::path(10);
  EXPECT_EQ(min_pairwise_distance(g, std::vector<VertexId>{0, 4, 9}), 4u);
  EXPECT_EQ(min_pairwise_distance(g, std::vector<VertexId>{2, 3}), 1u);
  EXPECT_EQ(min_pairwise_distance(g, std::vector<VertexId>{5}),
            std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(min_pairwise_distance(g, {}),
            std::numeric_limits<std::uint32_t>::max());
}

TEST(MinPairwiseDistance, DisconnectedMembersAreInfinitelyApart) {
  const Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}});
  EXPECT_EQ(min_pairwise_distance(g, std::vector<VertexId>{0, 2}),
            std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(min_pairwise_distance(g, std::vector<VertexId>{0, 1, 2}), 1u);
}

TEST(AlphaBeta, CheckerBasics) {
  const Graph g = gen::path(9);
  // {0, 4, 8}: pairwise distance 4, radius 2.
  EXPECT_TRUE(is_alpha_beta_ruling_set(g, std::vector<VertexId>{0, 4, 8}, 4, 2));
  EXPECT_TRUE(is_alpha_beta_ruling_set(g, std::vector<VertexId>{0, 4, 8}, 2, 2));
  EXPECT_FALSE(
      is_alpha_beta_ruling_set(g, std::vector<VertexId>{0, 4, 8}, 5, 2));
  EXPECT_FALSE(
      is_alpha_beta_ruling_set(g, std::vector<VertexId>{0, 4, 8}, 2, 1));
  // alpha = 2 coincides with the plain checker.
  EXPECT_EQ(is_alpha_beta_ruling_set(g, std::vector<VertexId>{0, 4, 8}, 2, 2),
            is_beta_ruling_set(g, std::vector<VertexId>{0, 4, 8}, 2));
}

TEST(AlphaBeta, CheckerRejectsDuplicatesAndOutOfRange) {
  const Graph g = gen::path(5);
  EXPECT_FALSE(is_alpha_beta_ruling_set(g, std::vector<VertexId>{1, 1}, 2, 4));
  EXPECT_FALSE(is_alpha_beta_ruling_set(g, std::vector<VertexId>{7}, 2, 4));
}

TEST(AlphaBeta, GreedyOracleValidAcrossParameters) {
  for (const auto& entry : gen::standard_suite(250, 17)) {
    for (std::uint32_t beta : {1u, 2u, 3u, 4u}) {
      for (std::uint32_t alpha = 1; alpha <= beta + 1; ++alpha) {
        const auto set =
            greedy_alpha_beta_ruling_set(entry.graph, alpha, beta);
        EXPECT_TRUE(
            is_alpha_beta_ruling_set(entry.graph, set, alpha, beta))
            << entry.name << " alpha=" << alpha << " beta=" << beta;
      }
    }
  }
}

TEST(AlphaBeta, PlainGreedyIsTheMaximalPackingCase) {
  // greedy_ruling_set(beta) adds a vertex only when every member is more
  // than beta hops away — that is exactly the (beta+1, beta) instance.
  const Graph g = gen::gnp(300, 0.03, 7);
  for (std::uint32_t beta : {1u, 2u, 3u}) {
    EXPECT_EQ(greedy_alpha_beta_ruling_set(g, beta + 1, beta),
              greedy_ruling_set(g, beta))
        << "beta=" << beta;
  }
}

TEST(AlphaBeta, GreedyRejectsInfeasibleParameters) {
  const Graph g = gen::path(5);
  EXPECT_THROW(greedy_alpha_beta_ruling_set(g, 4, 2), std::invalid_argument);
  EXPECT_THROW(greedy_alpha_beta_ruling_set(g, 0, 2), std::invalid_argument);
  EXPECT_THROW(greedy_alpha_beta_ruling_set(g, 1, 0), std::invalid_argument);
}

TEST(AlphaBeta, DistanceBetaLubyIsBetaPlusOneSeparated) {
  // The CONGEST distance-beta Luby algorithm promises the *stronger*
  // (beta+1, beta) guarantee; certify it with the general checker.
  const Graph g = gen::grid(15, 15);
  for (std::uint32_t beta : {2u, 3u}) {
    const auto result = congest::beta_ruling_set_congest(g, beta);
    EXPECT_TRUE(
        is_alpha_beta_ruling_set(g, result.ruling_set, beta + 1, beta))
        << "beta=" << beta;
  }
}

TEST(AlphaBeta, LargerAlphaSparserSets) {
  const Graph g = gen::grid(20, 20);
  const std::uint32_t beta = 4;
  std::size_t prev = g.num_vertices() + 1;
  for (std::uint32_t alpha = 1; alpha <= beta + 1; ++alpha) {
    const auto set = greedy_alpha_beta_ruling_set(g, alpha, beta);
    EXPECT_LE(set.size(), prev) << "alpha=" << alpha;
    prev = set.size();
  }
}

}  // namespace
}  // namespace rsets
