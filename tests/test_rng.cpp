#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rsets {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, StreamsAreIndependentlySeeded) {
  Rng a = Rng::for_stream(7, 0);
  Rng b = Rng::for_stream(7, 1);
  EXPECT_NE(a.next(), b.next());
  // Same (seed, stream) reproduces.
  Rng a2 = Rng::for_stream(7, 0);
  Rng a3 = Rng::for_stream(7, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a2.next(), a3.next());
}

TEST(Rng, BelowIsInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowZeroBoundReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) counts[rng.below(kBound)]++;
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kSamples / kBound, 600) << "value " << v;
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, FlipMatchesProbability) {
  Rng rng(9);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.flip(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(Rng, DrawAccounting) {
  Rng rng(1);
  EXPECT_EQ(rng.draws(), 0u);
  rng.next();
  rng.next();
  EXPECT_EQ(rng.draws(), 2u);
  rng.reseed(1);
  EXPECT_EQ(rng.draws(), 0u);
}

TEST(Rng, NoShortCycles) {
  Rng rng(123);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(SplitMix, KnownGoodMixing) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

}  // namespace
}  // namespace rsets
