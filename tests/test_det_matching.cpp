#include "core/det_matching.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace rsets {
namespace {

mpc::MpcConfig config_for() {
  mpc::MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.memory_words = 1 << 22;
  cfg.seed = 1;
  return cfg;
}

TEST(MatchingCheckers, Basics) {
  const Graph g = gen::path(4);  // 0-1-2-3
  EXPECT_TRUE(is_matching(g, {{0, 1}, {2, 3}}));
  EXPECT_TRUE(is_maximal_matching(g, {{0, 1}, {2, 3}}));
  EXPECT_TRUE(is_matching(g, {{1, 2}}));
  EXPECT_TRUE(is_maximal_matching(g, {{1, 2}}));
  EXPECT_FALSE(is_maximal_matching(g, {{0, 1}}));  // 2-3 augments
  EXPECT_FALSE(is_matching(g, {{0, 1}, {1, 2}}));  // shares vertex 1
  EXPECT_FALSE(is_matching(g, {{0, 2}}));          // not an edge
  EXPECT_TRUE(is_maximal_matching(Graph::from_edges(3, {}), {}));
}

TEST(DetMatching, MaximalOnSuite) {
  for (const auto& entry : gen::standard_suite(250, 31)) {
    const auto result = det_matching_mpc(entry.graph, config_for());
    EXPECT_TRUE(is_maximal_matching(entry.graph, result.matching))
        << entry.name;
  }
}

TEST(DetMatching, ZeroRandomWordsAndDeterministic) {
  const Graph g = gen::gnp(300, 0.03, 7);
  const auto a = det_matching_mpc(g, config_for());
  auto cfg = config_for();
  cfg.seed = 99;
  cfg.num_machines = 7;
  const auto b = det_matching_mpc(g, cfg);
  EXPECT_EQ(a.metrics.random_words, 0u);
  EXPECT_EQ(a.matching, b.matching);
}

TEST(DetMatching, IterationsModest) {
  const Graph g = gen::gnp(800, 0.01, 11);
  const auto result = det_matching_mpc(g, config_for());
  EXPECT_TRUE(is_maximal_matching(g, result.matching));
  // Empirically Luby-like: well below the matching-size worst case.
  EXPECT_LE(result.iterations, 40u);
}

TEST(DetMatching, PerfectOnEvenCycle) {
  const Graph g = gen::cycle(50);
  const auto result = det_matching_mpc(g, config_for());
  EXPECT_TRUE(is_maximal_matching(g, result.matching));
  EXPECT_GE(result.matching.size(), 17u);  // maximal >= 1/3 of perfect (25)
}

TEST(DetMatching, EdgeCases) {
  EXPECT_TRUE(
      det_matching_mpc(Graph::from_edges(0, {}), config_for()).matching.empty());
  EXPECT_TRUE(
      det_matching_mpc(Graph::from_edges(5, {}), config_for()).matching.empty());
  const auto single =
      det_matching_mpc(Graph::from_edges(2, std::vector<Edge>{{0, 1}}),
                       config_for());
  EXPECT_EQ(single.matching, (std::vector<Edge>{{0, 1}}));
  // Star: exactly one edge can be matched.
  const auto star = det_matching_mpc(gen::star(20), config_for());
  EXPECT_EQ(star.matching.size(), 1u);
  // Complete graph K6: a maximal matching has >= 2 edges (3 if perfect).
  const auto k6 = det_matching_mpc(gen::complete(6), config_for());
  EXPECT_GE(k6.matching.size(), 2u);
  EXPECT_TRUE(is_maximal_matching(gen::complete(6), k6.matching));
}

TEST(DetMatching, NoModelViolations) {
  const Graph g = gen::random_regular(200, 8, 13);
  const auto result = det_matching_mpc(g, config_for());
  EXPECT_EQ(result.metrics.violations, 0u);
  EXPECT_GT(result.derand_chunks, 0u);
}

}  // namespace
}  // namespace rsets
