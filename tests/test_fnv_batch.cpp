// The four-lane batch FNV digest: the unrolled implementation must be
// byte-identical to the scalar reference of the same construction, stay
// sensitive to every single-bit flip, and distinguish streams that plain
// concatenation would conflate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/fnv.hpp"
#include "util/rng.hpp"

namespace rsets {
namespace {

std::vector<std::uint64_t> random_words(std::size_t count,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) w = rng.next();
  return words;
}

// The load-bearing assertion: the unrolled loop and the one-lane-per-index
// reference must agree on every length, including the 0..3 tail cases and
// lengths around the unroll width.
TEST(FnvBatch, UnrolledMatchesReferenceAtEveryLength) {
  for (std::size_t count = 0; count <= 67; ++count) {
    const auto words = random_words(count, 0x1234 + count);
    EXPECT_EQ(fnv1a_words_batch(words.data(), count),
              fnv1a_words_batch_reference(words.data(), count))
        << "length " << count;
  }
  // A batch comparable to a real message arena.
  const auto big = random_words(100000, 99);
  EXPECT_EQ(fnv1a_words_batch(big.data(), big.size()),
            fnv1a_words_batch_reference(big.data(), big.size()));
}

TEST(FnvBatch, ChainedStateMatchesReference) {
  const auto words = random_words(37, 7);
  for (const std::uint64_t h : {std::uint64_t{0}, kFnvOffsetBasis,
                                std::uint64_t{0xdeadbeefcafef00d}}) {
    EXPECT_EQ(fnv1a_words_batch(words.data(), words.size(), h),
              fnv1a_words_batch_reference(words.data(), words.size(), h))
        << "prefix state " << h;
  }
}

TEST(FnvBatch, DetectsEverySingleBitFlip) {
  const auto words = random_words(9, 3);  // covers all four lanes + tail
  const std::uint64_t clean = fnv1a_words_batch(words.data(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (int bit = 0; bit < 64; ++bit) {
      auto rotten = words;
      rotten[i] ^= std::uint64_t{1} << bit;
      EXPECT_NE(fnv1a_words_batch(rotten.data(), rotten.size()), clean)
          << "flip word " << i << " bit " << bit;
    }
  }
}

TEST(FnvBatch, LengthIsPartOfTheDigest) {
  // A stream and its zero-extended version must not collide (the count is
  // absorbed after the lane fold), and neither must the empty stream equal
  // the raw prefix state.
  std::vector<std::uint64_t> words = {1, 2, 3};
  const std::uint64_t three = fnv1a_words_batch(words.data(), 3);
  words.push_back(0);
  EXPECT_NE(fnv1a_words_batch(words.data(), 4), three);
  EXPECT_NE(fnv1a_words_batch(nullptr, 0), kFnvOffsetBasis);
}

TEST(FnvBatch, OrderSensitive) {
  const std::uint64_t a[] = {1, 2, 3, 4, 5};
  const std::uint64_t b[] = {2, 1, 3, 4, 5};  // swap within lane stride
  const std::uint64_t c[] = {5, 2, 3, 4, 1};  // swap across lanes
  EXPECT_NE(fnv1a_words_batch(a, 5), fnv1a_words_batch(b, 5));
  EXPECT_NE(fnv1a_words_batch(a, 5), fnv1a_words_batch(c, 5));
}

}  // namespace
}  // namespace rsets
