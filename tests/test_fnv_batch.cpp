// The four-lane batch FNV digest: every implementation — the dispatched
// entry point, the scalar unrolled fallback, and each SIMD variant the host
// can run — must be byte-identical to the scalar reference of the same
// construction, stay sensitive to every single-bit flip, and distinguish
// streams that plain concatenation would conflate.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/fnv.hpp"
#include "util/rng.hpp"

namespace rsets {
namespace {

std::vector<std::uint64_t> random_words(std::size_t count,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) w = rng.next();
  return words;
}

// Every batch implementation the host CPU can execute, by name. The
// dispatched entry point is included so the identity holds for whatever the
// resolver picked.
std::vector<std::pair<std::string, FnvBatchFn>> runnable_targets() {
  std::vector<std::pair<std::string, FnvBatchFn>> targets;
  targets.emplace_back("dispatched", &fnv1a_words_batch);
  targets.emplace_back("scalar", &fnv1a_words_batch_scalar);
#if defined(RSETS_FNV_X86)
  if (__builtin_cpu_supports("sse2")) {
    targets.emplace_back("sse2", &fnv1a_words_batch_sse2);
  }
  if (__builtin_cpu_supports("avx2")) {
    targets.emplace_back("avx2", &fnv1a_words_batch_avx2);
  }
#elif defined(RSETS_FNV_NEON)
  targets.emplace_back("neon", &fnv1a_words_batch_neon);
#endif
  return targets;
}

// The load-bearing assertion: every runnable variant and the
// one-lane-per-index reference must agree on every length, including the
// 0..3 tail cases and lengths around the vector width.
TEST(FnvBatch, EveryTargetMatchesReferenceAtEveryLength) {
  for (const auto& [name, fn] : runnable_targets()) {
    for (std::size_t count = 0; count <= 67; ++count) {
      const auto words = random_words(count, 0x1234 + count);
      EXPECT_EQ(fn(words.data(), count, kFnvOffsetBasis),
                fnv1a_words_batch_reference(words.data(), count))
          << name << " length " << count;
    }
    // A batch comparable to a real message arena.
    const auto big = random_words(100000, 99);
    EXPECT_EQ(fn(big.data(), big.size(), kFnvOffsetBasis),
              fnv1a_words_batch_reference(big.data(), big.size()))
        << name;
  }
}

TEST(FnvBatch, EveryTargetMatchesReferenceOnChainedState) {
  const auto words = random_words(37, 7);
  for (const auto& [name, fn] : runnable_targets()) {
    for (const std::uint64_t h : {std::uint64_t{0}, kFnvOffsetBasis,
                                  std::uint64_t{0xdeadbeefcafef00d}}) {
      EXPECT_EQ(fn(words.data(), words.size(), h),
                fnv1a_words_batch_reference(words.data(), words.size(), h))
          << name << " prefix state " << h;
    }
  }
}

TEST(FnvBatch, DispatchTargetIsKnownAndRunnable) {
  const std::string target = fnv1a_batch_target();
  bool known = false;
  for (const auto& [name, fn] : runnable_targets()) {
    if (name == target) known = true;
  }
  EXPECT_TRUE(known) << "dispatcher chose '" << target
                     << "' which this host cannot run";
#if defined(RSETS_FNV_X86)
  // On x86 the resolver must have picked a vector variant — SSE2 is baseline
  // on x86-64 and checked at runtime on i386.
  if (__builtin_cpu_supports("avx2")) {
    EXPECT_EQ(target, "avx2");
  } else if (__builtin_cpu_supports("sse2")) {
    EXPECT_EQ(target, "sse2");
  } else {
    EXPECT_EQ(target, "scalar");
  }
#elif defined(RSETS_FNV_NEON)
  EXPECT_EQ(target, "neon");
#else
  EXPECT_EQ(target, "scalar");
#endif
}

TEST(FnvBatch, DetectsEverySingleBitFlip) {
  const auto words = random_words(9, 3);  // covers all four lanes + tail
  const std::uint64_t clean = fnv1a_words_batch(words.data(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (int bit = 0; bit < 64; ++bit) {
      auto rotten = words;
      rotten[i] ^= std::uint64_t{1} << bit;
      EXPECT_NE(fnv1a_words_batch(rotten.data(), rotten.size()), clean)
          << "flip word " << i << " bit " << bit;
    }
  }
}

TEST(FnvBatch, LengthIsPartOfTheDigest) {
  // A stream and its zero-extended version must not collide (the count is
  // absorbed after the lane fold), and neither must the empty stream equal
  // the raw prefix state.
  std::vector<std::uint64_t> words = {1, 2, 3};
  const std::uint64_t three = fnv1a_words_batch(words.data(), 3);
  words.push_back(0);
  EXPECT_NE(fnv1a_words_batch(words.data(), 4), three);
  EXPECT_NE(fnv1a_words_batch(nullptr, 0), kFnvOffsetBasis);
}

TEST(FnvBatch, OrderSensitive) {
  const std::uint64_t a[] = {1, 2, 3, 4, 5};
  const std::uint64_t b[] = {2, 1, 3, 4, 5};  // swap within lane stride
  const std::uint64_t c[] = {5, 2, 3, 4, 1};  // swap across lanes
  EXPECT_NE(fnv1a_words_batch(a, 5), fnv1a_words_batch(b, 5));
  EXPECT_NE(fnv1a_words_batch(a, 5), fnv1a_words_batch(c, 5));
}

}  // namespace
}  // namespace rsets
