#include "util/cond_expect.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rsets {
namespace {

// Estimator: expected number of marked ids in `targets` (full depth).
class CountMarkedEstimator : public SeedEstimator {
 public:
  CountMarkedEstimator(const MarkingFamily& family,
                       std::vector<std::uint64_t> targets)
      : family_(family), targets_(std::move(targets)) {}

  double value() const override {
    double total = 0.0;
    for (std::uint64_t v : targets_) {
      total += family_.prob_mark(v, family_.levels());
    }
    return total;
  }

 private:
  const MarkingFamily& family_;
  std::vector<std::uint64_t> targets_;
};

TEST(FixSeed, FinalValueAtLeastInitialExpectation) {
  MarkingFamily family(32, 2);
  CountMarkedEstimator est(family, {1, 5, 9, 14, 27, 31});
  const FixReport report = fix_seed(family, est, {.chunk_bits = 3});
  EXPECT_TRUE(family.fully_fixed());
  EXPECT_NEAR(report.initial_value, 6.0 * 0.25, 1e-12);
  EXPECT_GE(report.final_value, report.initial_value - 1e-12);
}

TEST(FixSeed, TrajectoryIsNonDecreasing) {
  MarkingFamily family(64, 3);
  CountMarkedEstimator est(family, {0, 7, 21, 33, 40, 41, 63});
  const FixReport report = fix_seed(family, est, {.chunk_bits = 2});
  double prev = report.initial_value;
  for (double v : report.trajectory) {
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(report.trajectory.back(), report.final_value);
}

TEST(FixSeed, FinalValueEqualsRealizedCount) {
  // After all bits are fixed, the estimator value must be the actual number
  // of marked targets — conditional expectation of a constant.
  MarkingFamily family(16, 2);
  std::vector<std::uint64_t> targets = {2, 3, 8, 12};
  CountMarkedEstimator est(family, targets);
  const FixReport report = fix_seed(family, est, {.chunk_bits = 4});
  int marked = 0;
  for (std::uint64_t v : targets) marked += family.mark(v) ? 1 : 0;
  EXPECT_DOUBLE_EQ(report.final_value, static_cast<double>(marked));
  EXPECT_GE(marked, 1);  // E = 4/4 = 1, so at least one target is marked
}

TEST(FixSeed, ChunkAndBitAccounting) {
  MarkingFamily family(16, 2);  // id_bits = 4, per-level seed = 5 bits
  CountMarkedEstimator est(family, {1});
  const FixReport report = fix_seed(family, est, {.chunk_bits = 4});
  EXPECT_EQ(report.bits, family.total_seed_bits());
  // Per level: ceil(5/4) = 2 chunks; 2 levels -> 4 chunks.
  EXPECT_EQ(report.chunks, 4);
}

TEST(FixSeed, DeterministicAcrossRuns) {
  std::vector<std::uint8_t> first_seed;
  for (int run = 0; run < 3; ++run) {
    MarkingFamily family(32, 2);
    CountMarkedEstimator est(family, {3, 17, 22});
    fix_seed(family, est, {.chunk_bits = 3});
    const auto seed = family.seed();
    if (run == 0) {
      first_seed = seed;
    } else {
      EXPECT_EQ(seed, first_seed);
    }
  }
}

TEST(FixSeed, ChunkSizeDoesNotBreakGuarantee) {
  for (int chunk = 1; chunk <= 6; ++chunk) {
    MarkingFamily family(32, 2);
    CountMarkedEstimator est(family, {1, 2, 4, 8, 16, 31});
    const FixReport report =
        fix_seed(family, est, {.chunk_bits = chunk});
    EXPECT_GE(report.final_value, report.initial_value - 1e-12)
        << "chunk_bits " << chunk;
  }
}

TEST(FixSeed, RejectsBadChunkBits) {
  MarkingFamily family(8, 1);
  CountMarkedEstimator est(family, {1});
  EXPECT_THROW(fix_seed(family, est, {.chunk_bits = 0}),
               std::invalid_argument);
  EXPECT_THROW(fix_seed(family, est, {.chunk_bits = 17}),
               std::invalid_argument);
}

// Estimator with a level-transition callback that counts notifications.
class LevelCountingEstimator : public CountMarkedEstimator {
 public:
  using CountMarkedEstimator::CountMarkedEstimator;
  void on_level_fixed(int j) override { levels_seen.push_back(j); }
  std::vector<int> levels_seen;
};

TEST(FixSeed, LevelCallbacksFireInOrder) {
  MarkingFamily family(16, 3);
  LevelCountingEstimator est(family, {1, 2});
  fix_seed(family, est, {.chunk_bits = 2});
  EXPECT_EQ(est.levels_seen, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace rsets
